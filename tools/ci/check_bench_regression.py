#!/usr/bin/env python3
"""Gate the GA evaluation hot path against the committed perf baseline.

Usage: check_bench_regression.py <baseline.json> <current.json>

Both files carry the micro_parallel_ga --json schema (the baseline may wrap
it in a top-level "current" object, as BENCH_ga_hotpath.json does).  The
gate is machine-normalized: it compares speedup_vs_full_decode — the ratio
of the legacy self-contained full decode to the prepared-context
metrics-only evaluate, both measured in the same process on the same
machine — so a slower CI runner shifts both sides equally and only a real
hot-path regression moves the ratio.  Raw ns are printed for context but
never gated on.

Fails (exit 1) when the current ratio drops below 75% of the committed one
(a >25% decode-throughput regression), or when the hot path is no longer
faster than the full decode at all.
"""

import json
import sys

TOLERANCE = 0.75  # fail below 75% of the committed speedup ratio


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if "current" in doc:  # BENCH_ga_hotpath.json wraps the bench output
        doc = doc["current"]
    return doc


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load_report(argv[1])
    current = load_report(argv[2])

    base_ratio = float(baseline["speedup_vs_full_decode"])
    cur_ratio = float(current["speedup_vs_full_decode"])
    threshold = TOLERANCE * base_ratio

    print(f"workload                        : "
          f"{current['workload']['tasks']} tasks, "
          f"{current['workload']['nodes']} nodes")
    print(f"full decode (this machine)      : "
          f"{current['full_decode']['ns_per_decode']:.0f} ns")
    print(f"hot-path evaluate (this machine): "
          f"{current['hot_path_evaluate']['ns_per_evaluate']:.0f} ns")
    print(f"baseline speedup_vs_full_decode : {base_ratio:.3f}")
    print(f"current  speedup_vs_full_decode : {cur_ratio:.3f}")
    print(f"threshold ({TOLERANCE:.0%} of baseline)     : {threshold:.3f}")

    if cur_ratio <= 1.0:
        print("FAIL: hot-path evaluate is no faster than the full decode")
        return 1
    if cur_ratio < threshold:
        print("FAIL: decode throughput regressed more than "
              f"{1 - TOLERANCE:.0%} vs the committed baseline")
        return 1
    print("PASS: hot-path decode throughput within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
