#!/usr/bin/env python3
"""Gate machine-normalized bench ratios against committed baselines.

Usage:
  check_bench_regression.py <baseline.json> <current.json>
  check_bench_regression.py <baseline.json> <current.json> <ratio-key> [...]
  check_bench_regression.py --self-test

Arguments after the script name are (baseline, current, ratio-key)
triples; the original two-argument form is kept as shorthand for the GA
hot-path key `speedup_vs_full_decode`.  Every report carries a bench
--json schema (the committed baseline may wrap it in a top-level
"current" object, as BENCH_ga_hotpath.json and BENCH_sim_engine.json do).

The gates are machine-normalized: each ratio compares two measurements
taken in the same process on the same machine (hot-path evaluate vs full
decode; sharded campaign vs single-shard campaign), so a slower CI runner
shifts both sides equally and only a real regression moves the ratio.
Raw ns/seconds are printed for context but never gated on.

A key fails (exit 1) when its current ratio drops below 75% of the
committed one.  Additionally, when the *baseline* ratio exceeds 1.0 —
the capturing machine demonstrated a real speedup, as the GA hot path
does — the current ratio must also stay above 1.0.  Baselines captured
at ~1.0 (e.g. the shard-scaling ratio recorded on a single-core box)
don't impose that floor, since the capturing machine could not express
a speedup in the first place.

A ratio key may carry an explicit absolute floor as `key@floor`
(e.g. `plain_vs_observed@0.95`): the current ratio must then stay at or
above that literal value regardless of what the baseline recorded, and
the explicit floor *replaces* the implicit >1.0 rule — a parity bench
captured at 1.01 is noise around 1.0, not a speedup to defend.  This is
how the observability-overhead gate encodes "< 5% overhead": the
plain/observed ratio sits near 1.0 by construction, so a relative
tolerance alone would wave through a 20% slowdown.

--self-test fabricates pass/fail report pairs in a temp directory and
asserts the exit codes; it is wired into ctest so the gate logic itself
is under test.
"""

import json
import os
import sys
import tempfile

TOLERANCE = 0.75  # fail below 75% of the committed ratio
DEFAULT_KEY = "speedup_vs_full_decode"


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if "current" in doc:  # committed baselines wrap the bench output
        doc = doc["current"]
    return doc


def check_one(baseline_path, current_path, key):
    """Returns 0 on pass, 1 on regression, 2 on malformed input."""
    floor = None
    if "@" in key:
        key, floor_text = key.split("@", 1)
        try:
            floor = float(floor_text)
        except ValueError:
            print(f"ERROR: malformed floor in '{key}@{floor_text}'")
            return 2
    baseline = load_report(baseline_path)
    current = load_report(current_path)
    for name, doc, path in (("baseline", baseline, baseline_path),
                            ("current", current, current_path)):
        if key not in doc:
            print(f"ERROR: {name} report {path} has no key '{key}'")
            return 2

    base_ratio = float(baseline[key])
    cur_ratio = float(current[key])
    threshold = TOLERANCE * base_ratio

    print(f"== {key} ==")
    bench = current.get("bench", "?")
    workload = current.get("workload", {})
    if workload:
        detail = ", ".join(f"{k}={v}" for k, v in workload.items())
        print(f"workload ({bench})      : {detail}")
    print(f"baseline ratio          : {base_ratio:.3f}")
    print(f"current  ratio          : {cur_ratio:.3f}")
    print(f"threshold ({TOLERANCE:.0%} of base): {threshold:.3f}")

    if floor is not None:
        print(f"absolute floor          : {floor:.3f}")
        if cur_ratio < floor:
            print(f"FAIL: {key} at {cur_ratio:.3f} is below the absolute "
                  f"floor {floor:.3f}")
            return 1
    elif base_ratio > 1.0 and cur_ratio <= 1.0:
        print(f"FAIL: {key} fell to {cur_ratio:.3f} — the measured path is "
              "no longer faster than its in-process reference")
        return 1
    if cur_ratio < threshold:
        print(f"FAIL: {key} regressed more than {1 - TOLERANCE:.0%} vs the "
              "committed baseline")
        return 1
    print(f"PASS: {key} within tolerance of baseline")
    return 0


def self_test():
    """Fabricates report pairs and asserts the gate's exit codes."""
    def write(directory, name, doc):
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    failures = []

    def expect(label, want, *argv):
        got = run(list(argv))
        status = "ok" if got == want else f"FAILED (want {want}, got {got})"
        print(f"self-test: {label}: exit {got} — {status}")
        if got != want:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        # Wrapped baseline (as committed) + bare current, both keys present.
        base = write(tmp, "base.json", {
            "description": "fabricated",
            "current": {"bench": "fake",
                        "workload": {"tasks": 1},
                        "speedup_vs_full_decode": 2.0,
                        "speedup_vs_single_shard": 1.0}})
        good = write(tmp, "good.json", {
            "bench": "fake", "speedup_vs_full_decode": 1.9,
            "speedup_vs_single_shard": 2.5})
        slow = write(tmp, "slow.json", {
            "bench": "fake", "speedup_vs_full_decode": 1.2,
            "speedup_vs_single_shard": 0.4})
        floor = write(tmp, "floor.json", {
            "bench": "fake", "speedup_vs_full_decode": 0.9,
            "speedup_vs_single_shard": 1.0})
        nokey = write(tmp, "nokey.json", {"bench": "fake"})

        expect("two-arg pass", 0, base, good)
        expect("two-arg regression", 1, base, slow)
        # speedup 0.9 still above 0.75*2.0=1.5? No: floor rule — baseline
        # 2.0 > 1.0 so current must stay above 1.0; 0.9 fails.
        expect("hard floor when baseline > 1", 1, base, floor)
        expect("missing key", 2, base, nokey, DEFAULT_KEY)
        expect("triple pass", 0, base, good, "speedup_vs_single_shard")
        # ~1.0 baseline imposes no floor: 0.8 >= 0.75*1.0 passes.
        expect("no floor at ~1.0 baseline", 0,
               write(tmp, "ok80.json",
                     {"bench": "fake", "speedup_vs_single_shard": 0.8}),
               write(tmp, "ok80b.json",
                     {"bench": "fake", "speedup_vs_single_shard": 0.8}),
               "speedup_vs_single_shard")
        expect("triple regression", 1, base, slow, "speedup_vs_single_shard")
        expect("two triples, second fails", 1,
               base, good, DEFAULT_KEY,
               base, slow, "speedup_vs_single_shard")
        expect("two triples pass", 0,
               base, good, DEFAULT_KEY,
               base, good, "speedup_vs_single_shard")

        # key@floor: absolute floors independent of the baseline ratio.
        obs_base = write(tmp, "obs_base.json", {
            "description": "fabricated",
            "current": {"bench": "fake", "plain_vs_observed": 1.01}})
        obs_good = write(tmp, "obs_good.json", {
            "bench": "fake", "plain_vs_observed": 0.97})
        obs_slow = write(tmp, "obs_slow.json", {
            "bench": "fake", "plain_vs_observed": 0.90})
        # Baseline pinned at exactly 1.0 so neither the >1.0 hard-floor
        # rule nor the relative tolerance fires — only the explicit floor
        # decides these cases.
        flat_base = write(tmp, "flat_base.json", {
            "bench": "fake", "plain_vs_observed": 1.0})
        expect("floor pass", 0, flat_base, obs_good,
               "plain_vs_observed@0.95")
        expect("floor fail", 1, flat_base, obs_slow,
               "plain_vs_observed@0.95")
        # Without the floor the same 0.90 sails through the 75% relative
        # tolerance — the floor is what makes the overhead gate bite.
        expect("no floor lets 0.90 pass", 0, flat_base, obs_slow,
               "plain_vs_observed")
        expect("malformed floor", 2, flat_base, obs_good,
               "plain_vs_observed@fast")
        # Wrapped committed baseline at 1.01: without the explicit floor
        # the implicit >1.0 rule would reject 0.97, but a parity bench's
        # 1.01 is noise, not a speedup — the explicit floor replaces it.
        expect("floor with wrapped baseline", 0, obs_base, obs_good,
               "plain_vs_observed@0.95")
        expect("implicit rule without floor", 1, obs_base, obs_good,
               "plain_vs_observed")

    if failures:
        print(f"self-test FAILED: {failures}")
        return 1
    print("self-test passed")
    return 0


def run(argv):
    """Gates every (baseline, current, key) triple; worst exit code wins."""
    if len(argv) == 2:
        triples = [(argv[0], argv[1], DEFAULT_KEY)]
    elif len(argv) >= 3 and len(argv) % 3 == 0:
        triples = [tuple(argv[i:i + 3]) for i in range(0, len(argv), 3)]
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    worst = 0
    for baseline, current, key in triples:
        worst = max(worst, check_one(baseline, current, key))
    return worst


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    return run(argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
