// gridlb — command-line driver for the grid load-balancing simulator.
//
//   gridlb table1
//       Print the PACE predictions of Table 1.
//   gridlb predict --app sweep3d [--hardware SunUltra5]
//   gridlb predict --model file.pace [--hardware …]
//       Evaluate an application model on a platform (1..16 nodes).
//   gridlb experiment [--id 1|2|3|all] [--requests N] [--seed S] [--csv]
//       Run the case-study experiments and print Table 3 (or CSV).
//   gridlb campaign [--requests N] [--policy ga|fifo] [--agents on|off]
//                   [--placement agent|central|crush] [--seed S]
//                   [--pull-period P] [--prediction-error E]
//                   [--eval-threads N] [--churn-mtbf M --churn-mttr R]
//                   [--sim-shards N] [--csv] [--trace S1]
//       Run a custom campaign on the Fig. 7 grid; --trace renders one
//       resource's executed Gantt chart.  A leading `--` flag with no
//       command runs a campaign, so `gridlb --grid-agents 192 …` works.
//
// Scenario grids (campaign command, DESIGN.md §12): --grid-agents
// replaces the Fig. 7 grid with a generated one — --grid-shape
// fanout|random, --grid-fanout, --grid-depth, --grid-seed, --grid-nodes
// describe the hierarchy; --requests-per-agent, --arrival-interval
// (0 = auto: hold the per-agent rate constant) and --deadline-scale scale
// the workload with it.  --sim-shards N partitions the event queue across
// N threads (0 = hardware concurrency; results are identical for any
// shard count, see DESIGN.md §13).  --timeline-out writes the
// per-resource utilisation timeline as CSV (--timeline-window buckets),
// and --require-complete exits non-zero unless every task completed.
//
// Placement families (experiment and campaign commands, DESIGN.md §15):
// --placement selects how requests are routed onto resources — agent
// (the paper's hierarchy, default), central (omniscient oracle; aliases
// central-oracle, oracle) or crush (stateless hashed straw map; alias
// hash).  Orthogonal to --policy, which stays the *local* scheduler.
//
// Traffic shaping (campaign command, DESIGN.md §17): --arrival selects
// the submission-timing process — uniform (default), poisson, onoff
// (--burst-on/--burst-off), diurnal (--diurnal-period,
// --diurnal-amplitude) or trace (--arrival-trace FILE replays a JSONL
// workload; --workload-out FILE exports one).  --duration T runs the
// open loop: stop at sim time T whether or not the batch drained, and
// judge the run by shed rate and latency percentiles (--max-shed-rate X
// exits non-zero above X).  --migration on re-homes queued tasks from
// overloaded agents to idle direct neighbours
// (--migration-overload/--migration-underload watermarks,
// --migration-batch cap).
//
// Fault injection (experiment and campaign commands): --drop-prob,
// --net-jitter, --agent-mtbf/--agent-mttr.  Any of these switches on the
// loss-tolerant agent protocol (retries, ACT expiry, resubmission).
//
// Observability (experiment and campaign commands):
//   --trace-out=FILE        Chrome trace-event JSON (open in Perfetto)
//   --events-out=FILE       flat JSONL event dump
//   --metrics-json=FILE     metrics-registry snapshot as JSON
//   --metrics-interval=SEC  continuous sampling cadence in sim-seconds
//   --series-out=FILE       sampled time series as JSONL (one row/line)
//   --series-csv=FILE       sampled time series as CSV
//   --progress              stderr heartbeat line per sample
// The sampled series + metrics JSON feed tools/campaign_report.py, which
// renders a single self-contained HTML health report (DESIGN.md §14).
//
// Everything runs in virtual time; identical flags give identical output,
// and enabling tracing never changes results (DESIGN.md §9).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.hpp"
#include "common/log.hpp"
#include "core/gridlb.hpp"
#include "core/scenario.hpp"
#include "metrics/time_series.hpp"
#include "pace/model_parser.hpp"
#include "report/csv.hpp"
#include "report/gantt.hpp"

namespace {

using namespace gridlb;

int cmd_table1() {
  pace::EvaluationEngine engine;
  const auto catalogue = pace::paper_catalogue();
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  std::printf("%-10s %-10s", "app", "deadline");
  for (int k = 1; k <= 16; ++k) std::printf(" %4d", k);
  std::printf("\n");
  for (const auto& model : catalogue.all()) {
    const auto domain = model->deadline_domain();
    char bounds[32];
    std::snprintf(bounds, sizeof bounds, "[%.0f,%.0f]", domain.lo, domain.hi);
    std::printf("%-10s %-10s", model->name().c_str(), bounds);
    for (int k = 1; k <= 16; ++k) {
      std::printf(" %4.0f", engine.evaluate(*model, sgi, k));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_predict(const Flags& flags) {
  pace::ApplicationModelPtr model;
  if (flags.has("model")) {
    const std::string path = flags.get("model", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open model file: %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    model = pace::parse_model(text.str());
  } else {
    const std::string app = flags.get("app", "sweep3d");
    const auto catalogue = pace::paper_catalogue();
    model = catalogue.find(app);
    if (model == nullptr) {
      std::fprintf(stderr, "unknown application: %s\n", app.c_str());
      return 1;
    }
  }
  const std::string hardware_name =
      flags.get("hardware", "SGIOrigin2000");
  const auto hardware = pace::hardware_from_name(hardware_name);
  if (!hardware) {
    std::fprintf(stderr, "unknown hardware type: %s\n",
                 hardware_name.c_str());
    return 1;
  }
  pace::EvaluationEngine engine;
  const auto resource = pace::ResourceModel::of(*hardware);
  std::printf("%s on %s (factor %.2f):\n", model->name().c_str(),
              hardware_name.c_str(), resource.factor);
  std::printf("  procs   runtime(s)\n");
  for (int k = 1; k <= model->max_procs(); ++k) {
    std::printf("  %5d   %10.2f\n", k, engine.evaluate(*model, resource, k));
  }
  return 0;
}

/// Fills config.obs from --trace-out / --events-out / --metrics-json and
/// the continuous-profiling flags (--metrics-interval / --series-out /
/// --series-csv / --progress).  Shared by the experiment and campaign
/// commands.
void apply_obs_flags(const Flags& flags, core::ExperimentConfig& config) {
  config.obs.trace_out = flags.get("trace-out", "");
  config.obs.events_out = flags.get("events-out", "");
  config.obs.metrics_json_out = flags.get("metrics-json", "");
  config.obs.metrics_interval = flags.get_double("metrics-interval", 0.0);
  GRIDLB_REQUIRE(config.obs.metrics_interval >= 0.0,
                 "--metrics-interval must be >= 0");
  config.obs.series_jsonl_out = flags.get("series-out", "");
  config.obs.series_csv_out = flags.get("series-csv", "");
  config.obs.progress = flags.get_bool("progress", false);
}

/// Fills the fault plan and agent churn from --drop-prob / --net-jitter /
/// --agent-mtbf / --agent-mttr.  Any injected fault switches the loss-
/// tolerant protocol on (running lossy without it would black-hole
/// tasks); all-defaults leaves the bit-for-bit lossless behaviour.
void apply_fault_flags(const Flags& flags, core::ExperimentConfig& config) {
  agents::SystemConfig& system = config.system;
  system.fault.drop_prob = flags.get_double("drop-prob", 0.0);
  system.fault.jitter_max = flags.get_double("net-jitter", 0.0);
  const double mtbf = flags.get_double("agent-mtbf", 0.0);
  if (mtbf > 0.0) {
    system.agent_churn.enabled = true;
    system.agent_churn.mtbf = mtbf;
    system.agent_churn.mttr = flags.get_double("agent-mttr", 30.0);
    system.agent_churn.horizon =
        config.workload.start +
        static_cast<double>(config.workload.count) * config.workload.interval;
  }
  if (system.fault.active() || system.agent_churn.enabled) {
    system.fault_tolerance.enabled = true;
  }
}

/// Fills the arrival process, open-loop duration and queue-migration knobs
/// (campaign command) and validates the workload here — the CLI boundary —
/// so a bad interval or missing trace file fails with the actionable
/// validate_workload message before any expensive setup.
void apply_traffic_flags(const Flags& flags, core::ExperimentConfig& config) {
  core::WorkloadConfig& workload = config.workload;
  if (flags.has("arrival")) {
    workload.arrival =
        core::arrival_process_from_name(flags.get("arrival", "uniform"));
  }
  workload.trace_path = flags.get("arrival-trace", workload.trace_path);
  if (!workload.trace_path.empty() && !flags.has("arrival")) {
    workload.arrival = core::ArrivalProcess::kTrace;
  }
  workload.burst_on = flags.get_double("burst-on", workload.burst_on);
  workload.burst_off = flags.get_double("burst-off", workload.burst_off);
  workload.diurnal_period =
      flags.get_double("diurnal-period", workload.diurnal_period);
  workload.diurnal_amplitude =
      flags.get_double("diurnal-amplitude", workload.diurnal_amplitude);
  config.duration = flags.get_double("duration", 0.0);
  GRIDLB_REQUIRE(config.duration >= 0.0,
                 "--duration cannot be negative (0 = closed loop: run until "
                 "the batch drains)");
  agents::MigrationConfig& migration = config.system.migration;
  migration.enabled = flags.get_bool("migration", false);
  migration.overload_threshold =
      flags.get_double("migration-overload", migration.overload_threshold);
  migration.underload_threshold =
      flags.get_double("migration-underload", migration.underload_threshold);
  migration.max_batch = flags.get_int("migration-batch", migration.max_batch);
  GRIDLB_REQUIRE(migration.max_batch >= 1,
                 "--migration-batch must be >= 1 (tasks re-homed per "
                 "qualifying advertisement)");
  core::validate_workload(workload);
}

/// Builds the generated grid described by the --grid-* / workload-scaling
/// flags (campaign command with --grid-agents).
core::ScenarioSpec scenario_spec_from_flags(const Flags& flags) {
  core::ScenarioSpec spec;
  spec.agent_count = flags.get_int("grid-agents", spec.agent_count);
  spec.shape = core::shape_from_name(
      flags.get("grid-shape", core::shape_name(spec.shape)));
  spec.fanout = flags.get_int("grid-fanout", spec.fanout);
  spec.max_depth = flags.get_int("grid-depth", spec.max_depth);
  spec.tree_seed = static_cast<std::uint64_t>(
      flags.get_int("grid-seed", static_cast<int>(spec.tree_seed)));
  spec.nodes_per_resource =
      flags.get_int("grid-nodes", spec.nodes_per_resource);
  spec.requests_per_agent =
      flags.get_int("requests-per-agent", spec.requests_per_agent);
  // Default 0 = auto: the CLI holds the per-agent arrival rate constant as
  // --grid-agents grows, so big campaigns fit the same horizon.
  spec.arrival_interval = flags.get_double("arrival-interval", 0.0);
  spec.deadline_scale =
      flags.get_double("deadline-scale", spec.deadline_scale);
  return spec;
}

core::ExperimentConfig campaign_config(const Flags& flags) {
  core::ExperimentConfig config;
  if (flags.has("grid-agents")) {
    config = core::scenario_experiment(scenario_spec_from_flags(flags));
    if (flags.has("requests")) {
      config.workload.count = flags.get_int("requests", config.workload.count);
    }
  } else {
    config = core::experiment3();
    config.name = "campaign";
    config.workload.count = flags.get_int("requests", 300);
    // Unlike the scenario path, the Fig. 7 grid has no auto rate: an
    // explicit interval applies directly and 0 is rejected (with the
    // which-flag-to-pass message) by the validation below.
    if (flags.has("arrival-interval")) {
      config.workload.interval =
          flags.get_double("arrival-interval", config.workload.interval);
    }
  }
  config.workload.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<int>(config.workload.seed)));
  const std::string policy = flags.get("policy", "ga");
  GRIDLB_REQUIRE(policy == "ga" || policy == "fifo",
                 "--policy must be ga or fifo");
  config.system.policy = policy == "ga" ? sched::SchedulerPolicy::kGa
                                        : sched::SchedulerPolicy::kFifo;
  config.placement = core::placement_family_from_name(
      flags.get("placement", core::placement_family_name(config.placement)));
  config.system.discovery_enabled = flags.get_bool("agents", true);
  config.system.ga.eval_threads = flags.get_int("eval-threads", 0);
  GRIDLB_REQUIRE(config.system.ga.eval_threads >= 0,
                 "--eval-threads must be >= 0 (0 = hardware concurrency)");
  config.system.sim_shards = flags.get_int("sim-shards", 1);
  GRIDLB_REQUIRE(config.system.sim_shards >= 0,
                 "--sim-shards must be >= 0 (0 = hardware concurrency)");
  config.system.pull_period = flags.get_double("pull-period", 10.0);
  config.system.prediction_error = flags.get_double("prediction-error", 0.0);
  const double mtbf = flags.get_double("churn-mtbf", 0.0);
  if (mtbf > 0.0) {
    config.system.churn.enabled = true;
    config.system.churn.mtbf = mtbf;
    config.system.churn.mttr = flags.get_double("churn-mttr", 120.0);
    config.system.churn.horizon =
        config.workload.start +
        static_cast<double>(config.workload.count) * config.workload.interval;
  }
  apply_traffic_flags(flags, config);
  apply_fault_flags(flags, config);
  apply_obs_flags(flags, config);
  return config;
}

int cmd_experiment(const Flags& flags) {
  const std::string id = flags.get("id", "all");
  std::vector<core::ExperimentConfig> configs;
  if (id == "1" || id == "all") configs.push_back(core::experiment1());
  if (id == "2" || id == "all") configs.push_back(core::experiment2());
  if (id == "3" || id == "all") configs.push_back(core::experiment3());
  if (configs.empty()) {
    std::fprintf(stderr, "--id must be 1, 2, 3 or all\n");
    return 1;
  }
  std::vector<core::ExperimentResult> results;
  if (configs.size() > 1 &&
      (flags.has("trace-out") || flags.has("events-out") ||
       flags.has("metrics-json") || flags.has("series-out") ||
       flags.has("series-csv"))) {
    log::warn("observability outputs with --id all: each experiment "
              "overwrites the file; the last one wins");
  }
  for (auto& config : configs) {
    config.workload.count = flags.get_int("requests", 600);
    config.workload.seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 2003));
    config.system.ga.eval_threads = flags.get_int("eval-threads", 0);
    config.system.sim_shards = flags.get_int("sim-shards", 1);
    config.placement = core::placement_family_from_name(
        flags.get("placement", core::placement_family_name(config.placement)));
    apply_fault_flags(flags, config);
    apply_obs_flags(flags, config);
    log::info("running ", config.name, "…");
    results.push_back(core::run_experiment(config));
  }
  if (flags.get_bool("csv", false)) {
    std::cout << report::experiments_csv(results);
  } else {
    std::cout << core::format_table3(results);
  }
  return 0;
}

int cmd_campaign(const Flags& flags) {
  const core::ExperimentConfig config = campaign_config(flags);

  if (flags.has("workload-out")) {
    // Export the workload the run below will see, as a replayable JSONL
    // trace (--arrival-trace).  Generation is deterministic, so the file
    // matches the run bit-for-bit.
    const std::string path = flags.get("workload-out", "");
    const auto workload = core::generate_workload(
        config.workload, pace::paper_catalogue(),
        static_cast<int>(config.system.resources.size()));
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write workload JSONL: %s\n", path.c_str());
      return 1;
    }
    out << core::workload_to_jsonl(workload);
    log::info("wrote workload JSONL to ", path);
  }

  const core::ExperimentResult result = core::run_experiment(config);

  if (flags.has("trace")) {
    // Render one resource's executed Gantt chart.
    const std::string name = flags.get("trace", "S1");
    int resource_index = -1;
    for (std::size_t i = 0; i < config.system.resources.size(); ++i) {
      if (config.system.resources[i].name == name) {
        resource_index = static_cast<int>(i);
        break;
      }
    }
    if (resource_index < 0) {
      std::fprintf(stderr, "unknown resource: %s\n", name.c_str());
      return 1;
    }
    std::vector<sched::CompletionRecord> records;
    for (const auto& record : result.completions) {
      if (record.resource ==
          AgentId(static_cast<std::uint64_t>(resource_index) + 1)) {
        records.push_back(record);
      }
    }
    std::printf("%s — %zu executions\n", name.c_str(), records.size());
    std::cout << report::render_trace(
        records,
        config.system.resources[static_cast<std::size_t>(resource_index)]
            .node_count);
    return 0;
  }
  if (flags.has("timeline-out")) {
    std::vector<std::pair<std::string, int>> resources;
    for (const auto& spec : config.system.resources) {
      resources.emplace_back(spec.name, spec.node_count);
    }
    SimTime end = 0.0;
    for (const auto& record : result.completions) {
      end = std::max(end, record.end);
    }
    const metrics::Timeline timeline = metrics::build_timeline(
        result.completions, resources,
        flags.get_double("timeline-window", 60.0), 0.0, end);
    const std::string path = flags.get("timeline-out", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write timeline CSV: %s\n", path.c_str());
      return 1;
    }
    out << metrics::timeline_csv(timeline);
    log::info("wrote timeline CSV to ", path);
  }
  if (flags.get_bool("csv", false)) {
    std::cout << report::report_csv(result.report);
  } else {
    // Surface trace-ring drops next to the numbers they taint: a truncated
    // trace silently skews any analysis done on the exported files.
    std::vector<std::string> notes;
    if (result.trace_dropped > 0) {
      notes.push_back(
          "trace ring overflow: " + std::to_string(result.trace_dropped) +
          " of " + std::to_string(result.trace_events) +
          " events dropped; raise the ring capacity or shorten the run");
    }
    std::cout << metrics::format_report(result.report, notes);
    std::printf("\n%llu/%llu tasks completed by t=%.0fs; %.2f mean hops; "
                "%llu messages; cache hit rate %.1f%%\n",
                static_cast<unsigned long long>(result.tasks_completed),
                static_cast<unsigned long long>(result.requests_submitted),
                result.finished_at, result.mean_hops,
                static_cast<unsigned long long>(result.network_messages),
                result.cache.hit_rate() * 100.0);
    if (result.placement_decisions > 0) {
      std::printf("%llu requests hash-placed by the stateless straw map "
                  "(0 discovery messages)\n",
                  static_cast<unsigned long long>(result.placement_decisions));
    }
    if (config.duration > 0.0) {
      std::printf("open loop (%s arrivals, %.0fs window): shed rate %.2f%%; "
                  "latency p50/p90/p99 = %.1f/%.1f/%.1f s; %llu unfinished\n",
                  core::arrival_process_name(config.workload.arrival).c_str(),
                  config.duration, result.shed_rate * 100.0,
                  result.latency_p50, result.latency_p90, result.latency_p99,
                  static_cast<unsigned long long>(result.tasks_unfinished));
    }
    if (config.system.migration.enabled) {
      std::printf("%llu queued tasks migrated to idler neighbours\n",
                  static_cast<unsigned long long>(result.migrations));
    }
  }
  if (flags.has("max-shed-rate")) {
    const double limit = flags.get_double("max-shed-rate", 1.0);
    if (result.shed_rate > limit) {
      std::fprintf(stderr,
                   "FAIL: shed rate %.4f exceeds --max-shed-rate %.4f "
                   "(%llu of %llu tasks not completed)\n",
                   result.shed_rate, limit,
                   static_cast<unsigned long long>(result.requests_submitted -
                                                   result.tasks_completed),
                   static_cast<unsigned long long>(result.requests_submitted));
      return 1;
    }
  }
  if (flags.get_bool("require-complete", false) &&
      result.tasks_completed < result.requests_submitted) {
    std::fprintf(stderr, "FAIL: %llu of %llu tasks did not complete\n",
                 static_cast<unsigned long long>(result.requests_submitted -
                                                 result.tasks_completed),
                 static_cast<unsigned long long>(result.requests_submitted));
    return 1;
  }
  return 0;
}

Flags make_flags() {
  Flags flags;
  flags.declare("id", "1|2|3|all", "experiment(s) to run");
  flags.declare("requests", "N", "number of portal requests");
  flags.declare("seed", "S", "workload seed");
  flags.declare("policy", "ga|fifo", "local scheduling policy");
  flags.declare("eval-threads", "N",
                "GA evaluate-phase threads (0 = hardware concurrency)");
  flags.declare("sim-shards", "N",
                "engine shards (1 = classic, 0 = hardware concurrency)");
  flags.declare("placement", "agent|central|crush",
                "placement family routing requests onto resources");
  flags.declare("agents", "on|off", "agent-based discovery");
  flags.declare("pull-period", "sec", "advertisement pull period");
  flags.declare("prediction-error", "e", "actual = predicted × U[1−e,1+e]");
  flags.declare("churn-mtbf", "sec", "mean node up-time (0 = no churn)");
  flags.declare("churn-mttr", "sec", "mean node repair time");
  flags.declare("drop-prob", "p", "message drop probability (0 = lossless)");
  flags.declare("net-jitter", "sec", "max uniform extra message latency");
  flags.declare("agent-mtbf", "sec", "mean agent up-time (0 = no crashes)");
  flags.declare("agent-mttr", "sec", "mean agent restart time");
  flags.declare("grid-agents", "N",
                "generate an N-agent scenario grid instead of Fig. 7");
  flags.declare("grid-shape", "fanout|random", "scenario hierarchy shape");
  flags.declare("grid-fanout", "F", "children per agent (fanout shape)");
  flags.declare("grid-depth", "D",
                "max tree depth, 0 = unbounded (random shape)");
  flags.declare("grid-seed", "S", "random-tree wiring seed");
  flags.declare("grid-nodes", "N", "processing nodes per resource");
  flags.declare("requests-per-agent", "N",
                "scenario workload: requests per resource");
  flags.declare("arrival-interval", "sec",
                "mean seconds between submissions (0 = auto per-agent "
                "rate, scenario grids only)");
  flags.declare("arrival", "uniform|poisson|onoff|diurnal|trace",
                "submission-timing process (campaign)");
  flags.declare("arrival-trace", "file",
                "JSONL workload to replay verbatim (implies --arrival trace)");
  flags.declare("burst-on", "sec", "onoff arrivals: ON phase length");
  flags.declare("burst-off", "sec", "onoff arrivals: silent phase length");
  flags.declare("diurnal-period", "sec", "diurnal arrivals: cycle length");
  flags.declare("diurnal-amplitude", "a",
                "diurnal arrivals: rate swing in [0,1)");
  flags.declare("duration", "sec",
                "open-loop cutoff: stop at this sim time (0 = closed loop)");
  flags.declare("workload-out", "file",
                "export the generated workload as replayable JSONL");
  flags.declare("migration", "on|off",
                "threshold-triggered migration of queued tasks");
  flags.declare("migration-overload", "sec",
                "own backlog above which migration triggers");
  flags.declare("migration-underload", "sec",
                "neighbour backlog below which it accepts migrants");
  flags.declare("migration-batch", "N",
                "max queued tasks re-homed per advertisement");
  flags.declare("max-shed-rate", "x",
                "exit non-zero if (submitted-completed)/submitted exceeds x");
  flags.declare("deadline-scale", "x",
                "deadline tightness (<1 squeezes Table 1 domains)");
  flags.declare("timeline-out", "file",
                "write per-resource utilisation timeline CSV");
  flags.declare("timeline-window", "sec", "timeline bucket width");
  flags.declare("require-complete", "",
                "exit non-zero unless every task completed");
  flags.declare("csv", "", "emit CSV instead of tables");
  flags.declare("trace", "S1..S12", "render one resource's Gantt (campaign)");
  flags.declare("trace-out", "file", "write Chrome trace-event JSON");
  flags.declare("events-out", "file", "write flat JSONL event dump");
  flags.declare("metrics-json", "file", "write metrics registry as JSON");
  flags.declare("metrics-interval", "sec",
                "sample the registry every N sim-seconds (default 60)");
  flags.declare("series-out", "file", "write sampled time series as JSONL");
  flags.declare("series-csv", "file", "write sampled time series as CSV");
  flags.declare("progress", "", "print a heartbeat line per sample");
  flags.declare("app", "name", "paper application (predict)");
  flags.declare("model", "file", "PACE model file (predict)");
  flags.declare("hardware", "type", "platform name (predict)");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = make_flags();
  if (argc < 2) {
    std::fprintf(stderr, "%s",
                 flags.usage("gridlb <table1|predict|experiment|campaign>")
                     .c_str());
    return 1;
  }
  std::string command = argv[1];
  int flag_start = 2;
  if (command.rfind("--", 0) == 0) {
    // Bare flags with no command run a campaign, so scenario one-liners
    // like `gridlb --grid-agents 192 --requests-per-agent 25` work.
    command = "campaign";
    flag_start = 1;
  }
  try {
    flags.parse(argc - flag_start, argv + flag_start);
    if (command == "table1") return cmd_table1();
    if (command == "predict") return cmd_predict(flags);
    if (command == "experiment") return cmd_experiment(flags);
    if (command == "campaign") return cmd_campaign(flags);
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(),
                 flags.usage("gridlb <command>").c_str());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
