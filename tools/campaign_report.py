#!/usr/bin/env python3
"""Fold a campaign's sampler time-series and final metrics snapshot into
one self-contained HTML health report.

Usage:
  campaign_report.py --series series.jsonl --metrics metrics.json \
      --out report.html [--title "..."]

Inputs are what the CLI writes for an observed run:

  gridlb campaign ... --metrics-interval 30 --series-out series.jsonl \
      --metrics-json metrics.json

The series is the obs::Sampler JSONL stream — one object per interval,
`t` plus counter *deltas* (omitted when zero), gauge values, and
histogram percentile columns (DESIGN.md §14).  The metrics file is the
end-of-run MetricsRegistry snapshot.  Everything is inlined: the output
is a single file with no external fetches, viewable offline and safe to
attach as a CI artifact.  Plots are hand-rolled SVG polylines drawn by a
small inline script from the embedded JSON — stdlib only on the Python
side, no JS dependencies on the browser side.

Derived panels:
  in-flight    cumulative flow.submitted − flow.completed − flow.dropped
  utilisation  flow.busy_us per interval / (dt × grid.total_nodes × 1e6)
  rates        flow.submitted and flow.completed per sim-second
  shards       per-shard events per interval + shard.load_imbalance
"""

import argparse
import html
import json
import sys


def read_series(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSONL row: {err}")
            if "t" not in row:
                raise SystemExit(f"{path}:{lineno}: row has no 't'")
            rows.append(row)
    return rows


def column(rows, key, default=0.0):
    return [float(row.get(key, default)) for row in rows]


def cumulative(values):
    out, total = [], 0.0
    for v in values:
        total += v
        out.append(total)
    return out


def intervals(times):
    """Width of each sampling interval; the first starts at t=0."""
    prev = 0.0
    widths = []
    for t in times:
        widths.append(max(t - prev, 1e-9))
        prev = t
    return widths


def shard_keys(rows, suffix):
    keys = set()
    for row in rows:
        for key in row:
            if key.startswith("shard.") and key.endswith(suffix):
                middle = key[len("shard."):-len(suffix)]
                if middle.isdigit():
                    keys.add(key)
    return sorted(keys, key=lambda k: int(k.split(".")[1]))


def build_panels(rows):
    """Returns [{title, unit, series: [{name, points: [[t, v], ...]}]}]."""
    t = [float(row["t"]) for row in rows]
    widths = intervals(t)

    def points(values):
        return [[ti, vi] for ti, vi in zip(t, values)]

    submitted = column(rows, "flow.submitted")
    completed = column(rows, "flow.completed")
    dropped = column(rows, "flow.dropped")
    in_flight = [s - c - d for s, c, d in zip(cumulative(submitted),
                                             cumulative(completed),
                                             cumulative(dropped))]

    panels = [{
        "title": "Tasks in flight",
        "unit": "tasks",
        "series": [{"name": "in flight", "points": points(in_flight)}],
    }, {
        "title": "Arrival / completion rate",
        "unit": "tasks per sim-second",
        "series": [
            {"name": "submitted",
             "points": points([v / w for v, w in zip(submitted, widths)])},
            {"name": "completed",
             "points": points([v / w for v, w in zip(completed, widths)])},
        ],
    }]

    nodes = column(rows, "grid.total_nodes")
    if any(nodes):
        busy = column(rows, "flow.busy_us")
        util = [b / (w * n * 1e6) if n else 0.0
                for b, w, n in zip(busy, widths, nodes)]
        panels.append({
            "title": "Grid utilisation",
            "unit": "busy node-time / capacity",
            "series": [{"name": "utilisation", "points": points(util)}],
        })

    depth_key = "sched.queue_depth.mean"
    if any(depth_key in row for row in rows):
        panels.append({
            "title": "Scheduler queue depth",
            "unit": "tasks (windowed)",
            "series": [
                {"name": "mean", "points": points(column(rows, depth_key))},
                {"name": "p90",
                 "points": points(column(rows, "sched.queue_depth.p90"))},
            ],
        })

    event_keys = shard_keys(rows, ".events")
    if event_keys:
        panels.append({
            "title": "Per-shard events per interval",
            "unit": "engine events",
            "series": [{"name": key[len("shard."):-len(".events")],
                        "points": points(column(rows, key))}
                       for key in event_keys],
        })
        panels.append({
            "title": "Shard load imbalance",
            "unit": "max/min window events (1 = perfect)",
            "series": [{"name": "imbalance",
                        "points":
                            points(column(rows, "shard.load_imbalance"))}],
        })

    return panels


SUMMARY_ROWS = [
    ("Finished at", "gauges", "sim.finished_at", "sim-seconds"),
    ("Engine shards", "gauges", "sim.shards", ""),
    ("Agents", "gauges", "grid.agents", ""),
    ("Grid nodes", "gauges", "grid.total_nodes", ""),
    ("Tasks submitted", "counters", "flow.submitted", ""),
    ("Tasks completed", "counters", "flow.completed", ""),
    ("Tasks dropped", "counters", "flow.dropped", ""),
    ("Network messages", "counters", "net.messages", ""),
    ("Mean discovery hops", "gauges", "discovery.mean_hops", ""),
    ("Trace events recorded", "counters", "obs.trace_events", ""),
    ("Trace events dropped", "counters", "obs.dropped_events", ""),
]


def build_summary(metrics):
    rows = []
    for label, section, key, unit in SUMMARY_ROWS:
        value = metrics.get(section, {}).get(key)
        if value is None:
            continue
        if isinstance(value, float) and not value.is_integer():
            text = f"{value:.3f}"
        else:
            text = f"{int(value)}"
        rows.append((label, text, unit))
    return rows


PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
          max-width: 960px; color: #1a1a2e; }}
  h1 {{ font-size: 1.4em; }}  h2 {{ font-size: 1.05em; margin-bottom: .2em; }}
  table {{ border-collapse: collapse; margin: 1em 0; }}
  td, th {{ border: 1px solid #ccd; padding: .25em .8em; text-align: left; }}
  .unit {{ color: #667; }}
  .panel {{ margin: 1.2em 0; }}
  .legend span {{ margin-right: 1.2em; font-size: .85em; }}
  svg {{ background: #fafaff; border: 1px solid #dde; }}
  .warn {{ background: #fff3e0; border: 1px solid #e8b26a;
           padding: .5em .8em; }}
</style>
</head>
<body>
<h1>{title}</h1>
{warning}
<table>
<tr><th>Metric</th><th>Value</th><th></th></tr>
{summary_rows}
</table>
<div id="panels"></div>
<script id="report-data" type="application/json">
{payload}
</script>
<script>
const COLORS = ["#3355bb", "#cc5533", "#229955", "#884499",
                "#997700", "#116677", "#bb3377", "#556633"];
const data = JSON.parse(document.getElementById("report-data").textContent);
const root = document.getElementById("panels");
const W = 880, H = 180, PAD = 48;

function extent(panels, pick) {{
  let lo = Infinity, hi = -Infinity;
  for (const s of panels) for (const p of s.points) {{
    lo = Math.min(lo, pick(p)); hi = Math.max(hi, pick(p));
  }}
  if (lo === Infinity) {{ lo = 0; hi = 1; }}
  if (lo === hi) {{ hi = lo + 1; }}
  return [lo, hi];
}}

for (const panel of data.panels) {{
  const div = document.createElement("div");
  div.className = "panel";
  const [t0, t1] = extent(panel.series, p => p[0]);
  let [v0, v1] = extent(panel.series, p => p[1]);
  v0 = Math.min(v0, 0);
  const x = t => PAD + (t - t0) / (t1 - t0) * (W - 2 * PAD);
  const y = v => H - PAD / 2 - (v - v0) / (v1 - v0) * (H - PAD);
  let svg = `<svg width="${{W}}" height="${{H}}" role="img">`;
  svg += `<line x1="${{PAD}}" y1="${{y(v0)}}" x2="${{W - PAD}}"` +
         ` y2="${{y(v0)}}" stroke="#99a"/>`;
  for (const v of [v0, (v0 + v1) / 2, v1]) {{
    svg += `<text x="4" y="${{y(v) + 4}}" font-size="10"` +
           ` fill="#667">${{+v.toFixed(2)}}</text>`;
  }}
  for (const t of [t0, (t0 + t1) / 2, t1]) {{
    svg += `<text x="${{x(t)}}" y="${{H - 4}}" font-size="10"` +
           ` fill="#667" text-anchor="middle">${{+t.toFixed(1)}}s</text>`;
  }}
  panel.series.forEach((s, i) => {{
    const pts = s.points.map(p => `${{x(p[0])}},${{y(p[1])}}`).join(" ");
    svg += `<polyline points="${{pts}}" fill="none"` +
           ` stroke="${{COLORS[i % COLORS.length]}}" stroke-width="1.5"/>`;
  }});
  svg += "</svg>";
  const legend = panel.series.map((s, i) =>
    `<span style="color:${{COLORS[i % COLORS.length]}}">▬ ` +
    `${{s.name}}</span>`).join("");
  div.innerHTML = `<h2>${{panel.title}}</h2>` +
    `<div class="legend">${{legend}}` +
    `<span class="unit">${{panel.unit}}</span></div>` + svg;
  root.appendChild(div);
}}
</script>
</body>
</html>
"""


def render(title, panels, summary, dropped):
    summary_html = "\n".join(
        f"<tr><td>{html.escape(label)}</td><td>{html.escape(value)}</td>"
        f"<td class=\"unit\">{html.escape(unit)}</td></tr>"
        for label, value, unit in summary)
    warning = ""
    if dropped:
        warning = (f"<p class=\"warn\">Trace ring overflowed: {dropped} "
                   "events dropped — raise the ring capacity or shorten "
                   "the run.</p>")
    # </script> inside the JSON payload would terminate the data block.
    payload = json.dumps({"panels": panels}).replace("</", "<\\/")
    return PAGE.format(title=html.escape(title), warning=warning,
                       summary_rows=summary_html, payload=payload)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Render a campaign health report as one HTML file.")
    parser.add_argument("--series", required=True,
                        help="sampler JSONL (--series-out)")
    parser.add_argument("--metrics", required=True,
                        help="final metrics snapshot (--metrics-json)")
    parser.add_argument("--out", required=True, help="output HTML path")
    parser.add_argument("--title", default="Campaign health report")
    args = parser.parse_args(argv)

    rows = read_series(args.series)
    if not rows:
        raise SystemExit(f"{args.series}: series is empty — was the run "
                         "started with --metrics-interval?")
    with open(args.metrics) as f:
        metrics = json.load(f)

    dropped = int(metrics.get("counters", {}).get("obs.dropped_events", 0))
    page = render(args.title, build_panels(rows), build_summary(metrics),
                  dropped)
    with open(args.out, "w") as f:
        f.write(page)
    print(f"wrote {args.out}: {len(rows)} samples, "
          f"{len(build_panels(rows))} panels")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
