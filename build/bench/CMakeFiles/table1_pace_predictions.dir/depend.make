# Empty dependencies file for table1_pace_predictions.
# This may be replaced when dependencies are built.
