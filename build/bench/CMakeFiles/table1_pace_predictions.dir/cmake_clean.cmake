file(REMOVE_RECURSE
  "CMakeFiles/table1_pace_predictions.dir/table1_pace_predictions.cpp.o"
  "CMakeFiles/table1_pace_predictions.dir/table1_pace_predictions.cpp.o.d"
  "table1_pace_predictions"
  "table1_pace_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pace_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
