
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_pace_predictions.cpp" "bench/CMakeFiles/table1_pace_predictions.dir/table1_pace_predictions.cpp.o" "gcc" "bench/CMakeFiles/table1_pace_predictions.dir/table1_pace_predictions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/gridlb_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gridlb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gridlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridlb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/gridlb_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
