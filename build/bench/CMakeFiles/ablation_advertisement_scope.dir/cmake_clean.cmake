file(REMOVE_RECURSE
  "CMakeFiles/ablation_advertisement_scope.dir/ablation_advertisement_scope.cpp.o"
  "CMakeFiles/ablation_advertisement_scope.dir/ablation_advertisement_scope.cpp.o.d"
  "ablation_advertisement_scope"
  "ablation_advertisement_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_advertisement_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
