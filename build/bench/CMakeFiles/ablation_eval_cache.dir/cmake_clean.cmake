file(REMOVE_RECURSE
  "CMakeFiles/ablation_eval_cache.dir/ablation_eval_cache.cpp.o"
  "CMakeFiles/ablation_eval_cache.dir/ablation_eval_cache.cpp.o.d"
  "ablation_eval_cache"
  "ablation_eval_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eval_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
