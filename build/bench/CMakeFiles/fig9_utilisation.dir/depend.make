# Empty dependencies file for fig9_utilisation.
# This may be replaced when dependencies are built.
