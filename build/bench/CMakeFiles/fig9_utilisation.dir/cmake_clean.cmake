file(REMOVE_RECURSE
  "CMakeFiles/fig9_utilisation.dir/fig9_utilisation.cpp.o"
  "CMakeFiles/fig9_utilisation.dir/fig9_utilisation.cpp.o.d"
  "fig9_utilisation"
  "fig9_utilisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_utilisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
