# Empty dependencies file for ablation_ga_params.
# This may be replaced when dependencies are built.
