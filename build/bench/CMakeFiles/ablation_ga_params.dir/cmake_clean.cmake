file(REMOVE_RECURSE
  "CMakeFiles/ablation_ga_params.dir/ablation_ga_params.cpp.o"
  "CMakeFiles/ablation_ga_params.dir/ablation_ga_params.cpp.o.d"
  "ablation_ga_params"
  "ablation_ga_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ga_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
