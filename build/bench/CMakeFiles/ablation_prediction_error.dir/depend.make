# Empty dependencies file for ablation_prediction_error.
# This may be replaced when dependencies are built.
