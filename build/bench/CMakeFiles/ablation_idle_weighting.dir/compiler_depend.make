# Empty compiler generated dependencies file for ablation_idle_weighting.
# This may be replaced when dependencies are built.
