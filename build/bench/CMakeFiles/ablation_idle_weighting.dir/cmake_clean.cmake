file(REMOVE_RECURSE
  "CMakeFiles/ablation_idle_weighting.dir/ablation_idle_weighting.cpp.o"
  "CMakeFiles/ablation_idle_weighting.dir/ablation_idle_weighting.cpp.o.d"
  "ablation_idle_weighting"
  "ablation_idle_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
