# Empty dependencies file for ablation_fifo_objective.
# This may be replaced when dependencies are built.
