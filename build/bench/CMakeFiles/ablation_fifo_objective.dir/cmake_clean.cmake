file(REMOVE_RECURSE
  "CMakeFiles/ablation_fifo_objective.dir/ablation_fifo_objective.cpp.o"
  "CMakeFiles/ablation_fifo_objective.dir/ablation_fifo_objective.cpp.o.d"
  "ablation_fifo_objective"
  "ablation_fifo_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fifo_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
