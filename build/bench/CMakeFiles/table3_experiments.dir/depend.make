# Empty dependencies file for table3_experiments.
# This may be replaced when dependencies are built.
