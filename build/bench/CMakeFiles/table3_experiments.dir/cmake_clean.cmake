file(REMOVE_RECURSE
  "CMakeFiles/table3_experiments.dir/table3_experiments.cpp.o"
  "CMakeFiles/table3_experiments.dir/table3_experiments.cpp.o.d"
  "table3_experiments"
  "table3_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
