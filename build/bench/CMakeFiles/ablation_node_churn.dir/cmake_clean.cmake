file(REMOVE_RECURSE
  "CMakeFiles/ablation_node_churn.dir/ablation_node_churn.cpp.o"
  "CMakeFiles/ablation_node_churn.dir/ablation_node_churn.cpp.o.d"
  "ablation_node_churn"
  "ablation_node_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
