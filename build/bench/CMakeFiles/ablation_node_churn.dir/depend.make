# Empty dependencies file for ablation_node_churn.
# This may be replaced when dependencies are built.
