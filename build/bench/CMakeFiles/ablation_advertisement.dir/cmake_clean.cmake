file(REMOVE_RECURSE
  "CMakeFiles/ablation_advertisement.dir/ablation_advertisement.cpp.o"
  "CMakeFiles/ablation_advertisement.dir/ablation_advertisement.cpp.o.d"
  "ablation_advertisement"
  "ablation_advertisement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_advertisement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
