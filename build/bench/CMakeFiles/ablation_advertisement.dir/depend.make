# Empty dependencies file for ablation_advertisement.
# This may be replaced when dependencies are built.
