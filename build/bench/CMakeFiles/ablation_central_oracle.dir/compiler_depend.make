# Empty compiler generated dependencies file for ablation_central_oracle.
# This may be replaced when dependencies are built.
