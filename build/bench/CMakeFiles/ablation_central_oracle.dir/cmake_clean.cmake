file(REMOVE_RECURSE
  "CMakeFiles/ablation_central_oracle.dir/ablation_central_oracle.cpp.o"
  "CMakeFiles/ablation_central_oracle.dir/ablation_central_oracle.cpp.o.d"
  "ablation_central_oracle"
  "ablation_central_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_central_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
