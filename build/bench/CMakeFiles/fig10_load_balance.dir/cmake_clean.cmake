file(REMOVE_RECURSE
  "CMakeFiles/fig10_load_balance.dir/fig10_load_balance.cpp.o"
  "CMakeFiles/fig10_load_balance.dir/fig10_load_balance.cpp.o.d"
  "fig10_load_balance"
  "fig10_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
