# Empty dependencies file for fig10_load_balance.
# This may be replaced when dependencies are built.
