file(REMOVE_RECURSE
  "CMakeFiles/timeline_utilisation.dir/timeline_utilisation.cpp.o"
  "CMakeFiles/timeline_utilisation.dir/timeline_utilisation.cpp.o.d"
  "timeline_utilisation"
  "timeline_utilisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_utilisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
