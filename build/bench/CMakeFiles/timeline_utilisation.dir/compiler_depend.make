# Empty compiler generated dependencies file for timeline_utilisation.
# This may be replaced when dependencies are built.
