# Empty dependencies file for fig8_advance_time.
# This may be replaced when dependencies are built.
