file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/availability_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/availability_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/cost_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/cost_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/fifo_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/fifo_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/ga_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/ga_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/local_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/local_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/queue_stats_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/queue_stats_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/resource_monitor_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/resource_monitor_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/schedule_builder_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/schedule_builder_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/solution_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/solution_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
