
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/case_study_test.cpp" "tests/CMakeFiles/core_tests.dir/core/case_study_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/case_study_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/core_tests.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/system_invariants_test.cpp" "tests/CMakeFiles/core_tests.dir/core/system_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_invariants_test.cpp.o.d"
  "/root/repo/tests/core/workload_test.cpp" "tests/CMakeFiles/core_tests.dir/core/workload_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/gridlb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gridlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/gridlb_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gridlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridlb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/gridlb_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gridlb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
