# Empty dependencies file for pace_tests.
# This may be replaced when dependencies are built.
