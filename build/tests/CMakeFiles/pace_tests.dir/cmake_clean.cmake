file(REMOVE_RECURSE
  "CMakeFiles/pace_tests.dir/pace/application_model_test.cpp.o"
  "CMakeFiles/pace_tests.dir/pace/application_model_test.cpp.o.d"
  "CMakeFiles/pace_tests.dir/pace/evaluation_engine_test.cpp.o"
  "CMakeFiles/pace_tests.dir/pace/evaluation_engine_test.cpp.o.d"
  "CMakeFiles/pace_tests.dir/pace/hardware_test.cpp.o"
  "CMakeFiles/pace_tests.dir/pace/hardware_test.cpp.o.d"
  "CMakeFiles/pace_tests.dir/pace/model_parser_test.cpp.o"
  "CMakeFiles/pace_tests.dir/pace/model_parser_test.cpp.o.d"
  "CMakeFiles/pace_tests.dir/pace/paper_applications_test.cpp.o"
  "CMakeFiles/pace_tests.dir/pace/paper_applications_test.cpp.o.d"
  "pace_tests"
  "pace_tests.pdb"
  "pace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
