# Empty dependencies file for xml_tests.
# This may be replaced when dependencies are built.
