file(REMOVE_RECURSE
  "CMakeFiles/xml_tests.dir/xml/xml_property_test.cpp.o"
  "CMakeFiles/xml_tests.dir/xml/xml_property_test.cpp.o.d"
  "CMakeFiles/xml_tests.dir/xml/xml_test.cpp.o"
  "CMakeFiles/xml_tests.dir/xml/xml_test.cpp.o.d"
  "xml_tests"
  "xml_tests.pdb"
  "xml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
