file(REMOVE_RECURSE
  "CMakeFiles/agents_tests.dir/agents/act_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/act_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/agent_system_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/agent_system_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/agent_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/agent_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/golden_documents_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/golden_documents_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/request_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/request_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/result_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/result_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/service_info_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/service_info_test.cpp.o.d"
  "CMakeFiles/agents_tests.dir/agents/transitive_test.cpp.o"
  "CMakeFiles/agents_tests.dir/agents/transitive_test.cpp.o.d"
  "agents_tests"
  "agents_tests.pdb"
  "agents_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agents_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
