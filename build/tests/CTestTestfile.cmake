# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/xml_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/pace_tests[1]_include.cmake")
include("/root/repo/build/tests/sched_tests[1]_include.cmake")
include("/root/repo/build/tests/agents_tests[1]_include.cmake")
include("/root/repo/build/tests/metrics_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/report_tests[1]_include.cmake")
