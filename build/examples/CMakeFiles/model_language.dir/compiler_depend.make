# Empty compiler generated dependencies file for model_language.
# This may be replaced when dependencies are built.
