file(REMOVE_RECURSE
  "CMakeFiles/model_language.dir/model_language.cpp.o"
  "CMakeFiles/model_language.dir/model_language.cpp.o.d"
  "model_language"
  "model_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
