# Empty dependencies file for grid_campaign.
# This may be replaced when dependencies are built.
