# Empty compiler generated dependencies file for deadline_study.
# This may be replaced when dependencies are built.
