file(REMOVE_RECURSE
  "CMakeFiles/deadline_study.dir/deadline_study.cpp.o"
  "CMakeFiles/deadline_study.dir/deadline_study.cpp.o.d"
  "deadline_study"
  "deadline_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
