# Empty dependencies file for gridlb.
# This may be replaced when dependencies are built.
