file(REMOVE_RECURSE
  "CMakeFiles/gridlb.dir/gridlb_cli.cpp.o"
  "CMakeFiles/gridlb.dir/gridlb_cli.cpp.o.d"
  "gridlb"
  "gridlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
