file(REMOVE_RECURSE
  "libgridlb_agents.a"
)
