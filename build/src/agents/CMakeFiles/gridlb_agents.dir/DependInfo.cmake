
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/act.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/act.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/act.cpp.o.d"
  "/root/repo/src/agents/agent.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/agent.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/agent.cpp.o.d"
  "/root/repo/src/agents/agent_system.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/agent_system.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/agent_system.cpp.o.d"
  "/root/repo/src/agents/portal.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/portal.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/portal.cpp.o.d"
  "/root/repo/src/agents/request.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/request.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/request.cpp.o.d"
  "/root/repo/src/agents/result.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/result.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/result.cpp.o.d"
  "/root/repo/src/agents/service_info.cpp" "src/agents/CMakeFiles/gridlb_agents.dir/service_info.cpp.o" "gcc" "src/agents/CMakeFiles/gridlb_agents.dir/service_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gridlb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/gridlb_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridlb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gridlb_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
