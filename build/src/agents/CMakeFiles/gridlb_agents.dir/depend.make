# Empty dependencies file for gridlb_agents.
# This may be replaced when dependencies are built.
