file(REMOVE_RECURSE
  "CMakeFiles/gridlb_agents.dir/act.cpp.o"
  "CMakeFiles/gridlb_agents.dir/act.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/agent.cpp.o"
  "CMakeFiles/gridlb_agents.dir/agent.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/agent_system.cpp.o"
  "CMakeFiles/gridlb_agents.dir/agent_system.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/portal.cpp.o"
  "CMakeFiles/gridlb_agents.dir/portal.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/request.cpp.o"
  "CMakeFiles/gridlb_agents.dir/request.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/result.cpp.o"
  "CMakeFiles/gridlb_agents.dir/result.cpp.o.d"
  "CMakeFiles/gridlb_agents.dir/service_info.cpp.o"
  "CMakeFiles/gridlb_agents.dir/service_info.cpp.o.d"
  "libgridlb_agents.a"
  "libgridlb_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
