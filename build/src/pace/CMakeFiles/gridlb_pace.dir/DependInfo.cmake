
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pace/application_model.cpp" "src/pace/CMakeFiles/gridlb_pace.dir/application_model.cpp.o" "gcc" "src/pace/CMakeFiles/gridlb_pace.dir/application_model.cpp.o.d"
  "/root/repo/src/pace/evaluation_engine.cpp" "src/pace/CMakeFiles/gridlb_pace.dir/evaluation_engine.cpp.o" "gcc" "src/pace/CMakeFiles/gridlb_pace.dir/evaluation_engine.cpp.o.d"
  "/root/repo/src/pace/hardware.cpp" "src/pace/CMakeFiles/gridlb_pace.dir/hardware.cpp.o" "gcc" "src/pace/CMakeFiles/gridlb_pace.dir/hardware.cpp.o.d"
  "/root/repo/src/pace/model_parser.cpp" "src/pace/CMakeFiles/gridlb_pace.dir/model_parser.cpp.o" "gcc" "src/pace/CMakeFiles/gridlb_pace.dir/model_parser.cpp.o.d"
  "/root/repo/src/pace/paper_applications.cpp" "src/pace/CMakeFiles/gridlb_pace.dir/paper_applications.cpp.o" "gcc" "src/pace/CMakeFiles/gridlb_pace.dir/paper_applications.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
