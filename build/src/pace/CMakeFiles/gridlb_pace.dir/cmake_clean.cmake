file(REMOVE_RECURSE
  "CMakeFiles/gridlb_pace.dir/application_model.cpp.o"
  "CMakeFiles/gridlb_pace.dir/application_model.cpp.o.d"
  "CMakeFiles/gridlb_pace.dir/evaluation_engine.cpp.o"
  "CMakeFiles/gridlb_pace.dir/evaluation_engine.cpp.o.d"
  "CMakeFiles/gridlb_pace.dir/hardware.cpp.o"
  "CMakeFiles/gridlb_pace.dir/hardware.cpp.o.d"
  "CMakeFiles/gridlb_pace.dir/model_parser.cpp.o"
  "CMakeFiles/gridlb_pace.dir/model_parser.cpp.o.d"
  "CMakeFiles/gridlb_pace.dir/paper_applications.cpp.o"
  "CMakeFiles/gridlb_pace.dir/paper_applications.cpp.o.d"
  "libgridlb_pace.a"
  "libgridlb_pace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_pace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
