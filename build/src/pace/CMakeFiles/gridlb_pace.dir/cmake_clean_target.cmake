file(REMOVE_RECURSE
  "libgridlb_pace.a"
)
