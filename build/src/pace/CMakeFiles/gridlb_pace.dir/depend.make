# Empty dependencies file for gridlb_pace.
# This may be replaced when dependencies are built.
