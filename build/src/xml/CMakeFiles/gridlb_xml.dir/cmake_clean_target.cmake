file(REMOVE_RECURSE
  "libgridlb_xml.a"
)
