file(REMOVE_RECURSE
  "CMakeFiles/gridlb_xml.dir/xml.cpp.o"
  "CMakeFiles/gridlb_xml.dir/xml.cpp.o.d"
  "libgridlb_xml.a"
  "libgridlb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
