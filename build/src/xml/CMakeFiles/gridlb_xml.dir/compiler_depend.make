# Empty compiler generated dependencies file for gridlb_xml.
# This may be replaced when dependencies are built.
