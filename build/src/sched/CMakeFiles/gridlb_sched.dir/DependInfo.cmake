
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cost.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/cost.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/cost.cpp.o.d"
  "/root/repo/src/sched/fifo_scheduler.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/fifo_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/fifo_scheduler.cpp.o.d"
  "/root/repo/src/sched/ga_scheduler.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/ga_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/ga_scheduler.cpp.o.d"
  "/root/repo/src/sched/local_scheduler.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/local_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/local_scheduler.cpp.o.d"
  "/root/repo/src/sched/resource_monitor.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/resource_monitor.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/resource_monitor.cpp.o.d"
  "/root/repo/src/sched/schedule_builder.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/schedule_builder.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/schedule_builder.cpp.o.d"
  "/root/repo/src/sched/solution.cpp" "src/sched/CMakeFiles/gridlb_sched.dir/solution.cpp.o" "gcc" "src/sched/CMakeFiles/gridlb_sched.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/gridlb_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
