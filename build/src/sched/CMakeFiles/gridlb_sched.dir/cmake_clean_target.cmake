file(REMOVE_RECURSE
  "libgridlb_sched.a"
)
