# Empty compiler generated dependencies file for gridlb_sched.
# This may be replaced when dependencies are built.
