file(REMOVE_RECURSE
  "CMakeFiles/gridlb_sched.dir/cost.cpp.o"
  "CMakeFiles/gridlb_sched.dir/cost.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/fifo_scheduler.cpp.o"
  "CMakeFiles/gridlb_sched.dir/fifo_scheduler.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/ga_scheduler.cpp.o"
  "CMakeFiles/gridlb_sched.dir/ga_scheduler.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/local_scheduler.cpp.o"
  "CMakeFiles/gridlb_sched.dir/local_scheduler.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/resource_monitor.cpp.o"
  "CMakeFiles/gridlb_sched.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/schedule_builder.cpp.o"
  "CMakeFiles/gridlb_sched.dir/schedule_builder.cpp.o.d"
  "CMakeFiles/gridlb_sched.dir/solution.cpp.o"
  "CMakeFiles/gridlb_sched.dir/solution.cpp.o.d"
  "libgridlb_sched.a"
  "libgridlb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
