# Empty compiler generated dependencies file for gridlb_core.
# This may be replaced when dependencies are built.
