file(REMOVE_RECURSE
  "CMakeFiles/gridlb_core.dir/case_study.cpp.o"
  "CMakeFiles/gridlb_core.dir/case_study.cpp.o.d"
  "CMakeFiles/gridlb_core.dir/experiment.cpp.o"
  "CMakeFiles/gridlb_core.dir/experiment.cpp.o.d"
  "CMakeFiles/gridlb_core.dir/workload.cpp.o"
  "CMakeFiles/gridlb_core.dir/workload.cpp.o.d"
  "libgridlb_core.a"
  "libgridlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
