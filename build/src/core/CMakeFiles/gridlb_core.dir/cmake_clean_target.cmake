file(REMOVE_RECURSE
  "libgridlb_core.a"
)
