# Empty dependencies file for gridlb_sim.
# This may be replaced when dependencies are built.
