file(REMOVE_RECURSE
  "CMakeFiles/gridlb_sim.dir/engine.cpp.o"
  "CMakeFiles/gridlb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gridlb_sim.dir/network.cpp.o"
  "CMakeFiles/gridlb_sim.dir/network.cpp.o.d"
  "libgridlb_sim.a"
  "libgridlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
