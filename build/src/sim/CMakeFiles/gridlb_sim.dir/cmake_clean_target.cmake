file(REMOVE_RECURSE
  "libgridlb_sim.a"
)
