file(REMOVE_RECURSE
  "libgridlb_common.a"
)
