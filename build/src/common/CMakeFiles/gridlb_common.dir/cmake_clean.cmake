file(REMOVE_RECURSE
  "CMakeFiles/gridlb_common.dir/flags.cpp.o"
  "CMakeFiles/gridlb_common.dir/flags.cpp.o.d"
  "CMakeFiles/gridlb_common.dir/log.cpp.o"
  "CMakeFiles/gridlb_common.dir/log.cpp.o.d"
  "CMakeFiles/gridlb_common.dir/rng.cpp.o"
  "CMakeFiles/gridlb_common.dir/rng.cpp.o.d"
  "libgridlb_common.a"
  "libgridlb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
