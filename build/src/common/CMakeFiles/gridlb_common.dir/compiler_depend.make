# Empty compiler generated dependencies file for gridlb_common.
# This may be replaced when dependencies are built.
