# Empty compiler generated dependencies file for gridlb_metrics.
# This may be replaced when dependencies are built.
