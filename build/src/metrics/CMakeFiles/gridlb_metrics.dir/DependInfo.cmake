
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/metrics.cpp" "src/metrics/CMakeFiles/gridlb_metrics.dir/metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/gridlb_metrics.dir/metrics.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/gridlb_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/gridlb_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridlb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/gridlb_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
