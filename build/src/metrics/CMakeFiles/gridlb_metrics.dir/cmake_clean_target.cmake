file(REMOVE_RECURSE
  "libgridlb_metrics.a"
)
