file(REMOVE_RECURSE
  "CMakeFiles/gridlb_metrics.dir/metrics.cpp.o"
  "CMakeFiles/gridlb_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/gridlb_metrics.dir/time_series.cpp.o"
  "CMakeFiles/gridlb_metrics.dir/time_series.cpp.o.d"
  "libgridlb_metrics.a"
  "libgridlb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
