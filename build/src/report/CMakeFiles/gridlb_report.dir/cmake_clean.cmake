file(REMOVE_RECURSE
  "CMakeFiles/gridlb_report.dir/csv.cpp.o"
  "CMakeFiles/gridlb_report.dir/csv.cpp.o.d"
  "CMakeFiles/gridlb_report.dir/gantt.cpp.o"
  "CMakeFiles/gridlb_report.dir/gantt.cpp.o.d"
  "libgridlb_report.a"
  "libgridlb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridlb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
