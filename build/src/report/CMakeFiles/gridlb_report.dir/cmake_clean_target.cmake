file(REMOVE_RECURSE
  "libgridlb_report.a"
)
