# Empty compiler generated dependencies file for gridlb_report.
# This may be replaced when dependencies are built.
