#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::core {
namespace {

struct WorkloadFixture : ::testing::Test {
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
};

TEST_F(WorkloadFixture, GeneratesRequestedCountAtFixedIntervals) {
  WorkloadConfig config;
  config.count = 600;
  config.interval = 1.0;
  config.start = 1.0;
  const auto workload = generate_workload(config, catalogue, 12);
  ASSERT_EQ(workload.size(), 600u);
  // "requests ... are sent at one second intervals"; the request phase
  // lasts ten minutes.
  EXPECT_DOUBLE_EQ(workload.front().at, 1.0);
  EXPECT_DOUBLE_EQ(workload.back().at, 600.0);
  for (std::size_t i = 1; i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(workload[i].at - workload[i - 1].at, 1.0);
  }
}

TEST_F(WorkloadFixture, SameSeedSameWorkload) {
  WorkloadConfig config;
  config.seed = 2003;
  const auto a = generate_workload(config, catalogue, 12);
  const auto b = generate_workload(config, catalogue, 12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].agent_index, b[i].agent_index);
    EXPECT_EQ(a[i].app_name, b[i].app_name);
    EXPECT_DOUBLE_EQ(a[i].deadline_offset, b[i].deadline_offset);
  }
}

TEST_F(WorkloadFixture, DifferentSeedsDiffer) {
  WorkloadConfig a_config;
  a_config.seed = 1;
  WorkloadConfig b_config;
  b_config.seed = 2;
  const auto a = generate_workload(a_config, catalogue, 12);
  const auto b = generate_workload(b_config, catalogue, 12);
  int differences = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].agent_index != b[i].agent_index ||
        a[i].app_name != b[i].app_name) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 100);
}

TEST_F(WorkloadFixture, AgentsAreInRangeAndAllUsed) {
  WorkloadConfig config;
  const auto workload = generate_workload(config, catalogue, 12);
  std::set<int> agents;
  for (const auto& spec : workload) {
    ASSERT_GE(spec.agent_index, 0);
    ASSERT_LT(spec.agent_index, 12);
    agents.insert(spec.agent_index);
  }
  EXPECT_EQ(agents.size(), 12u);
}

TEST_F(WorkloadFixture, AllApplicationsAppear) {
  WorkloadConfig config;
  const auto workload = generate_workload(config, catalogue, 12);
  std::set<std::string> apps;
  for (const auto& spec : workload) apps.insert(spec.app_name);
  EXPECT_EQ(apps.size(), 7u);
}

TEST_F(WorkloadFixture, DeadlinesRespectTable1Domains) {
  WorkloadConfig config;
  const auto workload = generate_workload(config, catalogue, 12);
  for (const auto& spec : workload) {
    const auto model = catalogue.find(spec.app_name);
    ASSERT_NE(model, nullptr);
    const auto domain = model->deadline_domain();
    EXPECT_GE(spec.deadline_offset, domain.lo) << spec.app_name;
    EXPECT_LE(spec.deadline_offset, domain.hi) << spec.app_name;
  }
}

TEST_F(WorkloadFixture, RoughlyUniformAgentSelection) {
  WorkloadConfig config;
  config.count = 6000;
  const auto workload = generate_workload(config, catalogue, 12);
  std::map<int, int> counts;
  for (const auto& spec : workload) ++counts[spec.agent_index];
  for (const auto& [agent, count] : counts) {
    EXPECT_NEAR(count, 500, 150) << "agent " << agent;
  }
}

TEST_F(WorkloadFixture, ValidatesArguments) {
  WorkloadConfig config;
  config.count = -1;
  EXPECT_THROW(generate_workload(config, catalogue, 12), AssertionError);
  config = WorkloadConfig{};
  config.interval = 0.0;
  EXPECT_THROW(generate_workload(config, catalogue, 12), AssertionError);
  config = WorkloadConfig{};
  config.deadline_scale = 0.0;
  EXPECT_THROW(generate_workload(config, catalogue, 12), AssertionError);
  config = WorkloadConfig{};
  EXPECT_THROW(generate_workload(config, catalogue, 0), AssertionError);
  const pace::ApplicationCatalogue empty;
  EXPECT_THROW(generate_workload(config, empty, 12), AssertionError);
}

TEST_F(WorkloadFixture, ZeroCountIsEmpty) {
  WorkloadConfig config;
  config.count = 0;
  EXPECT_TRUE(generate_workload(config, catalogue, 12).empty());
}

}  // namespace
}  // namespace gridlb::core
