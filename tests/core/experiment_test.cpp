// Integration tests over the full experiment harness.  These run scaled-
// down versions of the case study (fewer requests) so the suite stays
// fast; the full 600-request runs live in bench/table3_experiments.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig scaled(ExperimentConfig config, int requests) {
  config.workload.count = requests;
  return config;
}

TEST(ExperimentPresets, MatchTable2) {
  const auto e1 = experiment1();
  EXPECT_EQ(e1.system.policy, sched::SchedulerPolicy::kFifo);
  EXPECT_FALSE(e1.system.discovery_enabled);
  const auto e2 = experiment2();
  EXPECT_EQ(e2.system.policy, sched::SchedulerPolicy::kGa);
  EXPECT_FALSE(e2.system.discovery_enabled);
  const auto e3 = experiment3();
  EXPECT_EQ(e3.system.policy, sched::SchedulerPolicy::kGa);
  EXPECT_TRUE(e3.system.discovery_enabled);
  for (const auto& config : {e1, e2, e3}) {
    EXPECT_EQ(config.system.resources.size(), 12u);
    EXPECT_EQ(config.workload.count, 600);
    EXPECT_DOUBLE_EQ(config.system.pull_period, 10.0);
  }
}

TEST(RunExperiment, CompletesEveryTask) {
  const auto result = run_experiment(scaled(experiment3(), 60));
  EXPECT_EQ(result.requests_submitted, 60u);
  EXPECT_EQ(result.tasks_completed, 60u);
  EXPECT_EQ(result.tasks_dropped, 0u);
  EXPECT_EQ(result.report.total.tasks, 60);
  EXPECT_GT(result.finished_at, 0.0);
  EXPECT_GT(result.sim_events, 0u);
}

TEST(RunExperiment, Deterministic) {
  const auto a = run_experiment(scaled(experiment3(), 40));
  const auto b = run_experiment(scaled(experiment3(), 40));
  EXPECT_DOUBLE_EQ(a.report.total.advance_time, b.report.total.advance_time);
  EXPECT_DOUBLE_EQ(a.report.total.utilisation, b.report.total.utilisation);
  EXPECT_DOUBLE_EQ(a.report.total.balance, b.report.total.balance);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(RunExperiment, FifoUsesSubsetSearchGaUsesDecodes) {
  const auto fifo = run_experiment(scaled(experiment1(), 24));
  EXPECT_GT(fifo.fifo_subsets, 0u);
  EXPECT_EQ(fifo.ga_decodes, 0u);
  // 2^16 − 1 subsets per placed task.
  EXPECT_EQ(fifo.fifo_subsets, 24u * 65535u);
  const auto ga = run_experiment(scaled(experiment2(), 24));
  EXPECT_GT(ga.ga_decodes, 0u);
  EXPECT_EQ(ga.fifo_subsets, 0u);
}

TEST(RunExperiment, AgentsGenerateDiscoveryTraffic) {
  const auto without = run_experiment(scaled(experiment2(), 30));
  const auto with = run_experiment(scaled(experiment3(), 30));
  EXPECT_GT(with.network_messages, without.network_messages);
  EXPECT_GE(with.mean_hops, 0.0);
  EXPECT_DOUBLE_EQ(without.mean_hops, 0.0);
}

TEST(RunExperiment, EvaluationCacheIsEffective) {
  const auto result = run_experiment(scaled(experiment3(), 30));
  // The GA hammers the same (app, hardware, nproc) keys; the cache must
  // absorb nearly everything ("many of the evaluations requested by the GA
  // are likely to be exactly the same as those required by previous
  // generations").
  EXPECT_GT(result.cache.hit_rate(), 0.95);
}

TEST(RunExperiment, AgentStatsCoverAllRequests) {
  const auto result = run_experiment(scaled(experiment3(), 50));
  std::uint64_t dispatched = 0;
  for (const auto& stats : result.agent_stats) {
    dispatched += stats.dispatched_local;
  }
  EXPECT_EQ(dispatched, 50u);
}

TEST(RunExperiment, StrictModeDropsAreAccounted) {
  ExperimentConfig config = scaled(experiment3(), 40);
  config.system.strict_failure = true;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.tasks_completed + result.tasks_dropped, 40u);
}

TEST(RunExperiment, HorizonLimitAborts) {
  ExperimentConfig config = scaled(experiment1(), 40);
  config.horizon_limit = 3.0;  // impossible: the run needs far longer
  EXPECT_THROW(run_experiment(config), AssertionError);
}

TEST(RunExperiment, RejectsEmptyResources) {
  ExperimentConfig config;
  EXPECT_THROW(run_experiment(config), AssertionError);
}

TEST(FormatTable3, RendersAllRows) {
  std::vector<ExperimentResult> results;
  results.push_back(run_experiment(scaled(experiment1(), 12)));
  results.push_back(run_experiment(scaled(experiment3(), 12)));
  const std::string table = format_table3(results);
  EXPECT_NE(table.find("S1"), std::string::npos);
  EXPECT_NE(table.find("S12"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
  EXPECT_NE(table.find("experiment 2"), std::string::npos);
}

TEST(FormatTable3, RejectsEmptyAndMismatched) {
  EXPECT_THROW(format_table3({}), AssertionError);
}

// The headline qualitative reproduction, at reduced scale: the coupled
// system (experiment 3) must beat GA-only (experiment 2) on grid-level
// balance and utilisation, and GA-only must beat FIFO-only on local
// balance.
TEST(ShapeChecks, AgentsImproveGridBalance) {
  const auto e2 = run_experiment(scaled(experiment2(), 150));
  const auto e3 = run_experiment(scaled(experiment3(), 150));
  EXPECT_GT(e3.report.total.balance, e2.report.total.balance);
  EXPECT_GT(e3.report.total.utilisation, e2.report.total.utilisation);
  EXPECT_GT(e3.report.total.advance_time, e2.report.total.advance_time);
}

TEST(ShapeChecks, GaImprovesLocalBalanceOverFifo) {
  const auto e1 = run_experiment(scaled(experiment1(), 150));
  const auto e2 = run_experiment(scaled(experiment2(), 150));
  // "the load balancing of local grid resources [is] significantly
  // improved" — compare the mean per-resource balance level.
  const auto mean_local_balance = [](const ExperimentResult& result) {
    double sum = 0.0;
    for (const auto& row : result.report.resources) sum += row.balance;
    return sum / static_cast<double>(result.report.resources.size());
  };
  EXPECT_GT(mean_local_balance(e2), mean_local_balance(e1));
  EXPECT_GT(e2.report.total.advance_time, e1.report.total.advance_time);
}

}  // namespace
}  // namespace gridlb::core
