#include "core/case_study.hpp"

#include <gtest/gtest.h>

#include <map>

namespace gridlb::core {
namespace {

TEST(CaseStudy, TwelveResourcesSixteenNodesEach) {
  const auto specs = case_study_resources();
  ASSERT_EQ(specs.size(), 12u);
  for (const auto& spec : specs) EXPECT_EQ(spec.node_count, 16);
}

TEST(CaseStudy, NamesAreS1ToS12) {
  const auto specs = case_study_resources();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, "S" + std::to_string(i + 1));
  }
}

TEST(CaseStudy, HardwareMixMatchesFig7) {
  const auto specs = case_study_resources();
  std::map<pace::HardwareType, int> counts;
  for (const auto& spec : specs) ++counts[spec.hardware];
  EXPECT_EQ(counts[pace::HardwareType::kSgiOrigin2000], 2);
  EXPECT_EQ(counts[pace::HardwareType::kSunUltra10], 2);
  EXPECT_EQ(counts[pace::HardwareType::kSunUltra5], 3);
  EXPECT_EQ(counts[pace::HardwareType::kSunUltra1], 3);
  EXPECT_EQ(counts[pace::HardwareType::kSunSparcStation2], 2);
}

TEST(CaseStudy, S1IsTheOnlyHead) {
  const auto specs = case_study_resources();
  int heads = 0;
  for (const auto& spec : specs) {
    if (spec.parent < 0) ++heads;
  }
  EXPECT_EQ(heads, 1);
  EXPECT_LT(specs[0].parent, 0);
}

TEST(CaseStudy, ParentsPrecedeChildren) {
  const auto specs = case_study_resources();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_LT(specs[i].parent, static_cast<int>(i));
  }
}

TEST(CaseStudy, EveryAgentReachableFromHead) {
  const auto specs = case_study_resources();
  // Walking parents from any node must terminate at S1 (index 0).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    int cursor = static_cast<int>(i);
    int steps = 0;
    while (specs[static_cast<std::size_t>(cursor)].parent >= 0) {
      cursor = specs[static_cast<std::size_t>(cursor)].parent;
      ASSERT_LT(++steps, 12);
    }
    EXPECT_EQ(cursor, 0);
  }
}

TEST(CaseStudy, PowerfulMachinesNearTheHead) {
  const auto specs = case_study_resources();
  EXPECT_EQ(specs[0].hardware, pace::HardwareType::kSgiOrigin2000);
  EXPECT_EQ(specs[11].hardware, pace::HardwareType::kSunSparcStation2);
}

}  // namespace
}  // namespace gridlb::core
