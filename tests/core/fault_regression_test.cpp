// Fault-model regression pins.
//
// Two guarantees from DESIGN.md §10 are pinned here:
//   1. The zero-fault path is bit-for-bit identical to the pre-fault-model
//      implementation: with `FaultPlan` inactive and fault tolerance
//      disabled, experiments 1–3 and the central oracle reproduce the
//      exact values recorded before the fault subsystem existed (the
//      literals below).  Any change to these numbers means the fault
//      machinery leaked into the perfect-delivery path.
//   2. With faults enabled (message drop + agent churn), the grid degrades
//      gracefully: every submitted task still completes — via retries,
//      duplicate suppression and portal resubmission — and the fault
//      counters account for the recovery work.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig scaled(ExperimentConfig config, int requests) {
  config.workload.count = requests;
  return config;
}

struct Pin {
  double advance_time;
  double utilisation;
  double balance;
  double finished_at;
  std::uint64_t network_messages;
  std::uint64_t sim_events;
  std::uint64_t tasks_completed;
};

void expect_pinned(const ExperimentResult& result, const Pin& pin) {
  // EXPECT_EQ (not NEAR/DOUBLE_EQ): the contract is bit-for-bit.
  EXPECT_EQ(result.report.total.advance_time, pin.advance_time);
  EXPECT_EQ(result.report.total.utilisation, pin.utilisation);
  EXPECT_EQ(result.report.total.balance, pin.balance);
  EXPECT_EQ(result.finished_at, pin.finished_at);
  EXPECT_EQ(result.network_messages, pin.network_messages);
  EXPECT_EQ(result.sim_events, pin.sim_events);
  EXPECT_EQ(result.tasks_completed, pin.tasks_completed);
}

// Captured from the implementation immediately before the fault subsystem
// landed (40-request scaled runs of the Table 2 presets).
TEST(ZeroFaultRegression, Experiment1MatchesPreFaultModel) {
  expect_pinned(run_experiment(scaled(experiment1(), 40)),
                {31.930228150000012, 0.32170412613217014, 0.34760632607291164,
                 150.05000000000001, 80, 159, 40});
}

TEST(ZeroFaultRegression, Experiment2MatchesPreFaultModel) {
  expect_pinned(run_experiment(scaled(experiment2(), 40)),
                {34.085228150000013, 0.41933843471522581, 0.48157931187040892,
                 130.05000000000001, 80, 221, 40});
}

TEST(ZeroFaultRegression, Experiment3MatchesPreFaultModel) {
  expect_pinned(run_experiment(scaled(experiment3(), 40)),
                {42.436478149999992, 0.53103311520920016, 0.60909669468947114,
                 85.049999999999997, 492, 741, 40});
}

TEST(ZeroFaultRegression, CentralOracleMatchesPreFaultModel) {
  expect_pinned(run_central_experiment(scaled(experiment3(), 40)),
                {47.200228217807592, 0.53040994623655902, 0.40738605647678783,
                 63.0, 0, 146, 40});
}

TEST(FaultedRegression, LossAndChurnDegradeGracefully) {
  ExperimentConfig config = scaled(experiment3(), 60);
  config.system.fault.drop_prob = 0.05;
  config.system.fault.seed = 11;
  config.system.fault_tolerance.enabled = true;
  config.system.agent_churn.enabled = true;
  config.system.agent_churn.mtbf = 40.0;  // harsh: several crashes per run
  config.system.agent_churn.mttr = 5.0;
  config.system.agent_churn.horizon = 200.0;

  const ExperimentResult result = run_experiment(config);

  // Graceful degradation: the grid loses messages and whole agents, yet
  // every submitted task still completes exactly once.
  EXPECT_EQ(result.tasks_completed, 60u);
  EXPECT_GT(result.messages_dropped, 0u);
  EXPECT_GT(result.message_retries, 0u);
  EXPECT_GT(result.agent_crashes, 0u);
  EXPECT_GT(result.agent_restarts, 0u);
}

}  // namespace
}  // namespace gridlb::core
