// PlacementFamily dispatch (DESIGN.md §15): name parsing, the deprecated
// run_central_experiment shim, and the hashed family's contracts — zero
// discovery traffic, seed determinism, and shard-count invariance.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/assert.hpp"
#include "core/experiment.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig small_crush(int shards = 1) {
  ExperimentConfig config = experiment3();
  config.name = "crush";
  config.placement = PlacementFamily::kHashPlacement;
  config.workload.count = 40;
  config.system.sim_shards = shards;
  return config;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.report.total.advance_time, b.report.total.advance_time);
  EXPECT_EQ(a.report.total.utilisation, b.report.total.utilisation);
  EXPECT_EQ(a.report.total.balance, b.report.total.balance);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].task, b.completions[i].task);
    EXPECT_EQ(a.completions[i].resource, b.completions[i].resource);
    EXPECT_EQ(a.completions[i].start, b.completions[i].start);
    EXPECT_EQ(a.completions[i].end, b.completions[i].end);
  }
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.placement_decisions, b.placement_decisions);
}

TEST(PlacementFamily, NamesRoundTrip) {
  for (const auto family :
       {PlacementFamily::kAgentDiscovery, PlacementFamily::kCentralOracle,
        PlacementFamily::kHashPlacement}) {
    EXPECT_EQ(placement_family_from_name(placement_family_name(family)),
              family);
  }
}

TEST(PlacementFamily, DeprecatedAliasesParse) {
  EXPECT_EQ(placement_family_from_name("discovery"),
            PlacementFamily::kAgentDiscovery);
  EXPECT_EQ(placement_family_from_name("central-oracle"),
            PlacementFamily::kCentralOracle);
  EXPECT_EQ(placement_family_from_name("oracle"),
            PlacementFamily::kCentralOracle);
  EXPECT_EQ(placement_family_from_name("hash"),
            PlacementFamily::kHashPlacement);
}

TEST(PlacementFamily, UnknownNameFailsWithValidValues) {
  try {
    (void)placement_family_from_name("dht");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& error) {
    // Actionable: the message must name the input and the valid values.
    EXPECT_NE(std::string(error.what()).find("dht"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("crush"), std::string::npos);
  }
}

TEST(PlacementFamily, CentralShimMatchesUnifiedDispatch) {
  ExperimentConfig config = experiment3();
  config.name = "central";
  config.workload.count = 40;
  const ExperimentResult shimmed = run_central_experiment(config);
  config.placement = PlacementFamily::kCentralOracle;
  const ExperimentResult dispatched = run_experiment(config);
  expect_identical(dispatched, shimmed);
}

TEST(PlacementFamily, CrushUsesZeroDiscoveryMessages) {
  const ExperimentResult result = run_experiment(small_crush());
  EXPECT_EQ(result.tasks_completed, result.requests_submitted);
  EXPECT_EQ(result.placement_decisions, result.requests_submitted);
  EXPECT_EQ(result.mean_hops, 0.0);
  std::uint64_t discovery = 0;
  for (const auto& stats : result.agent_stats) {
    discovery += stats.pulls_sent + stats.advertisements_received +
                 stats.forwarded_match + stats.forwarded_up;
  }
  EXPECT_EQ(discovery, 0u);
}

TEST(PlacementFamily, AgentFamilyReportsZeroPlacements) {
  ExperimentConfig config = experiment3();
  config.workload.count = 40;
  EXPECT_EQ(run_experiment(config).placement_decisions, 0u);
}

TEST(PlacementFamily, CrushIsSeedDeterministic) {
  const ExperimentResult first = run_experiment(small_crush());
  const ExperimentResult second = run_experiment(small_crush());
  expect_identical(second, first);
  // A different map seed is a different (but complete) placement.
  ExperimentConfig reseeded = small_crush();
  reseeded.placement_seed = 0xfeed;
  const ExperimentResult other = run_experiment(reseeded);
  EXPECT_EQ(other.tasks_completed, other.requests_submitted);
  bool moved = false;
  ASSERT_EQ(other.completions.size(), first.completions.size());
  for (std::size_t i = 0; i < other.completions.size(); ++i) {
    if (other.completions[i].resource != first.completions[i].resource) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(PlacementFamily, CrushIsShardCountInvariant) {
  const ExperimentResult reference = run_experiment(small_crush(1));
  EXPECT_EQ(reference.tasks_completed, reference.requests_submitted);
  for (const int shards : {2, 4}) {
    const ExperimentResult sharded = run_experiment(small_crush(shards));
    EXPECT_EQ(sharded.sim_shards, static_cast<std::uint64_t>(shards));
    expect_identical(sharded, reference);
  }
}

TEST(PlacementFamily, CrushRidesFaultToleranceUnderLossAndChurn) {
  // Lossy network + agent crashes: the hashed submissions ride the
  // reliable link, so every task still completes — degraded, not broken.
  ExperimentConfig config = small_crush();
  config.system.fault.drop_prob = 0.05;
  config.system.fault.jitter_max = 0.2;
  config.system.fault.seed = 9;
  config.system.fault_tolerance.enabled = true;
  config.system.agent_churn.enabled = true;
  config.system.agent_churn.mtbf = 1500.0;
  config.system.agent_churn.mttr = 20.0;
  config.system.agent_churn.horizon = 300.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.tasks_completed, result.requests_submitted);
  EXPECT_EQ(result.placement_decisions, result.requests_submitted);
  const ExperimentResult repeat = run_experiment(config);
  expect_identical(repeat, result);
}

}  // namespace
}  // namespace gridlb::core
