// Shard-count invariance pins (DESIGN.md §13).
//
// The sharding contract is that `--sim-shards` is a pure performance knob:
// a sharded run produces the bit-for-bit identical ExperimentResult for
// any shard count.  This file pins that three ways:
//   1. The Table 2 presets at 2 and 4 shards reproduce the exact literals
//      recorded before the fault subsystem existed (the same numbers
//      tests/core/fault_regression_test.cpp pins for the classic engine).
//   2. A larger generated scenario — with faults, node churn and agent
//      churn all active — compares the full result field-by-field between
//      one shard and several.
//   3. A multi-shard hammer run doubles as the TSan workout for the
//      coordinator's barriers, outboxes and window merges (the sanitize CI
//      matrix runs every test under -fsanitize=thread).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig scaled(ExperimentConfig config, int requests, int shards) {
  config.workload.count = requests;
  config.system.sim_shards = shards;
  return config;
}

struct Pin {
  double advance_time;
  double utilisation;
  double balance;
  double finished_at;
  std::uint64_t network_messages;
  std::uint64_t sim_events;
  std::uint64_t tasks_completed;
};

void expect_pinned(const ExperimentResult& result, const Pin& pin) {
  // EXPECT_EQ (not NEAR): the contract is bit-for-bit, not approximate.
  EXPECT_EQ(result.report.total.advance_time, pin.advance_time);
  EXPECT_EQ(result.report.total.utilisation, pin.utilisation);
  EXPECT_EQ(result.report.total.balance, pin.balance);
  EXPECT_EQ(result.finished_at, pin.finished_at);
  EXPECT_EQ(result.network_messages, pin.network_messages);
  EXPECT_EQ(result.sim_events, pin.sim_events);
  EXPECT_EQ(result.tasks_completed, pin.tasks_completed);
}

// The same literals fault_regression_test.cpp pins for the classic
// single-queue engine — the sharded runs must land on them exactly.
constexpr Pin kExperiment1{31.930228150000012, 0.32170412613217014,
                           0.34760632607291164, 150.05000000000001,
                           80, 159, 40};
constexpr Pin kExperiment2{34.085228150000013, 0.41933843471522581,
                           0.48157931187040892, 130.05000000000001,
                           80, 221, 40};
constexpr Pin kExperiment3{42.436478149999992, 0.53103311520920016,
                           0.60909669468947114, 85.049999999999997,
                           492, 741, 40};

TEST(ShardInvariance, Experiment1MatchesClassicEngine) {
  for (const int shards : {2, 4}) {
    expect_pinned(run_experiment(scaled(experiment1(), 40, shards)),
                  kExperiment1);
  }
}

TEST(ShardInvariance, Experiment2MatchesClassicEngine) {
  for (const int shards : {2, 4}) {
    expect_pinned(run_experiment(scaled(experiment2(), 40, shards)),
                  kExperiment2);
  }
}

TEST(ShardInvariance, Experiment3MatchesClassicEngine) {
  for (const int shards : {2, 4}) {
    expect_pinned(run_experiment(scaled(experiment3(), 40, shards)),
                  kExperiment3);
  }
}

TEST(ShardInvariance, CentralOracleIgnoresShardCount) {
  // The central oracle has no partitionable structure; sim_shards must be
  // a no-op there, keeping its pre-fault-model pin.
  expect_pinned(run_central_experiment(scaled(experiment3(), 40, 4)),
                {47.200228217807592, 0.53040994623655902, 0.40738605647678783,
                 63.0, 0, 146, 40});
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.report.total.advance_time, b.report.total.advance_time);
  EXPECT_EQ(a.report.total.utilisation, b.report.total.utilisation);
  EXPECT_EQ(a.report.total.balance, b.report.total.balance);
  ASSERT_EQ(a.report.resources.size(), b.report.resources.size());
  for (std::size_t i = 0; i < a.report.resources.size(); ++i) {
    EXPECT_EQ(a.report.resources[i].advance_time,
              b.report.resources[i].advance_time);
    EXPECT_EQ(a.report.resources[i].utilisation,
              b.report.resources[i].utilisation);
    EXPECT_EQ(a.report.resources[i].balance, b.report.resources[i].balance);
  }
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].task, b.completions[i].task);
    EXPECT_EQ(a.completions[i].resource, b.completions[i].resource);
    EXPECT_EQ(a.completions[i].start, b.completions[i].start);
    EXPECT_EQ(a.completions[i].end, b.completions[i].end);
  }
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.message_retries, b.message_retries);
  EXPECT_EQ(a.sends_expired, b.sends_expired);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.agent_crashes, b.agent_crashes);
  EXPECT_EQ(a.agent_restarts, b.agent_restarts);
  EXPECT_EQ(a.tasks_resubmitted, b.tasks_resubmitted);
}

ExperimentConfig hammer_config(int shards) {
  // Everything at once on a generated 24-agent grid: message loss and
  // jitter, node churn, agent crash/restart cycles, fault tolerance.
  ScenarioSpec spec;
  spec.agent_count = 24;
  spec.requests_per_agent = 8;
  spec.arrival_interval = 0.0;  // auto per-agent rate
  ExperimentConfig config = scenario_experiment(spec);
  config.system.sim_shards = shards;
  config.system.fault.drop_prob = 0.04;
  config.system.fault.jitter_max = 0.3;
  config.system.fault.seed = 5;
  config.system.fault_tolerance.enabled = true;
  config.system.churn.enabled = true;
  config.system.churn.mtbf = 900.0;
  config.system.churn.mttr = 60.0;
  config.system.churn.horizon = 400.0;
  config.system.agent_churn.enabled = true;
  config.system.agent_churn.mtbf = 2500.0;
  config.system.agent_churn.mttr = 20.0;
  config.system.agent_churn.horizon = 400.0;
  return config;
}

TEST(ShardInvariance, FaultedScenarioFullResultEquality) {
  const ExperimentResult reference = run_experiment(hammer_config(1));
  EXPECT_EQ(reference.tasks_completed, reference.requests_submitted);
  for (const int shards : {2, 3}) {
    expect_identical(run_experiment(hammer_config(shards)), reference);
  }
}

// The TSan hammer: four shards running the full fault stack.  Correctness
// here is repeatability (two identical runs), and under the sanitize CI
// matrix every barrier, outbox handoff and window merge in the
// coordinator gets exercised with real thread interleavings.
TEST(ShardInvariance, HammerMultiShardRepeatable) {
  const ExperimentResult first = run_experiment(hammer_config(4));
  const ExperimentResult second = run_experiment(hammer_config(4));
  EXPECT_EQ(first.sim_shards, 4u);
  expect_identical(second, first);
}

}  // namespace
}  // namespace gridlb::core
