// Whole-system property tests: invariants that must hold for ANY seed and
// configuration of the full grid (portal → agents → schedulers → metrics).
#include <gtest/gtest.h>

#include <set>

#include "core/gridlb.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::core {
namespace {

struct Scenario {
  std::uint64_t seed;
  sched::SchedulerPolicy policy;
  bool agents;
  double prediction_error;
};

class SystemInvariants : public ::testing::TestWithParam<Scenario> {};

TEST_P(SystemInvariants, HoldAcrossTheWholeRun) {
  const Scenario& scenario = GetParam();

  sim::Engine engine;
  metrics::MetricsCollector collector;
  const auto catalogue = pace::paper_catalogue();

  agents::SystemConfig system_config;
  system_config.resources = case_study_resources();
  system_config.policy = scenario.policy;
  system_config.discovery_enabled = scenario.agents;
  system_config.prediction_error = scenario.prediction_error;
  system_config.seed = scenario.seed;
  agents::AgentSystem system(engine, catalogue, std::move(system_config),
                             &collector);
  system.start();
  agents::Portal portal(engine, system.network(), catalogue, &collector);

  WorkloadConfig workload_config;
  workload_config.count = 80;
  workload_config.seed = scenario.seed;
  const auto workload = generate_workload(workload_config, catalogue,
                                          static_cast<int>(system.size()));
  for (const auto& spec : workload) {
    engine.schedule_at(spec.at, [&, spec]() {
      portal.submit(system.agent(static_cast<std::size_t>(spec.agent_index)),
                    spec.app_name, engine.now() + spec.deadline_offset);
    });
  }
  while (collector.completed_tasks() < workload.size()) {
    ASSERT_TRUE(engine.step()) << "queue drained early";
    ASSERT_LT(engine.now(), 48.0 * 3600.0) << "run did not converge";
  }

  // 1. Every submitted task completed exactly once.
  std::set<TaskId> seen;
  for (const auto& record : collector.records()) {
    EXPECT_TRUE(seen.insert(record.task).second)
        << "task completed twice: " << record.task.str();
  }
  EXPECT_EQ(seen.size(), workload.size());

  // 2. Temporal sanity on every record.
  for (const auto& record : collector.records()) {
    EXPECT_GE(record.start, record.submitted - 1e-9);
    EXPECT_GT(record.end, record.start);
    EXPECT_NE(record.mask, 0u);
    EXPECT_LE(sched::node_count(record.mask), 16);
  }

  // 3. No node ever runs two tasks at once (per resource).
  for (std::size_t resource = 1; resource <= system.size(); ++resource) {
    for (int node = 0; node < 16; ++node) {
      std::vector<std::pair<SimTime, SimTime>> intervals;
      for (const auto& record : collector.records()) {
        if (record.resource != AgentId(resource)) continue;
        if (((record.mask >> node) & 1u) == 0) continue;
        intervals.emplace_back(record.start, record.end);
      }
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].first + 1e-9, intervals[i - 1].second)
            << "overlap on resource " << resource << " node " << node;
      }
    }
  }

  // 4. Utilisation bounded and the report internally consistent.
  const auto report = collector.report();
  for (const auto& row : report.resources) {
    EXPECT_GE(row.utilisation, 0.0);
    EXPECT_LE(row.utilisation, 1.0 + 1e-9);
    EXPECT_LE(row.balance, 1.0 + 1e-9);
    EXPECT_LE(row.deadlines_met, row.tasks);
  }
  EXPECT_EQ(report.total.tasks, static_cast<int>(workload.size()));

  // 5. Queue statistics agree with the records.
  std::uint64_t started = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const auto& stats = system.agent(i).scheduler().queue_stats();
    started += stats.started;
    EXPECT_GE(stats.max_wait, 0.0);
    EXPECT_GE(stats.mean_wait(), 0.0);
    EXPECT_LE(stats.mean_wait(), stats.max_wait + 1e-9);
  }
  EXPECT_EQ(started, workload.size());

  // 6. With prediction error disabled, committed executions match the
  // PACE predictions exactly.
  if (scenario.prediction_error == 0.0) {
    for (const auto& record : collector.records()) {
      const auto model = catalogue.find(record.app_name);
      const auto& scheduler =
          system.agent(record.resource.value() - 1).scheduler();
      const double predicted =
          model->reference_time(sched::node_count(record.mask)) *
          scheduler.config().resource.factor;
      EXPECT_NEAR(record.end - record.start, predicted, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SystemInvariants,
    ::testing::Values(
        Scenario{1, sched::SchedulerPolicy::kGa, true, 0.0},
        Scenario{2, sched::SchedulerPolicy::kGa, true, 0.0},
        Scenario{3, sched::SchedulerPolicy::kGa, false, 0.0},
        Scenario{4, sched::SchedulerPolicy::kFifo, false, 0.0},
        Scenario{5, sched::SchedulerPolicy::kFifo, true, 0.0},
        Scenario{6, sched::SchedulerPolicy::kGa, true, 0.3},
        Scenario{7, sched::SchedulerPolicy::kFifo, false, 0.5},
        Scenario{8, sched::SchedulerPolicy::kGa, true, 0.0},
        Scenario{9, sched::SchedulerPolicy::kGa, false, 0.2},
        Scenario{10, sched::SchedulerPolicy::kFifo, true, 0.0}));

}  // namespace
}  // namespace gridlb::core
