#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::core {
namespace {

/// Depth of each agent in the generated tree (root = 0).  Relies on the
/// parent-first ordering the generator guarantees.
std::vector<int> depths(const std::vector<agents::ResourceSpec>& resources) {
  std::vector<int> out(resources.size(), 0);
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const int parent = resources[i].parent;
    if (parent >= 0) out[i] = out[static_cast<std::size_t>(parent)] + 1;
  }
  return out;
}

TEST(ScenarioResources, FanoutTreeShape) {
  ScenarioSpec spec;
  spec.agent_count = 13;
  spec.shape = HierarchyShape::kFanout;
  spec.fanout = 3;
  const auto resources = scenario_resources(spec);
  ASSERT_EQ(resources.size(), 13u);
  // Exactly one head, and every parent precedes its children.
  EXPECT_EQ(resources[0].parent, -1);
  std::vector<int> children(resources.size(), 0);
  for (std::size_t i = 1; i < resources.size(); ++i) {
    ASSERT_GE(resources[i].parent, 0);
    ASSERT_LT(resources[i].parent, static_cast<int>(i));
    ++children[static_cast<std::size_t>(resources[i].parent)];
  }
  // Complete ternary tree of 13: the first four agents have 3 children.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(children[i], 3);
  for (std::size_t i = 4; i < resources.size(); ++i) {
    EXPECT_EQ(children[i], 0);
  }
  // Depth is logarithmic: 1 + 3 + 9 = 13 agents fit in depth 2.
  const auto depth = depths(resources);
  EXPECT_EQ(*std::max_element(depth.begin(), depth.end()), 2);
}

TEST(ScenarioResources, FanoutOneIsAChain) {
  ScenarioSpec spec;
  spec.agent_count = 5;
  spec.fanout = 1;
  const auto resources = scenario_resources(spec);
  for (std::size_t i = 1; i < resources.size(); ++i) {
    EXPECT_EQ(resources[i].parent, static_cast<int>(i) - 1);
  }
}

TEST(ScenarioResources, NamesAndNodeCountsFollowTheSpec) {
  ScenarioSpec spec;
  spec.agent_count = 4;
  spec.nodes_per_resource = 8;
  const auto resources = scenario_resources(spec);
  EXPECT_EQ(resources[0].name, "S1");
  EXPECT_EQ(resources[3].name, "S4");
  for (const auto& resource : resources) {
    EXPECT_EQ(resource.node_count, 8);
  }
}

TEST(ScenarioResources, HardwareMixCycles) {
  ScenarioSpec spec;
  spec.agent_count = 7;
  spec.hardware_mix = {pace::HardwareType::kSgiOrigin2000,
                       pace::HardwareType::kSunSparcStation2};
  const auto resources = scenario_resources(spec);
  for (std::size_t i = 0; i < resources.size(); ++i) {
    EXPECT_EQ(resources[i].hardware,
              i % 2 == 0 ? pace::HardwareType::kSgiOrigin2000
                         : pace::HardwareType::kSunSparcStation2);
  }
  // Default mix: all five case-study platforms, fastest first.
  ScenarioSpec defaults;
  defaults.agent_count = 5;
  const auto mixed = scenario_resources(defaults);
  std::set<pace::HardwareType> seen;
  for (const auto& resource : mixed) seen.insert(resource.hardware);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ScenarioResources, RandomTreeIsDeterministicBySeed) {
  ScenarioSpec spec;
  spec.agent_count = 64;
  spec.shape = HierarchyShape::kRandom;
  spec.tree_seed = 5;
  const auto a = scenario_resources(spec);
  const auto b = scenario_resources(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].parent, b[i].parent);
  }
  spec.tree_seed = 6;
  const auto c = scenario_resources(spec);
  int differences = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].parent != c[i].parent) ++differences;
  }
  EXPECT_GT(differences, 10);
}

TEST(ScenarioResources, RandomTreeIsConnectedAndTopological) {
  ScenarioSpec spec;
  spec.agent_count = 50;
  spec.shape = HierarchyShape::kRandom;
  spec.tree_seed = 17;
  const auto resources = scenario_resources(spec);
  EXPECT_EQ(resources[0].parent, -1);
  for (std::size_t i = 1; i < resources.size(); ++i) {
    EXPECT_GE(resources[i].parent, 0);
    EXPECT_LT(resources[i].parent, static_cast<int>(i));
  }
}

TEST(ScenarioResources, RandomTreeHonoursDepthCap) {
  ScenarioSpec spec;
  spec.agent_count = 100;
  spec.shape = HierarchyShape::kRandom;
  spec.max_depth = 2;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    spec.tree_seed = seed;
    const auto depth = depths(scenario_resources(spec));
    EXPECT_LE(*std::max_element(depth.begin(), depth.end()), 2)
        << "seed " << seed;
  }
  // A cap of 1 is a star: everything hangs off the head.
  spec.max_depth = 1;
  const auto resources = scenario_resources(spec);
  for (std::size_t i = 1; i < resources.size(); ++i) {
    EXPECT_EQ(resources[i].parent, 0);
  }
}

TEST(ScenarioWorkload, ScalesWithTheGrid) {
  ScenarioSpec spec;
  spec.agent_count = 96;
  spec.requests_per_agent = 25;
  spec.arrival_interval = 0.5;
  spec.deadline_scale = 0.8;
  spec.workload_seed = 77;
  const WorkloadConfig workload = scenario_workload(spec);
  EXPECT_EQ(workload.count, 96 * 25);
  EXPECT_DOUBLE_EQ(workload.interval, 0.5);
  EXPECT_DOUBLE_EQ(workload.deadline_scale, 0.8);
  EXPECT_EQ(workload.seed, 77u);
}

TEST(ScenarioWorkload, DeadlineScaleTightensDeadlines) {
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  ScenarioSpec spec;
  spec.agent_count = 12;
  const auto loose =
      generate_workload(scenario_workload(spec), catalogue, 12);
  spec.deadline_scale = 0.5;
  const auto tight =
      generate_workload(scenario_workload(spec), catalogue, 12);
  ASSERT_EQ(loose.size(), tight.size());
  for (std::size_t i = 0; i < loose.size(); ++i) {
    // Same draws (same seed), scaled deadlines only.
    EXPECT_EQ(loose[i].agent_index, tight[i].agent_index);
    EXPECT_EQ(loose[i].app_name, tight[i].app_name);
    EXPECT_DOUBLE_EQ(tight[i].deadline_offset,
                     loose[i].deadline_offset * 0.5);
  }
}

TEST(ScenarioExperiment, WiresGridAndWorkloadTogether) {
  ScenarioSpec spec;
  spec.agent_count = 24;
  spec.requests_per_agent = 10;
  const ExperimentConfig config = scenario_experiment(spec);
  EXPECT_EQ(config.system.resources.size(), 24u);
  EXPECT_EQ(config.workload.count, 240);
  // Configured like experiment 3: GA local scheduling + discovery.
  EXPECT_EQ(config.system.policy, sched::SchedulerPolicy::kGa);
  EXPECT_TRUE(config.system.discovery_enabled);
  EXPECT_NE(config.name.find("24 agents"), std::string::npos);
}

TEST(ScenarioExperiment, GeneratedGridRunsToCompletion) {
  ScenarioSpec spec;
  spec.agent_count = 27;
  spec.requests_per_agent = 3;
  const ExperimentResult result =
      run_experiment(scenario_experiment(spec));
  EXPECT_EQ(result.tasks_completed, 81u);
  EXPECT_EQ(result.tasks_dropped, 0u);
}

TEST(ScenarioSpec, ShapeNamesRoundTrip) {
  EXPECT_EQ(shape_from_name("fanout"), HierarchyShape::kFanout);
  EXPECT_EQ(shape_from_name("random"), HierarchyShape::kRandom);
  EXPECT_EQ(shape_name(HierarchyShape::kRandom), "random");
  EXPECT_THROW(shape_from_name("ring"), AssertionError);
}

TEST(ScenarioSpec, ValidatesItsFields) {
  const auto reject = [](auto mutate) {
    ScenarioSpec spec;
    mutate(spec);
    EXPECT_THROW(scenario_resources(spec), AssertionError);
  };
  reject([](ScenarioSpec& spec) { spec.agent_count = 0; });
  reject([](ScenarioSpec& spec) { spec.fanout = 0; });
  reject([](ScenarioSpec& spec) { spec.max_depth = -1; });
  reject([](ScenarioSpec& spec) { spec.nodes_per_resource = 0; });
  reject([](ScenarioSpec& spec) { spec.nodes_per_resource = 33; });
  reject([](ScenarioSpec& spec) { spec.requests_per_agent = -1; });
  reject([](ScenarioSpec& spec) { spec.arrival_interval = -1.0; });
  reject([](ScenarioSpec& spec) { spec.deadline_scale = 0.0; });
}

TEST(ScenarioSpec, ZeroArrivalIntervalMeansAutoPerAgentRate) {
  ScenarioSpec spec;
  spec.agent_count = 48;
  spec.arrival_interval = 0.0;
  // Auto holds the Fig. 7 per-agent rate: 12 s spacing at 12 agents.
  EXPECT_EQ(scenario_workload(spec).interval, 0.25);
  spec.arrival_interval = 2.0;  // explicit spacing passes through
  EXPECT_EQ(scenario_workload(spec).interval, 2.0);
}

}  // namespace
}  // namespace gridlb::core
