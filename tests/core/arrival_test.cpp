// Pluggable arrival processes and the open-loop harness (DESIGN.md §17).
//
// The timing processes must be deterministic per seed, must never perturb
// the per-request draws (entry agent, application, deadline), and the
// JSONL trace export must replay bit-for-bit.  The open-loop cutoff is a
// property of the global timeline, so its results — including strict-mode
// drops — must be identical at any shard count.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/workload.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::core {
namespace {

struct ArrivalFixture : ::testing::Test {
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  std::vector<RequestSpec> generate(ArrivalProcess process,
                                    std::uint64_t seed = 2003,
                                    int count = 400) {
    WorkloadConfig config;
    config.count = count;
    config.seed = seed;
    config.arrival = process;
    return generate_workload(config, catalogue, 12);
  }
};

TEST_F(ArrivalFixture, EveryProcessIsDeterministicPerSeed) {
  for (const auto process :
       {ArrivalProcess::kUniform, ArrivalProcess::kPoisson,
        ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    const auto a = generate(process);
    const auto b = generate(process);
    EXPECT_EQ(a, b) << arrival_process_name(process);
    // Only kPoisson consumes timing randomness — the square wave and the
    // sinusoid are deterministic functions of the request index — so only
    // there must a different seed move the submission times.
    if (process != ArrivalProcess::kPoisson) continue;
    const auto c = generate(process, 7);
    int moved = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].at != c[i].at) ++moved;
    }
    EXPECT_GT(moved, 100) << arrival_process_name(process);
  }
}

TEST_F(ArrivalFixture, TimingNeverPerturbsPerRequestDraws) {
  // Switching the arrival process changes submission times only: agent,
  // application and deadline sequences stay on the original stream.
  const auto reference = generate(ArrivalProcess::kUniform);
  for (const auto process : {ArrivalProcess::kPoisson, ArrivalProcess::kOnOff,
                             ArrivalProcess::kDiurnal}) {
    const auto workload = generate(process);
    ASSERT_EQ(workload.size(), reference.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
      EXPECT_EQ(workload[i].agent_index, reference[i].agent_index);
      EXPECT_EQ(workload[i].app_name, reference[i].app_name);
      EXPECT_EQ(workload[i].deadline_offset, reference[i].deadline_offset);
    }
  }
}

TEST_F(ArrivalFixture, ArrivalsAreNonDecreasingAndStartOnTime) {
  for (const auto process :
       {ArrivalProcess::kUniform, ArrivalProcess::kPoisson,
        ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    const auto workload = generate(process);
    EXPECT_GE(workload.front().at, 1.0) << arrival_process_name(process);
    for (std::size_t i = 1; i < workload.size(); ++i) {
      EXPECT_GE(workload[i].at, workload[i - 1].at)
          << arrival_process_name(process) << " index " << i;
    }
  }
}

TEST_F(ArrivalFixture, PoissonMeanInterarrivalMatchesInterval) {
  WorkloadConfig config;
  config.count = 4000;
  config.interval = 2.0;
  config.arrival = ArrivalProcess::kPoisson;
  const auto workload = generate_workload(config, catalogue, 12);
  double sum = 0.0;
  for (std::size_t i = 1; i < workload.size(); ++i) {
    sum += workload[i].at - workload[i - 1].at;
  }
  const double mean = sum / static_cast<double>(workload.size() - 1);
  // Standard error of the mean is interval/√n ≈ 0.032 s; ±0.2 s is > 6σ.
  EXPECT_NEAR(mean, 2.0, 0.2);
}

TEST_F(ArrivalFixture, OnOffKeepsSilentPhasesSilent) {
  WorkloadConfig config;
  config.count = 400;
  config.arrival = ArrivalProcess::kOnOff;
  config.burst_on = 30.0;
  config.burst_off = 90.0;
  const auto workload = generate_workload(config, catalogue, 12);
  for (const auto& spec : workload) {
    const double phase = std::fmod(spec.at - config.start, 120.0);
    EXPECT_LE(phase, 30.0 + 1e-9) << "arrival inside an OFF phase";
  }
}

TEST_F(ArrivalFixture, TraceRoundTripsBitForBit) {
  WorkloadConfig config;
  config.count = 300;
  config.arrival = ArrivalProcess::kPoisson;
  const auto original = generate_workload(config, catalogue, 12);

  // String round trip.
  const std::string jsonl = workload_to_jsonl(original);
  EXPECT_EQ(parse_workload_jsonl(jsonl), original);

  // File round trip through the kTrace generator.  deadline_scale must
  // NOT be re-applied to the already-final trace offsets.
  const std::string path = "arrival_test_trace.tmp";
  { std::ofstream(path) << jsonl; }
  WorkloadConfig replay;
  replay.arrival = ArrivalProcess::kTrace;
  replay.trace_path = path;
  replay.deadline_scale = 0.5;
  EXPECT_EQ(generate_workload(replay, catalogue, 12), original);
  std::remove(path.c_str());
}

TEST_F(ArrivalFixture, ParserRejectsMalformedAndOutOfOrderLines) {
  EXPECT_THROW(parse_workload_jsonl("{\"at\":1.0,\"agent\":0}"),
               AssertionError);
  const std::string out_of_order =
      "{\"at\":5.0,\"agent\":0,\"app\":\"cpi\",\"deadline_offset\":10}\n"
      "{\"at\":4.0,\"agent\":0,\"app\":\"cpi\",\"deadline_offset\":10}\n";
  EXPECT_THROW(parse_workload_jsonl(out_of_order), AssertionError);
}

TEST_F(ArrivalFixture, ValidationMessagesAreActionable) {
  WorkloadConfig config;
  config.interval = 0.0;
  try {
    validate_workload(config);
    FAIL() << "interval 0 must be rejected";
  } catch (const AssertionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--arrival-interval"), std::string::npos) << what;
    EXPECT_NE(what.find("uniform"), std::string::npos) << what;
  }
  config = WorkloadConfig{};
  config.arrival = ArrivalProcess::kTrace;
  try {
    validate_workload(config);
    FAIL() << "trace without a file must be rejected";
  } catch (const AssertionError& error) {
    EXPECT_NE(std::string(error.what()).find("--arrival-trace"),
              std::string::npos);
  }
  config = WorkloadConfig{};
  config.arrival = ArrivalProcess::kDiurnal;
  config.diurnal_amplitude = 1.0;
  EXPECT_THROW(validate_workload(config), AssertionError);
  EXPECT_THROW(arrival_process_from_name("bursty"), AssertionError);
}

// --- open-loop harness ------------------------------------------------

ExperimentConfig open_loop_config(int shards, bool strict) {
  ScenarioSpec spec;
  spec.agent_count = 12;
  spec.requests_per_agent = 30;
  spec.arrival_interval = 0.0;  // auto per-agent rate
  ExperimentConfig config = scenario_experiment(spec);
  config.workload.arrival = ArrivalProcess::kOnOff;
  config.duration = 180.0;
  config.system.sim_shards = shards;
  config.system.strict_failure = strict;
  return config;
}

void expect_same_run(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
  EXPECT_EQ(a.tasks_unfinished, b.tasks_unfinished);
  EXPECT_EQ(a.shed_rate, b.shed_rate);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.report.total.advance_time, b.report.total.advance_time);
  EXPECT_EQ(a.report.total.utilisation, b.report.total.utilisation);
  EXPECT_EQ(a.report.total.balance, b.report.total.balance);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].task, b.completions[i].task);
    EXPECT_EQ(a.completions[i].end, b.completions[i].end);
  }
}

TEST(OpenLoop, CutoffTruncatesTheWorkload) {
  const ExperimentResult result = run_experiment(open_loop_config(1, false));
  // The 360-request batch outlasts the 180 s window: some of the tail is
  // never submitted, and the standing backlog is accounted, not lost.
  EXPECT_LT(result.requests_submitted, 360u);
  EXPECT_GT(result.requests_submitted, 0u);
  EXPECT_EQ(result.tasks_unfinished, result.requests_submitted -
                                         result.tasks_completed -
                                         result.tasks_dropped);
  EXPECT_GE(result.shed_rate, 0.0);
  EXPECT_LE(result.shed_rate, 1.0);
  EXPECT_LE(result.finished_at, 180.0);
  // Percentiles come from real completions, so they are finite.
  EXPECT_TRUE(std::isfinite(result.latency_p50));
  EXPECT_TRUE(std::isfinite(result.latency_p99));
  EXPECT_GE(result.latency_p99, result.latency_p50);
}

TEST(OpenLoop, ShardCountInvariant) {
  const ExperimentResult reference = run_experiment(open_loop_config(1, false));
  for (const int shards : {2, 4}) {
    expect_same_run(run_experiment(open_loop_config(shards, false)),
                    reference);
  }
}

TEST(OpenLoop, StrictModeShardCountInvariant) {
  // Strict-failure drops are notified through milestone events with a
  // shard-independent delay, so strict runs no longer force sim_shards=1
  // and stay invariant too.
  const ExperimentResult reference = run_experiment(open_loop_config(1, true));
  for (const int shards : {2, 4}) {
    const ExperimentResult sharded =
        run_experiment(open_loop_config(shards, true));
    EXPECT_EQ(sharded.sim_shards, static_cast<std::uint64_t>(shards));
    expect_same_run(sharded, reference);
  }
}

TEST(OpenLoop, ZeroCompletionWindowHasNoNaN) {
  // A cutoff so early nothing completes: every statistic must still be
  // finite and the report printable.
  ScenarioSpec spec;
  spec.agent_count = 12;
  spec.requests_per_agent = 4;
  ExperimentConfig config = scenario_experiment(spec);
  config.duration = 1.5;  // first submission lands at t=1
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.tasks_completed, 0u);
  EXPECT_TRUE(std::isfinite(result.shed_rate));
  EXPECT_TRUE(std::isfinite(result.latency_p50));
  EXPECT_TRUE(std::isfinite(result.latency_p99));
  EXPECT_TRUE(std::isfinite(result.report.total.utilisation));
  EXPECT_TRUE(std::isfinite(result.report.total.balance));
  EXPECT_TRUE(std::isfinite(result.report.total.advance_time));
  const std::string text = metrics::format_report(result.report);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_NE(text.find("no completions"), std::string::npos) << text;
}

}  // namespace
}  // namespace gridlb::core
