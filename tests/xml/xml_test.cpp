#include "xml/xml.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gridlb::xml {
namespace {

TEST(XmlEscape, EscapesAllFiveEntities) {
  EXPECT_EQ(escape("a&b<c>d\"e'f"), "a&amp;b&lt;c&gt;d&quot;e&apos;f");
}

TEST(XmlEscape, LeavesPlainTextAlone) {
  EXPECT_EQ(escape("hello world 123"), "hello world 123");
}

TEST(XmlElement, AttributesUpsert) {
  Element e("x");
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  ASSERT_TRUE(e.attribute("k").has_value());
  EXPECT_EQ(*e.attribute("k"), "2");
  EXPECT_EQ(e.attributes().size(), 1u);
}

TEST(XmlElement, MissingAttributeIsNullopt) {
  Element e("x");
  EXPECT_FALSE(e.attribute("nope").has_value());
}

TEST(XmlElement, ChildLookup) {
  Element root("root");
  root.add_child_with_text("a", "1");
  root.add_child_with_text("b", "2");
  root.add_child_with_text("a", "3");
  ASSERT_NE(root.child("a"), nullptr);
  EXPECT_EQ(root.child("a")->text(), "1");
  EXPECT_EQ(root.children_named("a").size(), 2u);
  EXPECT_EQ(root.child_text("b"), "2");
  EXPECT_EQ(root.child_text("missing"), "");
}

TEST(XmlWrite, EmptyElementSelfCloses) {
  Element e("empty");
  EXPECT_EQ(write(e, -1), "<empty/>");
}

TEST(XmlWrite, TextOnlyElement) {
  Element e("name");
  e.set_text("sweep3d");
  EXPECT_EQ(write(e, -1), "<name>sweep3d</name>");
}

TEST(XmlWrite, AttributesAndChildren) {
  Element root("agentgrid");
  root.set_attribute("type", "service");
  root.add_child_with_text("port", "1000");
  EXPECT_EQ(write(root, -1),
            "<agentgrid type=\"service\"><port>1000</port></agentgrid>");
}

TEST(XmlWrite, EscapesTextAndAttributes) {
  Element root("r");
  root.set_attribute("a", "x<y");
  root.set_text("a&b");
  EXPECT_EQ(write(root, -1), "<r a=\"x&lt;y\">a&amp;b</r>");
}

TEST(XmlParse, SimpleDocument) {
  const auto doc = parse("<a><b>text</b></a>");
  EXPECT_EQ(doc->name(), "a");
  ASSERT_NE(doc->child("b"), nullptr);
  EXPECT_EQ(doc->child("b")->text(), "text");
}

TEST(XmlParse, SelfClosingTag) {
  const auto doc = parse("<a><b/><c/></a>");
  EXPECT_EQ(doc->children().size(), 2u);
}

TEST(XmlParse, Attributes) {
  const auto doc = parse("<a x=\"1\" y='two'/>");
  EXPECT_EQ(*doc->attribute("x"), "1");
  EXPECT_EQ(*doc->attribute("y"), "two");
}

TEST(XmlParse, DecodesEntities) {
  const auto doc = parse("<a t=\"&lt;&gt;\">&amp;&quot;&apos;</a>");
  EXPECT_EQ(*doc->attribute("t"), "<>");
  EXPECT_EQ(doc->text(), "&\"'");
}

TEST(XmlParse, AcceptsDeclarationAndWhitespace) {
  const auto doc = parse("  <?xml version=\"1.0\"?>\n  <a/>  ");
  EXPECT_EQ(doc->name(), "a");
}

TEST(XmlParse, SkipsComments) {
  const auto doc = parse("<a><!-- note --><b/></a>");
  EXPECT_EQ(doc->children().size(), 1u);
}

TEST(XmlParse, TrimsIndentationWhitespace) {
  const auto doc = parse("<a>\n  <b>x</b>\n</a>");
  EXPECT_EQ(doc->text(), "");
  EXPECT_EQ(doc->child("b")->text(), "x");
}

TEST(XmlParse, PreservesInteriorTextSpaces) {
  const auto doc = parse("<a>hello world</a>");
  EXPECT_EQ(doc->text(), "hello world");
}

TEST(XmlParse, RejectsMismatchedClosingTag) {
  EXPECT_THROW(parse("<a></b>"), ParseError);
}

TEST(XmlParse, RejectsUnterminatedElement) {
  EXPECT_THROW(parse("<a><b></b>"), ParseError);
}

TEST(XmlParse, RejectsTrailingContent) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(XmlParse, RejectsUnknownEntity) {
  EXPECT_THROW(parse("<a>&bogus;</a>"), ParseError);
}

TEST(XmlParse, RejectsUnterminatedAttribute) {
  EXPECT_THROW(parse("<a x=\"1/>"), ParseError);
}

TEST(XmlParse, ErrorCarriesOffset) {
  try {
    (void)parse("<a></b>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_GT(error.offset(), 0u);
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos);
  }
}

TEST(XmlRoundTrip, CompactAndPretty) {
  Element root("agentgrid");
  root.set_attribute("type", "request");
  Element& app = root.add_child("application");
  app.add_child_with_text("name", "sweep3d");
  Element& req = root.add_child("requirement");
  req.add_child_with_text("deadline", "17.5");

  for (const int indent : {-1, 0, 2, 4}) {
    const auto parsed = parse(write(root, indent));
    EXPECT_EQ(parsed->name(), "agentgrid");
    EXPECT_EQ(*parsed->attribute("type"), "request");
    EXPECT_EQ(parsed->child("application")->child_text("name"), "sweep3d");
    EXPECT_EQ(parsed->child("requirement")->child_text("deadline"), "17.5");
  }
}

TEST(XmlRoundTrip, DeepNesting) {
  Element root("l0");
  Element* cursor = &root;
  for (int i = 1; i < 20; ++i) {
    cursor = &cursor->add_child("l" + std::to_string(i));
  }
  cursor->set_text("bottom");
  const auto parsed = parse(write(root));
  const Element* walk = parsed.get();
  for (int i = 1; i < 20; ++i) {
    walk = walk->child("l" + std::to_string(i));
    ASSERT_NE(walk, nullptr);
  }
  EXPECT_EQ(walk->text(), "bottom");
}

TEST(XmlRoundTrip, SpecialCharactersSurvive) {
  Element root("r");
  root.set_text("<tag> & \"quoted\" 'apos'");
  root.set_attribute("a", "<&>\"'");
  const auto parsed = parse(write(root));
  EXPECT_EQ(parsed->text(), "<tag> & \"quoted\" 'apos'");
  EXPECT_EQ(*parsed->attribute("a"), "<&>\"'");
}

TEST(XmlAdoptChild, TransfersSubtree) {
  auto child = std::make_unique<Element>("c");
  child->set_text("t");
  Element root("r");
  root.adopt_child(std::move(child));
  EXPECT_EQ(root.child("c")->text(), "t");
}

TEST(XmlAdoptChild, RejectsNull) {
  Element root("r");
  EXPECT_THROW(root.adopt_child(nullptr), AssertionError);
}

}  // namespace
}  // namespace gridlb::xml
