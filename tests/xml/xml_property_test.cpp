// Property test: randomly generated element trees survive a write/parse
// round trip exactly (names, attributes, text, structure), across pretty
// and compact output modes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "xml/xml.hpp"

namespace gridlb::xml {
namespace {

std::string random_name(Rng& rng) {
  static const char* kNames[] = {"agentgrid", "application", "local",
                                 "freetime",  "env-1",       "a.b",
                                 "x_y",       "deadline"};
  return kNames[rng.next_below(std::size(kNames))];
}

std::string random_text(Rng& rng) {
  static const char* kTexts[] = {
      "sweep3d", "10.5", "a&b", "<tag>", "quote\"inside", "it's",
      "plain words here", "/dcs/junwei/model"};
  return kTexts[rng.next_below(std::size(kTexts))];
}

void grow(Element& element, Rng& rng, int depth) {
  // Attributes.
  const auto attribute_count = rng.next_below(3);
  for (std::uint64_t i = 0; i < attribute_count; ++i) {
    element.set_attribute("k" + std::to_string(i), random_text(rng));
  }
  // Either text content or children (mixed content order is not
  // preserved by design, so generate one or the other).
  if (depth >= 4 || rng.chance(0.4)) {
    if (rng.chance(0.7)) element.set_text(random_text(rng));
    return;
  }
  const auto child_count = 1 + rng.next_below(3);
  for (std::uint64_t i = 0; i < child_count; ++i) {
    grow(element.add_child(random_name(rng)), rng, depth + 1);
  }
}

void expect_equal(const Element& a, const Element& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.text(), b.text());
  ASSERT_EQ(a.attributes().size(), b.attributes().size());
  for (std::size_t i = 0; i < a.attributes().size(); ++i) {
    EXPECT_EQ(a.attributes()[i], b.attributes()[i]);
  }
  ASSERT_EQ(a.children().size(), b.children().size());
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    expect_equal(*a.children()[i], *b.children()[i]);
  }
}

class XmlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(XmlRoundTripProperty, RandomTreesSurvive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Element root(random_name(rng));
    grow(root, rng, 0);
    for (const int indent : {-1, 2}) {
      const auto parsed = parse(write(root, indent));
      expect_equal(root, *parsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace gridlb::xml
