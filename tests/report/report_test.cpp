#include <gtest/gtest.h>

#include "pace/paper_applications.hpp"
#include "report/csv.hpp"
#include "report/gantt.hpp"

namespace gridlb::report {
namespace {

sched::CompletionRecord record(std::uint64_t task, sched::NodeMask mask,
                               SimTime start, SimTime end,
                               SimTime deadline = 1e6) {
  sched::CompletionRecord r;
  r.task = TaskId(task);
  r.resource = AgentId(1);
  r.mask = mask;
  r.app_name = "fft";
  r.start = start;
  r.end = end;
  r.deadline = deadline;
  return r;
}

TEST(Gantt, RendersPlannedSchedule) {
  const auto catalogue = pace::paper_catalogue();
  std::vector<sched::Task> tasks(1);
  tasks[0].id = TaskId(1);
  tasks[0].app = catalogue.find("closure");
  tasks[0].deadline = 100.0;

  sched::DecodedSchedule schedule;
  schedule.placements = {{0.0, 8.0, 0b0011}};
  schedule.completion = 8.0;
  schedule.makespan = 8.0;

  GanttOptions options;
  options.columns = 8;
  const std::string chart =
      render_schedule(tasks, schedule, 4, 0.0, options);
  // Nodes 0 and 1 busy with 'A' for the whole window; nodes 2,3 idle.
  EXPECT_NE(chart.find("node  0 |AAAAAAAA|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("node  1 |AAAAAAAA|"), std::string::npos);
  EXPECT_NE(chart.find("node  2 |........|"), std::string::npos);
}

TEST(Gantt, EmptyScheduleSaysSo) {
  const std::vector<sched::Task> tasks;
  sched::DecodedSchedule schedule;
  const std::string chart = render_schedule(tasks, schedule, 4);
  EXPECT_NE(chart.find("empty"), std::string::npos);
}

TEST(Gantt, TraceLettersFollowRecordOrder) {
  GanttOptions options;
  options.columns = 10;
  const std::vector<sched::CompletionRecord> records = {
      record(1, 0b01, 0.0, 5.0),
      record(2, 0b10, 5.0, 10.0),
  };
  const std::string chart = render_trace(records, 2, 0.0, 10.0, options);
  EXPECT_NE(chart.find("node  0 |AAAAA.....|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("node  1 |.....BBBBB|"), std::string::npos);
}

TEST(Gantt, TraceDefaultsToRecordSpan) {
  const std::vector<sched::CompletionRecord> records = {
      record(1, 0b1, 10.0, 30.0)};
  const std::string chart = render_trace(records, 1);
  EXPECT_NE(chart.find("time 10 .. 30"), std::string::npos) << chart;
}

TEST(Gantt, GlyphsCycleAfterZ) {
  std::vector<sched::CompletionRecord> records;
  for (std::uint64_t i = 0; i < 27; ++i) {
    records.push_back(record(i, 0b1, static_cast<double>(i),
                             static_cast<double>(i) + 1.0));
  }
  const std::string chart = render_trace(records, 1);
  EXPECT_NE(chart.find('Z'), std::string::npos);
  // Record 26 cycles back to 'A'.
  EXPECT_NE(chart.find('A'), std::string::npos);
}

TEST(Csv, FieldQuoting) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, CompletionsHaveHeaderAndRows) {
  const std::vector<sched::CompletionRecord> records = {
      record(7, 0b11, 1.0, 3.0, 2.5)};
  const std::string csv = completions_csv(records);
  EXPECT_NE(csv.find("task,resource,app"), std::string::npos);
  EXPECT_NE(csv.find("7,1,fft,2,3,0,1,3,2.5,0"), std::string::npos) << csv;
}

TEST(Csv, ReportIncludesTotalRow) {
  metrics::MetricsCollector collector;
  collector.add_resource(AgentId(1), "S1", 2);
  collector.on_submission(0.0);
  collector.record(record(1, 0b01, 0.0, 10.0, 20.0));
  const std::string csv = report_csv(collector.report());
  EXPECT_NE(csv.find("resource,tasks"), std::string::npos);
  EXPECT_NE(csv.find("S1,1,1,"), std::string::npos);
  EXPECT_NE(csv.find("Total,1,1,"), std::string::npos);
}

TEST(Csv, ExperimentsLongFormat) {
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = 12;
  std::vector<core::ExperimentResult> results;
  results.push_back(core::run_experiment(config));
  const std::string csv = experiments_csv(results);
  EXPECT_NE(csv.find("experiment,resource,eps_s"), std::string::npos);
  EXPECT_NE(csv.find("S12"), std::string::npos);
  EXPECT_NE(csv.find("Total"), std::string::npos);
  // 12 resources + total = 13 data rows + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 14);
}

}  // namespace
}  // namespace gridlb::report
