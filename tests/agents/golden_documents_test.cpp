// Golden tests: the exact serialised shape of the agent protocol's
// documents.  These freeze the wire format — any change to the XML layout
// of Fig. 5 / Fig. 6 / result documents shows up here first.
#include <gtest/gtest.h>

#include "agents/request.hpp"
#include "agents/result.hpp"
#include "agents/service_info.hpp"

namespace gridlb::agents {
namespace {

TEST(GoldenDocuments, ServiceInfoFig5) {
  ServiceInfo info;
  info.agent_address = "gem.dcs.warwick.ac.uk";
  info.agent_port = 1000;
  info.local_address = "gem.dcs.warwick.ac.uk";
  info.local_port = 10000;
  info.hardware_type = "SunUltra10";
  info.nproc = 16;
  info.environments = {"mpi", "pvm", "test"};
  info.freetime = 100.5;

  const char* expected = R"(<agentgrid type="service">
  <agent>
    <address>gem.dcs.warwick.ac.uk</address>
    <port>1000</port>
  </agent>
  <local>
    <address>gem.dcs.warwick.ac.uk</address>
    <port>10000</port>
    <type>SunUltra10</type>
    <nproc>16</nproc>
    <environment>mpi</environment>
    <environment>pvm</environment>
    <environment>test</environment>
    <freetime>100.500000</freetime>
  </local>
</agentgrid>
)";
  EXPECT_EQ(to_xml(info), expected);
}

TEST(GoldenDocuments, RequestFig6) {
  Request request;
  request.task = TaskId(7);
  request.app_name = "sweep3d";
  request.binary_file = "/dcs/junwei/agentgrid/binary/sweep3d";
  request.input_file = "/dcs/junwei/agentgrid/binary/input.50";
  request.model_name = "/dcs/junwei/agentgrid/model/sweep3d";
  request.environment = "test";
  request.deadline = 437.25;
  request.email = "junwei@dcs.warwick.ac.uk";

  const char* expected = R"(<agentgrid type="request" taskid="7">
  <application>
    <name>sweep3d</name>
    <binary>
      <file>/dcs/junwei/agentgrid/binary/sweep3d</file>
      <inputfile>/dcs/junwei/agentgrid/binary/input.50</inputfile>
    </binary>
    <performance>
      <datatype>pacemodel</datatype>
      <modelname>/dcs/junwei/agentgrid/model/sweep3d</modelname>
    </performance>
  </application>
  <requirement>
    <environment>test</environment>
    <deadline>437.250000</deadline>
  </requirement>
  <email>junwei@dcs.warwick.ac.uk</email>
</agentgrid>
)";
  EXPECT_EQ(to_xml(request), expected);
}

TEST(GoldenDocuments, ExecutionResult) {
  ExecutionResult result;
  result.task = TaskId(7);
  result.app_name = "sweep3d";
  result.resource_name = "S3";
  result.start = 10.0;
  result.completion = 25.5;
  result.deadline = 30.0;
  result.email = "junwei@dcs.warwick.ac.uk";

  const char* expected = R"(<agentgrid type="result" taskid="7">
  <application>
    <name>sweep3d</name>
  </application>
  <execution>
    <resource>S3</resource>
    <start>10.000000</start>
    <completion>25.500000</completion>
    <deadline>30.000000</deadline>
  </execution>
  <email>junwei@dcs.warwick.ac.uk</email>
</agentgrid>
)";
  EXPECT_EQ(to_xml(result), expected);
}

}  // namespace
}  // namespace gridlb::agents
