// Transitive advertisement scope: relayed capability-table entries and
// routed discovery across a three-level hierarchy.
#include <gtest/gtest.h>

#include "agents/agent_system.hpp"
#include "agents/portal.hpp"
#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::agents {
namespace {

// A chain: S1 (SPARC2, head) -> S2 (SPARC2) -> S3 (SGI).  S3 is the only
// fast resource and is *not* a neighbour of S1.
struct TransitiveFixture : ::testing::Test {
  sim::Engine engine;
  metrics::MetricsCollector collector;
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  SystemConfig chain(AdvertisementScope scope) {
    SystemConfig config;
    config.resources = {
        {"S1", pace::HardwareType::kSunSparcStation2, 16, -1},
        {"S2", pace::HardwareType::kSunSparcStation2, 16, 0},
        {"S3", pace::HardwareType::kSgiOrigin2000, 16, 1},
    };
    config.scope = scope;
    return config;
  }

  std::unique_ptr<AgentSystem> make(AdvertisementScope scope) {
    auto system = std::make_unique<AgentSystem>(engine, catalogue,
                                                chain(scope), &collector);
    system->start();
    return system;
  }

  Request make_request(const char* app, SimTime deadline) {
    Request request;
    request.task = TaskId(++next_task);
    request.app_name = app;
    request.environment = "test";
    request.deadline = deadline;
    return request;
  }

  std::uint64_t next_task = 0;
  void drain() { engine.run_until(engine.now() + 7200.0); }
};

TEST_F(TransitiveFixture, OwnServiceScopeSeesOnlyNeighbours) {
  auto system = make(AdvertisementScope::kOwnService);
  // Two pull rounds so any relaying would have happened.
  engine.run_until(21.0);
  EXPECT_EQ(system->agent_named("S1").act().size(), 1u);  // S2 only
  EXPECT_EQ(system->agent_named("S2").act().size(), 2u);  // S1, S3
}

TEST_F(TransitiveFixture, TransitiveScopePropagatesAlongTheChain) {
  auto system = make(AdvertisementScope::kTransitive);
  engine.run_until(21.0);
  // S1 learns S3 through S2 (and vice versa).
  const CapabilityTable& act = system->agent_named("S1").act();
  EXPECT_EQ(act.size(), 2u);
  const auto* s3_entry = act.find(AgentId(3));
  ASSERT_NE(s3_entry, nullptr);
  EXPECT_EQ(s3_entry->via, AgentId(2));
  EXPECT_EQ(s3_entry->info.hardware_type, "SGIOrigin2000");
  const auto* s1_at_s3 = system->agent_named("S3").act().find(AgentId(1));
  ASSERT_NE(s1_at_s3, nullptr);
  EXPECT_EQ(s1_at_s3->via, AgentId(2));
}

TEST_F(TransitiveFixture, SplitHorizonSuppressesEcho) {
  auto system = make(AdvertisementScope::kTransitive);
  engine.run_until(61.0);
  // S2 must never hold an entry describing S2, and S1 never one for S1.
  EXPECT_EQ(system->agent_named("S2").act().find(AgentId(2)), nullptr);
  EXPECT_EQ(system->agent_named("S1").act().find(AgentId(1)), nullptr);
}

TEST_F(TransitiveFixture, DiscoveryRoutesToGrandchild) {
  auto system = make(AdvertisementScope::kTransitive);
  engine.run_until(21.0);
  // sweep3d within 12 s: impossible on SPARC2 (min 20 s), fine on the SGI
  // grandchild (min 4 s).  With transitive entries S1 routes via S2.
  system->agent_named("S1").receive_request(
      make_request("sweep3d", engine.now() + 12.0));
  drain();
  EXPECT_EQ(system->agent_named("S3").stats().dispatched_local, 1u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
  EXPECT_EQ(system->agent_named("S1").stats().forwarded_match, 1u);
  // No fallback was needed anywhere.
  for (std::size_t i = 0; i < system->size(); ++i) {
    EXPECT_EQ(system->agent(i).stats().fallback_dispatches, 0u);
  }
}

TEST_F(TransitiveFixture, OwnServiceScopeCannotReachTheGrandchild) {
  // The limitation transitive relaying removes: the head only knows its
  // direct neighbour S2 (also too slow), so the same request dead-ends
  // into best-effort fallback on a SPARCstation and misses its deadline.
  auto system = make(AdvertisementScope::kOwnService);
  engine.run_until(21.0);
  system->agent_named("S1").receive_request(
      make_request("sweep3d", engine.now() + 12.0));
  drain();
  EXPECT_EQ(system->agent_named("S3").stats().dispatched_local, 0u);
  std::uint64_t fallbacks = 0;
  for (std::size_t i = 0; i < system->size(); ++i) {
    fallbacks += system->agent(i).stats().fallback_dispatches;
  }
  EXPECT_EQ(fallbacks, 1u);
  ASSERT_EQ(collector.completed_tasks(), 1u);
  const auto& record = collector.records()[0];
  EXPECT_GT(record.end, record.deadline);  // executed, but late
}

TEST_F(TransitiveFixture, HopBudgetForcesTermination) {
  SystemConfig config = chain(AdvertisementScope::kTransitive);
  // A hop budget of zero forces every non-local-dispatch into fallback.
  config.resources[0].name = "S1";
  auto system = std::make_unique<AgentSystem>(engine, catalogue,
                                              std::move(config), &collector);
  system->start();
  engine.run_until(21.0);
  Request request = make_request("sweep3d", engine.now() + 12.0);
  // Simulate a request that has already bounced a lot.
  for (std::uint64_t i = 100; i < 140; ++i) {
    request.visited.push_back(AgentId(i));
  }
  system->agent_named("S1").receive_request(std::move(request));
  drain();
  EXPECT_EQ(system->agent_named("S1").stats().fallback_dispatches, 1u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(TransitiveFixture, CampaignCompletesUnderTransitiveScope) {
  auto system = make(AdvertisementScope::kTransitive);
  Portal portal(engine, system->network(), catalogue, &collector);
  Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    engine.schedule_at(static_cast<double>(i) + 1.0, [&, i]() {
      const auto& app = catalogue.all()[static_cast<std::size_t>(i) % 7];
      const auto domain = app->deadline_domain();
      portal.submit(system->agent(static_cast<std::size_t>(i) % 3),
                    app->name(),
                    engine.now() + rng.uniform(domain.lo, domain.hi));
    });
  }
  drain();
  EXPECT_EQ(collector.completed_tasks(), 40u);
  EXPECT_EQ(portal.results_received(), 40u);
}

}  // namespace
}  // namespace gridlb::agents
