// Threshold-triggered queue migration (DESIGN.md §17).
//
// Migration re-homes *queued* tasks only: a task the local scheduler has
// already started must never move, every migrated task must complete
// exactly once, and the machinery must not lose work when the network
// drops messages and agents crash mid-flight.  Everything here runs
// closed-loop, so "nothing lost" is simply completed == submitted.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace gridlb::agents {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::ScenarioSpec;

/// A bursty, overloaded grid small enough to drain in test time: ON/OFF
/// arrivals at 2× the Fig. 7 offered rate pile queues past the overload
/// watermark while OFF phases leave neighbours idle enough to accept.
ExperimentConfig overloaded_config(bool migrate) {
  ScenarioSpec spec;
  spec.agent_count = 24;
  spec.requests_per_agent = 10;
  spec.arrival_interval = 0.5;
  ExperimentConfig config = core::scenario_experiment(spec);
  config.workload.arrival = core::ArrivalProcess::kOnOff;
  config.system.migration.enabled = migrate;
  return config;
}

void expect_each_task_completes_once(const ExperimentResult& result) {
  ASSERT_EQ(result.tasks_completed, result.requests_submitted);
  std::set<TaskId> seen;
  for (const auto& record : result.completions) {
    EXPECT_TRUE(seen.insert(record.task).second)
        << "task " << record.task.value() << " completed twice";
  }
  EXPECT_EQ(seen.size(), result.requests_submitted);
}

TEST(Migration, TriggersUnderOverloadAndLosesNothing) {
  const ExperimentResult result = run_experiment(overloaded_config(true));
  EXPECT_GT(result.migrations, 0u);
  expect_each_task_completes_once(result);
  // The result aggregate is exactly the sum of the per-agent counters.
  std::uint64_t per_agent = 0;
  for (const auto& stats : result.agent_stats) per_agent += stats.migrations;
  EXPECT_EQ(result.migrations, per_agent);
}

TEST(Migration, OffByDefaultAndCountersStayZero) {
  const ExperimentResult result = run_experiment(overloaded_config(false));
  EXPECT_EQ(result.migrations, 0u);
  expect_each_task_completes_once(result);
  ExperimentConfig preset = core::experiment3();
  EXPECT_FALSE(preset.system.migration.enabled);
}

TEST(Migration, DeterministicAndShardInvariant) {
  ExperimentConfig config = overloaded_config(true);
  const ExperimentResult reference = run_experiment(config);
  EXPECT_GT(reference.migrations, 0u);
  for (const int shards : {2, 3}) {
    config.system.sim_shards = shards;
    const ExperimentResult sharded = run_experiment(config);
    EXPECT_EQ(sharded.migrations, reference.migrations);
    EXPECT_EQ(sharded.tasks_completed, reference.tasks_completed);
    EXPECT_EQ(sharded.network_messages, reference.network_messages);
    EXPECT_EQ(sharded.report.total.balance, reference.report.total.balance);
    EXPECT_EQ(sharded.finished_at, reference.finished_at);
    ASSERT_EQ(sharded.completions.size(), reference.completions.size());
    for (std::size_t i = 0; i < sharded.completions.size(); ++i) {
      EXPECT_EQ(sharded.completions[i].task, reference.completions[i].task);
      EXPECT_EQ(sharded.completions[i].end, reference.completions[i].end);
    }
  }
}

TEST(Migration, SurvivesMessageLossAndAgentChurn) {
  // Migration documents ride the ReliableLink, and a crash clears the
  // crashed agent's queue copies while the portal re-discovers stranded
  // tasks — so 5% drop plus churn must still complete the whole batch.
  ExperimentConfig config = overloaded_config(true);
  config.system.fault.drop_prob = 0.05;
  config.system.fault.seed = 11;
  config.system.fault_tolerance.enabled = true;
  config.system.agent_churn.enabled = true;
  config.system.agent_churn.mtbf = 2000.0;
  config.system.agent_churn.mttr = 20.0;
  config.system.agent_churn.horizon = 300.0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_GT(result.messages_dropped, 0u);
  expect_each_task_completes_once(result);
}

}  // namespace
}  // namespace gridlb::agents
