// End-to-end fault tolerance (DESIGN.md §10): a lossy network still
// delivers every task, an unreachable entry agent falls back to the head,
// a crash strands its pending queue for portal re-discovery, and ACT
// expiry shuns a neighbour that stopped advertising.
#include <gtest/gtest.h>

#include <vector>

#include "agents/agent_system.hpp"
#include "agents/portal.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::agents {
namespace {

struct FaultToleranceFixture : ::testing::Test {
  sim::Engine engine;
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  metrics::MetricsCollector collector;

  SystemConfig tolerant_config() {
    SystemConfig config;
    config.resources = {
        {"A", pace::HardwareType::kSgiOrigin2000, 16, -1},
        {"B", pace::HardwareType::kSunUltra10, 8, 0},
        {"C", pace::HardwareType::kSunUltra1, 4, 0},
    };
    config.fault_tolerance.enabled = true;
    return config;
  }

  RetryPolicy portal_retry(const SystemConfig& config) {
    RetryPolicy retry = config.fault_tolerance.retry;
    retry.enabled = true;
    return retry;
  }
};

TEST_F(FaultToleranceFixture, LossyNetworkStillDeliversEveryTaskAndResult) {
  SystemConfig config = tolerant_config();
  config.fault.drop_prob = 0.1;
  config.fault.seed = 3;
  AgentSystem system(engine, catalogue, config, &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector,
                portal_retry(config));
  portal.set_fallback_entry(&system.head());
  system.set_stranded_sink([&portal](TaskId task) { portal.resubmit(task); });

  for (int i = 0; i < 20; ++i) {
    portal.submit(system.head(), i % 2 == 0 ? "fft" : "closure", 3500.0);
  }
  engine.run_until(3600.0);

  // Retransmission must mask every drop: no task lost, no result lost.
  EXPECT_EQ(collector.completed_tasks(), 20u);
  EXPECT_EQ(portal.results_received(), 20u);
  EXPECT_GT(system.network().fault_stats().dropped_total(), 0u);
  std::uint64_t retries = portal.link_stats().retries;
  for (std::size_t i = 0; i < system.size(); ++i) {
    retries += system.agent(i).link_stats().retries;
  }
  EXPECT_GT(retries, 0u);
}

TEST_F(FaultToleranceFixture, UnreachableEntryAgentFallsBackToTheHead) {
  const SystemConfig config = tolerant_config();
  AgentSystem system(engine, catalogue, config, &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector,
                portal_retry(config));
  portal.set_fallback_entry(&system.head());

  Agent& entry = system.agent_named("B");
  for (TaskId task : entry.crash()) portal.resubmit(task);  // none yet
  for (int i = 0; i < 3; ++i) portal.submit(entry, "fft", 3500.0);
  engine.run_until(3600.0);

  // Every transmission died against the deaf endpoint; after the retry
  // budget the portal re-discovered each task through the head.
  EXPECT_EQ(portal.link_stats().expired, 3u);
  EXPECT_EQ(portal.tasks_resubmitted(), 3u);
  EXPECT_EQ(collector.completed_tasks(), 3u);
  EXPECT_EQ(portal.results_received(), 3u);
  EXPECT_EQ(entry.stats().requests_received, 0u);
}

TEST_F(FaultToleranceFixture, CrashStrandsPendingTasksWhichTheHeadRecovers) {
  SystemConfig config = tolerant_config();
  config.discovery_enabled = false;  // pin the tasks to their entry agent
  AgentSystem system(engine, catalogue, config, &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector,
                portal_retry(config));
  portal.set_fallback_entry(&system.head());

  Agent& victim = system.agent_named("C");  // 4 nodes: most tasks must queue
  for (int i = 0; i < 12; ++i) portal.submit(victim, "fft", 3500.0);
  engine.schedule_at(5.0, [&victim, &portal]() {
    for (TaskId task : victim.crash()) portal.resubmit(task);
  });
  engine.schedule_at(300.0, [&victim]() { victim.restart(); });
  engine.run_until(3600.0);

  // Tasks already running ride out the crash on the resource; the stranded
  // remainder re-enters through the head.  Nothing executes twice.
  EXPECT_EQ(collector.completed_tasks(), 12u);
  EXPECT_GT(portal.tasks_resubmitted(), 0u);
  EXPECT_EQ(victim.stats().crashes, 1u);
  EXPECT_EQ(victim.stats().restarts, 1u);
  EXPECT_TRUE(victim.alive());
}

TEST_F(FaultToleranceFixture, ActExpiryShunsANeighbourThatStoppedAdvertising) {
  SystemConfig config = tolerant_config();
  // The head is the weakest resource: discovery prefers the child B
  // whenever its advertisements are trusted.
  config.resources = {
      {"A", pace::HardwareType::kSunUltra1, 4, -1},
      {"B", pace::HardwareType::kSgiOrigin2000, 16, 0},
  };
  AgentSystem system(engine, catalogue, config, &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector,
                portal_retry(config));
  portal.set_fallback_entry(&system.head());

  // sweep3d needs 75 s on the 4-node Ultra1 head but only 4 s on B: a
  // 10 s deadline always sends discovery towards B's advertisements.
  Agent& child = system.agent_named("B");
  engine.schedule_at(50.0, [&portal, &system, this]() {
    portal.submit(system.head(), "sweep3d", engine.now() + 10.0);
  });
  engine.schedule_at(100.5, [&child]() { (void)child.crash(); });
  // act_expiry = 3 advertisement periods = 30 s; by t=140.5 the head's
  // entry for B is stale and discovery must not trust it.
  engine.schedule_at(140.5, [&portal, &system, this]() {
    portal.submit(system.head(), "sweep3d", engine.now() + 10.0);
  });
  engine.run_until(3600.0);

  // The pre-crash task proves B was the preferred target; the post-crash
  // task falls back to local best-effort without ever probing the dead
  // neighbour — no retry traffic, no reroute.
  EXPECT_EQ(child.stats().requests_received, 1u);
  EXPECT_EQ(collector.completed_tasks(), 2u);
  EXPECT_EQ(system.head().stats().reroutes, 0u);
  EXPECT_EQ(system.head().link_stats().retries, 0u);
  EXPECT_EQ(system.head().link_stats().expired, 0u);
}

}  // namespace
}  // namespace gridlb::agents
