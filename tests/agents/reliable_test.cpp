// ReliableLink: msgid stamping, ack-gated retransmission with bounded
// exponential backoff, duplicate suppression, and the disabled-policy
// passthrough that keeps zero-fault runs bit-for-bit unchanged.
#include "agents/reliable.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {
namespace {

constexpr double kLatency = 0.05;

std::string request_payload(const std::string& marker) {
  xml::Element document("agentgrid");
  document.set_attribute("type", "request");
  document.set_attribute("marker", marker);
  return xml::write(document);
}

RetryPolicy enabled_policy() {
  RetryPolicy policy;
  policy.enabled = true;
  return policy;
}

/// One endpoint whose handler records arrivals, optionally through a link.
struct Arrivals {
  std::vector<std::string> payloads;
  std::vector<SimTime> times;
};

TEST(ReliableLink, DisabledPolicyIsATransparentPassthrough) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  Arrivals arrivals;
  ReliableLink sender(engine, network, RetryPolicy{});
  const sim::EndpointId a = network.register_endpoint("a", 1, [](auto&) {});
  const sim::EndpointId b = network.register_endpoint(
      "b", 2, [&arrivals](const sim::Message& m) {
        arrivals.payloads.push_back(m.payload);
      });
  sender.set_self(a);

  const std::string payload = request_payload("plain");
  sender.send(b, payload);
  engine.run();

  // Byte-identical delivery: no msgid attribute, no ack, no bookkeeping.
  ASSERT_EQ(arrivals.payloads.size(), 1u);
  EXPECT_EQ(arrivals.payloads[0], payload);
  EXPECT_EQ(sender.stats().reliable_sent, 0u);
  EXPECT_EQ(sender.in_flight(), 0u);
  EXPECT_EQ(network.total_messages(), 1u);  // no ack on the wire
}

TEST(ReliableLink, AckStopsRetransmission) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  Arrivals arrivals;
  ReliableLink sender(engine, network, enabled_policy());
  ReliableLink receiver(engine, network, enabled_policy());
  const sim::EndpointId a = network.register_endpoint(
      "a", 1, [&sender](const sim::Message& m) { sender.on_message(m); });
  const sim::EndpointId b = network.register_endpoint(
      "b", 2, [&receiver, &arrivals](const sim::Message& m) {
        if (receiver.on_message(m) == ReliableLink::Inbound::kDeliver) {
          arrivals.payloads.push_back(m.payload);
        }
      });
  sender.set_self(a);
  receiver.set_self(b);

  sender.send(b, request_payload("acked"));
  engine.run();

  ASSERT_EQ(arrivals.payloads.size(), 1u);
  const auto document = xml::parse(arrivals.payloads[0]);
  EXPECT_TRUE(document->attribute("msgid").has_value());
  EXPECT_EQ(sender.stats().reliable_sent, 1u);
  EXPECT_EQ(sender.stats().acks_received, 1u);
  EXPECT_EQ(sender.stats().retries, 0u);
  EXPECT_EQ(receiver.stats().acks_sent, 1u);
  EXPECT_EQ(sender.in_flight(), 0u);
}

TEST(ReliableLink, RetriesWithBoundedExponentialBackoffThenFails) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  ReliableLink sender(engine, network, enabled_policy());
  Arrivals arrivals;
  std::vector<std::string> failed;
  const sim::EndpointId a = network.register_endpoint("a", 1, [](auto&) {});
  // The receiver never acks, so every transmission times out.
  const sim::EndpointId b = network.register_endpoint(
      "b", 2, [&arrivals, &engine](const sim::Message& m) {
        arrivals.payloads.push_back(m.payload);
        arrivals.times.push_back(engine.now());
      });
  sender.set_self(a);

  sender.send(b, request_payload("doomed"),
              [&failed](sim::EndpointId, const std::string& payload) {
                failed.push_back(payload);
              });
  engine.run();

  // Transmissions at t=0, then after timeouts 0.5, 1, 2, 4 (doubling from
  // ack_timeout, capped by max_timeout=8 which is never reached here).
  const std::vector<SimTime> expected = {
      0.0 + kLatency, 0.5 + kLatency, 1.5 + kLatency, 3.5 + kLatency,
      7.5 + kLatency};
  EXPECT_EQ(arrivals.times, expected);
  // Retransmissions are verbatim — same msgid, same bytes.
  for (const std::string& payload : arrivals.payloads) {
    EXPECT_EQ(payload, arrivals.payloads[0]);
  }
  EXPECT_EQ(sender.stats().reliable_sent, 1u);
  EXPECT_EQ(sender.stats().retries, 4u);  // max_attempts=5 incl. the first
  EXPECT_EQ(sender.stats().expired, 1u);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], arrivals.payloads[0]);
  EXPECT_EQ(sender.in_flight(), 0u);
}

TEST(ReliableLink, SuppressesDuplicatesAndReAcks) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  ReliableLink receiver(engine, network, enabled_policy());
  const sim::EndpointId a = network.register_endpoint("a", 1, [](auto&) {});
  const sim::EndpointId b = network.register_endpoint("b", 2, [](auto&) {});
  receiver.set_self(b);

  auto document = xml::parse(request_payload("dup"));
  document->set_attribute("msgid", "42");
  sim::Message message;
  message.from = a;
  message.to = b;
  message.payload = xml::write(*document);

  // First arrival is fresh; a retransmission of the same msgid must be
  // swallowed but still acknowledged (the first ack may have been lost).
  EXPECT_EQ(receiver.on_message(message), ReliableLink::Inbound::kDeliver);
  EXPECT_EQ(receiver.on_message(message), ReliableLink::Inbound::kConsumed);
  EXPECT_EQ(receiver.stats().acks_sent, 2u);
  EXPECT_EQ(receiver.stats().duplicates_suppressed, 1u);
}

TEST(ReliableLink, UnreliableTrafficPassesUntouched) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  ReliableLink receiver(engine, network, enabled_policy());
  const sim::EndpointId b = network.register_endpoint("b", 2, [](auto&) {});
  receiver.set_self(b);

  sim::Message message;
  message.payload = request_payload("no msgid");  // e.g. a pull or an ad
  EXPECT_EQ(receiver.on_message(message), ReliableLink::Inbound::kDeliver);
  EXPECT_EQ(receiver.stats().acks_sent, 0u);
}

TEST(ReliableLink, ResetReturnsUndeliveredPayloadsInSendOrder) {
  sim::Engine engine;
  sim::Network network(engine, kLatency);
  ReliableLink sender(engine, network, enabled_policy());
  const sim::EndpointId a = network.register_endpoint("a", 1, [](auto&) {});
  const sim::EndpointId b =
      network.register_endpoint("b", 2, [](auto&) {});  // never acks
  sender.set_self(a);

  sender.send(b, request_payload("first"));
  sender.send(b, request_payload("second"));
  sender.send(b, request_payload("third"));
  EXPECT_EQ(sender.in_flight(), 3u);

  const std::vector<std::string> undelivered = sender.reset();
  ASSERT_EQ(undelivered.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto document = xml::parse(undelivered[i]);
    const std::vector<std::string> markers = {"first", "second", "third"};
    EXPECT_EQ(document->attribute("marker"), markers[i]);
  }
  EXPECT_EQ(sender.in_flight(), 0u);

  // Cancelled timers must not fire: the run ends with no retransmissions.
  engine.run();
  EXPECT_EQ(sender.stats().retries, 0u);
  EXPECT_EQ(sender.stats().expired, 0u);
}

}  // namespace
}  // namespace gridlb::agents
