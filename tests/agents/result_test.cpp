#include "agents/result.hpp"

#include <gtest/gtest.h>

#include "agents/agent_system.hpp"
#include "agents/portal.hpp"
#include "common/assert.hpp"
#include "pace/paper_applications.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {
namespace {

ExecutionResult example() {
  ExecutionResult result;
  result.task = TaskId(17);
  result.app_name = "jacobi";
  result.resource_name = "S4";
  result.start = 12.5;
  result.completion = 31.0;
  result.deadline = 40.0;
  result.email = "junwei@dcs.warwick.ac.uk";
  return result;
}

TEST(ExecutionResult, RoundTrip) {
  EXPECT_EQ(result_from_xml(to_xml(example())), example());
}

TEST(ExecutionResult, MetDeadlineHelper) {
  ExecutionResult result = example();
  EXPECT_TRUE(result.met_deadline());
  result.completion = 41.0;
  EXPECT_FALSE(result.met_deadline());
}

TEST(ExecutionResult, DocumentShape) {
  const auto doc = xml::parse(to_xml(example()));
  EXPECT_EQ(*doc->attribute("type"), "result");
  EXPECT_EQ(*doc->attribute("taskid"), "17");
  ASSERT_NE(doc->child("execution"), nullptr);
  EXPECT_EQ(doc->child("execution")->child_text("resource"), "S4");
  EXPECT_EQ(doc->child("application")->child_text("name"), "jacobi");
}

TEST(ExecutionResult, RejectsWrongType) {
  EXPECT_THROW(result_from_xml("<agentgrid type=\"request\"/>"),
               AssertionError);
  EXPECT_THROW(result_from_xml("<agentgrid type=\"result\"/>"),
               AssertionError);
}

TEST(RequestOrigin, RoundTripsThroughXml) {
  Request request;
  request.task = TaskId(3);
  request.app_name = "fft";
  request.deadline = 10.0;
  request.origin = 42u;
  const Request parsed = request_from_xml(to_xml(request));
  ASSERT_TRUE(parsed.origin.has_value());
  EXPECT_EQ(*parsed.origin, 42u);

  request.origin.reset();
  EXPECT_FALSE(request_from_xml(to_xml(request)).origin.has_value());
}

// --- end-to-end delivery --------------------------------------------------

struct ResultDeliveryFixture : ::testing::Test {
  sim::Engine engine;
  metrics::MetricsCollector collector;
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  SystemConfig config() {
    SystemConfig system_config;
    system_config.resources = {
        {"S1", pace::HardwareType::kSgiOrigin2000, 16, -1},
        {"S2", pace::HardwareType::kSunSparcStation2, 16, 0},
    };
    return system_config;
  }
};

TEST_F(ResultDeliveryFixture, PortalReceivesResultForLocalDispatch) {
  AgentSystem system(engine, catalogue, config(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  const TaskId task = portal.submit(system.agent_named("S1"), "closure",
                                    1000.0, "test", "user@example.org");
  engine.run_until(3600.0);
  ASSERT_EQ(portal.results_received(), 1u);
  const auto& outcome = portal.outcomes()[0];
  EXPECT_EQ(outcome.result.task, task);
  EXPECT_EQ(outcome.result.app_name, "closure");
  EXPECT_EQ(outcome.result.resource_name, "S1");
  EXPECT_EQ(outcome.result.email, "user@example.org");
  EXPECT_TRUE(outcome.result.met_deadline());
  // Turnaround covers two network trips plus the execution time.
  EXPECT_GT(outcome.turnaround(), outcome.result.completion -
                                      outcome.result.start);
  EXPECT_EQ(system.agent_named("S1").stats().results_sent, 1u);
}

TEST_F(ResultDeliveryFixture, ResultComesFromTheExecutingAgent) {
  AgentSystem system(engine, catalogue, config(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  engine.run_until(1.0);  // let advertisements land
  // sweep3d in 10 s is impossible on the SPARCstation2 (min 20 s); the
  // request forwards to S1, which must also send the result.
  portal.submit(system.agent_named("S2"), "sweep3d", engine.now() + 10.0);
  engine.run_until(3600.0);
  ASSERT_EQ(portal.results_received(), 1u);
  EXPECT_EQ(portal.outcomes()[0].result.resource_name, "S1");
  EXPECT_EQ(system.agent_named("S1").stats().results_sent, 1u);
  EXPECT_EQ(system.agent_named("S2").stats().results_sent, 0u);
}

TEST_F(ResultDeliveryFixture, EveryCampaignTaskGetsAResult) {
  AgentSystem system(engine, catalogue, config(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    engine.schedule_at(static_cast<double>(i) + 1.0, [&, i]() {
      const auto& app = catalogue.all()[static_cast<std::size_t>(i) % 7];
      const auto domain = app->deadline_domain();
      portal.submit(system.agent(static_cast<std::size_t>(i) % 2),
                    app->name(),
                    engine.now() + rng.uniform(domain.lo, domain.hi));
    });
  }
  engine.run_until(7200.0);
  EXPECT_EQ(portal.results_received(), 30u);
  EXPECT_GT(portal.mean_turnaround(), 0.0);
  // Met flags in the results agree with the metrics collector.
  int met_via_results = 0;
  for (const auto& outcome : portal.outcomes()) {
    if (outcome.result.met_deadline()) ++met_via_results;
  }
  EXPECT_EQ(met_via_results, collector.report().total.deadlines_met);
}

TEST_F(ResultDeliveryFixture, FireAndForgetRequestsProduceNoResult) {
  AgentSystem system(engine, catalogue, config(), &collector);
  system.start();
  // A request injected directly (no origin attribute).
  Request request;
  request.task = TaskId(99);
  request.app_name = "cpi";
  request.deadline = 1e6;
  system.agent_named("S1").receive_request(std::move(request));
  engine.run_until(3600.0);
  EXPECT_EQ(system.agent_named("S1").stats().results_sent, 0u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

}  // namespace
}  // namespace gridlb::agents
