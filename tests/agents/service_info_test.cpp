#include "agents/service_info.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {
namespace {

ServiceInfo example() {
  // The Fig. 5 example: a cluster of 16 SunUltra10 workstations.
  ServiceInfo info;
  info.agent_address = "gem.dcs.warwick.ac.uk";
  info.agent_port = 1000;
  info.local_address = "gem.dcs.warwick.ac.uk";
  info.local_port = 10000;
  info.hardware_type = "SunUltra10";
  info.nproc = 16;
  info.environments = {"mpi", "pvm", "test"};
  info.freetime = 4312.5;
  return info;
}

TEST(ServiceInfo, RoundTrip) {
  const ServiceInfo original = example();
  const ServiceInfo parsed = service_info_from_xml(to_xml(original));
  EXPECT_EQ(parsed, original);
}

TEST(ServiceInfo, DocumentShapeMatchesFig5) {
  const auto doc = xml::parse(to_xml(example()));
  EXPECT_EQ(doc->name(), "agentgrid");
  EXPECT_EQ(*doc->attribute("type"), "service");
  const xml::Element* agent = doc->child("agent");
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->child_text("address"), "gem.dcs.warwick.ac.uk");
  EXPECT_EQ(agent->child_text("port"), "1000");
  const xml::Element* local = doc->child("local");
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->child_text("type"), "SunUltra10");
  EXPECT_EQ(local->child_text("nproc"), "16");
  EXPECT_EQ(local->children_named("environment").size(), 3u);
  EXPECT_FALSE(local->child_text("freetime").empty());
}

TEST(ServiceInfo, EmptyEnvironmentListSurvives) {
  ServiceInfo info = example();
  info.environments.clear();
  EXPECT_EQ(service_info_from_xml(to_xml(info)), info);
}

TEST(ServiceInfo, RejectsWrongDocumentType) {
  EXPECT_THROW(service_info_from_xml("<agentgrid type=\"request\"/>"),
               AssertionError);
  EXPECT_THROW(service_info_from_xml("<other/>"), AssertionError);
}

TEST(ServiceInfo, RejectsMissingSections) {
  EXPECT_THROW(service_info_from_xml("<agentgrid type=\"service\"/>"),
               AssertionError);
  EXPECT_THROW(service_info_from_xml(
                   "<agentgrid type=\"service\"><agent><address>a</address>"
                   "<port>1</port></agent></agentgrid>"),
               AssertionError);
}

TEST(ServiceInfo, RejectsMalformedNumbers) {
  ServiceInfo info = example();
  std::string doc = to_xml(info);
  const auto pos = doc.find("<nproc>16</nproc>");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 17, "<nproc>many</nproc>");
  EXPECT_THROW(service_info_from_xml(doc), AssertionError);
}

TEST(ServiceInfo, RejectsMalformedXml) {
  EXPECT_THROW(service_info_from_xml("<agentgrid type=\"service\">"),
               xml::ParseError);
}

TEST(ServiceInfo, FreetimePrecisionSurvives) {
  ServiceInfo info = example();
  info.freetime = 123.456789;
  const ServiceInfo parsed = service_info_from_xml(to_xml(info));
  EXPECT_NEAR(parsed.freetime, info.freetime, 1e-6);
}

}  // namespace
}  // namespace gridlb::agents
