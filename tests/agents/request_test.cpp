#include "agents/request.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {
namespace {

Request example() {
  // The Fig. 6 example: a sweep3d execution request.
  Request request;
  request.task = TaskId(42);
  request.app_name = "sweep3d";
  request.binary_file = "/dcs/junwei/agentgrid/binary/sweep3d";
  request.input_file = "/dcs/junwei/agentgrid/binary/input.50";
  request.model_name = "/dcs/junwei/agentgrid/model/sweep3d";
  request.environment = "test";
  request.deadline = 437.25;
  request.email = "junwei@dcs.warwick.ac.uk";
  return request;
}

TEST(Request, RoundTrip) {
  const Request original = example();
  EXPECT_EQ(request_from_xml(to_xml(original)), original);
}

TEST(Request, RoundTripWithVisitedAgents) {
  Request request = example();
  request.visited = {AgentId(3), AgentId(1), AgentId(7)};
  EXPECT_EQ(request_from_xml(to_xml(request)), request);
}

TEST(Request, DocumentShapeMatchesFig6) {
  const auto doc = xml::parse(to_xml(example()));
  EXPECT_EQ(doc->name(), "agentgrid");
  EXPECT_EQ(*doc->attribute("type"), "request");
  const xml::Element* application = doc->child("application");
  ASSERT_NE(application, nullptr);
  EXPECT_EQ(application->child_text("name"), "sweep3d");
  ASSERT_NE(application->child("binary"), nullptr);
  EXPECT_EQ(application->child("binary")->child_text("inputfile"),
            "/dcs/junwei/agentgrid/binary/input.50");
  ASSERT_NE(application->child("performance"), nullptr);
  EXPECT_EQ(application->child("performance")->child_text("datatype"),
            "pacemodel");
  const xml::Element* requirement = doc->child("requirement");
  ASSERT_NE(requirement, nullptr);
  EXPECT_EQ(requirement->child_text("environment"), "test");
  EXPECT_EQ(doc->child_text("email"), "junwei@dcs.warwick.ac.uk");
}

TEST(Request, EmailWithSpecialCharactersSurvives) {
  Request request = example();
  request.email = "a&b<c>@example.com";
  EXPECT_EQ(request_from_xml(to_xml(request)).email, request.email);
}

TEST(Request, RejectsWrongType) {
  EXPECT_THROW(request_from_xml("<agentgrid type=\"service\"/>"),
               AssertionError);
}

TEST(Request, RejectsMissingApplication) {
  EXPECT_THROW(request_from_xml("<agentgrid type=\"request\">"
                                "<requirement><deadline>1</deadline>"
                                "</requirement></agentgrid>"),
               AssertionError);
}

TEST(Request, RejectsMissingDeadline) {
  EXPECT_THROW(
      request_from_xml("<agentgrid type=\"request\">"
                       "<application><name>x</name></application>"
                       "<requirement><environment>test</environment>"
                       "</requirement></agentgrid>"),
      AssertionError);
}

TEST(Request, RejectsNonPaceModelPerformanceData) {
  EXPECT_THROW(
      request_from_xml("<agentgrid type=\"request\">"
                       "<application><name>x</name><performance>"
                       "<datatype>trace</datatype></performance>"
                       "</application>"
                       "<requirement><deadline>1</deadline></requirement>"
                       "</agentgrid>"),
      AssertionError);
}

TEST(Request, MinimalDocumentParses) {
  const Request parsed = request_from_xml(
      "<agentgrid type=\"request\">"
      "<application><name>fft</name></application>"
      "<requirement><environment>mpi</environment>"
      "<deadline>12.5</deadline></requirement>"
      "</agentgrid>");
  EXPECT_EQ(parsed.app_name, "fft");
  EXPECT_EQ(parsed.environment, "mpi");
  EXPECT_DOUBLE_EQ(parsed.deadline, 12.5);
  EXPECT_FALSE(parsed.task.valid());
  EXPECT_TRUE(parsed.visited.empty());
}

}  // namespace
}  // namespace gridlb::agents
