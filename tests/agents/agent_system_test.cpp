#include "agents/agent_system.hpp"

#include <gtest/gtest.h>

#include "agents/portal.hpp"
#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::agents {
namespace {

struct AgentSystemFixture : ::testing::Test {
  sim::Engine engine;
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  SystemConfig two_level() {
    SystemConfig config;
    config.resources = {
        {"A", pace::HardwareType::kSgiOrigin2000, 16, -1},
        {"B", pace::HardwareType::kSunUltra10, 8, 0},
        {"C", pace::HardwareType::kSunUltra1, 4, 0},
    };
    return config;
  }
};

TEST_F(AgentSystemFixture, BuildsAgentsAndSchedulers) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  EXPECT_EQ(system.size(), 3u);
  EXPECT_EQ(system.head().name(), "A");
  EXPECT_EQ(system.agent(1).name(), "B");
  EXPECT_EQ(system.agent(1).scheduler().config().node_count, 8);
  EXPECT_EQ(system.agent(2).scheduler().config().resource.type,
            pace::HardwareType::kSunUltra1);
}

TEST_F(AgentSystemFixture, AssignsSequentialAgentIds) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  EXPECT_EQ(system.agent(0).id(), AgentId(1));
  EXPECT_EQ(system.agent(2).id(), AgentId(3));
}

TEST_F(AgentSystemFixture, AgentNamedThrowsOnUnknown) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  EXPECT_NO_THROW((void)system.agent_named("B"));
  EXPECT_THROW((void)system.agent_named("Z"), AssertionError);
}

TEST_F(AgentSystemFixture, AgentIndexOutOfRangeThrows) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  EXPECT_THROW((void)system.agent(3), AssertionError);
}

TEST_F(AgentSystemFixture, RejectsEmptyResourceList) {
  SystemConfig config;
  EXPECT_THROW(AgentSystem(engine, catalogue, std::move(config), nullptr),
               AssertionError);
}

TEST_F(AgentSystemFixture, RejectsTwoHeads) {
  SystemConfig config;
  config.resources = {
      {"A", pace::HardwareType::kSgiOrigin2000, 16, -1},
      {"B", pace::HardwareType::kSunUltra10, 16, -1},
  };
  EXPECT_THROW(AgentSystem(engine, catalogue, std::move(config), nullptr),
               AssertionError);
}

TEST_F(AgentSystemFixture, RejectsForwardParentReference) {
  SystemConfig config;
  config.resources = {
      {"A", pace::HardwareType::kSgiOrigin2000, 16, 1},  // parent after child
      {"B", pace::HardwareType::kSunUltra10, 16, -1},
  };
  EXPECT_THROW(AgentSystem(engine, catalogue, std::move(config), nullptr),
               AssertionError);
}

TEST_F(AgentSystemFixture, RejectsSelfParent) {
  SystemConfig config;
  config.resources = {
      {"A", pace::HardwareType::kSgiOrigin2000, 16, -1},
      {"B", pace::HardwareType::kSunUltra10, 16, 1},  // own index
  };
  EXPECT_THROW(AgentSystem(engine, catalogue, std::move(config), nullptr),
               AssertionError);
}

TEST_F(AgentSystemFixture, RegistersResourcesWithCollector) {
  metrics::MetricsCollector collector;
  AgentSystem system(engine, catalogue, two_level(), &collector);
  const auto report = collector.report();
  ASSERT_EQ(report.resources.size(), 3u);
  EXPECT_EQ(report.resources[0].label, "A");
  EXPECT_EQ(report.resources[2].label, "C");
}

TEST_F(AgentSystemFixture, CompletionsFlowIntoCollector) {
  metrics::MetricsCollector collector;
  AgentSystem system(engine, catalogue, two_level(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  portal.submit(system.agent_named("B"), "closure", 1000.0);
  engine.run_until(3600.0);  // advertisement pulls never drain the queue
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(AgentSystemFixture, PortalAssignsUniqueTaskIds) {
  metrics::MetricsCollector collector;
  AgentSystem system(engine, catalogue, two_level(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  const TaskId a = portal.submit(system.head(), "fft", 1000.0);
  const TaskId b = portal.submit(system.head(), "fft", 1000.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(portal.requests_sent(), 2u);
}

TEST_F(AgentSystemFixture, PortalRejectsUnknownApplication) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  Portal portal(engine, system.network(), catalogue, nullptr);
  EXPECT_THROW(portal.submit(system.head(), "linpack", 1000.0),
               AssertionError);
}

TEST_F(AgentSystemFixture, PortalRejectsPastDeadline) {
  AgentSystem system(engine, catalogue, two_level(), nullptr);
  Portal portal(engine, system.network(), catalogue, nullptr);
  engine.schedule_at(10.0, []() {});
  engine.run();
  EXPECT_THROW(portal.submit(system.head(), "fft", 5.0), AssertionError);
}

TEST_F(AgentSystemFixture, PerSchedulerSeedsDiffer) {
  // Distinct GA seeds per resource: identical workloads on two identical
  // resources may evolve differently, but more importantly seeds must be
  // deterministic across system constructions.
  AgentSystem first(engine, catalogue, two_level(), nullptr);
  sim::Engine engine2;
  AgentSystem second(engine2, catalogue, two_level(), nullptr);
  EXPECT_EQ(first.agent(0).scheduler().config().seed,
            second.agent(0).scheduler().config().seed);
  EXPECT_NE(first.agent(0).scheduler().config().seed,
            first.agent(1).scheduler().config().seed);
}

TEST_F(AgentSystemFixture, SharedEvaluatorCachesAcrossResources) {
  metrics::MetricsCollector collector;
  AgentSystem system(engine, catalogue, two_level(), &collector);
  system.start();
  Portal portal(engine, system.network(), catalogue, &collector);
  portal.submit(system.agent_named("B"), "closure", 1000.0);
  portal.submit(system.agent_named("B"), "closure", 1000.0);
  engine.run_until(3600.0);
  EXPECT_GT(system.evaluator().stats().hit_rate(), 0.0);
}

}  // namespace
}  // namespace gridlb::agents
