#include "agents/act.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gridlb::agents {
namespace {

ServiceInfo info_with_freetime(double freetime) {
  ServiceInfo info;
  info.hardware_type = "SunUltra5";
  info.nproc = 16;
  info.freetime = freetime;
  return info;
}

TEST(CapabilityTable, StartsEmpty) {
  CapabilityTable act;
  EXPECT_EQ(act.size(), 0u);
  EXPECT_EQ(act.find(AgentId(1)), nullptr);
  EXPECT_DOUBLE_EQ(act.max_staleness(100.0), 0.0);
}

TEST(CapabilityTable, UpsertInsertsAndRefreshes) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(10.0), 5.0);
  ASSERT_NE(act.find(AgentId(1)), nullptr);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->info.freetime, 10.0);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->updated_at, 5.0);

  act.upsert(AgentId(1), info_with_freetime(20.0), 15.0);
  EXPECT_EQ(act.size(), 1u);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->info.freetime, 20.0);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->updated_at, 15.0);
}

TEST(CapabilityTable, TracksMultipleAgents) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(1.0), 0.0);
  act.upsert(AgentId(2), info_with_freetime(2.0), 0.0);
  act.upsert(AgentId(3), info_with_freetime(3.0), 0.0);
  EXPECT_EQ(act.size(), 3u);
  EXPECT_DOUBLE_EQ(act.find(AgentId(2))->info.freetime, 2.0);
  EXPECT_EQ(act.entries()[0].agent, AgentId(1));  // insertion order
}

TEST(CapabilityTable, RejectsInvalidAgentId) {
  CapabilityTable act;
  EXPECT_THROW(act.upsert(AgentId(), info_with_freetime(1.0), 0.0),
               AssertionError);
}

TEST(CapabilityTable, MaxStaleness) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(1.0), 10.0);
  act.upsert(AgentId(2), info_with_freetime(1.0), 30.0);
  EXPECT_DOUBLE_EQ(act.max_staleness(40.0), 30.0);
}

TEST(CapabilityTable, AdvanceFreetimeBumpsFromFuture) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(100.0), 0.0);
  act.advance_freetime(AgentId(1), 50.0, 7.0);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->info.freetime, 107.0);
}

TEST(CapabilityTable, AdvanceFreetimeBumpsFromNowWhenIdle) {
  // If the cached freetime is already in the past the resource is idle;
  // the optimistic estimate starts from `now`.
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(10.0), 0.0);
  act.advance_freetime(AgentId(1), 50.0, 7.0);
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->info.freetime, 57.0);
}

TEST(CapabilityTable, AdvanceFreetimeUnknownAgentIsNoop) {
  CapabilityTable act;
  EXPECT_NO_THROW(act.advance_freetime(AgentId(9), 0.0, 5.0));
}

TEST(CapabilityTable, AdvanceFreetimeRejectsNegative) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(10.0), 0.0);
  EXPECT_THROW(act.advance_freetime(AgentId(1), 0.0, -1.0), AssertionError);
}

TEST(CapabilityTable, RealAdvertisementOverwritesOptimisticEstimate) {
  CapabilityTable act;
  act.upsert(AgentId(1), info_with_freetime(100.0), 0.0);
  act.advance_freetime(AgentId(1), 0.0, 50.0);  // estimate: 150
  act.upsert(AgentId(1), info_with_freetime(110.0), 10.0);  // truth arrives
  EXPECT_DOUBLE_EQ(act.find(AgentId(1))->info.freetime, 110.0);
}

}  // namespace
}  // namespace gridlb::agents
