#include "agents/agent.hpp"

#include <gtest/gtest.h>

#include "agents/agent_system.hpp"
#include "agents/portal.hpp"
#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::agents {
namespace {

// A three-agent hierarchy: S1 (SGI, head) -> { S2 (Ultra5), S3 (SPARC2) }.
struct AgentFixture : ::testing::Test {
  sim::Engine engine;
  metrics::MetricsCollector collector;
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  SystemConfig base_config() {
    SystemConfig config;
    config.resources = {
        {"S1", pace::HardwareType::kSgiOrigin2000, 16, -1},
        {"S2", pace::HardwareType::kSunUltra5, 16, 0},
        {"S3", pace::HardwareType::kSunSparcStation2, 16, 0},
    };
    return config;
  }

  std::unique_ptr<AgentSystem> make(SystemConfig config) {
    auto system = std::make_unique<AgentSystem>(engine, catalogue,
                                                std::move(config), &collector);
    system->start();
    return system;
  }

  Request make_request(const char* app, SimTime deadline) {
    Request request;
    request.task = TaskId(++next_task);
    request.app_name = app;
    request.environment = "test";
    request.deadline = deadline;
    return request;
  }

  std::uint64_t next_task = 0;

  // The periodic advertisement pull keeps the event queue non-empty
  // forever, so tests drain a bounded horizon instead of engine.run().
  void drain() { engine.run_until(engine.now() + 7200.0); }
};

TEST_F(AgentFixture, ServiceSnapshotDescribesResource) {
  const auto system = make(base_config());
  const ServiceInfo info = system->agent_named("S2").service_snapshot();
  EXPECT_EQ(info.hardware_type, "SunUltra5");
  EXPECT_EQ(info.nproc, 16);
  EXPECT_EQ(info.agent_address, "S2.gridlb.sim");
  EXPECT_EQ(info.environments,
            (std::vector<std::string>{"mpi", "pvm", "test"}));
  EXPECT_DOUBLE_EQ(info.freetime, 0.0);
}

TEST_F(AgentFixture, EstimateCompletionImplementsEq10) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  ServiceInfo info = s1.service_snapshot();
  info.freetime = 0.0;
  // cpi's minimum over k of t_x(k) on the reference platform is 2 s.
  const auto eta = s1.estimate_completion(info, make_request("cpi", 1e6));
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 2.0);
}

TEST_F(AgentFixture, EstimateAddsBacklog) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  ServiceInfo info = s1.service_snapshot();
  info.freetime = 100.0;  // resource busy until t=100
  const auto eta = s1.estimate_completion(info, make_request("cpi", 1e6));
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 102.0);
}

TEST_F(AgentFixture, EstimateScalesWithHardware) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  ServiceInfo info = s1.service_snapshot();
  info.hardware_type = "SunSPARCstation2";
  const auto eta = s1.estimate_completion(info, make_request("cpi", 1e6));
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(
      *eta, 2.0 * pace::performance_factor(
                      pace::HardwareType::kSunSparcStation2));
}

TEST_F(AgentFixture, EstimateRejectsUnsupportedEnvironment) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  ServiceInfo info = s1.service_snapshot();
  Request request = make_request("cpi", 1e6);
  request.environment = "cuda";
  EXPECT_FALSE(s1.estimate_completion(info, request).has_value());
}

TEST_F(AgentFixture, EstimateRejectsUnknownApplicationAndHardware) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  ServiceInfo info = s1.service_snapshot();
  EXPECT_FALSE(
      s1.estimate_completion(info, make_request("linpack", 1e6)).has_value());
  info.hardware_type = "Cray";
  EXPECT_FALSE(
      s1.estimate_completion(info, make_request("cpi", 1e6)).has_value());
}

TEST_F(AgentFixture, ExpectedOccupancyUsesEfficientAllocation) {
  const auto system = make(base_config());
  const Agent& s1 = system->agent_named("S1");
  const ServiceInfo info = s1.service_snapshot();
  // cpi: best allocation 12 nodes × 2 s -> 24 node·s over 16 nodes = 1.5 s.
  const auto occupancy =
      s1.expected_occupancy(info, make_request("cpi", 1e6));
  ASSERT_TRUE(occupancy.has_value());
  EXPECT_DOUBLE_EQ(*occupancy, 2.0 * 12.0 / 16.0);
}

TEST_F(AgentFixture, LocalDispatchWhenDeadlineMet) {
  auto system = make(base_config());
  system->agent_named("S3").receive_request(make_request("sweep3d", 1e5));
  drain();
  EXPECT_EQ(system->agent_named("S3").stats().dispatched_local, 1u);
  EXPECT_EQ(system->agent_named("S3").stats().forwarded_up, 0u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(AgentFixture, ForwardsToParentWhenLocalCannotMeetDeadline) {
  auto system = make(base_config());
  // Let advertisements propagate first.
  engine.run_until(1.0);
  // sweep3d minimum on SPARC2 is 20 s; a 10 s deadline cannot be met at S3
  // but S1 (SGI, 4 s minimum) qualifies via S3's capability table.
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 10.0));
  drain();
  EXPECT_EQ(system->agent_named("S3").stats().dispatched_local, 0u);
  EXPECT_EQ(system->agent_named("S3").stats().forwarded_match, 1u);
  EXPECT_EQ(system->agent_named("S1").stats().dispatched_local, 1u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(AgentFixture, EscalatesWhenActIsEmpty) {
  SystemConfig config = base_config();
  config.pull_period = 0.0;  // no advertisements: S3 knows nothing of S1
  auto system = make(std::move(config));
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 10.0));
  drain();
  // With an empty ACT the request is "submitted to the upper agent".
  EXPECT_EQ(system->agent_named("S3").stats().forwarded_up, 1u);
  EXPECT_EQ(system->agent_named("S1").stats().dispatched_local, 1u);
}

TEST_F(AgentFixture, HeadForwardsDownToMatchingChild) {
  auto system = make(base_config());
  engine.run_until(1.0);
  // Occupy S1 far into the future so its own service fails the deadline.
  for (int i = 0; i < 40; ++i) {
    sched::Task task;
    task.id = TaskId(1000 + static_cast<std::uint64_t>(i));
    task.app = catalogue.find("improc");
    task.arrival = engine.now();
    task.deadline = engine.now() + 1e6;
    system->agent_named("S1").scheduler().submit(std::move(task));
  }
  // Let the GA plan the backlog so S1's advertised freetime reflects it.
  engine.run_until(2.0);
  ASSERT_GT(system->agent_named("S1").scheduler().freetime(),
            engine.now() + 60.0);
  system->agent_named("S1").receive_request(
      make_request("sweep3d", engine.now() + 60.0));
  drain();
  // S2 (Ultra5: sweep3d minimum 8.8 s) should have won the matchmaking.
  EXPECT_EQ(system->agent_named("S1").stats().forwarded_match, 1u);
  EXPECT_EQ(system->agent_named("S2").stats().dispatched_local, 1u);
}

TEST_F(AgentFixture, DiscoveryDisabledAlwaysRunsLocally) {
  SystemConfig config = base_config();
  config.discovery_enabled = false;
  auto system = make(std::move(config));
  // Impossible deadline: without agents the task still runs locally.
  system->agent_named("S3").receive_request(make_request("sweep3d", 1.0));
  drain();
  EXPECT_EQ(system->agent_named("S3").stats().dispatched_local, 1u);
  EXPECT_EQ(system->agent_named("S1").stats().requests_received, 0u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(AgentFixture, StrictModeDropsImpossibleRequests) {
  SystemConfig config = base_config();
  config.strict_failure = true;
  auto system = make(std::move(config));
  engine.run_until(1.0);
  // No resource can run sweep3d inside 1 s.
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 1.0));
  drain();
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < system->size(); ++i) {
    dropped += system->agent(i).stats().dropped;
  }
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(collector.completed_tasks(), 0u);
}

TEST_F(AgentFixture, BestEffortFallbackExecutesImpossibleRequests) {
  auto system = make(base_config());
  engine.run_until(1.0);
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 1.0));
  drain();
  std::uint64_t fallbacks = 0;
  for (std::size_t i = 0; i < system->size(); ++i) {
    fallbacks += system->agent(i).stats().fallback_dispatches;
  }
  EXPECT_EQ(fallbacks, 1u);
  EXPECT_EQ(collector.completed_tasks(), 1u);
}

TEST_F(AgentFixture, PullAdvertisementFillsAct) {
  auto system = make(base_config());
  engine.run_until(1.0);
  // S1 pulls from its two children; S2/S3 pull from their parent.
  EXPECT_EQ(system->agent_named("S1").act().size(), 2u);
  EXPECT_EQ(system->agent_named("S2").act().size(), 1u);
  EXPECT_NE(system->agent_named("S2").act().find(AgentId(1)), nullptr);
  EXPECT_GE(system->agent_named("S1").stats().pulls_sent, 2u);
  EXPECT_GE(system->agent_named("S1").stats().advertisements_received, 2u);
}

TEST_F(AgentFixture, AdvertisementsRefreshPeriodically) {
  SystemConfig config = base_config();
  config.pull_period = 10.0;
  auto system = make(std::move(config));
  engine.run_until(35.0);
  // Pulls at t = 0, 10, 20, 30 -> 2 neighbours × 4 rounds.
  EXPECT_EQ(system->agent_named("S1").stats().pulls_sent, 8u);
  const double staleness =
      system->agent_named("S1").act().max_staleness(engine.now());
  EXPECT_LE(staleness, 10.0);
}

TEST_F(AgentFixture, PullDisabledLeavesActEmpty) {
  SystemConfig config = base_config();
  config.pull_period = 0.0;
  auto system = make(std::move(config));
  engine.run_until(30.0);
  EXPECT_EQ(system->agent_named("S1").act().size(), 0u);
}

TEST_F(AgentFixture, PushOnDispatchAdvertisesEagerly) {
  SystemConfig config = base_config();
  config.pull_period = 0.0;  // isolate the push path
  config.push_on_dispatch = true;
  auto system = make(std::move(config));
  system->agent_named("S1").receive_request(make_request("cpi", 1e6));
  drain();
  // S1 dispatched locally and pushed its service info to both children.
  EXPECT_EQ(system->agent_named("S2").act().size(), 1u);
  EXPECT_EQ(system->agent_named("S3").act().size(), 1u);
}

TEST_F(AgentFixture, HopAccountingTracksForwards) {
  auto system = make(base_config());
  engine.run_until(1.0);
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 10.0));
  drain();
  // One forward S3 -> S1: the executing agent records one hop.
  EXPECT_EQ(system->agent_named("S1").stats().hops_accumulated, 1u);
}

TEST_F(AgentFixture, RequestsTravelAsXmlOverTheNetwork) {
  auto system = make(base_config());
  const auto before = system->network().total_messages();
  engine.run_until(1.0);
  system->agent_named("S3").receive_request(
      make_request("sweep3d", engine.now() + 10.0));
  drain();
  EXPECT_GT(system->network().total_messages(), before);
  EXPECT_GT(system->network().total_bytes(), 0u);
}

TEST_F(AgentFixture, AgentWiring) {
  auto system = make(base_config());
  Agent& s1 = system->agent_named("S1");
  Agent& s2 = system->agent_named("S2");
  EXPECT_EQ(s1.parent(), nullptr);
  EXPECT_EQ(s2.parent(), &s1);
  ASSERT_EQ(s1.children().size(), 2u);
  EXPECT_EQ(s1.children()[0], &s2);
}

}  // namespace
}  // namespace gridlb::agents
