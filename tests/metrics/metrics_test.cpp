#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace gridlb::metrics {
namespace {

sched::CompletionRecord record(std::uint64_t task, std::uint64_t resource,
                               sched::NodeMask mask, SimTime start,
                               SimTime end, SimTime deadline) {
  sched::CompletionRecord r;
  r.task = TaskId(task);
  r.resource = AgentId(resource);
  r.mask = mask;
  r.start = start;
  r.end = end;
  r.deadline = deadline;
  return r;
}

struct MetricsFixture : ::testing::Test {
  MetricsCollector collector;
  void SetUp() override {
    collector.add_resource(AgentId(1), "S1", 2);
    collector.add_resource(AgentId(2), "S2", 2);
  }
};

TEST_F(MetricsFixture, EmptyReport) {
  const Report report = collector.report();
  EXPECT_EQ(report.total.tasks, 0);
  EXPECT_DOUBLE_EQ(report.total.utilisation, 0.0);
  EXPECT_DOUBLE_EQ(report.total.balance, 0.0);
  EXPECT_DOUBLE_EQ(report.window(), 0.0);
}

TEST_F(MetricsFixture, WindowSpansFirstSubmissionToLastCompletion) {
  collector.on_submission(5.0);
  collector.on_submission(2.0);  // earlier submission wins
  collector.record(record(1, 1, 0b01, 10.0, 30.0, 40.0));
  collector.record(record(2, 1, 0b10, 10.0, 20.0, 15.0));
  const Report report = collector.report();
  EXPECT_DOUBLE_EQ(report.window_start, 2.0);
  EXPECT_DOUBLE_EQ(report.window_end, 30.0);
  EXPECT_DOUBLE_EQ(report.window(), 28.0);
}

TEST_F(MetricsFixture, AdvanceTimeIsEq11) {
  collector.on_submission(0.0);
  // Task 1 finishes 10 s early; task 2 finishes 5 s late.
  collector.record(record(1, 1, 0b01, 0.0, 30.0, 40.0));
  collector.record(record(2, 1, 0b10, 0.0, 20.0, 15.0));
  const Report report = collector.report();
  EXPECT_DOUBLE_EQ(report.resources[0].advance_time, (10.0 - 5.0) / 2.0);
  EXPECT_EQ(report.resources[0].deadlines_met, 1);
  EXPECT_EQ(report.resources[0].tasks, 2);
}

TEST_F(MetricsFixture, NegativeWhenMostDeadlinesFail) {
  collector.on_submission(0.0);
  collector.record(record(1, 1, 0b01, 0.0, 100.0, 10.0));
  collector.record(record(2, 1, 0b10, 0.0, 100.0, 20.0));
  EXPECT_LT(collector.report().total.advance_time, 0.0);
}

TEST_F(MetricsFixture, UtilisationIsEq12And13) {
  collector.on_submission(0.0);
  // Window 0..100; node 0 of S1 busy 50 s, node 1 busy 100 s.
  collector.record(record(1, 1, 0b01, 0.0, 50.0, 1e3));
  collector.record(record(2, 1, 0b10, 0.0, 100.0, 1e3));
  const Report report = collector.report();
  // S1: (0.5 + 1.0)/2; S2 idle: 0.
  EXPECT_DOUBLE_EQ(report.resources[0].utilisation, 0.75);
  EXPECT_DOUBLE_EQ(report.resources[1].utilisation, 0.0);
  // Total over all 4 nodes: (0.5 + 1.0 + 0 + 0)/4.
  EXPECT_DOUBLE_EQ(report.total.utilisation, 0.375);
}

TEST_F(MetricsFixture, MultiNodeTasksChargeEveryAllocatedNode) {
  collector.on_submission(0.0);
  collector.record(record(1, 1, 0b11, 0.0, 40.0, 1e3));
  const Report report = collector.report();
  EXPECT_DOUBLE_EQ(report.resources[0].utilisation, 1.0);
}

TEST_F(MetricsFixture, BalanceIsEq14And15) {
  collector.on_submission(0.0);
  // S1 perfectly balanced: both nodes busy 50 of 100 s.
  collector.record(record(1, 1, 0b01, 0.0, 50.0, 1e3));
  collector.record(record(2, 1, 0b10, 50.0, 100.0, 1e3));
  // S2 imbalanced: node 0 busy 100 s, node 1 idle.
  collector.record(record(3, 2, 0b01, 0.0, 100.0, 1e3));
  const Report report = collector.report();
  EXPECT_DOUBLE_EQ(report.resources[0].balance, 1.0);
  // S2: rates {1, 0}: mean 0.5, deviation 0.5 -> beta = 0.
  EXPECT_DOUBLE_EQ(report.resources[1].balance, 0.0);
  // Total: rates {0.5, 0.5, 1.0, 0}: mean 0.5, d = sqrt(0.125).
  EXPECT_NEAR(report.total.balance, 1.0 - std::sqrt(0.125) / 0.5, 1e-12);
}

TEST_F(MetricsFixture, PerfectBalanceIsHundredPercent) {
  collector.on_submission(0.0);
  for (std::uint64_t i = 0; i < 4; ++i) {
    collector.record(record(i, 1 + i / 2, i % 2 == 0 ? 0b01 : 0b10, 0.0,
                            100.0, 1e3));
  }
  EXPECT_DOUBLE_EQ(collector.report().total.balance, 1.0);
}

TEST_F(MetricsFixture, ExplicitWindowEndTruncates) {
  collector.on_submission(0.0);
  collector.record(record(1, 1, 0b01, 0.0, 50.0, 1e3));
  const Report report = collector.report(200.0);
  EXPECT_DOUBLE_EQ(report.window_end, 200.0);
  EXPECT_DOUBLE_EQ(report.resources[0].utilisation, 50.0 / 200.0 / 2.0);
}

TEST_F(MetricsFixture, RejectsUnknownResource) {
  EXPECT_THROW(collector.record(record(1, 9, 0b01, 0.0, 1.0, 2.0)),
               AssertionError);
}

TEST_F(MetricsFixture, RejectsNodeBeyondResource) {
  EXPECT_THROW(collector.record(record(1, 1, 0b100, 0.0, 1.0, 2.0)),
               AssertionError);
}

TEST_F(MetricsFixture, RejectsNegativeDuration) {
  EXPECT_THROW(collector.record(record(1, 1, 0b01, 5.0, 1.0, 2.0)),
               AssertionError);
}

TEST_F(MetricsFixture, RejectsDuplicateResource) {
  EXPECT_THROW(collector.add_resource(AgentId(1), "dup", 2), AssertionError);
}

TEST_F(MetricsFixture, KeepsRawRecords) {
  collector.record(record(1, 1, 0b01, 0.0, 1.0, 2.0));
  ASSERT_EQ(collector.records().size(), 1u);
  EXPECT_EQ(collector.records()[0].task, TaskId(1));
}

TEST(FormatReport, ContainsRowsAndTotals) {
  MetricsCollector collector;
  collector.add_resource(AgentId(1), "S1", 2);
  collector.on_submission(0.0);
  sched::CompletionRecord r;
  r.task = TaskId(1);
  r.resource = AgentId(1);
  r.mask = 0b01;
  r.start = 0.0;
  r.end = 10.0;
  r.deadline = 20.0;
  collector.record(r);
  const std::string text = format_report(collector.report());
  EXPECT_NE(text.find("S1"), std::string::npos);
  EXPECT_NE(text.find("Total"), std::string::npos);
  EXPECT_NE(text.find("eps"), std::string::npos);
  EXPECT_EQ(text.find("no completions"), std::string::npos);
}

TEST(FormatReport, SaysSoWhenNothingCompleted) {
  MetricsCollector collector;
  collector.add_resource(AgentId(1), "S1", 2);
  collector.on_submission(0.0);
  const std::string text = format_report(collector.report());
  // The all-zero table must not masquerade as a measurement.
  EXPECT_NE(text.find("no completions"), std::string::npos) << text;
}

}  // namespace
}  // namespace gridlb::metrics
