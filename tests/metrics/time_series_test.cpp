#include "metrics/time_series.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/experiment.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::metrics {
namespace {

sched::CompletionRecord record(std::uint64_t resource, sched::NodeMask mask,
                               SimTime start, SimTime end) {
  sched::CompletionRecord r;
  r.task = TaskId(1);
  r.resource = AgentId(resource);
  r.mask = mask;
  r.start = start;
  r.end = end;
  r.deadline = 1e6;
  return r;
}

const std::vector<std::pair<std::string, int>> kTwoResources = {
    {"S1", 2}, {"S2", 4}};

TEST(Timeline, FullWindowFullNodes) {
  // Both S1 nodes busy for the whole first window.
  const auto timeline = build_timeline({record(1, 0b11, 0.0, 10.0)},
                                       kTwoResources, 10.0, 0.0, 20.0);
  ASSERT_EQ(timeline.buckets(), 2u);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[1], 0.0);
  EXPECT_DOUBLE_EQ(timeline.resources[1].utilisation[0], 0.0);
  // Grid total: 2 of 6 nodes busy in window 0.
  EXPECT_NEAR(timeline.total[0], 2.0 / 6.0, 1e-12);
}

TEST(Timeline, PartialOverlapIsProRated) {
  // One S1 node busy 5..15 over two 10 s windows: half of one node each.
  const auto timeline = build_timeline({record(1, 0b01, 5.0, 15.0)},
                                       kTwoResources, 10.0, 0.0, 20.0);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[0], 0.25);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[1], 0.25);
}

TEST(Timeline, ExecutionsOutsideTheRangeAreClipped) {
  const auto timeline = build_timeline({record(1, 0b01, -100.0, 5.0)},
                                       kTwoResources, 10.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[0], 0.25);
}

TEST(Timeline, MultipleRecordsAccumulate) {
  const auto timeline = build_timeline(
      {record(1, 0b01, 0.0, 10.0), record(1, 0b10, 0.0, 10.0),
       record(2, 0b1111, 0.0, 5.0)},
      kTwoResources, 10.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline.resources[1].utilisation[0], 0.5);
  EXPECT_NEAR(timeline.total[0], (2.0 * 10 + 4 * 5) / (10.0 * 6), 1e-12);
}

TEST(Timeline, ValidatesArguments) {
  EXPECT_THROW(build_timeline({}, kTwoResources, 0.0, 0.0, 10.0),
               AssertionError);
  EXPECT_THROW(build_timeline({}, kTwoResources, 10.0, 10.0, 0.0),
               AssertionError);
  EXPECT_THROW(build_timeline({}, {}, 10.0, 0.0, 10.0), AssertionError);
  EXPECT_THROW(build_timeline({record(5, 0b1, 0.0, 1.0)}, kTwoResources,
                              10.0, 0.0, 10.0),
               AssertionError);
}

TEST(Timeline, EmptyRangeStillHasOneBucket) {
  const auto timeline = build_timeline({}, kTwoResources, 10.0, 0.0, 0.0);
  EXPECT_EQ(timeline.buckets(), 1u);
}

TEST(Timeline, EmptySeriesIsEntirelyIdle) {
  const auto timeline = build_timeline({}, kTwoResources, 10.0, 0.0, 30.0);
  ASSERT_EQ(timeline.buckets(), 3u);
  for (const auto& series : timeline.resources) {
    for (const double u : series.utilisation) EXPECT_DOUBLE_EQ(u, 0.0);
  }
  for (const double u : timeline.total) EXPECT_DOUBLE_EQ(u, 0.0);
  // Renders and serialises without tripping on the absence of data.
  EXPECT_FALSE(render_timeline(timeline).empty());
  EXPECT_NE(timeline_csv(timeline).find("0,Total,0"), std::string::npos);
}

TEST(Timeline, SingleSampleFillsExactlyItsOverlap) {
  // One instantaneous-ish record entirely inside the middle bucket.
  const auto timeline = build_timeline({record(2, 0b1, 12.0, 14.0)},
                                       kTwoResources, 10.0, 0.0, 30.0);
  ASSERT_EQ(timeline.buckets(), 3u);
  EXPECT_DOUBLE_EQ(timeline.resources[1].utilisation[0], 0.0);
  // 2 node-seconds over a 10 s × 4-node window.
  EXPECT_DOUBLE_EQ(timeline.resources[1].utilisation[1], 2.0 / 40.0);
  EXPECT_DOUBLE_EQ(timeline.resources[1].utilisation[2], 0.0);
}

TEST(Timeline, ZeroLengthRecordContributesNothing) {
  const auto timeline = build_timeline({record(1, 0b1, 5.0, 5.0)},
                                       kTwoResources, 10.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(timeline.resources[0].utilisation[0], 0.0);
}

TEST(Timeline, ZeroResourceIdIsRejectedExplicitly) {
  // AgentIds are 1-based; id 0 used to wrap to a huge unsigned index and
  // was only caught incidentally by the unknown-resource size check.  The
  // rejection must name the real problem.
  try {
    build_timeline({record(0, 0b1, 0.0, 1.0)}, kTwoResources, 10.0, 0.0,
                   10.0);
    FAIL() << "zero resource id must be rejected";
  } catch (const AssertionError& error) {
    EXPECT_NE(std::string(error.what()).find("resource id 0"),
              std::string::npos)
        << error.what();
  }
}

/// The pre-optimisation timeline build: every record scans every bucket.
/// Kept verbatim as the reference the ranged accumulation must match
/// bit-for-bit (same adds, same order, same floating-point results).
Timeline full_scan_timeline(
    const std::vector<sched::CompletionRecord>& records,
    const std::vector<std::pair<std::string, int>>& resources, double window,
    SimTime start, SimTime end) {
  Timeline out;
  out.window = window;
  out.start = start;
  const auto buckets = static_cast<std::size_t>(
      std::max(1.0, std::ceil((end - start) / window)));
  double total_nodes = 0.0;
  for (const auto& [label, node_count] : resources) {
    UtilisationSeries series;
    series.label = label;
    series.node_count = node_count;
    series.utilisation.assign(buckets, 0.0);
    out.resources.push_back(std::move(series));
    total_nodes += node_count;
  }
  out.total.assign(buckets, 0.0);
  for (const auto& record : records) {
    const auto resource_index =
        static_cast<std::size_t>(record.resource.value() - 1);
    UtilisationSeries& series = out.resources[resource_index];
    const double weight = static_cast<double>(sched::node_count(record.mask));
    for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
      const double lo = start + static_cast<double>(bucket) * window;
      const double hi = lo + window;
      const double overlap =
          std::max(0.0, std::min(hi, record.end) - std::max(lo, record.start));
      if (overlap <= 0.0) continue;
      series.utilisation[bucket] +=
          overlap * weight / (window * series.node_count);
      out.total[bucket] += overlap * weight / (window * total_nodes);
    }
  }
  return out;
}

TEST(Timeline, RangedAccumulationMatchesFullScanOnCaseStudyWorkload) {
  // The real 600-task case-study run: the ranged build must reproduce the
  // quadratic full scan bit-for-bit (identical CSV text, not just close).
  core::ExperimentConfig config = core::experiment3();
  config.workload.count = 600;
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_EQ(result.completions.size(), 600u);

  std::vector<std::pair<std::string, int>> resources;
  for (const auto& spec : config.system.resources) {
    resources.emplace_back(spec.name, spec.node_count);
  }
  SimTime end = 0.0;
  for (const auto& record : result.completions) {
    end = std::max(end, record.end);
  }
  for (const double window : {7.0, 60.0, 1e6}) {
    const Timeline ranged =
        build_timeline(result.completions, resources, window, 0.0, end);
    const Timeline reference =
        full_scan_timeline(result.completions, resources, window, 0.0, end);
    EXPECT_EQ(timeline_csv(ranged), timeline_csv(reference))
        << "window " << window;
    // Stronger than the CSV text: the raw doubles are bit-for-bit equal.
    ASSERT_EQ(ranged.buckets(), reference.buckets());
    EXPECT_EQ(ranged.total, reference.total);
    for (std::size_t r = 0; r < ranged.resources.size(); ++r) {
      EXPECT_EQ(ranged.resources[r].utilisation,
                reference.resources[r].utilisation)
          << resources[r].first;
    }
  }
}

TEST(Timeline, RecordRunningBackwardsIsRejected) {
  // end < start is always a bookkeeping bug upstream; reject loudly
  // instead of silently subtracting negative node-seconds.
  EXPECT_THROW(build_timeline({record(1, 0b1, 10.0, 5.0)}, kTwoResources,
                              10.0, 0.0, 20.0),
               AssertionError);
}

TEST(Timeline, FromCollector) {
  MetricsCollector collector;
  collector.add_resource(AgentId(1), "S1", 2);
  collector.on_submission(0.0);
  collector.record(record(1, 0b11, 0.0, 30.0));
  const auto timeline = build_timeline(collector, 10.0);
  ASSERT_EQ(timeline.buckets(), 3u);
  for (const double u : timeline.resources[0].utilisation) {
    EXPECT_DOUBLE_EQ(u, 1.0);
  }
}

TEST(Timeline, CsvLongFormat) {
  const auto timeline = build_timeline({record(1, 0b01, 0.0, 10.0)},
                                       kTwoResources, 10.0, 0.0, 10.0);
  const std::string csv = timeline_csv(timeline);
  EXPECT_NE(csv.find("window_start,resource,utilisation"),
            std::string::npos);
  // One of S1's two nodes busy for the whole window = 0.5.
  EXPECT_NE(csv.find("0,S1,0.5"), std::string::npos) << csv;
  EXPECT_NE(csv.find("0,Total,"), std::string::npos);
}

TEST(Timeline, RenderShadesByDecile) {
  const auto timeline = build_timeline(
      {record(1, 0b11, 0.0, 10.0)}, kTwoResources, 10.0, 0.0, 20.0);
  const std::string text = render_timeline(timeline);
  // S1: full busy then idle -> '@' then ' '.
  EXPECT_NE(text.find("S1     |@ |"), std::string::npos) << text;
  EXPECT_NE(text.find("S2     |  |"), std::string::npos);
}

}  // namespace
}  // namespace gridlb::metrics
