#include "sched/resource_monitor.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::sched {
namespace {

TEST(NodeAvailability, StartsAllUp) {
  const NodeAvailability availability(4);
  EXPECT_EQ(availability.mask(), full_mask(4));
  EXPECT_TRUE(availability.up(0));
  EXPECT_TRUE(availability.up(3));
  EXPECT_EQ(availability.transitions(), 0u);
}

TEST(NodeAvailability, SetTogglesAndCounts) {
  NodeAvailability availability(4);
  availability.set(2, false);
  EXPECT_FALSE(availability.up(2));
  EXPECT_EQ(availability.mask(), 0b1011u);
  availability.set(2, false);  // idempotent: no transition
  EXPECT_EQ(availability.transitions(), 1u);
  availability.set(2, true);
  EXPECT_EQ(availability.transitions(), 2u);
  EXPECT_EQ(availability.mask(), full_mask(4));
}

TEST(NodeAvailability, RejectsBadIndices) {
  NodeAvailability availability(4);
  EXPECT_THROW(availability.set(-1, true), AssertionError);
  EXPECT_THROW(availability.set(4, true), AssertionError);
  EXPECT_THROW((void)availability.up(4), AssertionError);
}

TEST(AvailabilityScript, DeterministicAndSorted) {
  const auto a = random_availability_script(8, 1000.0, 100.0, 20.0, 5);
  const auto b = random_availability_script(8, 1000.0, 100.0, 20.0, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].up, b[i].up);
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].at, a[i].at);
  }
}

TEST(AvailabilityScript, AlternatesPerNode) {
  const auto script = random_availability_script(4, 2000.0, 100.0, 30.0, 9);
  // Per node the first event must be a failure, and states must alternate.
  std::array<int, 4> last_state;  // 1 = up, 0 = down, -1 = unknown
  last_state.fill(-1);
  for (const auto& event : script) {
    const int state = event.up ? 1 : 0;
    if (last_state[static_cast<std::size_t>(event.node)] == -1) {
      EXPECT_FALSE(event.up) << "first event must be a failure";
    } else {
      EXPECT_NE(state, last_state[static_cast<std::size_t>(event.node)]);
    }
    last_state[static_cast<std::size_t>(event.node)] = state;
    EXPECT_LT(event.at, 2000.0);
    EXPECT_GT(event.at, 0.0);
  }
}

TEST(AvailabilityScript, IntensityScalesWithMtbf) {
  const auto rare = random_availability_script(16, 10000.0, 2000.0, 100.0, 3);
  const auto frequent =
      random_availability_script(16, 10000.0, 200.0, 100.0, 3);
  EXPECT_GT(frequent.size(), rare.size() * 2);
}

TEST(AvailabilityScript, ValidatesArguments) {
  EXPECT_THROW(random_availability_script(0, 100.0, 10.0, 1.0, 1),
               AssertionError);
  EXPECT_THROW(random_availability_script(4, 0.0, 10.0, 1.0, 1),
               AssertionError);
  EXPECT_THROW(random_availability_script(4, 100.0, 0.0, 1.0, 1),
               AssertionError);
  EXPECT_THROW(random_availability_script(4, 100.0, 10.0, 0.0, 1),
               AssertionError);
}

TEST(ScheduleAvailability, MutatesTruthAtEventTimes) {
  sim::Engine engine;
  NodeAvailability truth(4);
  schedule_availability(engine, truth,
                        {{10.0, 1, false}, {20.0, 1, true}, {15.0, 3, false}});
  engine.run_until(12.0);
  EXPECT_FALSE(truth.up(1));
  EXPECT_TRUE(truth.up(3));
  engine.run_until(16.0);
  EXPECT_FALSE(truth.up(3));
  engine.run_until(25.0);
  EXPECT_TRUE(truth.up(1));
  EXPECT_FALSE(truth.up(3));
}

struct MonitorFixture : ::testing::Test {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator{pace_engine};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<CompletionRecord> completions;

  std::unique_ptr<LocalScheduler> make_scheduler() {
    LocalScheduler::Config config;
    config.resource_id = AgentId(1);
    config.resource = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
    config.node_count = 8;
    config.seed = 3;
    return std::make_unique<LocalScheduler>(
        engine, evaluator, config,
        [this](const CompletionRecord& r) { completions.push_back(r); });
  }
};

TEST_F(MonitorFixture, PollPeriodGovernsStaleness) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 300.0);
  monitor.start();
  schedule_availability(engine, truth, {{10.0, 2, false}});

  // Before the next poll the scheduler still believes node 2 is up.
  engine.run_until(100.0);
  EXPECT_TRUE((scheduler->available_nodes() >> 2) & 1u);
  // The t=300 poll reports the change.
  engine.run_until(301.0);
  EXPECT_FALSE((scheduler->available_nodes() >> 2) & 1u);
  EXPECT_EQ(monitor.changes_reported(), 1u);
  EXPECT_GE(monitor.polls(), 2u);
}

TEST_F(MonitorFixture, ReportsRepairsToo) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 50.0);
  monitor.start();
  schedule_availability(engine, truth, {{10.0, 5, false}, {60.0, 5, true}});
  engine.run_until(51.0);
  EXPECT_FALSE((scheduler->available_nodes() >> 5) & 1u);
  engine.run_until(101.0);
  EXPECT_TRUE((scheduler->available_nodes() >> 5) & 1u);
  EXPECT_EQ(monitor.changes_reported(), 2u);
}

TEST_F(MonitorFixture, FlapWithinOnePollWindowIsInvisible) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 100.0);
  monitor.start();
  // Down at t=10, back at t=50: the t=100 poll sees no difference.
  schedule_availability(engine, truth, {{10.0, 4, false}, {50.0, 4, true}});
  engine.run_until(150.0);
  EXPECT_EQ(monitor.changes_reported(), 0u);
  EXPECT_EQ(scheduler->available_nodes(), full_mask(8));
}

TEST_F(MonitorFixture, SchedulerAvoidsDownNodes) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 10.0);
  monitor.start();
  // Nodes 4..7 fail immediately; the first poll is at t = 0 and the
  // failure at t = 1, so the t = 10 poll reports it.
  schedule_availability(engine, truth, {{1.0, 4, false},
                                        {1.0, 5, false},
                                        {1.0, 6, false},
                                        {1.0, 7, false}});
  // Submit after the report.
  engine.schedule_at(12.0, [this, &scheduler]() {
    for (std::uint64_t i = 0; i < 6; ++i) {
      Task task;
      task.id = TaskId(i);
      task.app = catalogue.find("closure");
      task.arrival = engine.now();
      task.deadline = engine.now() + 1e6;
      scheduler->submit(std::move(task));
    }
  });
  engine.run_until(4000.0);
  ASSERT_EQ(completions.size(), 6u);
  for (const auto& record : completions) {
    EXPECT_EQ(record.mask & 0xF0u, 0u)
        << "task placed on a node known to be down";
  }
}

TEST_F(MonitorFixture, AllNodesDownHoldsQueueUntilRepair) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 5.0);
  monitor.start();
  std::vector<AvailabilityEvent> script;
  for (int node = 0; node < 8; ++node) script.push_back({1.0, node, false});
  for (int node = 0; node < 8; ++node) script.push_back({100.0, node, true});
  schedule_availability(engine, truth, std::move(script));

  engine.schedule_at(10.0, [this, &scheduler]() {
    Task task;
    task.id = TaskId(1);
    task.app = catalogue.find("cpi");
    task.arrival = engine.now();
    task.deadline = engine.now() + 1e6;
    scheduler->submit(std::move(task));
  });
  engine.run_until(50.0);
  EXPECT_EQ(completions.size(), 0u);
  EXPECT_EQ(scheduler->pending_count(), 1);
  engine.run_until(500.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_GE(completions[0].start, 100.0);
}

TEST_F(MonitorFixture, MonitorValidatesConstruction) {
  auto scheduler = make_scheduler();
  NodeAvailability wrong(4);
  EXPECT_THROW(ResourceMonitor(engine, *scheduler, wrong, 10.0),
               AssertionError);
  NodeAvailability truth(8);
  EXPECT_THROW(ResourceMonitor(engine, *scheduler, truth, 0.0),
               AssertionError);
}

TEST_F(MonitorFixture, StartTwiceThrows) {
  auto scheduler = make_scheduler();
  NodeAvailability truth(8);
  ResourceMonitor monitor(engine, *scheduler, truth, 10.0);
  monitor.start();
  EXPECT_THROW(monitor.start(), AssertionError);
}

}  // namespace
}  // namespace gridlb::sched
