// Incremental (delta) evaluation properties (DESIGN.md §16).
//
// Three contracts keep the delta path honest:
//   1. the dirty spans reported by the genetic operators equal the
//      brute-force first-changed position of the genome diff,
//   2. evaluate_from over chains of bred genomes is bit-for-bit the
//      metrics of a full rebuild, and
//   3. the GA's delta/full accounting partitions its decode count.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "pace/paper_applications.hpp"
#include "sched/ga_scheduler.hpp"
#include "sched/schedule_builder.hpp"

namespace gridlb::sched {
namespace {

/// Brute-force dirty span: first position whose (task, mask) pair differs
/// between `before` and `after` — exactly what a left-to-right decode
/// fold is sensitive to.
int brute_force_span(const SolutionString& before,
                     const SolutionString& after) {
  const int m = before.task_count();
  for (int p = 0; p < m; ++p) {
    const int t = before.task_at(p);
    if (t != after.task_at(p) || before.mask_of(t) != after.mask_of(t)) {
      return p;
    }
  }
  return m;
}

class OperatorSpans : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorSpans, ReportedSpanMatchesBruteForceDiff) {
  Rng rng(GetParam() * 6151 + 1);
  for (int round = 0; round < 40; ++round) {
    const int m = static_cast<int>(rng.next_below(30));  // includes empty
    const int nodes = 1 + static_cast<int>(rng.next_below(16));
    const auto parent = SolutionString::random(m, nodes, rng);
    const auto mate = SolutionString::random(m, nodes, rng);

    int cross_span = -1;
    const SolutionString child = parent.crossover(mate, rng, &cross_span);
    EXPECT_EQ(cross_span, brute_force_span(parent, child));

    SolutionString mutated = parent;
    const int mutate_span = mutated.mutate(0.5, 0.1, rng);
    EXPECT_EQ(mutate_span, brute_force_span(parent, mutated));

    SolutionString constrained = parent;
    auto allowed = static_cast<NodeMask>(rng.next_u64()) & full_mask(nodes);
    if (allowed == 0) allowed = 1;
    const int constrain_span = constrained.constrain(allowed, rng);
    EXPECT_EQ(constrain_span, brute_force_span(parent, constrained));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorSpans,
                         ::testing::Range<std::uint64_t>(1, 11));

// Random chains of bred genomes: each step's evaluate_from (with the
// operator-reported span, min-combined over the chain of operators) must
// equal a from-scratch rebuild bit-for-bit.  EXPECT_EQ on doubles is
// deliberate — identical arithmetic, not just close.
class DeltaEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaEquivalence, ChainedDeltaEvaluationsMatchFullRebuilds) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 8;
  ScheduleBuilder builder(evaluator, sgi, nodes);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(GetParam() * 7907 + 3);
  const int m = 1 + static_cast<int>(rng.next_below(40));
  std::vector<Task> tasks;
  for (int i = 0; i < m; ++i) {
    Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i));
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(0.0, 400.0);
    tasks.push_back(std::move(task));
  }
  std::vector<SimTime> free(static_cast<std::size_t>(nodes));
  for (auto& f : free) f = rng.uniform(0.0, 60.0);

  DecodeContext context;
  builder.prepare(context, tasks, free, 5.0, full_mask(nodes));

  DecodeScratch delta_scratch;
  DecodeScratch full_scratch;
  auto solution = SolutionString::random(m, nodes, rng);
  auto mate = SolutionString::random(m, nodes, rng);
  // Seed the delta scratch's recorded stream.
  (void)builder.evaluate(context, solution, delta_scratch);

  for (int step = 0; step < 30; ++step) {
    // Breed the next genome from the current one the way the GA does,
    // min-combining the operators' spans.
    int span = m;
    SolutionString next = solution;
    if (rng.chance(0.5)) {
      next = solution.crossover(mate, rng, &span);
    }
    span = std::min(span, next.mutate(0.4, 0.05, rng));
    if (rng.chance(0.25)) {
      auto allowed = static_cast<NodeMask>(rng.next_u64()) & full_mask(nodes);
      if (allowed == 0) allowed = 1;
      span = std::min(span, next.constrain(allowed, rng));
    }

    const ScheduleMetrics delta =
        builder.evaluate_from(context, next, delta_scratch, span);
    // decode() always rebuilds from scratch — the bit-exact reference.
    const DecodedSchedule full = builder.decode(context, next, full_scratch);

    EXPECT_EQ(delta.completion, full.completion);
    EXPECT_EQ(delta.makespan, full.makespan);
    EXPECT_EQ(delta.total_idle, full.total_idle);
    EXPECT_EQ(delta.weighted_idle, full.weighted_idle);
    EXPECT_EQ(delta.contract_penalty, full.contract_penalty);
    EXPECT_EQ(delta.mean_completion, full.mean_completion);
    EXPECT_EQ(delta.deadline_misses, full.deadline_misses);

    solution = std::move(next);
    if (step % 7 == 3) mate = SolutionString::random(m, nodes, rng);
  }
  // The chain must actually have exercised the delta path.
  EXPECT_GT(delta_scratch.delta_evals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(DeltaAccounting, GaSplitsDecodesIntoDeltaAndFull) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  ScheduleBuilder builder(evaluator, sgi, 16);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(2003);
  std::vector<Task> tasks;
  for (int i = 0; i < 24; ++i) {
    Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i) + 1);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    const auto domain = task.app->deadline_domain();
    task.deadline = rng.uniform(domain.lo, domain.hi);
    tasks.push_back(std::move(task));
  }
  const std::vector<SimTime> idle(16, 0.0);

  GaConfig config;
  config.generations = 25;
  config.eval_threads = 1;
  GaScheduler ga(builder, config, 11);
  const GaResult result = ga.optimize(tasks, idle, 0.0);

  // Every evaluation is exactly one of delta or full, and evolved
  // generations (bred from recorded lineage) must engage the delta path.
  EXPECT_EQ(result.delta_evals + result.full_evals, result.decodes);
  EXPECT_GT(result.delta_evals, 0u);
  EXPECT_GT(result.full_evals, 0u);
  EXPECT_EQ(ga.total_delta_evals() + ga.total_full_evals(),
            ga.total_decodes());
}

}  // namespace
}  // namespace gridlb::sched
