// Queueing statistics of the local scheduler (wait times, peak queue).
#include <gtest/gtest.h>

#include "pace/paper_applications.hpp"
#include "sched/local_scheduler.hpp"

namespace gridlb::sched {
namespace {

struct QueueStatsFixture : ::testing::Test {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator{pace_engine};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<CompletionRecord> completions;

  std::unique_ptr<LocalScheduler> make(SchedulerPolicy policy) {
    LocalScheduler::Config config;
    config.resource_id = AgentId(1);
    config.resource =
        pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
    config.node_count = 4;
    config.policy = policy;
    config.seed = 9;
    return std::make_unique<LocalScheduler>(
        engine, evaluator, config,
        [this](const CompletionRecord& r) { completions.push_back(r); });
  }

  Task make_task(std::uint64_t id, const char* app = "fft") {
    Task task;
    task.id = TaskId(id);
    task.app = catalogue.find(app);
    task.arrival = engine.now();
    task.deadline = engine.now() + 1e6;
    return task;
  }
};

TEST_F(QueueStatsFixture, FreshSchedulerHasZeroStats) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  const QueueStats& stats = scheduler->queue_stats();
  EXPECT_EQ(stats.started, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_wait(), 0.0);
  EXPECT_EQ(stats.peak_queue_length, 0);
}

TEST_F(QueueStatsFixture, SingleImmediateTaskHasNoWait) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  scheduler->submit(make_task(1));
  engine.run();
  const QueueStats& stats = scheduler->queue_stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_DOUBLE_EQ(stats.total_wait, 0.0);
  EXPECT_GT(stats.total_execution, 0.0);
  EXPECT_EQ(stats.peak_queue_length, 1);
}

TEST_F(QueueStatsFixture, QueuedTasksAccumulateWait) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  // Ten fft tasks on 4 nodes: most must wait.
  for (std::uint64_t i = 1; i <= 10; ++i) scheduler->submit(make_task(i));
  engine.run();
  const QueueStats& stats = scheduler->queue_stats();
  EXPECT_EQ(stats.started, 10u);
  EXPECT_GT(stats.total_wait, 0.0);
  EXPECT_GT(stats.max_wait, stats.mean_wait() - 1e-9);
  EXPECT_EQ(stats.peak_queue_length, 10);
}

TEST_F(QueueStatsFixture, FifoCountsWaitsToo) {
  const auto scheduler = make(SchedulerPolicy::kFifo);
  for (std::uint64_t i = 1; i <= 6; ++i) scheduler->submit(make_task(i));
  engine.run();
  const QueueStats& stats = scheduler->queue_stats();
  EXPECT_EQ(stats.started, 6u);
  EXPECT_GT(stats.max_wait, 0.0);
  // FIFO commits at submission, so the queue never exceeds one pending.
  EXPECT_EQ(stats.peak_queue_length, 1);
}

TEST_F(QueueStatsFixture, ExecutionTimeMatchesRecords) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  for (std::uint64_t i = 1; i <= 5; ++i) scheduler->submit(make_task(i));
  engine.run();
  double total = 0.0;
  for (const auto& record : completions) total += record.end - record.start;
  EXPECT_NEAR(scheduler->queue_stats().total_execution, total, 1e-9);
}

TEST_F(QueueStatsFixture, CancelledTasksNeverStart) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  for (std::uint64_t i = 1; i <= 8; ++i) scheduler->submit(make_task(i));
  EXPECT_TRUE(scheduler->cancel(TaskId(8)));
  engine.run();
  EXPECT_EQ(scheduler->queue_stats().started, 7u);
}

}  // namespace
}  // namespace gridlb::sched
