// Verifies the DESIGN.md §11 claim directly: steady-state GA evaluation
// (context prepared once, then metrics-only evaluate per individual)
// performs zero heap allocations.
//
// The hook is a replacement global operator new that bumps a thread-local
// counter while armed.  Replacing it in one TU replaces it for the whole
// test binary, but unarmed it is behaviourally identical to the default
// (malloc-backed) allocator, so the other suites are unaffected; it also
// composes with ASan/TSan, which interpose at the malloc layer below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "pace/paper_applications.hpp"
#include "sched/ga_scheduler.hpp"

namespace {
thread_local bool g_counting = false;
thread_local std::uint64_t g_allocations = 0;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_counting) ++g_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gridlb::sched {
namespace {

std::vector<Task> random_tasks(const pace::ApplicationCatalogue& catalogue,
                               int count, Rng& rng) {
  std::vector<Task> tasks;
  for (int i = 0; i < count; ++i) {
    Task task;
    task.id = TaskId(static_cast<std::uint64_t>(i) + 1);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(50.0, 500.0);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(AllocFree, SteadyStateEvaluationDoesNotAllocate) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 16;
  ScheduleBuilder builder(evaluator, sgi, nodes);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(11);
  const auto tasks = random_tasks(catalogue, 40, rng);
  const std::vector<SimTime> free(static_cast<std::size_t>(nodes), 0.0);

  std::vector<SolutionString> population;
  for (int k = 0; k < 64; ++k) {
    population.push_back(SolutionString::random(40, nodes, rng));
  }

  DecodeContext context;
  DecodeScratch scratch;
  builder.prepare(context, tasks, free, 0.0, full_mask(nodes));
  // Warm-up sizes the scratch's gap buffer to the run's worst case.
  (void)builder.evaluate(context, population.front(), scratch);

  CostWeights weights;
  double sink = 0.0;
  g_allocations = 0;
  g_counting = true;
  for (const auto& solution : population) {
    const ScheduleMetrics metrics =
        builder.evaluate(context, solution, scratch);
    sink += cost_value(metrics, weights);
    // The per-individual memo key is part of the hot path too.
    sink += static_cast<double>(solution.fingerprint().lo & 1u);
  }
  g_counting = false;

  EXPECT_EQ(g_allocations, 0u);
  EXPECT_GT(sink, 0.0);  // keep the loop observable
}

TEST(AllocFree, RepreparingSameShapeContextDoesNotAllocate) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 16;
  ScheduleBuilder builder(evaluator, sgi, nodes);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(13);
  const auto tasks = random_tasks(catalogue, 24, rng);
  std::vector<SimTime> free(static_cast<std::size_t>(nodes), 0.0);

  DecodeContext context;
  builder.prepare(context, tasks, free, 0.0, full_mask(nodes));

  // Successive runs over the same application mix reuse the context's and
  // table's capacity: the re-prepare is allocation-free as well.
  for (auto& f : free) f += 5.0;
  g_allocations = 0;
  g_counting = true;
  builder.prepare(context, tasks, free, 5.0, full_mask(nodes));
  g_counting = false;
  EXPECT_EQ(g_allocations, 0u);
}

}  // namespace
}  // namespace gridlb::sched
