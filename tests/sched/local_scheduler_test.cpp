#include "sched/local_scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::sched {
namespace {

struct LocalSchedFixture : ::testing::Test {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator{pace_engine};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<CompletionRecord> completions;
  std::uint64_t next_id = 1;

  LocalScheduler::Config config(SchedulerPolicy policy) {
    LocalScheduler::Config c;
    c.resource_id = AgentId(1);
    c.resource = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
    c.node_count = 16;
    c.policy = policy;
    c.seed = 7;
    return c;
  }

  std::unique_ptr<LocalScheduler> make(SchedulerPolicy policy) {
    return std::make_unique<LocalScheduler>(
        engine, evaluator, config(policy),
        [this](const CompletionRecord& r) { completions.push_back(r); });
  }

  Task make_task(const char* app, double deadline_offset = 1e6) {
    Task task;
    task.id = TaskId(next_id++);
    task.app = catalogue.find(app);
    task.arrival = engine.now();
    task.deadline = engine.now() + deadline_offset;
    return task;
  }
};

TEST_F(LocalSchedFixture, PolicyNames) {
  EXPECT_EQ(policy_name(SchedulerPolicy::kFifo), "FIFO");
  EXPECT_EQ(policy_name(SchedulerPolicy::kGa), "GA");
}

TEST_F(LocalSchedFixture, FreshSchedulerIsIdle) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  EXPECT_EQ(scheduler->pending_count(), 0);
  EXPECT_EQ(scheduler->running_count(), 0);
  EXPECT_DOUBLE_EQ(scheduler->freetime(), 0.0);
}

TEST_F(LocalSchedFixture, SupportsDefaultEnvironments) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  EXPECT_TRUE(scheduler->supports("mpi"));
  EXPECT_TRUE(scheduler->supports("pvm"));
  EXPECT_TRUE(scheduler->supports("test"));
  EXPECT_FALSE(scheduler->supports("cuda"));
}

TEST_F(LocalSchedFixture, RejectsUnsupportedEnvironment) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  Task task = make_task("fft");
  task.environment = "cuda";
  EXPECT_THROW(scheduler->submit(std::move(task)), AssertionError);
}

TEST_F(LocalSchedFixture, RejectsTaskWithoutModel) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  Task task = make_task("fft");
  task.app = nullptr;
  EXPECT_THROW(scheduler->submit(std::move(task)), AssertionError);
}

TEST_F(LocalSchedFixture, GaExecutesSingleTaskAtPredictedTime) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  scheduler->submit(make_task("closure", 100.0));
  engine.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_DOUBLE_EQ(completions[0].start, 0.0);
  // The GA chose some allocation; completion must match its Table 1 time.
  const int width = node_count(completions[0].mask);
  EXPECT_DOUBLE_EQ(completions[0].end,
                   catalogue.find("closure")->reference_time(width));
  EXPECT_EQ(scheduler->tasks_completed(), 1u);
  EXPECT_EQ(scheduler->running_count(), 0);
}

TEST_F(LocalSchedFixture, FifoExecutesAllTasks) {
  const auto scheduler = make(SchedulerPolicy::kFifo);
  for (int i = 0; i < 10; ++i) scheduler->submit(make_task("fft"));
  engine.run();
  EXPECT_EQ(completions.size(), 10u);
  EXPECT_GT(scheduler->fifo_subsets_tried(), 0u);
  EXPECT_EQ(scheduler->ga_invocations(), 0u);
}

TEST_F(LocalSchedFixture, GaExecutesAllTasksAcrossArrivals) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  for (int i = 0; i < 12; ++i) {
    engine.schedule_at(static_cast<double>(i), [this, &scheduler]() {
      scheduler->submit(make_task("jacobi", 400.0));
    });
  }
  engine.run();
  EXPECT_EQ(completions.size(), 12u);
  EXPECT_GT(scheduler->ga_invocations(), 0u);
  EXPECT_GT(scheduler->ga_decodes(), 0u);
}

TEST_F(LocalSchedFixture, NoNodeRunsTwoTasksAtOnce) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  for (int i = 0; i < 20; ++i) {
    engine.schedule_at(static_cast<double>(i) * 0.5, [this, &scheduler]() {
      scheduler->submit(make_task("memsort", 300.0));
    });
  }
  engine.run();
  ASSERT_EQ(completions.size(), 20u);
  for (int node = 0; node < 16; ++node) {
    std::vector<std::pair<SimTime, SimTime>> intervals;
    for (const auto& record : completions) {
      if ((record.mask >> node) & 1u) {
        intervals.emplace_back(record.start, record.end);
      }
    }
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first + 1e-9, intervals[i - 1].second)
          << "node " << node << " overlaps";
    }
  }
}

TEST_F(LocalSchedFixture, TaskNeverStartsBeforeArrival) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  engine.schedule_at(5.0, [this, &scheduler]() {
    scheduler->submit(make_task("cpi", 100.0));
  });
  engine.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_GE(completions[0].start, 5.0);
  EXPECT_DOUBLE_EQ(completions[0].submitted, 5.0);
}

TEST_F(LocalSchedFixture, FreetimeAdvancesWithLoad) {
  const auto scheduler = make(SchedulerPolicy::kFifo);
  scheduler->submit(make_task("sweep3d"));
  // FIFO commits synchronously: freetime reflects the new busy horizon.
  EXPECT_GT(scheduler->freetime(), 0.0);
}

TEST_F(LocalSchedFixture, GaFreetimeReflectsPlanMakespan) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  for (int i = 0; i < 5; ++i) scheduler->submit(make_task("sweep3d", 1e6));
  // Run just the zero-delay reschedule event.
  while (engine.next_event_time() <= 0.0 && engine.step()) {
  }
  EXPECT_GT(scheduler->freetime(), 0.0);
}

TEST_F(LocalSchedFixture, CompletionRecordFieldsAreConsistent) {
  const auto scheduler = make(SchedulerPolicy::kGa);
  scheduler->submit(make_task("improc", 250.0));
  engine.run();
  ASSERT_EQ(completions.size(), 1u);
  const auto& record = completions[0];
  EXPECT_EQ(record.resource, AgentId(1));
  EXPECT_EQ(record.app_name, "improc");
  EXPECT_GT(record.mask, 0u);
  EXPECT_LE(record.start, record.end);
  EXPECT_DOUBLE_EQ(record.deadline, 250.0);
}

TEST_F(LocalSchedFixture, IdenticalRunsAreDeterministic) {
  // Two schedulers with the same seed and workload produce identical
  // completion traces.
  auto run_once = [this]() {
    sim::Engine local_engine;
    pace::EvaluationEngine local_pace;
    pace::CachedEvaluator local_evaluator(local_pace);
    std::vector<CompletionRecord> local_completions;
    LocalScheduler scheduler(
        local_engine, local_evaluator, config(SchedulerPolicy::kGa),
        [&](const CompletionRecord& r) { local_completions.push_back(r); });
    std::uint64_t id = 1;
    for (int i = 0; i < 8; ++i) {
      local_engine.schedule_at(i, [&, i]() {
        Task task;
        task.id = TaskId(id++);
        task.app = catalogue.all()[static_cast<std::size_t>(i) % 7];
        task.arrival = local_engine.now();
        task.deadline = local_engine.now() + 120.0;
        scheduler.submit(std::move(task));
      });
    }
    local_engine.run();
    return local_completions;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].task, second[i].task);
    EXPECT_EQ(first[i].mask, second[i].mask);
    EXPECT_DOUBLE_EQ(first[i].start, second[i].start);
    EXPECT_DOUBLE_EQ(first[i].end, second[i].end);
  }
}

TEST_F(LocalSchedFixture, GaBeatsFifoUnderOverload) {
  // Saturate a slow resource; the GA's mean lateness must not exceed the
  // min-execution FIFO's.
  auto run_policy = [this](SchedulerPolicy policy, FifoObjective objective) {
    sim::Engine local_engine;
    pace::EvaluationEngine local_pace;
    pace::CachedEvaluator local_evaluator(local_pace);
    double lateness = 0.0;
    LocalScheduler::Config c = config(policy);
    c.resource =
        pace::ResourceModel::of(pace::HardwareType::kSunSparcStation2);
    c.fifo_objective = objective;
    LocalScheduler scheduler(local_engine, local_evaluator, c,
                             [&](const CompletionRecord& r) {
                               lateness += std::max(0.0, r.end - r.deadline);
                             });
    std::uint64_t id = 1;
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      local_engine.schedule_at(i, [&, i]() {
        Task task;
        task.id = TaskId(id++);
        task.app = catalogue.all()[static_cast<std::size_t>(i) % 7];
        const auto domain = task.app->deadline_domain();
        task.arrival = local_engine.now();
        task.deadline = local_engine.now() + (domain.lo + domain.hi) / 2.0;
        scheduler.submit(std::move(task));
      });
    }
    local_engine.run();
    return lateness;
  };
  const double fifo = run_policy(SchedulerPolicy::kFifo,
                                 FifoObjective::kMinExecution);
  const double ga =
      run_policy(SchedulerPolicy::kGa, FifoObjective::kMinExecution);
  EXPECT_LT(ga, fifo);
}

}  // namespace
}  // namespace gridlb::sched
