#include "sched/solution.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/assert.hpp"

namespace gridlb::sched {
namespace {

TEST(NodeMask, FullMask) {
  EXPECT_EQ(full_mask(1), 0b1u);
  EXPECT_EQ(full_mask(4), 0b1111u);
  EXPECT_EQ(full_mask(16), 0xFFFFu);
  EXPECT_EQ(full_mask(32), 0xFFFFFFFFu);
}

TEST(NodeMask, NodeCount) {
  EXPECT_EQ(node_count(0), 0);
  EXPECT_EQ(node_count(0b1011), 3);
  EXPECT_EQ(node_count(full_mask(16)), 16);
}

TEST(NodeMask, ForEachNodeAscending) {
  std::vector<int> nodes;
  for_each_node(0b101001, [&nodes](int n) { nodes.push_back(n); });
  EXPECT_EQ(nodes, (std::vector<int>{0, 3, 5}));
}

TEST(NodeMask, ValidMask) {
  EXPECT_TRUE(valid_mask(0b1, 4));
  EXPECT_TRUE(valid_mask(0b1111, 4));
  EXPECT_FALSE(valid_mask(0, 4));        // empty
  EXPECT_FALSE(valid_mask(0b10000, 4));  // beyond resource
}

TEST(SolutionString, RandomIsValid) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = SolutionString::random(10, 16, rng);
    EXPECT_TRUE(s.valid());
    EXPECT_EQ(s.task_count(), 10);
    EXPECT_EQ(s.node_count(), 16);
  }
}

TEST(SolutionString, RandomHandlesEmptyTaskSet) {
  Rng rng(1);
  const auto s = SolutionString::random(0, 16, rng);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.task_count(), 0);
}

TEST(SolutionString, ConstructorValidates) {
  EXPECT_THROW(SolutionString({0, 0}, {1, 1}, 4), AssertionError);  // dup
  EXPECT_THROW(SolutionString({0, 2}, {1, 1}, 4), AssertionError);  // hole
  EXPECT_THROW(SolutionString({0, 1}, {1, 0}, 4), AssertionError);  // empty
  EXPECT_THROW(SolutionString({0, 1}, {1}, 4), AssertionError);  // size
  EXPECT_THROW(SolutionString({0}, {0b10000}, 4), AssertionError);  // range
  EXPECT_NO_THROW(SolutionString({1, 0}, {0b11, 0b100}, 4));
}

TEST(SolutionString, Accessors) {
  const SolutionString s({2, 0, 1}, {0b001, 0b010, 0b100}, 4);
  EXPECT_EQ(s.task_at(0), 2);
  EXPECT_EQ(s.task_at(2), 1);
  EXPECT_EQ(s.mask_of(0), 0b001u);
  EXPECT_EQ(s.mask_of(2), 0b100u);
}

TEST(Crossover, ChildrenAreAlwaysValid) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = SolutionString::random(12, 8, rng);
    const auto b = SolutionString::random(12, 8, rng);
    const auto child = a.crossover(b, rng);
    ASSERT_TRUE(child.valid()) << "trial " << trial;
  }
}

TEST(Crossover, OrderPrefixComesFromFirstParent) {
  // With the cut at any point, the child's ordering must start with a
  // prefix of parent A's ordering.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = SolutionString::random(8, 4, rng);
    const auto b = SolutionString::random(8, 4, rng);
    const auto child = a.crossover(b, rng);
    // Find the longest common prefix with A, then verify the remainder
    // follows B's relative order.
    std::size_t prefix = 0;
    while (prefix < child.order().size() &&
           child.order()[prefix] == a.order()[prefix]) {
      ++prefix;
    }
    std::vector<int> rest(child.order().begin() +
                              static_cast<std::ptrdiff_t>(prefix),
                          child.order().end());
    std::vector<int> b_filtered;
    for (const int t : b.order()) {
      if (std::find(rest.begin(), rest.end(), t) != rest.end()) {
        b_filtered.push_back(t);
      }
    }
    EXPECT_EQ(rest, b_filtered) << "trial " << trial;
  }
}

TEST(Crossover, EachMaskBitComesFromAParent) {
  // Away from the single crossover bit, every task's mask equals one
  // parent's mask (possibly with an empty-repair bit added; repairs only
  // trigger on empty masks, which we avoid by using dense parents).
  Rng rng(4);
  const SolutionString a({0, 1, 2}, {0b1111, 0b1111, 0b1111}, 4);
  const SolutionString b({2, 1, 0}, {0b0001, 0b0010, 0b0100}, 4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto child = a.crossover(b, rng);
    for (int t = 0; t < 3; ++t) {
      const NodeMask mask = child.mask_of(t);
      const NodeMask low_a_high_b =
          (a.mask_of(t) & full_mask(4)) | (b.mask_of(t) & full_mask(4));
      // Every child bit must exist in the union of the parents' bits.
      EXPECT_EQ(mask & ~low_a_high_b, 0u);
    }
  }
}

TEST(Crossover, EmptyTaskSet) {
  Rng rng(5);
  const auto a = SolutionString::random(0, 4, rng);
  const auto b = SolutionString::random(0, 4, rng);
  const auto child = a.crossover(b, rng);
  EXPECT_EQ(child.task_count(), 0);
}

TEST(Crossover, MismatchedParentsRejected) {
  Rng rng(6);
  const auto a = SolutionString::random(3, 4, rng);
  const auto b = SolutionString::random(4, 4, rng);
  EXPECT_THROW(a.crossover(b, rng), AssertionError);
}

TEST(Mutate, PreservesValidity) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto s = SolutionString::random(10, 8, rng);
    s.mutate(0.5, 0.2, rng);
    ASSERT_TRUE(s.valid());
  }
}

TEST(Mutate, ZeroRatesLeaveOrderingIntact) {
  Rng rng(8);
  auto s = SolutionString::random(10, 8, rng);
  const auto before = s;
  s.mutate(0.0, 0.0, rng);
  EXPECT_EQ(s, before);
}

TEST(Mutate, SwapRateOneAlwaysTransposes) {
  Rng rng(9);
  auto s = SolutionString::random(10, 8, rng);
  const auto before_order = s.order();
  s.mutate(1.0, 0.0, rng);
  int moved = 0;
  for (std::size_t i = 0; i < before_order.size(); ++i) {
    if (before_order[i] != s.order()[i]) ++moved;
  }
  EXPECT_EQ(moved, 2);  // exactly one transposition
}

TEST(Mutate, SingleTaskCannotSwap) {
  Rng rng(10);
  auto s = SolutionString::random(1, 8, rng);
  EXPECT_NO_THROW(s.mutate(1.0, 0.5, rng));
  EXPECT_TRUE(s.valid());
}

TEST(RemapTasks, DropsStartedTasksKeepsOrder) {
  Rng rng(11);
  // Tasks 0..4; task 1 and 3 started (removed); 0->0, 2->1, 4->2.
  SolutionString s({4, 1, 0, 3, 2}, {0b1, 0b10, 0b100, 0b1000, 0b1}, 4);
  s.remap_tasks({0, -1, 1, -1, 2}, 3, rng);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.task_count(), 3);
  EXPECT_EQ(s.order(), (std::vector<int>{2, 0, 1}));  // was 4,0,2
  EXPECT_EQ(s.mask_of(0), 0b1u);    // old task 0
  EXPECT_EQ(s.mask_of(1), 0b100u);  // old task 2
  EXPECT_EQ(s.mask_of(2), 0b1u);    // old task 4
}

TEST(RemapTasks, InsertsNewTasks) {
  Rng rng(12);
  SolutionString s({1, 0}, {0b1, 0b10}, 4);
  s.remap_tasks({0, 1}, 4, rng);  // two fresh tasks appended
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.task_count(), 4);
  // The surviving tasks keep their relative order (1 before 0).
  const auto& order = s.order();
  const auto pos = [&order](int task) {
    return std::find(order.begin(), order.end(), task) - order.begin();
  };
  EXPECT_LT(pos(1), pos(0));
  EXPECT_EQ(s.mask_of(0), 0b1u);
  EXPECT_EQ(s.mask_of(1), 0b10u);
}

TEST(RemapTasks, FullTurnover) {
  Rng rng(13);
  SolutionString s({0, 1}, {0b1, 0b10}, 4);
  s.remap_tasks({-1, -1}, 3, rng);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.task_count(), 3);
}

TEST(RemapTasks, RejectsWrongSizeTable) {
  Rng rng(14);
  SolutionString s({0, 1}, {0b1, 0b10}, 4);
  EXPECT_THROW(s.remap_tasks({0}, 2, rng), AssertionError);
}

// Property sweep: operators preserve validity across sizes.
class OperatorValidity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OperatorValidity, CrossoverAndMutateStayLegal) {
  const auto [tasks, nodes] = GetParam();
  Rng rng(static_cast<std::uint64_t>(tasks * 100 + nodes));
  auto a = SolutionString::random(tasks, nodes, rng);
  auto b = SolutionString::random(tasks, nodes, rng);
  for (int round = 0; round < 50; ++round) {
    auto child = a.crossover(b, rng);
    child.mutate(0.3, 0.1, rng);
    ASSERT_TRUE(child.valid());
    b = a;
    a = std::move(child);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OperatorValidity,
    ::testing::Combine(::testing::Values(1, 2, 5, 20, 50),
                       ::testing::Values(1, 4, 16, 32)));

}  // namespace
}  // namespace gridlb::sched
