// The determinism contract of parallel evaluation (DESIGN.md): for a
// fixed seed, GaScheduler::optimize must produce bit-for-bit identical
// results whatever `eval_threads` is — only the evaluate phase runs on
// the pool, and nothing in it touches the GA's random stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"
#include "sched/ga_scheduler.hpp"

namespace gridlb::sched {
namespace {

struct ParallelGaFixture : ::testing::Test {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator{engine};
  pace::ResourceModel sgi =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  ScheduleBuilder builder{evaluator, sgi, 16};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<SimTime> idle = std::vector<SimTime>(16, 0.0);

  std::vector<Task> make_tasks(int count, std::uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<Task> tasks;
    for (int i = 0; i < count; ++i) {
      Task task;
      task.id = TaskId(static_cast<std::uint64_t>(i) + 1);
      task.app = catalogue.all()[static_cast<std::size_t>(
          rng.next_below(catalogue.size()))];
      const auto domain = task.app->deadline_domain();
      task.deadline = rng.uniform(domain.lo, domain.hi);
      tasks.push_back(std::move(task));
    }
    return tasks;
  }

  static void expect_identical(const GaResult& serial,
                               const GaResult& parallel) {
    EXPECT_EQ(serial.best, parallel.best);
    EXPECT_EQ(serial.best_cost, parallel.best_cost);  // bit-for-bit
    EXPECT_EQ(serial.generations_run, parallel.generations_run);
    EXPECT_EQ(serial.decodes, parallel.decodes);
    EXPECT_EQ(serial.memo_hits, parallel.memo_hits);
    EXPECT_EQ(serial.table_reads, parallel.table_reads);
    // The delta/full split is data-determined (per-parent chains), so it
    // too must not move with the thread count.
    EXPECT_EQ(serial.delta_evals, parallel.delta_evals);
    EXPECT_EQ(serial.full_evals, parallel.full_evals);
    EXPECT_EQ(serial.delta_evals + serial.full_evals, serial.decodes);
    ASSERT_EQ(serial.schedule.placements.size(),
              parallel.schedule.placements.size());
    for (std::size_t i = 0; i < serial.schedule.placements.size(); ++i) {
      EXPECT_EQ(serial.schedule.placements[i].start,
                parallel.schedule.placements[i].start);
      EXPECT_EQ(serial.schedule.placements[i].end,
                parallel.schedule.placements[i].end);
      EXPECT_EQ(serial.schedule.placements[i].mask,
                parallel.schedule.placements[i].mask);
    }
    EXPECT_EQ(serial.schedule.makespan, parallel.schedule.makespan);
    EXPECT_EQ(serial.schedule.weighted_idle, parallel.schedule.weighted_idle);
    EXPECT_EQ(serial.schedule.contract_penalty,
              parallel.schedule.contract_penalty);
  }
};

TEST_F(ParallelGaFixture, ConfigValidationRejectsNegativeThreads) {
  GaConfig bad;
  bad.eval_threads = -1;
  EXPECT_THROW(GaScheduler(builder, bad, 1), AssertionError);
}

TEST_F(ParallelGaFixture, ThreadCountResolution) {
  GaConfig config;
  config.eval_threads = 1;
  EXPECT_EQ(GaScheduler(builder, config, 1).eval_threads(), 1);
  config.eval_threads = 4;
  EXPECT_EQ(GaScheduler(builder, config, 1).eval_threads(), 4);
  config.eval_threads = 0;  // hardware concurrency, capped by population
  const int resolved = GaScheduler(builder, config, 1).eval_threads();
  EXPECT_GE(resolved, 1);
  EXPECT_LE(resolved, std::max(ThreadPool::hardware_threads(),
                               config.population_size));
  config.eval_threads = 1000;  // more threads than individuals: capped
  EXPECT_LE(GaScheduler(builder, config, 1).eval_threads(),
            config.population_size);
}

TEST_F(ParallelGaFixture, ResultRecordsEffectiveThreadCount) {
  const auto tasks = make_tasks(6);
  GaConfig config;
  config.eval_threads = 3;
  GaScheduler three(builder, config, 1);
  EXPECT_EQ(three.optimize(tasks, idle, 0.0).eval_threads, 3);
  config.eval_threads = 1;
  GaScheduler one(builder, config, 1);
  EXPECT_EQ(one.optimize(tasks, idle, 0.0).eval_threads, 1);
}

TEST_F(ParallelGaFixture, FourThreadsMatchSerialExactly) {
  const auto tasks = make_tasks(12);
  for (const std::uint64_t seed : {1ULL, 42ULL, 2003ULL}) {
    GaConfig serial_config;
    serial_config.eval_threads = 1;
    GaConfig parallel_config;
    parallel_config.eval_threads = 4;
    GaScheduler serial(builder, serial_config, seed);
    GaScheduler parallel(builder, parallel_config, seed);
    expect_identical(serial.optimize(tasks, idle, 0.0),
                     parallel.optimize(tasks, idle, 0.0));
  }
}

TEST_F(ParallelGaFixture, DeterminismHoldsAcrossWarmStartedInvocations) {
  // Re-invocations exercise sync_population (remap + fresh arrivals),
  // which consumes rng_ on the main thread; the parallel evaluate phase
  // must not perturb it.
  GaConfig serial_config;
  serial_config.eval_threads = 1;
  serial_config.generations = 10;
  GaConfig parallel_config = serial_config;
  parallel_config.eval_threads = 4;
  GaScheduler serial(builder, serial_config, 7);
  GaScheduler parallel(builder, parallel_config, 7);

  auto tasks = make_tasks(10);
  expect_identical(serial.optimize(tasks, idle, 0.0),
                   parallel.optimize(tasks, idle, 0.0));

  // Drop the first two tasks and add three fresh arrivals.
  tasks.erase(tasks.begin(), tasks.begin() + 2);
  auto arrivals = make_tasks(3, 99);
  for (auto& task : arrivals) {
    task.id = TaskId(task.id.value() + 100);
    tasks.push_back(task);
  }
  expect_identical(serial.optimize(tasks, idle, 50.0),
                   parallel.optimize(tasks, idle, 50.0));
}

TEST_F(ParallelGaFixture, DeterminismHoldsUnderAvailabilityMask) {
  const auto tasks = make_tasks(8);
  const NodeMask available = 0x00FF;  // half the resource is down
  GaConfig serial_config;
  serial_config.eval_threads = 1;
  GaConfig parallel_config;
  parallel_config.eval_threads = 4;
  GaScheduler serial(builder, serial_config, 5);
  GaScheduler parallel(builder, parallel_config, 5);
  expect_identical(serial.optimize(tasks, idle, 0.0, available),
                   parallel.optimize(tasks, idle, 0.0, available));
}

}  // namespace
}  // namespace gridlb::sched
