// Availability-constrained scheduling across the sched layer: solution
// constraining, decoding with down nodes, GA/FIFO placement restrictions,
// task cancellation, and the prediction-error execution model.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sched/ga_scheduler.hpp"
#include "sched/local_scheduler.hpp"

namespace gridlb::sched {
namespace {

struct AvailabilityFixture : ::testing::Test {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator{engine};
  pace::ResourceModel sgi =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  ScheduleBuilder builder{evaluator, sgi, 8};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<SimTime> idle = std::vector<SimTime>(8, 0.0);

  std::vector<Task> make_tasks(int count) {
    std::vector<Task> tasks;
    for (int i = 0; i < count; ++i) {
      Task task;
      task.id = TaskId(static_cast<std::uint64_t>(i));
      task.app = catalogue.all()[static_cast<std::size_t>(i) % 7];
      task.deadline = 500.0;
      tasks.push_back(std::move(task));
    }
    return tasks;
  }
};

TEST_F(AvailabilityFixture, ConstrainIntersectsAndRepairs) {
  Rng rng(1);
  auto solution = SolutionString::random(10, 8, rng);
  const NodeMask allowed = 0b00001111;
  solution.constrain(allowed, rng);
  EXPECT_TRUE(solution.valid());
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(solution.mask_of(t) & ~allowed, 0u);
    EXPECT_NE(solution.mask_of(t), 0u);
  }
}

TEST_F(AvailabilityFixture, ConstrainPreservesSubsets) {
  Rng rng(2);
  SolutionString solution({0, 1}, {0b0011, 0b1100}, 8);
  solution.constrain(0b0111, rng);
  EXPECT_EQ(solution.mask_of(0), 0b0011u);  // already inside: untouched
  EXPECT_EQ(solution.mask_of(1), 0b0100u);  // clipped to the allowed part
}

TEST_F(AvailabilityFixture, ConstrainRejectsEmptyAllowedSet) {
  Rng rng(3);
  auto solution = SolutionString::random(4, 8, rng);
  EXPECT_THROW(solution.constrain(0, rng), AssertionError);
}

TEST_F(AvailabilityFixture, DecodePushesDownNodeWorkToHorizon) {
  const auto tasks = make_tasks(1);
  // Task allocated on node 7, which is down.
  const SolutionString solution({0}, {0b10000000}, 8);
  const auto decoded =
      builder.decode(tasks, solution, idle, 0.0, /*available=*/0b01111111);
  EXPECT_GE(decoded.placements[0].start, ScheduleBuilder::kUnavailableHorizon);
}

TEST_F(AvailabilityFixture, DecodeIgnoresDownNodesForIdle) {
  const auto tasks = make_tasks(1);
  const SolutionString solution({0}, {0b00000001}, 8);
  const NodeMask half = 0b00001111;
  const auto full_decode = builder.decode(tasks, solution, idle, 0.0);
  const auto half_decode = builder.decode(tasks, solution, idle, 0.0, half);
  // With 4 nodes down, only 3 idle nodes remain to accumulate trailing
  // idle (vs 7 with everything up).
  EXPECT_LT(half_decode.total_idle, full_decode.total_idle);
  EXPECT_DOUBLE_EQ(half_decode.makespan, full_decode.makespan);
}

TEST_F(AvailabilityFixture, GaRespectsAvailabilityMask) {
  GaConfig config;
  config.generations = 10;
  GaScheduler scheduler(builder, config, 5);
  const auto tasks = make_tasks(8);
  const NodeMask available = 0b00111100;
  const auto result = scheduler.optimize(tasks, idle, 0.0, available);
  EXPECT_TRUE(result.best.valid());
  for (int t = 0; t < result.best.task_count(); ++t) {
    EXPECT_EQ(result.best.mask_of(t) & ~available, 0u)
        << "task " << t << " uses a down node";
  }
  EXPECT_LT(result.schedule.completion,
            ScheduleBuilder::kUnavailableHorizon);
}

TEST_F(AvailabilityFixture, GaRejectsAllNodesDown) {
  GaScheduler scheduler(builder, GaConfig{}, 5);
  const auto tasks = make_tasks(2);
  EXPECT_THROW(scheduler.optimize(tasks, idle, 0.0, 0), AssertionError);
}

TEST_F(AvailabilityFixture, GaShrinkThenGrowAcrossInvocations) {
  GaConfig config;
  config.generations = 10;
  GaScheduler scheduler(builder, config, 7);
  const auto tasks = make_tasks(6);
  const auto narrow = scheduler.optimize(tasks, idle, 0.0, 0b00000011);
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(narrow.best.mask_of(t) & ~NodeMask{0b11}, 0u);
  }
  // Nodes return: the warm-started population must spread out again.
  const auto wide = scheduler.optimize(tasks, idle, 10.0, full_mask(8));
  EXPECT_TRUE(wide.best.valid());
  EXPECT_LE(wide.schedule.makespan, narrow.schedule.makespan);
}

TEST_F(AvailabilityFixture, FifoNeverChoosesDownNodes) {
  FifoScheduler fifo(evaluator, sgi, 8, FifoObjective::kMinExecution);
  Task task;
  task.id = TaskId(1);
  task.app = catalogue.find("cpi");
  task.deadline = 1e6;
  const NodeMask available = 0b00011111;
  const auto placement = fifo.place(task, idle, 0.0, available);
  EXPECT_NE(placement.mask, 0u);
  EXPECT_EQ(placement.mask & ~available, 0u);
}

TEST_F(AvailabilityFixture, FifoRejectsAllDown) {
  FifoScheduler fifo(evaluator, sgi, 8);
  Task task;
  task.id = TaskId(1);
  task.app = catalogue.find("cpi");
  task.deadline = 1e6;
  EXPECT_THROW((void)fifo.place(task, idle, 0.0, 0), AssertionError);
}

// --- LocalScheduler-level behaviours -------------------------------------

struct LocalAvailabilityFixture : ::testing::Test {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator{pace_engine};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<CompletionRecord> completions;

  std::unique_ptr<LocalScheduler> make(double prediction_error = 0.0) {
    LocalScheduler::Config config;
    config.resource_id = AgentId(1);
    config.resource =
        pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
    config.node_count = 8;
    config.seed = 11;
    config.prediction_error = prediction_error;
    return std::make_unique<LocalScheduler>(
        engine, evaluator, config,
        [this](const CompletionRecord& r) { completions.push_back(r); });
  }

  Task make_task(std::uint64_t id, const char* app = "fft") {
    Task task;
    task.id = TaskId(id);
    task.app = catalogue.find(app);
    task.arrival = engine.now();
    task.deadline = engine.now() + 1e6;
    return task;
  }
};

TEST_F(LocalAvailabilityFixture, CancelRemovesPendingTask) {
  auto scheduler = make();
  // Fill the machine first so later tasks stay pending.
  for (std::uint64_t i = 1; i <= 12; ++i) {
    scheduler->submit(make_task(i));
  }
  // Before the zero-delay reschedule fires, everything is still pending.
  EXPECT_TRUE(scheduler->cancel(TaskId(12)));
  EXPECT_FALSE(scheduler->cancel(TaskId(12)));  // already gone
  EXPECT_FALSE(scheduler->cancel(TaskId(99)));  // never submitted
  engine.run();
  EXPECT_EQ(completions.size(), 11u);
  for (const auto& record : completions) {
    EXPECT_NE(record.task, TaskId(12));
  }
}

TEST_F(LocalAvailabilityFixture, CancelCannotRecallRunningTask) {
  auto scheduler = make();
  scheduler->submit(make_task(1));
  // Run the reschedule so the task starts.
  while (engine.next_event_time() <= 0.0 && engine.step()) {
  }
  EXPECT_EQ(scheduler->running_count(), 1);
  EXPECT_FALSE(scheduler->cancel(TaskId(1)));
  engine.run();
  EXPECT_EQ(completions.size(), 1u);
}

TEST_F(LocalAvailabilityFixture, NodeLossShrinksAllocations) {
  auto scheduler = make();
  for (int node = 4; node < 8; ++node) {
    scheduler->set_node_available(node, false);
  }
  scheduler->submit(make_task(1, "closure"));
  engine.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].mask & 0xF0u, 0u);
}

TEST_F(LocalAvailabilityFixture, FreetimeIgnoresDownNodes) {
  auto scheduler = make();
  scheduler->submit(make_task(1, "sweep3d"));
  engine.run_until(1.0);
  const SimTime busy_freetime = scheduler->freetime();
  EXPECT_GT(busy_freetime, 1.0);
  // A down node must not push freetime to the virtual horizon.
  scheduler->set_node_available(7, false);
  EXPECT_LT(scheduler->freetime(),
            ScheduleBuilder::kUnavailableHorizon);
}

TEST_F(LocalAvailabilityFixture, PredictionErrorPerturbsActualTimes) {
  auto scheduler = make(0.5);
  for (std::uint64_t i = 1; i <= 6; ++i) scheduler->submit(make_task(i));
  engine.run();
  ASSERT_EQ(completions.size(), 6u);
  int deviated = 0;
  for (const auto& record : completions) {
    const auto model = catalogue.find(record.app_name);
    const double predicted =
        model->reference_time(node_count(record.mask));
    const double actual = record.end - record.start;
    EXPECT_GE(actual, predicted * 0.5 - 1e-9);
    EXPECT_LE(actual, predicted * 1.5 + 1e-9);
    if (std::abs(actual - predicted) > 1e-9) ++deviated;
  }
  EXPECT_GT(deviated, 0);
}

TEST_F(LocalAvailabilityFixture, PredictionErrorIsDeterministicPerTask) {
  auto run_once = [this]() {
    sim::Engine local_engine;
    pace::EvaluationEngine local_pace;
    pace::CachedEvaluator local_eval(local_pace);
    LocalScheduler::Config config;
    config.resource_id = AgentId(1);
    config.resource =
        pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
    config.node_count = 8;
    config.seed = 11;
    config.prediction_error = 0.3;
    std::vector<double> durations;
    LocalScheduler scheduler(local_engine, local_eval, config,
                             [&](const CompletionRecord& r) {
                               durations.push_back(r.end - r.start);
                             });
    for (std::uint64_t i = 1; i <= 5; ++i) {
      Task task;
      task.id = TaskId(i);
      task.app = catalogue.find("jacobi");
      task.deadline = 1e6;
      scheduler.submit(std::move(task));
    }
    local_engine.run();
    return durations;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(LocalAvailabilityFixture, ZeroPredictionErrorIsExact) {
  auto scheduler = make(0.0);
  scheduler->submit(make_task(1, "closure"));
  engine.run();
  ASSERT_EQ(completions.size(), 1u);
  const double actual = completions[0].end - completions[0].start;
  EXPECT_DOUBLE_EQ(actual, catalogue.find("closure")->reference_time(
                               node_count(completions[0].mask)));
}

}  // namespace
}  // namespace gridlb::sched
