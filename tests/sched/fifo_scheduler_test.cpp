#include "sched/fifo_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::sched {
namespace {

struct FifoFixture : ::testing::Test {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator{engine};
  pace::ResourceModel sgi =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  Task make_task(const char* app, double deadline = 1e6) {
    Task task;
    task.id = TaskId(1);
    task.app = catalogue.find(app);
    task.deadline = deadline;
    return task;
  }
};

TEST_F(FifoFixture, MinExecutionPicksFastestAllocation) {
  // cpi's fastest point is 12 processors (2 s); with idle nodes the
  // min-execution FIFO must allocate exactly 12.
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinExecution);
  const std::vector<SimTime> idle(16, 0.0);
  const auto placement = fifo.place(make_task("cpi"), idle, 0.0);
  EXPECT_EQ(node_count(placement.mask), 12);
  EXPECT_DOUBLE_EQ(placement.end - placement.start, 2.0);
}

TEST_F(FifoFixture, MinExecutionWaitsForFastAllocationEvenIfSlowerOverall) {
  // Nodes 0..11 are busy until t=100; running cpi on the 4 idle nodes
  // would take 17 s (done by 17), but min-execution FIFO insists on a
  // 12-node allocation and waits.
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinExecution);
  std::vector<SimTime> free(16, 0.0);
  for (int i = 0; i < 12; ++i) free[static_cast<std::size_t>(i)] = 100.0;
  const auto placement = fifo.place(make_task("cpi"), free, 0.0);
  EXPECT_EQ(node_count(placement.mask), 12);
  EXPECT_DOUBLE_EQ(placement.end, 102.0);
}

TEST_F(FifoFixture, MinExecutionPrefersEarliestStartAmongEqualExec) {
  // closure takes 2 s at 15 or 16 processors; with node 15 busy the 15-node
  // allocation starts now and must win over waiting for all 16.
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinExecution);
  std::vector<SimTime> free(16, 0.0);
  free[15] = 50.0;
  const auto placement = fifo.place(make_task("closure"), free, 0.0);
  EXPECT_DOUBLE_EQ(placement.start, 0.0);
  EXPECT_EQ(node_count(placement.mask), 15);
}

TEST_F(FifoFixture, MinCompletionTradesWidthForStart) {
  // Same situation, min-completion objective: running cpi narrow on idle
  // nodes beats waiting for the wide allocation.
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinCompletion);
  std::vector<SimTime> free(16, 0.0);
  for (int i = 0; i < 12; ++i) free[static_cast<std::size_t>(i)] = 100.0;
  const auto placement = fifo.place(make_task("cpi"), free, 0.0);
  EXPECT_DOUBLE_EQ(placement.start, 0.0);
  EXPECT_DOUBLE_EQ(placement.end, 17.0);  // cpi@4 = 17 s
  EXPECT_EQ(placement.mask & 0xFFFu, 0u);  // only idle nodes used
}

TEST_F(FifoFixture, MinCompletionOnIdleMachineMatchesMinExecution) {
  const std::vector<SimTime> idle(16, 0.0);
  FifoScheduler a(evaluator, sgi, 16, FifoObjective::kMinExecution);
  FifoScheduler b(evaluator, sgi, 16, FifoObjective::kMinCompletion);
  for (const auto& name : pace::paper_application_names()) {
    const auto task = make_task(name.c_str());
    EXPECT_DOUBLE_EQ(a.place(task, idle, 0.0).end,
                     b.place(task, idle, 0.0).end)
        << name;
  }
}

TEST_F(FifoFixture, TieBreaksPreferFewerNodesThenLowerMask) {
  // closure at 15 vs 16 processors both take 2 s on an idle machine; the
  // 15-node allocation (fewer nodes) must win, and among the sixteen
  // 15-node subsets the lowest mask (nodes 0..14).
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinExecution);
  const std::vector<SimTime> idle(16, 0.0);
  const auto placement = fifo.place(make_task("closure"), idle, 0.0);
  EXPECT_EQ(node_count(placement.mask), 15);
  EXPECT_EQ(placement.mask, full_mask(15));
}

TEST_F(FifoFixture, EnumeratesEverySubset) {
  FifoScheduler fifo(evaluator, sgi, 16);
  const std::vector<SimTime> idle(16, 0.0);
  (void)fifo.place(make_task("fft"), idle, 0.0);
  EXPECT_EQ(fifo.subsets_tried(), 65535u);  // 2^16 − 1, as the paper says
  (void)fifo.place(make_task("fft"), idle, 0.0);
  EXPECT_EQ(fifo.subsets_tried(), 131070u);
}

TEST_F(FifoFixture, ClampsPastFreeTimesToNow) {
  FifoScheduler fifo(evaluator, sgi, 16);
  const std::vector<SimTime> stale(16, -500.0);
  const auto placement = fifo.place(make_task("fft"), stale, 42.0);
  EXPECT_DOUBLE_EQ(placement.start, 42.0);
}

TEST_F(FifoFixture, SmallResource) {
  FifoScheduler fifo(evaluator, sgi, 1);
  const std::vector<SimTime> idle(1, 0.0);
  const auto placement = fifo.place(make_task("sweep3d"), idle, 0.0);
  EXPECT_EQ(placement.mask, 1u);
  EXPECT_DOUBLE_EQ(placement.end, 50.0);
  EXPECT_EQ(fifo.subsets_tried(), 1u);
}

TEST_F(FifoFixture, RejectsMismatchedFreeVector) {
  FifoScheduler fifo(evaluator, sgi, 16);
  const std::vector<SimTime> wrong(4, 0.0);
  EXPECT_THROW((void)fifo.place(make_task("fft"), wrong, 0.0),
               AssertionError);
}

// Property: min-completion FIFO is optimal against brute force over the
// k-earliest-free reduction for every application and load pattern.
class FifoOptimality : public ::testing::TestWithParam<std::string> {};

TEST_P(FifoOptimality, MinCompletionBeatsAllSubsets) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto ultra = pace::ResourceModel::of(pace::HardwareType::kSunUltra1);
  FifoScheduler fifo(evaluator, ultra, 8, FifoObjective::kMinCompletion);
  const auto catalogue = pace::paper_catalogue();
  Task task;
  task.id = TaskId(1);
  task.app = catalogue.find(GetParam());
  task.deadline = 1e6;

  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SimTime> free(8);
    for (auto& f : free) f = rng.uniform(0.0, 50.0);
    const auto placement = fifo.place(task, free, 0.0);
    // Brute force: sort free times; the best completion for width k uses
    // the k earliest-free nodes.
    auto sorted = free;
    std::sort(sorted.begin(), sorted.end());
    double best = 1e300;
    for (int k = 1; k <= 8; ++k) {
      const double exec = task.app->reference_time(k) * ultra.factor;
      best = std::min(best, sorted[static_cast<std::size_t>(k - 1)] + exec);
    }
    EXPECT_DOUBLE_EQ(placement.end, best);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, FifoOptimality,
                         ::testing::ValuesIn(pace::paper_application_names()));

}  // namespace
}  // namespace gridlb::sched
