#include "sched/schedule_builder.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::sched {
namespace {

struct BuilderFixture : ::testing::Test {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator{engine};
  pace::ResourceModel sgi =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  ScheduleBuilder builder{evaluator, sgi, 4};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  Task make_task(std::uint64_t id, const char* app, SimTime deadline,
                 SimTime arrival = 0.0) {
    Task task;
    task.id = TaskId(id);
    task.app = catalogue.find(app);
    task.arrival = arrival;
    task.deadline = deadline;
    return task;
  }
};

TEST_F(BuilderFixture, EmptyScheduleIsZero) {
  const std::vector<Task> tasks;
  const SolutionString solution({}, {}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_EQ(decoded.makespan, 0.0);
  EXPECT_EQ(decoded.total_idle, 0.0);
  EXPECT_EQ(decoded.contract_penalty, 0.0);
  EXPECT_EQ(decoded.completion, 0.0);
}

TEST_F(BuilderFixture, SingleTaskOnAllNodes) {
  // closure on 4 SGI nodes takes 8 s (Table 1).
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0)};
  const SolutionString solution({0}, {0b1111}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].start, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].end, 8.0);
  EXPECT_DOUBLE_EQ(decoded.makespan, 8.0);
  EXPECT_DOUBLE_EQ(decoded.total_idle, 0.0);
  EXPECT_EQ(decoded.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(decoded.mean_completion, 8.0);
}

TEST_F(BuilderFixture, ExecutionTimeDependsOnAllocationWidth) {
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0)};
  const std::vector<SimTime> free(4, 0.0);
  // 1 node: 9 s; 2 nodes: 9 s; 3 nodes: 8 s (Table 1 row for closure).
  const auto one = builder.decode(
      tasks, SolutionString({0}, {0b0001}, 4), free, 0.0);
  const auto three = builder.decode(
      tasks, SolutionString({0}, {0b0111}, 4), free, 0.0);
  EXPECT_DOUBLE_EQ(one.placements[0].end, 9.0);
  EXPECT_DOUBLE_EQ(three.placements[0].end, 8.0);
}

TEST_F(BuilderFixture, TasksSharingNodesSerialise) {
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0),
                                   make_task(2, "closure", 100.0)};
  // Both on nodes {0,1}: second starts when the first ends (9 s each at
  // width 2).
  const SolutionString solution({0, 1}, {0b0011, 0b0011}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].start, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].end, 9.0);
  EXPECT_DOUBLE_EQ(decoded.placements[1].start, 9.0);
  EXPECT_DOUBLE_EQ(decoded.placements[1].end, 18.0);
}

TEST_F(BuilderFixture, DisjointTasksRunInParallel) {
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0),
                                   make_task(2, "closure", 100.0)};
  const SolutionString solution({0, 1}, {0b0011, 0b1100}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].start, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[1].start, 0.0);
  EXPECT_DOUBLE_EQ(decoded.makespan, 9.0);
}

TEST_F(BuilderFixture, OrderingPartControlsSequence) {
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0),
                                   make_task(2, "fft", 100.0)};
  const std::vector<SimTime> free(4, 0.0);
  // Same masks, different order: the first-positioned task starts at 0.
  const auto closure_first = builder.decode(
      tasks, SolutionString({0, 1}, {0b1111, 0b1111}, 4), free, 0.0);
  const auto fft_first = builder.decode(
      tasks, SolutionString({1, 0}, {0b1111, 0b1111}, 4), free, 0.0);
  EXPECT_DOUBLE_EQ(closure_first.placements[0].start, 0.0);
  EXPECT_DOUBLE_EQ(closure_first.placements[1].start, 8.0);
  EXPECT_DOUBLE_EQ(fft_first.placements[1].start, 0.0);
  EXPECT_DOUBLE_EQ(fft_first.placements[0].start, 22.0);  // fft@4 = 22 s
}

TEST_F(BuilderFixture, UnisonStartWaitsForAllAllocatedNodes) {
  // Node 3 is busy until t=10; a task on {0,3} must start at 10, leaving
  // node 0 idle for 10 s.
  const std::vector<Task> tasks = {make_task(1, "closure", 100.0)};
  const SolutionString solution({0}, {0b1001}, 4);
  const std::vector<SimTime> free = {0.0, 0.0, 0.0, 10.0};
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].start, 10.0);
  // idle: node 0 waits 10 s; nodes 1,2 idle for the whole 19 s window.
  EXPECT_DOUBLE_EQ(decoded.total_idle, 10.0 + 19.0 + 19.0);
}

TEST_F(BuilderFixture, PastFreeTimesAreSunkCost) {
  // Node availability in the past is clamped to `now`: idle accrued before
  // the decision point is not charged to the schedule.
  const std::vector<Task> tasks = {make_task(1, "closure", 1000.0)};
  const SolutionString solution({0}, {0b1111}, 4);
  const std::vector<SimTime> free(4, -50.0);
  const auto decoded = builder.decode(tasks, solution, free, 100.0);
  EXPECT_DOUBLE_EQ(decoded.placements[0].start, 100.0);
  EXPECT_DOUBLE_EQ(decoded.total_idle, 0.0);
  EXPECT_DOUBLE_EQ(decoded.makespan, 8.0);
}

TEST_F(BuilderFixture, ContractPenaltySumsOverruns) {
  const std::vector<Task> tasks = {
      make_task(1, "closure", 5.0),   // ends 8 -> 3 s late
      make_task(2, "closure", 20.0),  // ends 16 -> on time
  };
  const SolutionString solution({0, 1}, {0b1111, 0b1111}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.contract_penalty, 3.0);
  EXPECT_EQ(decoded.deadline_misses, 1);
}

TEST_F(BuilderFixture, FrontWeightedIdlePenalisesEarlyGaps) {
  // Two schedules with the same total idle: one idles early, one late.
  // closure@2 = 9 s; fft@2 = 24 s.
  const std::vector<Task> tasks = {make_task(1, "closure", 1e3),
                                   make_task(2, "fft", 1e3)};
  const std::vector<SimTime> free(4, 0.0);
  // Early idle: nodes 2,3 run the short task then wait for nothing; the
  // long task runs after on the same nodes 0,1... construct instead:
  // A: closure first on {2,3} (9 s), fft on {2,3} after -> nodes 0,1 idle
  //    the whole window (gap spans the full window, weight ~1 on average).
  const auto flat = builder.decode(
      tasks, SolutionString({0, 1}, {0b1100, 0b1100}, 4), free, 0.0);
  // B: fft on {0,1} and closure on {2,3}; nodes 2,3 idle at the END of the
  // window (after 9 s) — late idle weighs less.
  const auto late = builder.decode(
      tasks, SolutionString({0, 1}, {0b1100, 0b0011}, 4), free, 0.0);
  // C: closure on {2,3} *delayed* behind fft (shared nodes) — the idle on
  // nodes 2,3 sits at the front.
  const auto early = builder.decode(
      tasks, SolutionString({1, 0}, {0b0011, 0b0011}, 4), free, 0.0);
  // late idle (B): 24-9=15 s at the back on two nodes plus none else.
  // early idle (C): fft runs 0..24 on {0,1}? no — both tasks on {0,1}.
  // Just assert the weighting direction where totals are comparable:
  EXPECT_GT(late.total_idle, 0.0);
  const double late_ratio = late.weighted_idle / late.total_idle;
  const double flat_ratio = flat.weighted_idle / flat.total_idle;
  EXPECT_LT(late_ratio, 1.0);         // end-of-window idle under-weighted
  EXPECT_NEAR(flat_ratio, 1.0, 0.35);  // full-window idle ~ neutral
  (void)early;
}

TEST_F(BuilderFixture, MeanCompletionAveragesFlowtime) {
  const std::vector<Task> tasks = {make_task(1, "closure", 1e3),
                                   make_task(2, "closure", 1e3)};
  const SolutionString solution({0, 1}, {0b1111, 0b1111}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto decoded = builder.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(decoded.mean_completion, (8.0 + 16.0) / 2.0);
}

TEST_F(BuilderFixture, RejectsMismatchedInputs) {
  const std::vector<Task> tasks = {make_task(1, "closure", 1.0)};
  const std::vector<SimTime> free(4, 0.0);
  // Solution covers 2 tasks but only 1 given.
  Rng rng(1);
  const auto two = SolutionString::random(2, 4, rng);
  EXPECT_THROW(builder.decode(tasks, two, free, 0.0), AssertionError);
  // Wrong node_free width.
  const auto one = SolutionString::random(1, 4, rng);
  const std::vector<SimTime> narrow(3, 0.0);
  EXPECT_THROW(builder.decode(tasks, one, narrow, 0.0), AssertionError);
}

TEST_F(BuilderFixture, ResourceFactorScalesSchedule) {
  ScheduleBuilder slow(
      evaluator, pace::ResourceModel::of(pace::HardwareType::kSunSparcStation2),
      4);
  const std::vector<Task> tasks = {make_task(1, "closure", 1e3)};
  const SolutionString solution({0}, {0b1111}, 4);
  const std::vector<SimTime> free(4, 0.0);
  const auto fast = builder.decode(tasks, solution, free, 0.0);
  const auto sparc = slow.decode(tasks, solution, free, 0.0);
  EXPECT_DOUBLE_EQ(
      sparc.makespan,
      fast.makespan *
          pace::performance_factor(pace::HardwareType::kSunSparcStation2));
}

// Property: for any random solution, decoded schedules never overlap on a
// node and all metrics are internally consistent.
class DecodeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeInvariants, NoNodeOverlapAndConsistentMetrics) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 6;
  ScheduleBuilder builder(evaluator, sgi, nodes);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(GetParam());
  std::vector<Task> tasks;
  for (std::uint64_t i = 0; i < 12; ++i) {
    Task task;
    task.id = TaskId(i);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(0.0, 300.0);
    tasks.push_back(std::move(task));
  }
  std::vector<SimTime> free(static_cast<std::size_t>(nodes));
  for (auto& f : free) f = rng.uniform(0.0, 30.0);
  const SimTime now = 10.0;

  const auto solution = SolutionString::random(12, nodes, rng);
  const auto decoded = builder.decode(tasks, solution, free, now);

  // Per-node intervals must not overlap and must start no earlier than the
  // node's (clamped) availability.
  for (int node = 0; node < nodes; ++node) {
    std::vector<std::pair<SimTime, SimTime>> intervals;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto& p = decoded.placements[t];
      if ((p.mask >> node) & 1u) intervals.emplace_back(p.start, p.end);
    }
    std::sort(intervals.begin(), intervals.end());
    SimTime cursor = std::max(free[static_cast<std::size_t>(node)], now);
    for (const auto& [start, end] : intervals) {
      EXPECT_GE(start + 1e-9, cursor);
      EXPECT_GT(end, start);
      cursor = end;
    }
  }

  // Makespan is the max completion; penalties are non-negative; the
  // flowtime average sits between the shortest and longest latency.
  SimTime max_end = now;
  for (const auto& p : decoded.placements) max_end = std::max(max_end, p.end);
  EXPECT_DOUBLE_EQ(decoded.completion, max_end);
  EXPECT_DOUBLE_EQ(decoded.makespan, max_end - now);
  EXPECT_GE(decoded.contract_penalty, 0.0);
  EXPECT_GE(decoded.total_idle, -1e-9);
  EXPECT_GE(decoded.weighted_idle, -1e-9);
  EXPECT_LE(decoded.weighted_idle, 2.0 * decoded.total_idle + 1e-9);
  EXPECT_LE(decoded.mean_completion, decoded.makespan + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeInvariants,
                         ::testing::Range<std::uint64_t>(1, 21));

// Property: the metrics-only hot path (prepare + evaluate into a scratch
// arena) is bit-for-bit the metrics of a full decode, for randomised task
// sets, solution masks, free times and down-node availability.  EXPECT_EQ
// on doubles is deliberate — equal arithmetic, not just close.
class EvaluateEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvaluateEquivalence, MetricsOnlyEvaluateMatchesFullDecode) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 8;
  ScheduleBuilder builder(evaluator, sgi, nodes);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(GetParam() * 7919);
  DecodeContext context;
  DecodeScratch scratch;
  for (int round = 0; round < 16; ++round) {
    const int m = static_cast<int>(rng.next_below(15));  // includes empty
    std::vector<Task> tasks;
    for (int i = 0; i < m; ++i) {
      Task task;
      task.id = TaskId(static_cast<std::uint64_t>(i));
      task.app = catalogue.all()[static_cast<std::size_t>(
          rng.next_below(catalogue.size()))];
      task.deadline = rng.uniform(0.0, 400.0);
      tasks.push_back(std::move(task));
    }
    std::vector<SimTime> free(static_cast<std::size_t>(nodes));
    for (auto& f : free) f = rng.uniform(0.0, 60.0);
    const SimTime now = rng.uniform(0.0, 20.0);
    // Random availability, at least one node up.
    auto available =
        static_cast<NodeMask>(rng.next_u64()) & full_mask(nodes);
    if (available == 0) available = 1;

    const auto solution = SolutionString::random(m, nodes, rng);
    const auto full = builder.decode(tasks, solution, free, now, available);

    builder.prepare(context, tasks, free, now, available);
    const ScheduleMetrics metrics =
        builder.evaluate(context, solution, scratch);

    EXPECT_EQ(metrics.completion, full.completion);
    EXPECT_EQ(metrics.makespan, full.makespan);
    EXPECT_EQ(metrics.total_idle, full.total_idle);
    EXPECT_EQ(metrics.weighted_idle, full.weighted_idle);
    EXPECT_EQ(metrics.contract_penalty, full.contract_penalty);
    EXPECT_EQ(metrics.mean_completion, full.mean_completion);
    EXPECT_EQ(metrics.deadline_misses, full.deadline_misses);

    // evaluate_from at every possible span start: the genome trivially
    // agrees with its own recorded stream, so every span must reproduce
    // the full metrics bit-for-bit (span 0 = full rebuild, span m =
    // answered from the cached metrics, everything between = checkpoint
    // restore + suffix replay).
    for (int s = 0; s <= m; ++s) {
      const ScheduleMetrics delta =
          builder.evaluate_from(context, solution, scratch, s);
      EXPECT_EQ(delta.completion, full.completion);
      EXPECT_EQ(delta.makespan, full.makespan);
      EXPECT_EQ(delta.total_idle, full.total_idle);
      EXPECT_EQ(delta.weighted_idle, full.weighted_idle);
      EXPECT_EQ(delta.contract_penalty, full.contract_penalty);
      EXPECT_EQ(delta.mean_completion, full.mean_completion);
      EXPECT_EQ(delta.deadline_misses, full.deadline_misses);
    }

    // And the context-based full decode agrees placement-by-placement
    // with the self-contained convenience overload.
    const auto via_context = builder.decode(context, solution, scratch);
    ASSERT_EQ(via_context.placements.size(), full.placements.size());
    for (std::size_t i = 0; i < full.placements.size(); ++i) {
      EXPECT_EQ(via_context.placements[i].start, full.placements[i].start);
      EXPECT_EQ(via_context.placements[i].end, full.placements[i].end);
      EXPECT_EQ(via_context.placements[i].mask, full.placements[i].mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluateEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gridlb::sched
