#include "sched/ga_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"
#include "sched/fifo_scheduler.hpp"

namespace gridlb::sched {
namespace {

struct GaFixture : ::testing::Test {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator{engine};
  pace::ResourceModel sgi =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  ScheduleBuilder builder{evaluator, sgi, 16};
  pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  std::vector<SimTime> idle = std::vector<SimTime>(16, 0.0);

  std::vector<Task> make_tasks(int count, std::uint64_t seed = 1,
                               double deadline_scale = 1.0) {
    Rng rng(seed);
    std::vector<Task> tasks;
    for (int i = 0; i < count; ++i) {
      Task task;
      task.id = TaskId(static_cast<std::uint64_t>(i) + 1);
      task.app = catalogue.all()[static_cast<std::size_t>(
          rng.next_below(catalogue.size()))];
      const auto domain = task.app->deadline_domain();
      task.deadline = rng.uniform(domain.lo, domain.hi) * deadline_scale;
      tasks.push_back(std::move(task));
    }
    return tasks;
  }
};

TEST_F(GaFixture, ConfigValidation) {
  GaConfig bad;
  bad.population_size = 1;
  EXPECT_THROW(GaScheduler(builder, bad, 1), AssertionError);
  bad = GaConfig{};
  bad.generations = 0;
  EXPECT_THROW(GaScheduler(builder, bad, 1), AssertionError);
  bad = GaConfig{};
  bad.elite = bad.population_size;
  EXPECT_THROW(GaScheduler(builder, bad, 1), AssertionError);
  bad = GaConfig{};
  bad.crossover_rate = 1.5;
  EXPECT_THROW(GaScheduler(builder, bad, 1), AssertionError);
}

TEST_F(GaFixture, EmptyTaskSetYieldsEmptySchedule) {
  GaScheduler scheduler(builder, GaConfig{}, 1);
  const auto result = scheduler.optimize({}, idle, 0.0);
  EXPECT_EQ(result.best.task_count(), 0);
  EXPECT_EQ(result.schedule.makespan, 0.0);
}

TEST_F(GaFixture, ResultIsValidAndDecodesConsistently) {
  GaScheduler scheduler(builder, GaConfig{}, 2);
  const auto tasks = make_tasks(10);
  const auto result = scheduler.optimize(tasks, idle, 0.0);
  EXPECT_TRUE(result.best.valid());
  EXPECT_EQ(result.best.task_count(), 10);
  const auto redecoded = builder.decode(tasks, result.best, idle, 0.0);
  EXPECT_DOUBLE_EQ(redecoded.makespan, result.schedule.makespan);
  EXPECT_DOUBLE_EQ(cost_value(redecoded, scheduler.config().weights),
                   result.best_cost);
}

TEST_F(GaFixture, DeterministicForFixedSeed) {
  const auto tasks = make_tasks(8);
  GaScheduler a(builder, GaConfig{}, 42);
  GaScheduler b(builder, GaConfig{}, 42);
  const auto result_a = a.optimize(tasks, idle, 0.0);
  const auto result_b = b.optimize(tasks, idle, 0.0);
  EXPECT_EQ(result_a.best, result_b.best);
  EXPECT_DOUBLE_EQ(result_a.best_cost, result_b.best_cost);
}

TEST_F(GaFixture, MoreGenerationsNeverWorse) {
  const auto tasks = make_tasks(12);
  GaConfig few;
  few.generations = 2;
  few.seed_heuristic = false;
  GaConfig many = few;
  many.generations = 80;
  const double cost_few =
      GaScheduler(builder, few, 7).optimize(tasks, idle, 0.0).best_cost;
  const double cost_many =
      GaScheduler(builder, many, 7).optimize(tasks, idle, 0.0).best_cost;
  EXPECT_LE(cost_many, cost_few);
}

TEST_F(GaFixture, BeatsRandomSolutions) {
  const auto tasks = make_tasks(12);
  GaConfig config;
  config.generations = 60;
  GaScheduler scheduler(builder, config, 3);
  const auto result = scheduler.optimize(tasks, idle, 0.0);

  Rng rng(99);
  double best_random = 1e300;
  for (int i = 0; i < 200; ++i) {
    const auto random = SolutionString::random(12, 16, rng);
    const auto decoded = builder.decode(tasks, random, idle, 0.0);
    best_random = std::min(best_random,
                           cost_value(decoded, scheduler.config().weights));
  }
  EXPECT_LT(result.best_cost, best_random);
}

TEST_F(GaFixture, GaCostNeverExceedsGreedyListScheduling) {
  // A greedy arrival-order list schedule (FIFO with the min-completion
  // objective) is seeded into the population, so the GA's best cost can
  // never exceed the greedy schedule's cost.
  const auto tasks = make_tasks(15);
  GaConfig config;
  config.generations = 1;  // no evolution: seeds alone must suffice
  GaScheduler scheduler(builder, config, 5);
  const auto result = scheduler.optimize(tasks, idle, 0.0);

  // Reconstruct the greedy schedule as a solution string and cost it.
  FifoScheduler fifo(evaluator, sgi, 16, FifoObjective::kMinCompletion);
  std::vector<SimTime> free = idle;
  std::vector<int> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<NodeMask> mapping(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const auto placement = fifo.place(tasks[t], free, 0.0);
    mapping[t] = placement.mask;
    for_each_node(placement.mask, [&](int node) {
      free[static_cast<std::size_t>(node)] = placement.end;
    });
  }
  const SolutionString greedy(std::move(order), std::move(mapping), 16);
  const auto greedy_decoded = builder.decode(tasks, greedy, idle, 0.0);
  const double greedy_cost =
      cost_value(greedy_decoded, scheduler.config().weights);
  EXPECT_LE(result.best_cost, greedy_cost + 1e-9);
}

TEST_F(GaFixture, ConvergesTowardMeetingDeadlines) {
  // Generous deadlines: a reasonable schedule meets all of them.
  auto tasks = make_tasks(8);
  for (auto& task : tasks) task.deadline = 500.0;
  GaConfig config;
  config.generations = 60;
  GaScheduler scheduler(builder, config, 11);
  const auto result = scheduler.optimize(tasks, idle, 0.0);
  EXPECT_EQ(result.schedule.deadline_misses, 0);
}

TEST_F(GaFixture, WarmStartAbsorbsTaskChanges) {
  GaScheduler scheduler(builder, GaConfig{}, 13);
  auto tasks = make_tasks(10);
  const auto first = scheduler.optimize(tasks, idle, 0.0);
  EXPECT_EQ(first.best.task_count(), 10);

  // Two tasks start executing (drop), three new arrive.
  tasks.erase(tasks.begin(), tasks.begin() + 2);
  for (std::uint64_t i = 0; i < 3; ++i) {
    Task task;
    task.id = TaskId(100 + i);
    task.app = catalogue.find("cpi");
    task.deadline = 60.0;
    tasks.push_back(std::move(task));
  }
  const auto second = scheduler.optimize(tasks, idle, 10.0);
  EXPECT_TRUE(second.best.valid());
  EXPECT_EQ(second.best.task_count(), 11);
}

TEST_F(GaFixture, TracksDecodeBudget) {
  GaConfig config;
  config.population_size = 10;
  config.generations = 5;
  GaScheduler scheduler(builder, config, 17);
  const auto result = scheduler.optimize(make_tasks(5), idle, 0.0);
  // Every individual in every generation is either evaluated or served
  // from the genotype memo, and the winner costs one extra full decode.
  EXPECT_EQ(result.decodes + result.memo_hits, 51u);
  EXPECT_GT(result.decodes, 0u);
  EXPECT_EQ(result.generations_run, 5);
  EXPECT_EQ(scheduler.total_decodes(), result.decodes);
  EXPECT_EQ(scheduler.total_memo_hits(), result.memo_hits);
  // Each evaluation reads one prediction per task; greedy seeding adds
  // its own reads on top.
  EXPECT_GE(result.table_reads, (result.decodes - 1) * 5);
}

TEST_F(GaFixture, GenotypeMemoSkipsRepeatedIndividuals) {
  GaConfig config;
  config.population_size = 12;
  config.generations = 8;
  config.elite = 2;
  GaScheduler scheduler(builder, config, 23);
  const auto result = scheduler.optimize(make_tasks(6), idle, 0.0);
  // The elite survivors re-enter every generation unchanged, so from
  // generation 1 onwards each costs a memo hit instead of an evaluation
  // (crossover clones and duplicate children only add to that).
  const auto elite_repeats = static_cast<std::uint64_t>(
      (config.generations - 1) * config.elite);
  EXPECT_GE(result.memo_hits, elite_repeats);
  EXPECT_EQ(result.decodes + result.memo_hits,
            static_cast<std::uint64_t>(config.population_size) *
                    static_cast<std::uint64_t>(config.generations) +
                1u);
}

TEST_F(GaFixture, MemoIsInvalidatedBetweenRuns) {
  // Same task set, different clock: the second run must not reuse the
  // first run's cached metrics (identical genotypes decode differently
  // when the nodes' free times move).
  GaConfig config;
  config.population_size = 8;
  config.generations = 3;
  GaScheduler scheduler(builder, config, 29);
  const auto tasks = make_tasks(5);
  const auto early = scheduler.optimize(tasks, idle, 0.0);
  const std::vector<SimTime> busy(16, 50.0);
  const auto late = scheduler.optimize(tasks, busy, 0.0);
  // Every placement in the warm-started second run starts at or after the
  // nodes come free — stale memo entries would report start times < 50.
  for (const auto& placement : late.schedule.placements) {
    EXPECT_GE(placement.start, 50.0);
  }
  EXPECT_GE(late.best_cost, early.best_cost);
}

TEST_F(GaFixture, RespectsBusyNodes) {
  // All nodes busy until t=100: nothing can complete before then.
  const std::vector<SimTime> busy(16, 100.0);
  GaScheduler scheduler(builder, GaConfig{}, 19);
  const auto result = scheduler.optimize(make_tasks(4), busy, 0.0);
  for (const auto& placement : result.schedule.placements) {
    EXPECT_GE(placement.start, 100.0);
  }
}

TEST_F(GaFixture, SingleTaskGetsEfficientAllocation) {
  // One cpi task, tight deadline: the GA should find a wide allocation
  // close to the 12-processor optimum (2 s on the reference platform).
  std::vector<Task> tasks;
  Task task;
  task.id = TaskId(1);
  task.app = catalogue.find("cpi");
  task.deadline = 5.0;
  tasks.push_back(std::move(task));
  GaConfig config;
  config.generations = 40;
  GaScheduler scheduler(builder, config, 23);
  const auto result = scheduler.optimize(tasks, idle, 0.0);
  EXPECT_LE(result.schedule.placements[0].end, 5.0);
}

// Property: across seeds, optimize() output is always structurally sound.
class GaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaProperty, AlwaysValidAndPenaltyConsistent) {
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  ScheduleBuilder builder(
      evaluator, pace::ResourceModel::of(pace::HardwareType::kSunUltra5), 8);
  const auto catalogue = pace::paper_catalogue();

  Rng rng(GetParam());
  std::vector<Task> tasks;
  const auto count = 1 + rng.next_below(20);
  for (std::uint64_t i = 0; i < count; ++i) {
    Task task;
    task.id = TaskId(i);
    task.app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    task.deadline = rng.uniform(0.0, 400.0);
    tasks.push_back(std::move(task));
  }
  GaConfig config;
  config.population_size = 20;
  config.generations = 10;
  GaScheduler scheduler(builder, config, GetParam() * 7);
  std::vector<SimTime> free(8, 0.0);
  const auto result = scheduler.optimize(tasks, free, 0.0);
  ASSERT_TRUE(result.best.valid());
  double penalty = 0.0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    penalty += std::max(0.0, result.schedule.placements[t].end -
                                 tasks[t].deadline);
  }
  EXPECT_NEAR(penalty, result.schedule.contract_penalty, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace gridlb::sched
