// HashPlacement (DESIGN.md §15): determinism, weight-proportional
// selection, and the straw2 bounded-remap contract.
#include "sched/hash_placement.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "pace/hardware.hpp"

namespace gridlb::sched {
namespace {

std::vector<PlacementTarget> synthetic_tree() {
  // A small heterogeneous resource tree: weights 1, 2, 4 and 1 again.
  return {{AgentId(1), 1.0}, {AgentId(2), 2.0}, {AgentId(3), 4.0},
          {AgentId(4), 1.0}};
}

HashPlacement::Config seeded(std::uint64_t seed, double tau = 0.0) {
  HashPlacement::Config config;
  config.seed = seed;
  config.load_tau = tau;
  return config;
}

TEST(HashPlacement, SameSeedSamePlacement) {
  const HashPlacement a(seeded(7), synthetic_tree());
  const HashPlacement b(seeded(7), synthetic_tree());
  for (std::uint64_t key = 0; key < 500; ++key) {
    const PlacementDecision da = a.place(key);
    const PlacementDecision db = b.place(key);
    EXPECT_EQ(da.index, db.index);
    EXPECT_EQ(da.resource, db.resource);
    EXPECT_EQ(da.draw, db.draw);
  }
}

TEST(HashPlacement, DifferentSeedsDiverge) {
  const HashPlacement a(seeded(7), synthetic_tree());
  const HashPlacement b(seeded(8), synthetic_tree());
  std::uint64_t moved = 0;
  for (std::uint64_t key = 0; key < 500; ++key) {
    if (a.place(key).index != b.place(key).index) ++moved;
  }
  // Independent maps: roughly 1 − Σ(wᵢ/Σw)² ≈ 66% of keys land elsewhere.
  EXPECT_GT(moved, 200u);
}

TEST(HashPlacement, SelectionIsWeightProportional) {
  const std::vector<PlacementTarget> tree = synthetic_tree();
  const HashPlacement placement(seeded(42), tree);
  const std::uint64_t keys = 40000;
  std::vector<std::uint64_t> hits(tree.size(), 0);
  for (std::uint64_t key = 0; key < keys; ++key) {
    ++hits[placement.place(key).index];
  }
  const double total = placement.total_weight();
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double expected = tree[i].weight / total;
    const double observed =
        static_cast<double>(hits[i]) / static_cast<double>(keys);
    // Binomial σ ≈ sqrt(p(1−p)/n) < 0.0025 here; ±0.01 is 4σ+.
    EXPECT_NEAR(observed, expected, 0.01) << "target " << i;
  }
}

TEST(HashPlacement, HardwareWeightScalesWithNodesOverFactor) {
  const auto sgi = pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const auto sparc =
      pace::ResourceModel::of(pace::HardwareType::kSunSparcStation2);
  EXPECT_DOUBLE_EQ(HashPlacement::hardware_weight(sgi, 16), 16.0 / sgi.factor);
  // A slower platform at equal node count must weigh strictly less.
  EXPECT_LT(HashPlacement::hardware_weight(sparc, 16),
            HashPlacement::hardware_weight(sgi, 16));
  EXPECT_DOUBLE_EQ(HashPlacement::hardware_weight(sparc, 32),
                   2.0 * HashPlacement::hardware_weight(sparc, 16));
}

TEST(HashPlacement, RemovalRemapsOnlyTheRemovedTargetsKeys) {
  const std::vector<PlacementTarget> tree = synthetic_tree();
  const std::uint64_t keys = 20000;
  const std::size_t removed = 2;  // the weight-4 target
  HashPlacement placement(seeded(3), tree);
  std::vector<std::size_t> before(keys);
  for (std::uint64_t key = 0; key < keys; ++key) {
    before[key] = placement.place(key).index;
  }
  placement.set_available(removed, false);
  std::uint64_t remapped = 0;
  for (std::uint64_t key = 0; key < keys; ++key) {
    const std::size_t after = placement.place(key).index;
    EXPECT_NE(after, removed);
    if (before[key] == removed) {
      ++remapped;
    } else {
      // The straw2 contract, exactly: no key moves between survivors.
      EXPECT_EQ(after, before[key]) << "key " << key;
    }
  }
  // The remapped fraction is the removed target's weight share (binomial
  // noise only: σ ≈ 0.0035 at n=20000, tolerance is ±4σ+).
  const double share = tree[removed].weight / 8.0;
  EXPECT_NEAR(static_cast<double>(remapped) / static_cast<double>(keys), share,
              0.015);
  // Restoring the target restores the original mapping bit-for-bit.
  placement.set_available(removed, true);
  for (std::uint64_t key = 0; key < keys; ++key) {
    EXPECT_EQ(placement.place(key).index, before[key]);
  }
}

TEST(HashPlacement, ReweightingMovesKeysOnlyToOrFromThatTarget) {
  const std::vector<PlacementTarget> tree = synthetic_tree();
  const std::uint64_t keys = 5000;
  HashPlacement placement(seeded(11), tree);
  std::vector<std::size_t> before(keys);
  for (std::uint64_t key = 0; key < keys; ++key) {
    before[key] = placement.place(key).index;
  }
  placement.set_weight(1, 6.0);  // was 2.0
  for (std::uint64_t key = 0; key < keys; ++key) {
    const std::size_t after = placement.place(key).index;
    // Growing one target only pulls keys in; every move involves it.
    if (after != before[key]) EXPECT_EQ(after, 1u) << "key " << key;
  }
}

TEST(HashPlacement, LoadDiscountDrainsABackloggedTarget) {
  HashPlacement placement(seeded(5, /*tau=*/10.0), synthetic_tree());
  // Pile an absurd backlog onto the heavy target; its discounted weight
  // collapses and every key must land elsewhere.
  placement.record_dispatch(2, 0.0, 1.0e12);
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_NE(placement.place(key, 0.0).index, 2u);
  }
  // Far in the future the backlog has drained and the map is pristine.
  const HashPlacement fresh(seeded(5, /*tau=*/10.0), synthetic_tree());
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(placement.place(key, 2.0e12).index, fresh.place(key).index);
  }
}

TEST(HashPlacement, ValidatesInputs) {
  EXPECT_THROW(HashPlacement(seeded(1), {}), AssertionError);
  EXPECT_THROW(HashPlacement(seeded(1), {{AgentId(1), 0.0}}), AssertionError);
  EXPECT_THROW(HashPlacement(seeded(1), {{AgentId(), 1.0}}), AssertionError);
  HashPlacement placement(seeded(1), synthetic_tree());
  for (std::size_t i = 0; i < 4; ++i) placement.set_available(i, false);
  EXPECT_THROW((void)placement.place(0), AssertionError);
}

}  // namespace
}  // namespace gridlb::sched
