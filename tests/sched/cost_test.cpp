#include "sched/cost.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gridlb::sched {
namespace {

DecodedSchedule schedule_with(double makespan, double weighted_idle,
                              double penalty, double flowtime = 0.0) {
  DecodedSchedule s;
  s.makespan = makespan;
  s.weighted_idle = weighted_idle;
  s.contract_penalty = penalty;
  s.mean_completion = flowtime;
  return s;
}

TEST(CostValue, WeightedAverage) {
  const CostWeights weights{2.0, 1.0, 1.0, 0.0};
  // (2·10 + 1·4 + 1·6 + 0) / 4 = 7.5
  EXPECT_DOUBLE_EQ(cost_value(schedule_with(10, 4, 6), weights), 7.5);
}

TEST(CostValue, LiteralEq8WithZeroFlowtime) {
  const CostWeights weights{1.0, 1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(cost_value(schedule_with(3, 6, 9), weights), 6.0);
}

TEST(CostValue, FlowtimeTermCounts) {
  const CostWeights weights{0.0, 0.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(cost_value(schedule_with(100, 100, 100, 7), weights), 7.0);
}

TEST(CostValue, ZeroScheduleCostsZero) {
  EXPECT_DOUBLE_EQ(cost_value(schedule_with(0, 0, 0), CostWeights{}), 0.0);
}

TEST(CostValue, MonotoneInEachMetric) {
  const CostWeights weights{};
  const double base = cost_value(schedule_with(10, 10, 10, 10), weights);
  EXPECT_GT(cost_value(schedule_with(11, 10, 10, 10), weights), base);
  EXPECT_GT(cost_value(schedule_with(10, 11, 10, 10), weights), base);
  EXPECT_GT(cost_value(schedule_with(10, 10, 11, 10), weights), base);
  EXPECT_GT(cost_value(schedule_with(10, 10, 10, 11), weights), base);
}

TEST(CostValue, RejectsNegativeOrAllZeroWeights) {
  EXPECT_THROW((void)cost_value(schedule_with(1, 1, 1),
                                CostWeights{-1, 1, 1, 1}),
               AssertionError);
  EXPECT_THROW((void)cost_value(schedule_with(1, 1, 1),
                                CostWeights{0, 0, 0, 0}),
               AssertionError);
}

TEST(Fitness, MapsBestToOneWorstToZero) {
  const std::vector<double> costs = {5.0, 1.0, 9.0};
  const auto fitness = fitness_values(costs);
  EXPECT_DOUBLE_EQ(fitness[1], 1.0);  // best (lowest cost)
  EXPECT_DOUBLE_EQ(fitness[2], 0.0);  // worst
  EXPECT_DOUBLE_EQ(fitness[0], 0.5);
}

TEST(Fitness, DegeneratePopulationIsUniform) {
  const std::vector<double> costs = {4.0, 4.0, 4.0};
  const auto fitness = fitness_values(costs);
  for (const double f : fitness) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Fitness, EmptyInput) {
  EXPECT_TRUE(fitness_values(std::vector<double>{}).empty());
}

TEST(Fitness, SingleIndividual) {
  const auto fitness = fitness_values(std::vector<double>{3.0});
  ASSERT_EQ(fitness.size(), 1u);
  EXPECT_DOUBLE_EQ(fitness[0], 1.0);
}

TEST(Fitness, OrderPreserving) {
  // Lower cost must never map to lower fitness.
  const std::vector<double> costs = {3.0, 1.0, 2.0, 5.0, 4.0};
  const auto fitness = fitness_values(costs);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    for (std::size_t j = 0; j < costs.size(); ++j) {
      if (costs[i] < costs[j]) {
        EXPECT_GT(fitness[i], fitness[j]);
      }
    }
  }
}

TEST(Fitness, InRange) {
  const std::vector<double> costs = {10.5, -3.0, 0.0, 7.7};
  for (const double f : fitness_values(costs)) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

}  // namespace
}  // namespace gridlb::sched
