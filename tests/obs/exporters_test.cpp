// Exporter tests: Chrome trace-event layout and the JSONL dump.
#include "obs/exporters.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gridlb::obs {
namespace {

TraceEvent make_event(EventKind kind, SimTime at, std::uint64_t task,
                      std::uint64_t resource, double a = 0.0, double b = 0.0,
                      std::uint32_t extra = 0) {
  TraceEvent event;
  event.kind = kind;
  event.at = at;
  event.task = task;
  event.resource = resource;
  event.a = a;
  event.b = b;
  event.extra = extra;
  return event;
}

TraceSnapshot sample_snapshot() {
  TraceSnapshot snapshot;
  snapshot.events = {
      make_event(EventKind::kRequestSubmitted, 1.0, 1, 1, 900.0),
      make_event(EventKind::kTaskSpan, 2.0, 1, 1, 2.0, 12.0, 4),
      make_event(EventKind::kGaRunStarted, 2.0, 0, 2, 3.0),
      make_event(EventKind::kGaGeneration, 2.0, 0, 2, 0.5, 0.8, 0),
      make_event(EventKind::kGaGeneration, 2.0, 0, 2, 0.4, 0.6, 1),
      make_event(EventKind::kQueueDepth, 2.5, 0, 1, 3.0),
      make_event(EventKind::kCacheHit, 2.6, 0, 0),
      make_event(EventKind::kCacheMiss, 2.7, 0, 0),
  };
  snapshot.recorded = snapshot.events.size();
  snapshot.dropped = 0;
  return snapshot;
}

TEST(ChromeTrace, ContainsTraceEventsAndTrackMetadata) {
  const std::string json =
      chrome_trace_json(sample_snapshot(), {"S1", "S2"});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Track names for every resource seen in the events.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"S1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"S2 GA\""), std::string::npos);
  // Task execution as a complete span with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":10000000"), std::string::npos);
  // GA generations render as counter samples.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"best\":0.5"), std::string::npos);
  // Cache traffic is summarised, not emitted per event.
  EXPECT_EQ(json.find("cache_hit\","), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":1"), std::string::npos);
  // Braces balance (CI validates the real file with python -m json.tool).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, UnknownResourceFallsBackToGenericLabel) {
  TraceSnapshot snapshot;
  snapshot.events = {make_event(EventKind::kQueueDepth, 0.0, 0, 7, 1.0)};
  snapshot.recorded = 1;
  const std::string json = chrome_trace_json(snapshot, {"S1"});
  EXPECT_NE(json.find("\"name\":\"R7\""), std::string::npos) << json;
}

TEST(EventsJsonl, OneObjectPerLineEveryKindIncluded) {
  const TraceSnapshot snapshot = sample_snapshot();
  const std::string jsonl = events_jsonl(snapshot);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  bool saw_cache_hit = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"cache_hit\"") != std::string::npos) {
      saw_cache_hit = true;
    }
    ++count;
  }
  EXPECT_EQ(count, snapshot.events.size());
  EXPECT_TRUE(saw_cache_hit);  // JSONL keeps the high-frequency channel
}

TEST(WriteFile, RoundTripsAndReportsFailure) {
  const std::string path = "exporters_test_roundtrip.tmp";
  EXPECT_TRUE(write_file(path, "hello"));
  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "hello");
  in.close();
  std::remove(path.c_str());
  EXPECT_FALSE(write_file("no/such/directory/file.json", "x"));
}

}  // namespace
}  // namespace gridlb::obs
