// Exporter tests: Chrome trace-event layout and the JSONL dump.
#include "obs/exporters.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gridlb::obs {
namespace {

TraceEvent make_event(EventKind kind, SimTime at, std::uint64_t task,
                      std::uint64_t resource, double a = 0.0, double b = 0.0,
                      std::uint32_t extra = 0) {
  TraceEvent event;
  event.kind = kind;
  event.at = at;
  event.task = task;
  event.resource = resource;
  event.a = a;
  event.b = b;
  event.extra = extra;
  return event;
}

TraceSnapshot sample_snapshot() {
  TraceSnapshot snapshot;
  snapshot.events = {
      make_event(EventKind::kRequestSubmitted, 1.0, 1, 1, 900.0),
      make_event(EventKind::kTaskSpan, 2.0, 1, 1, 2.0, 12.0, 4),
      make_event(EventKind::kGaRunStarted, 2.0, 0, 2, 3.0),
      make_event(EventKind::kGaGeneration, 2.0, 0, 2, 0.5, 0.8, 0),
      make_event(EventKind::kGaGeneration, 2.0, 0, 2, 0.4, 0.6, 1),
      make_event(EventKind::kQueueDepth, 2.5, 0, 1, 3.0),
      make_event(EventKind::kCacheHit, 2.6, 0, 0),
      make_event(EventKind::kCacheMiss, 2.7, 0, 0),
  };
  snapshot.recorded = snapshot.events.size();
  snapshot.dropped = 0;
  return snapshot;
}

TEST(ChromeTrace, ContainsTraceEventsAndTrackMetadata) {
  const std::string json =
      chrome_trace_json(sample_snapshot(), {"S1", "S2"});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Track names for every resource seen in the events.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"S1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"S2 GA\""), std::string::npos);
  // Task execution as a complete span with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":10000000"), std::string::npos);
  // GA generations render as counter samples.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"best\":0.5"), std::string::npos);
  // Cache traffic is summarised, not emitted per event.
  EXPECT_EQ(json.find("cache_hit\","), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":1"), std::string::npos);
  // Braces balance (CI validates the real file with python -m json.tool).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, UnknownResourceFallsBackToGenericLabel) {
  TraceSnapshot snapshot;
  snapshot.events = {make_event(EventKind::kQueueDepth, 0.0, 0, 7, 1.0)};
  snapshot.recorded = 1;
  const std::string json = chrome_trace_json(snapshot, {"S1"});
  EXPECT_NE(json.find("\"name\":\"R7\""), std::string::npos) << json;
}

TEST(EventsJsonl, OneObjectPerLineEveryKindIncluded) {
  const TraceSnapshot snapshot = sample_snapshot();
  const std::string jsonl = events_jsonl(snapshot);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  bool saw_cache_hit = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"cache_hit\"") != std::string::npos) {
      saw_cache_hit = true;
    }
    ++count;
  }
  EXPECT_EQ(count, snapshot.events.size());
  EXPECT_TRUE(saw_cache_hit);  // JSONL keeps the high-frequency channel
}

TEST(ChromeTrace, ShardStampsGroupEventsByShardProcess) {
  TraceSnapshot snapshot = sample_snapshot();
  // Stamp the task span on shard 0 and the GA events on shard 1 (stamps
  // are 1-based; 0 = unsharded).
  snapshot.events[1].shard = 1;
  snapshot.events[2].shard = 2;
  snapshot.events[3].shard = 2;
  snapshot.events[4].shard = 2;
  const std::string json = chrome_trace_json(snapshot, {"S1", "S2"});
  // One process per shard, named by 0-based index.
  EXPECT_NE(json.find("\"pid\":10,\"tid\":0,\"args\":{\"name\":\"shard 0\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pid\":11,\"tid\":0,\"args\":{\"name\":\"shard 1\"}"),
            std::string::npos);
  // The stamped span renders inside its shard's process; GA tracks get
  // the offset tid space with a named thread.
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":10,\"tid\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pid\":11,\"tid\":1002"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"S2 GA\"}"), std::string::npos);
  // Unstamped events stay on the classic pids.
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, UnshardedOutputIsByteIdenticalWithShardSupport) {
  // The sharded layout must not disturb a classic run's export: every
  // event carries stamp 0, so the emitted JSON has no shard processes.
  const std::string json =
      chrome_trace_json(sample_snapshot(), {"S1", "S2"});
  EXPECT_EQ(json.find("shard"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"pid\":10"), std::string::npos);
}

TEST(ChromeTrace, ShardSamplesRenderAsEngineCounterTracks) {
  TraceSnapshot snapshot;
  TraceEvent sample =
      make_event(EventKind::kShardSample, 60.0, 0, 0, 420.0, 2.5e6, 1);
  // The recorder stamps the tick's executing shard; the described shard
  // lives in `extra` and must win.
  sample.shard = 1;
  snapshot.events = {sample};
  snapshot.recorded = 1;
  const std::string json = chrome_trace_json(snapshot, {});
  EXPECT_NE(json.find("\"name\":\"engine shards\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"shard 1 events\",\"ph\":\"C\",\"pid\":3,"
                      "\"tid\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"events\":420}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"ms\":2.5}"), std::string::npos);
}

TEST(EventsJsonl, ShardFieldPresentOnlyWhenStamped) {
  TraceSnapshot snapshot = sample_snapshot();
  snapshot.events[1].shard = 3;
  const std::string jsonl = events_jsonl(snapshot);
  // Stamped event reports the 0-based shard; others omit the field.
  std::size_t keys = 0;
  for (std::size_t pos = jsonl.find("\"shard\":"); pos != std::string::npos;
       pos = jsonl.find("\"shard\":", pos + 1)) {
    ++keys;
  }
  EXPECT_EQ(keys, 1u) << jsonl;
  EXPECT_NE(jsonl.find("\"shard\":2"), std::string::npos) << jsonl;
}

TEST(WriteFile, RoundTripsAndReportsFailure) {
  const std::string path = "exporters_test_roundtrip.tmp";
  EXPECT_TRUE(write_file(path, "hello"));
  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "hello");
  in.close();
  std::remove(path.c_str());
  EXPECT_FALSE(write_file("no/such/directory/file.json", "x"));
}

}  // namespace
}  // namespace gridlb::obs
