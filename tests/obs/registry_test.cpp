// Metrics registry unit tests: instrument identity, histogram bucketing,
// and snapshot formats.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace gridlb::obs {
namespace {

TEST(Registry, CounterAccumulates) {
  MetricsRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(41);
  EXPECT_EQ(registry.counter("a").value(), 42u);
  // Same name, same instrument.
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
}

TEST(Registry, GaugeHoldsLastValue) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(-2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), -2.5);
}

TEST(Registry, HistogramBucketsByUpperEdge) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  h.observe(0.5);   // <= 1
  h.observe(1.5);   // <= 2
  h.observe(5.0);   // +inf
  h.observe(2.0);   // boundary lands in the <= 2 bucket
  const Histogram::Snapshot snapshot = h.snapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 9.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 5.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 2.25);
  ASSERT_EQ(snapshot.buckets.size(), 3u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 2u);
  EXPECT_EQ(snapshot.buckets[2], 1u);
}

TEST(Registry, HistogramBoundsOnlyApplyOnCreation) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0});
  EXPECT_EQ(&registry.histogram("h", {5.0, 10.0}), &h);
}

TEST(Registry, EmptyHistogramSnapshot) {
  MetricsRegistry registry;
  const auto snapshot = registry.histogram("h", {1.0}).snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
}

TEST(Registry, JsonSnapshotStructure) {
  MetricsRegistry registry;
  registry.counter("sim.events").add(7);
  registry.gauge("pace.cache.hit_rate").set(0.75);
  registry.histogram("discovery.hops", {1.0, 2.0}).observe(1.0);
  const std::string json = registry.json_snapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sim.events\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pace.cache.hit_rate\":0.75"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"discovery.hops\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (python -m json.tool
  // validates the real files in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Registry, NonFiniteGaugeSerialisesAsNull) {
  MetricsRegistry registry;
  registry.gauge("bad").set(std::numeric_limits<double>::infinity());
  const std::string json = registry.json_snapshot();
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos) << json;
}

TEST(Registry, TextSnapshotListsInstruments) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  const std::string text = registry.text_snapshot();
  const auto a = text.find("a.first");
  const auto z = text.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);  // name order
}

TEST(Registry, GlobalAccessorDefaultsToNull) {
  EXPECT_EQ(registry(), nullptr);
}

}  // namespace
}  // namespace gridlb::obs
