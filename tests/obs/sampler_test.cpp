// Continuous-sampler unit tests: percentile estimation, time-series
// rendering, counter-delta bookkeeping, and the experiment-level interval
// alignment the campaign report relies on.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace gridlb::obs {
namespace {

// --- histogram_percentile ------------------------------------------------

TEST(HistogramPercentile, EmptyHistogramReportsZero) {
  EXPECT_DOUBLE_EQ(histogram_percentile({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
}

TEST(HistogramPercentile, InterpolatesInsideBucket) {
  // 10 observations uniformly attributed to the (1, 2] bucket: the median
  // sits mid-bucket.
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> buckets{0, 10, 0};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, buckets, 0.5), 1.5);
  // First bucket interpolates from lower edge 0.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {10, 0, 0}, 0.5), 0.5);
}

TEST(HistogramPercentile, CrossesBucketsCumulatively) {
  // 4 in (0,1], 4 in (1,2]: p75 lands exactly at the top of bucket 2's
  // first half → 1 + (6-4)/4 = 1.5.
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> buckets{4, 4, 0};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, buckets, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, buckets, 0.25), 0.5);
}

TEST(HistogramPercentile, InfBucketClampsToLastFiniteBound) {
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> buckets{0, 0, 5};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, buckets, 0.99), 2.0);
}

// --- TimeSeries ----------------------------------------------------------

TEST(TimeSeries, JsonlEmitsOneObjectPerRow) {
  TimeSeries series;
  series.append(1.0, {{"a", 2.0}, {"b", 0.5}});
  series.append(2.5, {{"b", 1.0}});
  EXPECT_EQ(series.jsonl(),
            "{\"t\":1,\"a\":2,\"b\":0.5}\n{\"t\":2.5,\"b\":1}\n");
}

TEST(TimeSeries, CsvUnionsColumnsWithEmptyCells) {
  TimeSeries series;
  series.append(1.0, {{"a", 2.0}});
  series.append(2.0, {{"b", 3.0}});
  series.append(3.0, {{"a", 4.0}, {"b", 5.0}});
  EXPECT_EQ(series.csv(), "t,a,b\n1,2,\n2,,3\n3,4,5\n");
}

TEST(TimeSeries, EmptySeriesRendersHeaderOnly) {
  TimeSeries series;
  EXPECT_EQ(series.jsonl(), "");
  EXPECT_EQ(series.csv(), "t\n");
}

// --- Sampler delta bookkeeping -------------------------------------------

TEST(Sampler, CountersAreReportedAsIntervalDeltas) {
  MetricsRegistry registry;
  Sampler sampler(registry);
  registry.counter("c").add(10);
  sampler.sample(1.0);
  registry.counter("c").add(5);
  sampler.sample(2.0);
  sampler.sample(3.0);  // no movement: column omitted, row still appended

  const auto& rows = sampler.series().rows();
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(rows[0].values.size(), 1u);
  EXPECT_EQ(rows[0].values[0].first, "c");
  EXPECT_DOUBLE_EQ(rows[0].values[0].second, 10.0);
  ASSERT_EQ(rows[1].values.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[1].values[0].second, 5.0);
  EXPECT_TRUE(rows[2].values.empty());
  EXPECT_EQ(sampler.samples_taken(), 3u);
}

TEST(Sampler, GaugesAreAlwaysCurrent) {
  MetricsRegistry registry;
  Sampler sampler(registry);
  registry.gauge("g").set(1.5);
  sampler.sample(1.0);
  sampler.sample(2.0);  // unchanged gauge still present
  registry.gauge("g").set(-3.0);
  sampler.sample(3.0);

  const auto& rows = sampler.series().rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].values[0].second, 1.5);
  EXPECT_DOUBLE_EQ(rows[1].values[0].second, 1.5);
  EXPECT_DOUBLE_EQ(rows[2].values[0].second, -3.0);
}

TEST(Sampler, HistogramsExportWindowedPercentiles) {
  MetricsRegistry registry;
  Sampler sampler(registry);
  Histogram& h = registry.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(0.5);
  sampler.sample(1.0);
  // Second window: all 10 new observations in (1, 2].  The percentiles
  // must describe only this window, not the lifetime distribution.
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  sampler.sample(2.0);

  const auto& rows = sampler.series().rows();
  ASSERT_EQ(rows.size(), 2u);
  const auto get = [](const TimeSeries::Row& row, const std::string& name) {
    for (const auto& [col, value] : row.values) {
      if (col == name) return value;
    }
    ADD_FAILURE() << "missing column " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(get(rows[0], "lat.count"), 2.0);
  EXPECT_DOUBLE_EQ(get(rows[0], "lat.mean"), 0.5);
  EXPECT_DOUBLE_EQ(get(rows[1], "lat.count"), 10.0);
  EXPECT_DOUBLE_EQ(get(rows[1], "lat.mean"), 1.5);
  EXPECT_DOUBLE_EQ(get(rows[1], "lat.p50"), 1.5);
  EXPECT_GT(get(rows[1], "lat.p99"), 1.5);
}

TEST(Sampler, DuplicateTimestampIsIgnored) {
  MetricsRegistry registry;
  Sampler sampler(registry);
  registry.counter("c").add(1);
  sampler.sample(5.0);
  registry.counter("c").add(1);
  sampler.sample(5.0);  // final end-of-run sample coinciding with a tick
  EXPECT_EQ(sampler.series().rows().size(), 1u);
  EXPECT_EQ(sampler.samples_taken(), 1u);
}

// --- Experiment-level interval alignment ---------------------------------

TEST(SamplerExperiment, TicksAlignToTheConfiguredInterval) {
  const std::string path = "sampler_test_series.tmp";
  core::ExperimentConfig config = core::experiment1();
  config.workload.count = 24;
  config.system.sim_shards = 4;
  config.obs.metrics_interval = 50.0;
  config.obs.series_jsonl_out = path;
  const core::ExperimentResult result = core::run_experiment(config);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<double> ts;
  std::string line;
  while (std::getline(in, line)) {
    // Every row starts {"t":<value>,...
    ASSERT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    ts.push_back(std::stod(line.substr(5)));
  }
  in.close();
  std::remove(path.c_str());

  // Periodic ticks at k·interval while the run lasted, plus the final
  // end-of-run sample at finished_at.
  ASSERT_GE(ts.size(), 2u);
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts[i], 50.0 * static_cast<double>(i + 1));
  }
  EXPECT_DOUBLE_EQ(ts.back(), result.finished_at);
  EXPECT_EQ(ts.size(),
            static_cast<std::size_t>(result.finished_at / 50.0) + 1);
}

}  // namespace
}  // namespace gridlb::obs
