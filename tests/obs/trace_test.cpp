// Trace recorder unit tests: the disabled path records nothing, rings
// wrap with accurate drop accounting, and the high-frequency channel
// never evicts control-flow events.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.hpp"

namespace gridlb::obs {
namespace {

TraceEvent event_at(SimTime at, EventKind kind = EventKind::kQueueDepth) {
  TraceEvent event;
  event.at = at;
  event.kind = kind;
  return event;
}

ObsConfig trace_config(std::size_t control = 16, std::size_t highfreq = 8) {
  ObsConfig config;
  config.trace = true;
  config.control_ring_capacity = control;
  config.highfreq_ring_capacity = highfreq;
  return config;
}

TEST(Trace, DisabledByDefault) {
  EXPECT_EQ(trace(), nullptr);
  // emit() with no recorder installed must be a no-op, not a crash.
  for (int i = 0; i < 100; ++i) emit(event_at(static_cast<double>(i)));
}

TEST(Trace, EventsEmittedWhileDisabledAreNeverBuffered) {
  emit(event_at(1.0));
  emit(event_at(2.0));
  Session session(trace_config());
  const TraceSnapshot snapshot = session.recorder()->snapshot();
  EXPECT_EQ(snapshot.events.size(), 0u);
  EXPECT_EQ(snapshot.recorded, 0u);
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST(Trace, RecordsThroughTheGlobalAccessor) {
  Session session(trace_config());
  ASSERT_NE(trace(), nullptr);
  emit(event_at(3.0, EventKind::kGaRunStarted));
  emit(event_at(1.0, EventKind::kRequestSubmitted));
  emit(event_at(2.0, EventKind::kTaskCompleted));
  const TraceSnapshot snapshot = session.recorder()->snapshot();
  ASSERT_EQ(snapshot.events.size(), 3u);
  EXPECT_EQ(snapshot.recorded, 3u);
  EXPECT_EQ(snapshot.dropped, 0u);
  // Sorted ascending by timestamp.
  EXPECT_DOUBLE_EQ(snapshot.events[0].at, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.events[1].at, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.events[2].at, 3.0);
  EXPECT_EQ(snapshot.events[0].kind, EventKind::kRequestSubmitted);
}

TEST(Trace, UninstalledOnSessionDestruction) {
  {
    Session session(trace_config());
    EXPECT_NE(trace(), nullptr);
  }
  EXPECT_EQ(trace(), nullptr);
  emit(event_at(1.0));  // must not touch the destroyed recorder
}

TEST(Trace, RingWrapKeepsNewestAndCountsDropped) {
  Session session(trace_config(/*control=*/4));
  for (int i = 0; i < 10; ++i) emit(event_at(static_cast<double>(i)));
  const TraceSnapshot snapshot = session.recorder()->snapshot();
  EXPECT_EQ(snapshot.recorded, 10u);
  EXPECT_EQ(snapshot.dropped, 6u);
  ASSERT_EQ(snapshot.events.size(), 4u);
  EXPECT_DOUBLE_EQ(snapshot.events.front().at, 6.0);
  EXPECT_DOUBLE_EQ(snapshot.events.back().at, 9.0);
}

TEST(Trace, HighFrequencyChannelCannotEvictControlEvents) {
  Session session(trace_config(/*control=*/8, /*highfreq=*/4));
  emit(event_at(0.0, EventKind::kGaRunStarted));
  for (int i = 0; i < 100; ++i) {
    emit(event_at(1.0 + i, EventKind::kCacheHit));
  }
  emit(event_at(200.0, EventKind::kGaRunFinished));
  const TraceSnapshot snapshot = session.recorder()->snapshot();
  // Both control events survive the cache-event flood.
  int control = 0;
  for (const TraceEvent& event : snapshot.events) {
    if (event.kind == EventKind::kGaRunStarted ||
        event.kind == EventKind::kGaRunFinished) {
      ++control;
    }
  }
  EXPECT_EQ(control, 2);
  EXPECT_EQ(snapshot.dropped, 100u - 4u);
}

TEST(Trace, EachThreadGetsItsOwnRings) {
  Session session(trace_config());
  emit(event_at(1.0));
  std::thread worker([] { emit(event_at(2.0, EventKind::kCacheMiss)); });
  worker.join();
  const TraceSnapshot snapshot = session.recorder()->snapshot();
  EXPECT_EQ(snapshot.events.size(), 2u);
  EXPECT_GE(session.recorder()->thread_count(), 2u);
}

TEST(Trace, SecondSessionStartsEmpty) {
  {
    Session first(trace_config());
    emit(event_at(1.0));
  }
  // The thread-local ring cache must not leak events into a new recorder
  // generation (epoch invalidation).
  Session second(trace_config());
  emit(event_at(7.0));
  const TraceSnapshot snapshot = second.recorder()->snapshot();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.events[0].at, 7.0);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_EQ(kind_name(EventKind::kCacheHit), "cache_hit");
  EXPECT_EQ(kind_name(EventKind::kGaGeneration), "ga_generation");
  EXPECT_EQ(kind_name(EventKind::kTaskSpan), "task_span");
}

}  // namespace
}  // namespace gridlb::obs
