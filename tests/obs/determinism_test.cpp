// Observation neutrality: enabling tracing and metrics must be bit-for-bit
// invisible to the experiment — the overhead contract of DESIGN.md §9.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig small_experiment3() {
  ExperimentConfig config = experiment3();
  config.workload.count = 40;
  return config;
}

void expect_identical(const ExperimentResult& plain,
                      const ExperimentResult& observed) {
  ASSERT_EQ(plain.completions.size(), observed.completions.size());
  for (std::size_t i = 0; i < plain.completions.size(); ++i) {
    const sched::CompletionRecord& a = plain.completions[i];
    const sched::CompletionRecord& b = observed.completions[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.resource, b.resource);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_DOUBLE_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.end, b.end);
  }
  EXPECT_DOUBLE_EQ(plain.report.total.advance_time,
                   observed.report.total.advance_time);
  EXPECT_DOUBLE_EQ(plain.report.total.utilisation,
                   observed.report.total.utilisation);
  EXPECT_DOUBLE_EQ(plain.report.total.balance, observed.report.total.balance);
  EXPECT_EQ(plain.sim_events, observed.sim_events);
  EXPECT_EQ(plain.network_messages, observed.network_messages);
  EXPECT_EQ(plain.ga_decodes, observed.ga_decodes);
  EXPECT_DOUBLE_EQ(plain.finished_at, observed.finished_at);
}

TEST(ObservationNeutrality, TracingDoesNotChangeSchedulingResults) {
  const ExperimentResult plain = run_experiment(small_experiment3());

  ExperimentConfig traced = small_experiment3();
  traced.obs.trace = true;
  traced.obs.metrics = true;
  const ExperimentResult observed = run_experiment(traced);

  expect_identical(plain, observed);
  // And the observed run actually observed something.
  EXPECT_GT(observed.trace_events, 0u);
  EXPECT_EQ(plain.trace_events, 0u);
}

TEST(ObservationNeutrality, SecondTracedRunMatchesFirst) {
  ExperimentConfig traced = small_experiment3();
  traced.obs.trace = true;
  const ExperimentResult a = run_experiment(traced);
  const ExperimentResult b = run_experiment(traced);
  expect_identical(a, b);
}

TEST(ObservationNeutrality, FifoExperimentIsAlsoNeutral) {
  ExperimentConfig config = experiment1();
  config.workload.count = 24;
  const ExperimentResult plain = run_experiment(config);
  config.obs.trace = true;
  config.obs.metrics = true;
  const ExperimentResult observed = run_experiment(config);
  expect_identical(plain, observed);
}

// --- Continuous sampler (DESIGN.md §14) ---------------------------------
//
// The sampler schedules real engine events, so neutrality is a stronger
// claim than for passive tracing: the ticks must neither perturb the
// schedule (lineage order, exact stop) nor leak into the published event
// count.  Pinned here for every experiment shape at shard counts 1 and 4.

/// Tracing + metrics + a fast sampling cadence, no output files.
void enable_sampling(ExperimentConfig& config) {
  config.obs.trace = true;
  config.obs.metrics = true;
  config.obs.metrics_interval = 25.0;
}

void expect_sampler_neutral(ExperimentConfig config) {
  config.system.sim_shards = 1;
  const ExperimentResult plain = run_experiment(config);

  ExperimentConfig sampled1 = config;
  enable_sampling(sampled1);
  const ExperimentResult observed1 = run_experiment(sampled1);
  expect_identical(plain, observed1);

  ExperimentConfig sampled4 = config;
  sampled4.system.sim_shards = 4;
  enable_sampling(sampled4);
  const ExperimentResult observed4 = run_experiment(sampled4);
  expect_identical(plain, observed4);
}

TEST(SamplerNeutrality, Experiment1AtShards1And4) {
  ExperimentConfig config = experiment1();
  config.workload.count = 24;
  expect_sampler_neutral(config);
}

TEST(SamplerNeutrality, Experiment2AtShards1And4) {
  ExperimentConfig config = experiment2();
  config.workload.count = 24;
  expect_sampler_neutral(config);
}

TEST(SamplerNeutrality, Experiment3AtShards1And4) {
  expect_sampler_neutral(small_experiment3());
}

TEST(SamplerNeutrality, CentralOracleIsNeutral) {
  ExperimentConfig config = experiment2();
  config.name = "central";
  config.placement = PlacementFamily::kCentralOracle;
  config.workload.count = 24;
  const ExperimentResult plain = run_experiment(config);
  ExperimentConfig sampled = config;
  enable_sampling(sampled);
  const ExperimentResult observed = run_experiment(sampled);
  expect_identical(plain, observed);
  EXPECT_GT(observed.trace_events, 0u);
}

TEST(SamplerNeutrality, SamplerActuallySampled) {
  // Guard against the suite passing vacuously: the sampled run must have
  // taken periodic samples (run length >> 25 s cadence).
  ExperimentConfig config = small_experiment3();
  enable_sampling(config);
  config.system.sim_shards = 4;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.finished_at, 50.0);
  EXPECT_GT(result.trace_events, 0u);
}

}  // namespace
}  // namespace gridlb::core
