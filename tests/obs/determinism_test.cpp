// Observation neutrality: enabling tracing and metrics must be bit-for-bit
// invisible to the experiment — the overhead contract of DESIGN.md §9.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace gridlb::core {
namespace {

ExperimentConfig small_experiment3() {
  ExperimentConfig config = experiment3();
  config.workload.count = 40;
  return config;
}

void expect_identical(const ExperimentResult& plain,
                      const ExperimentResult& observed) {
  ASSERT_EQ(plain.completions.size(), observed.completions.size());
  for (std::size_t i = 0; i < plain.completions.size(); ++i) {
    const sched::CompletionRecord& a = plain.completions[i];
    const sched::CompletionRecord& b = observed.completions[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.resource, b.resource);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_DOUBLE_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.end, b.end);
  }
  EXPECT_DOUBLE_EQ(plain.report.total.advance_time,
                   observed.report.total.advance_time);
  EXPECT_DOUBLE_EQ(plain.report.total.utilisation,
                   observed.report.total.utilisation);
  EXPECT_DOUBLE_EQ(plain.report.total.balance, observed.report.total.balance);
  EXPECT_EQ(plain.sim_events, observed.sim_events);
  EXPECT_EQ(plain.network_messages, observed.network_messages);
  EXPECT_EQ(plain.ga_decodes, observed.ga_decodes);
  EXPECT_DOUBLE_EQ(plain.finished_at, observed.finished_at);
}

TEST(ObservationNeutrality, TracingDoesNotChangeSchedulingResults) {
  const ExperimentResult plain = run_experiment(small_experiment3());

  ExperimentConfig traced = small_experiment3();
  traced.obs.trace = true;
  traced.obs.metrics = true;
  const ExperimentResult observed = run_experiment(traced);

  expect_identical(plain, observed);
  // And the observed run actually observed something.
  EXPECT_GT(observed.trace_events, 0u);
  EXPECT_EQ(plain.trace_events, 0u);
}

TEST(ObservationNeutrality, SecondTracedRunMatchesFirst) {
  ExperimentConfig traced = small_experiment3();
  traced.obs.trace = true;
  const ExperimentResult a = run_experiment(traced);
  const ExperimentResult b = run_experiment(traced);
  expect_identical(a, b);
}

TEST(ObservationNeutrality, FifoExperimentIsAlsoNeutral) {
  ExperimentConfig config = experiment1();
  config.workload.count = 24;
  const ExperimentResult plain = run_experiment(config);
  config.obs.trace = true;
  config.obs.metrics = true;
  const ExperimentResult observed = run_experiment(config);
  expect_identical(plain, observed);
}

}  // namespace
}  // namespace gridlb::core
