#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace gridlb::sim {
namespace {

struct NetworkFixture : ::testing::Test {
  Engine engine;
  Network network{engine, 0.05};
  std::vector<Message> inbox_a;
  std::vector<Message> inbox_b;
  EndpointId a = network.register_endpoint(
      "a.gridlb.sim", 1000, [this](const Message& m) { inbox_a.push_back(m); });
  EndpointId b = network.register_endpoint(
      "b.gridlb.sim", 1001, [this](const Message& m) { inbox_b.push_back(m); });
};

TEST_F(NetworkFixture, DeliversAfterLatency) {
  network.send(a, b, "hello");
  EXPECT_TRUE(inbox_b.empty());
  engine.run();
  ASSERT_EQ(inbox_b.size(), 1u);
  EXPECT_EQ(inbox_b[0].payload, "hello");
  EXPECT_EQ(inbox_b[0].sent_at, 0.0);
  EXPECT_DOUBLE_EQ(inbox_b[0].delivered_at, 0.05);
  EXPECT_EQ(inbox_b[0].from, a);
  EXPECT_EQ(inbox_b[0].to, b);
}

TEST_F(NetworkFixture, SelfSendWorks) {
  network.send(a, a, "loopback");
  engine.run();
  ASSERT_EQ(inbox_a.size(), 1u);
  EXPECT_EQ(inbox_a[0].payload, "loopback");
}

TEST_F(NetworkFixture, PreservesSendOrderAtEqualTimes) {
  network.send(a, b, "first");
  network.send(a, b, "second");
  engine.run();
  ASSERT_EQ(inbox_b.size(), 2u);
  EXPECT_EQ(inbox_b[0].payload, "first");
  EXPECT_EQ(inbox_b[1].payload, "second");
}

TEST_F(NetworkFixture, CountsTraffic) {
  network.send(a, b, "12345");
  network.send(b, a, "123");
  engine.run();
  EXPECT_EQ(network.total_messages(), 2u);
  EXPECT_EQ(network.total_bytes(), 8u);
  EXPECT_EQ(network.stats(a).messages_sent, 1u);
  EXPECT_EQ(network.stats(a).bytes_sent, 5u);
  EXPECT_EQ(network.stats(a).messages_received, 1u);
  EXPECT_EQ(network.stats(a).bytes_received, 3u);
  EXPECT_EQ(network.stats(b).messages_received, 1u);
}

TEST_F(NetworkFixture, IdentityLookup) {
  EXPECT_EQ(network.address(a), "a.gridlb.sim");
  EXPECT_EQ(network.port(b), 1001);
  EXPECT_EQ(network.endpoint_count(), 2u);
}

TEST_F(NetworkFixture, RejectsUnknownEndpoints) {
  EXPECT_THROW(network.send(a, 99, "x"), AssertionError);
  EXPECT_THROW(network.send(99, b, "x"), AssertionError);
  EXPECT_THROW((void)network.stats(99), AssertionError);
}

TEST(Network, ZeroLatencyDeliversSameTimestamp) {
  Engine engine;
  Network network(engine, 0.0);
  SimTime delivered = kNoTime;
  const EndpointId a = network.register_endpoint(
      "a", 1, [&](const Message& m) { delivered = m.delivered_at; });
  engine.schedule_at(3.0, [&]() { network.send(a, a, "x"); });
  engine.run();
  EXPECT_EQ(delivered, 3.0);
}

TEST(Network, RejectsNegativeLatency) {
  Engine engine;
  EXPECT_THROW(Network(engine, -1.0), AssertionError);
}

TEST(Network, RejectsNullHandler) {
  Engine engine;
  Network network(engine, 0.0);
  EXPECT_THROW(network.register_endpoint("a", 1, nullptr), AssertionError);
}

TEST(Network, HandlerCanSendReply) {
  Engine engine;
  Network network(engine, 0.1);
  std::vector<std::string> log;
  EndpointId a = 0;
  EndpointId b = 0;
  a = network.register_endpoint("a", 1, [&](const Message& m) {
    log.push_back("a got " + m.payload);
  });
  b = network.register_endpoint("b", 2, [&](const Message& m) {
    log.push_back("b got " + m.payload);
    network.send(b, m.from, "pong");
  });
  network.send(a, b, "ping");
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "b got ping");
  EXPECT_EQ(log[1], "a got pong");
  EXPECT_EQ(engine.now(), 0.2);
}

}  // namespace
}  // namespace gridlb::sim
