#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace gridlb::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_FALSE(engine.has_pending());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&order]() { order.push_back(3); });
  engine.schedule_at(1.0, [&order]() { order.push_back(1); });
  engine.schedule_at(2.0, [&order]() { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i]() { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ClockShowsEventTimeInsideCallback) {
  Engine engine;
  engine.schedule_at(7.5, [&engine]() { EXPECT_EQ(engine.now(), 7.5); });
  engine.run();
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  SimTime fired_at = kNoTime;
  engine.schedule_at(2.0, [&]() {
    engine.schedule_in(3.0, [&]() { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 10) engine.schedule_in(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(engine.now(), 9.0);
}

TEST(Engine, RejectsPastEvents) {
  Engine engine;
  engine.schedule_at(5.0, []() {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(4.0, []() {}), AssertionError);
}

TEST(Engine, RejectsNullCallback) {
  Engine engine;
  EXPECT_THROW(engine.schedule_at(1.0, nullptr), AssertionError);
}

TEST(Engine, RejectsInfiniteTime) {
  Engine engine;
  EXPECT_THROW(engine.schedule_at(kTimeInfinity, []() {}), AssertionError);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&fired]() { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(0));
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, StepReturnsFalseWhenIdle) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(1.0, []() {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.schedule_at(t, [&fired, &engine]() { fired.push_back(engine.now()); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(engine.now(), 2.5);
  engine.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine engine;
  engine.run_until(10.0);
  EXPECT_EQ(engine.now(), 10.0);
}

TEST(Engine, NextEventTime) {
  Engine engine;
  EXPECT_EQ(engine.next_event_time(), kTimeInfinity);
  engine.schedule_at(4.0, []() {});
  const EventId early = engine.schedule_at(2.0, []() {});
  EXPECT_EQ(engine.next_event_time(), 2.0);
  engine.cancel(early);
  EXPECT_EQ(engine.next_event_time(), 4.0);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine engine;
  int count = 0;
  engine.schedule_periodic(0.0, 10.0, [&count]() { ++count; });
  engine.run_until(35.0);
  EXPECT_EQ(count, 4);  // t = 0, 10, 20, 30
}

TEST(Engine, PeriodicCancelStopsChain) {
  Engine engine;
  int count = 0;
  const EventId chain =
      engine.schedule_periodic(0.0, 1.0, [&count]() { ++count; });
  engine.schedule_at(4.5, [&engine, chain]() { engine.cancel(chain); });
  engine.run_until(100.0);
  EXPECT_EQ(count, 5);  // t = 0..4
}

TEST(Engine, PeriodicCancelFromInsideCallback) {
  Engine engine;
  int count = 0;
  EventId chain = 0;
  chain = engine.schedule_periodic(0.0, 1.0, [&]() {
    ++count;
    if (count == 3) engine.cancel(chain);
  });
  engine.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Engine, PeriodicRejectsNonPositivePeriod) {
  Engine engine;
  EXPECT_THROW(engine.schedule_periodic(0.0, 0.0, []() {}), AssertionError);
}

TEST(Engine, EventsProcessedCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_at(i, []() {});
  engine.run();
  EXPECT_EQ(engine.events_processed(), 7u);
}

TEST(Engine, ConstQueriesSkipCancelledEvents) {
  Engine engine;
  bool fired = false;
  const EventId first = engine.schedule_at(1.0, [&fired]() { fired = true; });
  engine.schedule_at(2.0, []() {});
  EXPECT_TRUE(engine.cancel(first));
  // The queries prune the cancelled head lazily instead of copying the
  // whole queue; the cancelled event must be invisible either way.
  EXPECT_TRUE(engine.has_pending());
  EXPECT_EQ(engine.next_event_time(), 2.0);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(engine.has_pending());
  EXPECT_EQ(engine.next_event_time(), kTimeInfinity);
}

TEST(Engine, AllCancelledReadsAsIdle) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(engine.schedule_at(static_cast<double>(i) + 1.0, []() {}));
  }
  for (const EventId id : ids) EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.has_pending());
  EXPECT_EQ(engine.next_event_time(), kTimeInfinity);
  engine.run();
  EXPECT_EQ(engine.events_processed(), 0u);
  // A fresh event after the sweep behaves normally.
  int count = 0;
  engine.schedule_at(500.0, [&count]() { ++count; });
  EXPECT_EQ(engine.next_event_time(), 500.0);
  engine.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, EventsSweptCountsLazyDiscards) {
  Engine engine;
  EXPECT_EQ(engine.events_swept(), 0u);
  const EventId a = engine.schedule_at(1.0, []() {});
  const EventId b = engine.schedule_at(2.0, []() {});
  engine.schedule_at(3.0, []() {});
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_TRUE(engine.cancel(b));
  engine.run();
  EXPECT_EQ(engine.events_swept(), 2u);
  EXPECT_EQ(engine.events_processed(), 1u);
}

TEST(Engine, ChainCancelKeepsSweepFastPath) {
  // Cancelling a periodic chain must not leave a stale id poisoning the
  // lazy sweep: chain ids live in their own id space and are never
  // enqueued, so after the chain stops no entry is ever swept for it.
  Engine engine;
  int count = 0;
  const EventId chain =
      engine.schedule_periodic(0.0, 1.0, [&count]() { ++count; });
  engine.schedule_at(2.5, [&engine, chain]() { engine.cancel(chain); });
  engine.run_until(50.0);
  EXPECT_EQ(count, 3);  // t = 0, 1, 2
  const std::uint64_t swept = engine.events_swept();
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(60.0 + i, []() {});
  }
  engine.run();
  // No plain-event cancellations are outstanding, so the O(1) fast path
  // never sweeps anything for the dead chain.
  EXPECT_EQ(engine.events_swept(), swept);
}

TEST(Engine, ManyEventsStressOrder) {
  Engine engine;
  std::vector<double> fired;
  // Schedule in a scrambled order; firing must be sorted.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    engine.schedule_at(t, [&fired, &engine]() { fired.push_back(engine.now()); });
  }
  engine.run();
  EXPECT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace gridlb::sim
