// Shard coordinator unit tests: lookahead-window admission, the milestone
// lead that makes the exact-stop decision sound, and S=1 vs S>1
// equivalence of a cross-shard event program (the engine-level half of
// the shard-count-invariance contract; the experiment-level half lives in
// tests/core/shard_invariance_test.cpp).
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace gridlb::sim {
namespace {

TEST(SpinBarrier, SinglePartyPasses) {
  SpinBarrier barrier(1);
  EXPECT_TRUE(barrier.arrive_and_wait());
  EXPECT_TRUE(barrier.arrive_and_wait());
}

TEST(SpinBarrier, KillReleasesWithFalse) {
  SpinBarrier barrier(2);
  barrier.kill();
  EXPECT_FALSE(barrier.arrive_and_wait());
}

TEST(ShardedEngine, SingleShardIsPlainEngine) {
  ShardedEngine sharded(1, 0.0);  // lookahead unused at one shard
  EXPECT_FALSE(sharded.sharded());
  EXPECT_EQ(sharded.shard_count(), 1u);
  EXPECT_FALSE(sharded.shard(0).lineage_mode());
}

TEST(ShardedEngine, MultiShardRequiresPositiveLookahead) {
  EXPECT_THROW(ShardedEngine(2, 0.0), AssertionError);
}

TEST(ShardedEngine, SetupPostSchedulesDirectly) {
  ShardedEngine sharded(2, 1.0);
  // Outside any event there is no source shard; even a sub-lookahead
  // delay is fine because nothing has run yet (the queues are at t=0).
  bool fired = false;
  sharded.post(1, 0.25, [&fired] { fired = true; });
  int completed = 0;
  sharded.shard(0).schedule_milestone_at(10.0, [&completed] { ++completed; });
  sharded.shard(1).schedule_milestone_at(10.0, [&completed] { ++completed; });
  DriveGoal goal;
  goal.done = [&completed] { return completed == 2; };
  goal.remaining = [&completed] {
    return static_cast<std::uint64_t>(2 - completed);
  };
  sharded.drive(goal, 100.0);
  EXPECT_TRUE(fired);
  EXPECT_EQ(completed, 2);
}

TEST(ShardedEngine, CrossShardPostBelowLookaheadThrows) {
  ShardedEngine sharded(2, 1.0);
  sharded.shard(0).schedule_at(0.0, [&sharded] {
    sharded.post(1, 0.5, [] {});  // 0.5 < lookahead 1.0
  });
  int completed = 0;
  sharded.shard(1).schedule_milestone_at(5.0, [&completed] { ++completed; });
  DriveGoal goal;
  goal.done = [&completed] { return completed == 1; };
  goal.remaining = [&completed] {
    return static_cast<std::uint64_t>(1 - completed);
  };
  EXPECT_THROW(sharded.drive(goal, 100.0), AssertionError);
}

TEST(ShardedEngine, CrossShardDeliveryRespectsSafeTime) {
  // An event at t on shard 0 posting to shard 1 with delay == lookahead
  // must execute on shard 1 at exactly t + lookahead, with shard 1's
  // clock never having run past the safe time when it fires.
  ShardedEngine sharded(2, 1.0);
  std::vector<double> arrivals;  // only touched by shard 1's thread
  sharded.shard(0).schedule_at(0.0, [&sharded, &arrivals] {
    sharded.post(1, 1.0, [&sharded, &arrivals] {
      arrivals.push_back(sharded.shard(1).now());
    });
  });
  // Keep shard 1 busy with its own events so admission order matters.
  for (int i = 0; i < 8; ++i) {
    sharded.shard(1).schedule_at(0.25 * i, [] {});
  }
  int completed = 0;
  sharded.shard(0).schedule_milestone_at(50.0, [&completed] { ++completed; });
  DriveGoal goal;
  goal.done = [&completed] { return completed == 1; };
  goal.remaining = [&completed] {
    return static_cast<std::uint64_t>(1 - completed);
  };
  sharded.drive(goal, 100.0);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1.0);
}

TEST(ShardedEngine, MilestoneInsideLookaheadWindowThrows) {
  ShardedEngine sharded(2, 1.0);
  sharded.shard(0).schedule_at(5.0, [&sharded] {
    // 5.3 < now (5.0) + lead (1.0): the coordinator could not have counted
    // this milestone at the last barrier, so it must be rejected.
    sharded.shard(0).schedule_milestone_at(5.3, [] {});
  });
  int completed = 0;
  sharded.shard(1).schedule_milestone_at(50.0, [&completed] { ++completed; });
  DriveGoal goal;
  goal.done = [&completed] { return completed == 1; };
  goal.remaining = [&completed] {
    return static_cast<std::uint64_t>(1 - completed);
  };
  EXPECT_THROW(sharded.drive(goal, 100.0), AssertionError);
}

TEST(Engine, CountMilestonesBelowHonoursBoundAndCap) {
  LineageShared shared;
  Engine engine(&shared, 0);
  engine.schedule_milestone_at(2.0, [] {});
  engine.schedule_milestone_at(3.0, [] {});
  engine.schedule_milestone_at(5.0, [] {});
  EXPECT_EQ(engine.count_milestones_below(2.0, 10), 0u);  // strictly below
  EXPECT_EQ(engine.count_milestones_below(4.0, 10), 2u);
  EXPECT_EQ(engine.count_milestones_below(10.0, 10), 3u);
  EXPECT_EQ(engine.count_milestones_below(10.0, 2), 2u);  // capped
}

// A small cross-shard event program: `nodes` logical nodes, each pinned to
// shard (node % shard_count), ticking periodically and passing a token to
// the next node with exactly-lookahead latency.  Per-node logs are only
// ever touched by the owning shard's thread.
struct ProgramResult {
  std::vector<std::vector<std::pair<double, int>>> logs;  // per node
  std::uint64_t events = 0;
  double finished_at = 0.0;
};

ProgramResult run_program(std::size_t shards) {
  constexpr int kNodes = 5;
  constexpr double kLookahead = 1.0;
  ShardedEngine sharded(shards, kLookahead);
  ProgramResult result;
  result.logs.resize(kNodes);
  const auto shard_of = [&](int node) {
    return static_cast<std::size_t>(node) % sharded.shard_count();
  };

  int completed = 0;
  for (int node = 0; node < kNodes; ++node) {
    Engine& engine = sharded.shard(shard_of(node));
    // Local periodic work, phase-shifted per node so windows overlap.
    engine.schedule_periodic(0.3 * node, 0.7, [&result, &engine, node] {
      if (engine.now() < 12.0) result.logs[node].emplace_back(engine.now(), 0);
    });
    // Token passing: node -> node+1, five hops each, at the lookahead.
    for (int hop = 1; hop <= 5; ++hop) {
      engine.schedule_at(2.0 * hop, [&sharded, &result, &shard_of, node] {
        const int next = (node + 1) % kNodes;
        result.logs[node].emplace_back(
            sharded.shard(shard_of(node)).now(), 1);
        sharded.post(shard_of(next), 1.0, [&sharded, &result, &shard_of,
                                           next] {
          result.logs[next].emplace_back(
              sharded.shard(shard_of(next)).now(), 2);
        });
      });
    }
    engine.schedule_milestone_at(15.0 + node, [&completed] { ++completed; });
  }

  DriveGoal goal;
  goal.done = [&completed] { return completed == kNodes; };
  goal.remaining = [&completed] {
    return static_cast<std::uint64_t>(kNodes - completed);
  };
  sharded.drive(goal, 1000.0);
  result.events = sharded.events_processed();
  result.finished_at = sharded.max_now();
  return result;
}

TEST(ShardedEngine, ProgramIsShardCountInvariant) {
  const ProgramResult reference = run_program(1);
  for (const std::size_t shards : {2u, 3u, 5u}) {
    const ProgramResult sharded = run_program(shards);
    EXPECT_EQ(sharded.logs, reference.logs) << "shards=" << shards;
    EXPECT_EQ(sharded.events, reference.events) << "shards=" << shards;
    EXPECT_EQ(sharded.finished_at, reference.finished_at)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace gridlb::sim
