// The deterministic fault plan (DESIGN.md §10): drops, jitter, partitions
// and endpoint outages, all reproducible from the plan's seed — plus the
// neutrality contract that an inactive plan changes nothing at all.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.hpp"

namespace gridlb::sim {
namespace {

/// Sends `count` messages a→b at distinct times; returns delivery times.
std::vector<SimTime> run_stream(const FaultPlan& plan, int count) {
  Engine engine;
  Network network(engine, 0.05, plan);
  std::vector<SimTime> delivered;
  const EndpointId a = network.register_endpoint("a.gridlb.sim", 1, [](auto&) {});
  const EndpointId b = network.register_endpoint(
      "b.gridlb.sim", 2,
      [&delivered](const Message& m) { delivered.push_back(m.delivered_at); });
  for (int i = 0; i < count; ++i) {
    engine.schedule_at(static_cast<double>(i), [&network, a, b]() {
      network.send(a, b, "payload");
    });
  }
  engine.run();
  return delivered;
}

TEST(NetworkFaults, InactivePlanIsBitForBitNeutral) {
  // A default-constructed plan must leave the delivery schedule identical
  // to a network built without one — same times, same stats, no drops.
  const std::vector<SimTime> bare = run_stream(FaultPlan{}, 50);
  ASSERT_EQ(bare.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(bare[static_cast<std::size_t>(i)], static_cast<double>(i) + 0.05);
  }
}

TEST(NetworkFaults, DropsAreDeterministicUnderAFixedSeed) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.seed = 7;
  const auto first = run_stream(plan, 200);
  const auto second = run_stream(plan, 200);
  EXPECT_EQ(first, second);
  EXPECT_LT(first.size(), 200u);  // some losses at 30%

  plan.seed = 8;  // a different seed loses different messages
  const auto other = run_stream(plan, 200);
  EXPECT_NE(first, other);
}

TEST(NetworkFaults, DropRateApproximatesTheConfiguredProbability) {
  FaultPlan plan;
  plan.drop_prob = 0.2;
  const auto delivered = run_stream(plan, 1000);
  const auto losses = 1000 - static_cast<int>(delivered.size());
  EXPECT_GT(losses, 140);  // 200 ± generous slack
  EXPECT_LT(losses, 260);
}

TEST(NetworkFaults, JitterStaysBoundedAndDeterministic) {
  FaultPlan plan;
  plan.jitter_max = 0.4;
  const auto first = run_stream(plan, 100);
  ASSERT_EQ(first.size(), 100u);  // jitter delays, never drops
  for (int i = 0; i < 100; ++i) {
    const double base = static_cast<double>(i) + 0.05;
    EXPECT_GE(first[static_cast<std::size_t>(i)], base);
    EXPECT_LT(first[static_cast<std::size_t>(i)], base + 0.4);
  }
  EXPECT_EQ(first, run_stream(plan, 100));
}

TEST(NetworkFaults, PartitionDropsCrossingTrafficDuringItsWindow) {
  FaultPlan plan;
  plan.partitions.push_back({{"a.gridlb.sim"}, 3.0, 7.0});
  const auto delivered = run_stream(plan, 10);
  // Sends at t=3..6 fall inside [3,7); the rest cross normally.
  std::vector<SimTime> expected;
  for (const int i : {0, 1, 2, 7, 8, 9}) {
    expected.push_back(static_cast<double>(i) + 0.05);
  }
  EXPECT_EQ(delivered, expected);
}

TEST(NetworkFaults, PartitionSparesIntraIslandTraffic) {
  Engine engine;
  FaultPlan plan;
  plan.partitions.push_back({{"a.gridlb.sim", "b.gridlb.sim"}, 0.0, 10.0});
  Network network(engine, 0.05, plan);
  int received = 0;
  const EndpointId a = network.register_endpoint("a.gridlb.sim", 1, [](auto&) {});
  const EndpointId b = network.register_endpoint(
      "b.gridlb.sim", 2, [&received](const Message&) { ++received; });
  network.send(a, b, "same island");
  engine.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.fault_stats().dropped_partition, 0u);
}

TEST(NetworkFaults, DownEndpointDropsAtDeliveryTime) {
  Engine engine;
  FaultPlan plan;
  plan.jitter_max = 1e-9;  // activate the plan without visible effect
  Network network(engine, 0.05, plan);
  std::vector<std::string> inbox;
  const EndpointId a = network.register_endpoint("a.gridlb.sim", 1, [](auto&) {});
  const EndpointId b = network.register_endpoint(
      "b.gridlb.sim", 2,
      [&inbox](const Message& m) { inbox.push_back(m.payload); });

  network.send(a, b, "in flight when b dies");
  engine.schedule_at(0.01, [&]() { network.set_endpoint_up(b, false); });
  engine.schedule_at(1.0, [&]() { network.send(a, b, "sent while down"); });
  engine.schedule_at(2.0, [&]() { network.set_endpoint_up(b, true); });
  engine.schedule_at(3.0, [&]() { network.send(a, b, "after recovery"); });
  engine.run();

  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0], "after recovery");
  EXPECT_EQ(network.fault_stats().dropped_endpoint_down, 2u);
  EXPECT_TRUE(network.endpoint_up(b));
}

TEST(NetworkFaults, StatsBreakLossesDownByCause) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  plan.partitions.push_back({{"a.gridlb.sim"}, 0.0, 5.0});
  Engine engine;
  Network network(engine, 0.05, plan);
  const EndpointId a = network.register_endpoint("a.gridlb.sim", 1, [](auto&) {});
  const EndpointId b = network.register_endpoint("b.gridlb.sim", 2, [](auto&) {});
  for (int i = 0; i < 20; ++i) {
    engine.schedule_at(static_cast<double>(i), [&network, a, b]() {
      network.send(a, b, "x");
    });
  }
  engine.run();
  const FaultStats& stats = network.fault_stats();
  EXPECT_EQ(stats.dropped_partition, 5u);  // t=0..4 inside the window
  EXPECT_GT(stats.dropped_random, 0u);
  EXPECT_EQ(stats.dropped_total(),
            stats.dropped_random + stats.dropped_partition);
}

TEST(NetworkFaults, RejectsInvalidPlans) {
  Engine engine;
  {
    FaultPlan plan;
    plan.drop_prob = 1.0;  // would loop retries forever
    EXPECT_THROW(Network(engine, 0.05, plan), AssertionError);
  }
  {
    FaultPlan plan;
    plan.jitter_max = -0.1;
    EXPECT_THROW(Network(engine, 0.05, plan), AssertionError);
  }
  {
    FaultPlan plan;
    plan.partitions.push_back({{"a"}, 5.0, 2.0});  // until before from
    EXPECT_THROW(Network(engine, 0.05, plan), AssertionError);
  }
}

}  // namespace
}  // namespace gridlb::sim
