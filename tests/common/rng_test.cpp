#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace gridlb {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), AssertionError);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_int(2, 1), AssertionError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsAboutHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(4.0, 200.0);
    EXPECT_GE(v, 4.0);
    EXPECT_LT(v, 200.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(v, shuffled);
}

TEST(Rng, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitStreamsAreDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(Rng, SplitChildDiffersFromParent) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Property sweep: next_below is unbiased enough that each residue of a
// small modulus appears with roughly equal frequency.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, ResiduesRoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(41 + bound);
  std::vector<int> counts(bound, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(bound))];
  }
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 7, 12, 16, 100));

}  // namespace
}  // namespace gridlb
