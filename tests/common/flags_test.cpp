#include "common/flags.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gridlb {
namespace {

Flags declared() {
  Flags flags;
  flags.declare("requests", "N", "request count");
  flags.declare("policy", "ga|fifo", "scheduling policy");
  flags.declare("placement", "agent|central|crush", "placement family");
  flags.declare("rate", "x", "a real number");
  flags.declare("csv", "", "boolean switch");
  return flags;
}

void parse(Flags& flags, std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SeparateValueForm) {
  Flags flags = declared();
  parse(flags, {"--requests", "42"});
  EXPECT_EQ(flags.get_int("requests", 0), 42);
  EXPECT_TRUE(flags.has("requests"));
}

TEST(Flags, EqualsValueForm) {
  Flags flags = declared();
  parse(flags, {"--policy=fifo", "--rate=2.5"});
  EXPECT_EQ(flags.get("policy", "ga"), "fifo");
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(Flags, BooleanForms) {
  Flags flags = declared();
  parse(flags, {"--csv"});
  EXPECT_TRUE(flags.get_bool("csv", false));

  Flags off = declared();
  parse(off, {"--csv=false"});
  EXPECT_FALSE(off.get_bool("csv", true));

  Flags on = declared();
  parse(on, {"--csv=on"});
  EXPECT_TRUE(on.get_bool("csv", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags flags = declared();
  parse(flags, {});
  EXPECT_EQ(flags.get_int("requests", 7), 7);
  EXPECT_EQ(flags.get("policy", "ga"), "ga");
  EXPECT_FALSE(flags.get_bool("csv", false));
  EXPECT_FALSE(flags.has("requests"));
}

TEST(Flags, PositionalArguments) {
  Flags flags = declared();
  parse(flags, {"run", "--requests", "5", "extra"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"run", "extra"}));
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags = declared();
  EXPECT_THROW(parse(flags, {"--bogus", "1"}), AssertionError);
}

TEST(Flags, MissingValueThrows) {
  Flags flags = declared();
  EXPECT_THROW(parse(flags, {"--requests"}), AssertionError);
}

TEST(Flags, LastOccurrenceWins) {
  // Scripts append overrides to a baseline command line; the override
  // (the later occurrence) must take effect, in every value form.
  Flags flags = declared();
  parse(flags, {"--requests", "1", "--requests", "2"});
  EXPECT_EQ(flags.get_int("requests", 0), 2);

  Flags mixed = declared();
  parse(mixed, {"--policy=ga", "--csv", "--policy", "fifo", "--csv=off"});
  EXPECT_EQ(mixed.get("policy", ""), "fifo");
  EXPECT_FALSE(mixed.get_bool("csv", true));

  // --placement follows the same override convention, in both forms and
  // independently of the (orthogonal) local-policy flag.
  Flags placement = declared();
  parse(placement,
        {"--placement", "agent", "--policy=fifo", "--placement=crush"});
  EXPECT_EQ(placement.get("placement", ""), "crush");
  EXPECT_EQ(placement.get("policy", ""), "fifo");
}

TEST(Flags, TrailingGarbageInNumbersThrows) {
  // std::stoi/std::stod stop at the first bad character; "16x" must not
  // silently parse as 16, nor "0.05typo" as 0.05.
  Flags flags = declared();
  parse(flags, {"--requests", "16x", "--rate", "0.05typo"});
  EXPECT_THROW((void)flags.get_int("requests", 0), AssertionError);
  EXPECT_THROW((void)flags.get_double("rate", 0.0), AssertionError);

  Flags spaced = declared();
  parse(spaced, {"--requests", "16 ", "--rate=1.5e3"});
  EXPECT_THROW((void)spaced.get_int("requests", 0), AssertionError);
  EXPECT_DOUBLE_EQ(spaced.get_double("rate", 0.0), 1500.0);
}

TEST(Flags, MalformedNumbersThrow) {
  Flags flags = declared();
  parse(flags, {"--requests", "many", "--rate", "fast", "--csv=maybe"});
  EXPECT_THROW((void)flags.get_int("requests", 0), AssertionError);
  EXPECT_THROW((void)flags.get_double("rate", 0.0), AssertionError);
  EXPECT_THROW((void)flags.get_bool("csv", false), AssertionError);
}

TEST(Flags, ReadingUndeclaredFlagThrows) {
  Flags flags = declared();
  parse(flags, {});
  EXPECT_THROW((void)flags.get("nope", ""), AssertionError);
}

TEST(Flags, DuplicateDeclarationThrows) {
  Flags flags = declared();
  EXPECT_THROW(flags.declare("csv", "", "again"), AssertionError);
}

TEST(Flags, UsageListsEveryFlag) {
  const Flags flags = declared();
  const std::string usage = flags.usage("tool");
  EXPECT_NE(usage.find("--requests <N>"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("request count"), std::string::npos);
}

TEST(Flags, UsageSeparatesWideFlagsFromHelp) {
  // A flag column at or past the 34-char help column must still get a
  // separator — never "--flag <hint>help text" glued together.
  Flags flags;
  flags.declare("a-very-long-scenario-flag-name", "value-hint-too",
                "its help text");
  const std::string usage = flags.usage("tool");
  EXPECT_NE(
      usage.find("--a-very-long-scenario-flag-name <value-hint-too>  its "
                 "help text"),
      std::string::npos)
      << usage;

  // Short flags still pad out to the fixed help column.
  Flags narrow;
  narrow.declare("x", "", "tiny");
  const std::string line = narrow.usage("tool");
  EXPECT_NE(line.find("  --x" + std::string(34 - 5, ' ') + "tiny"),
            std::string::npos)
      << line;
}

}  // namespace
}  // namespace gridlb
