#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace gridlb {
namespace {

TEST(ThreadPoolTest, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), AssertionError);
  EXPECT_THROW(ThreadPool(-3), AssertionError);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(10, [&](int begin, int end, int slot) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
    EXPECT_EQ(slot, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ChunksPartitionTheRangeExactly) {
  for (const int threads : {1, 2, 3, 4, 7}) {
    ThreadPool pool(threads);
    for (const int count : {0, 1, 2, 5, 16, 100}) {
      std::vector<std::atomic<int>> visits(static_cast<std::size_t>(count));
      std::atomic<int> slot_mask{0};
      pool.parallel_for(count, [&](int begin, int end, int slot) {
        EXPECT_LT(begin, end);
        EXPECT_GE(slot, 0);
        EXPECT_LT(slot, threads);
        slot_mask.fetch_or(1 << slot);
        for (int i = begin; i < end; ++i) {
          ++visits[static_cast<std::size_t>(i)];
        }
      });
      for (int i = 0; i < count; ++i) {
        EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
      }
      if (count >= threads) {
        // Every slot receives a non-empty chunk once there is enough work.
        EXPECT_EQ(slot_mask.load(), (1 << threads) - 1);
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](int, int, int) { FAIL() << "must not be called"; });
  pool.parallel_for(-5, [](int, int, int) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  const std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint64_t> partial(static_cast<std::size_t>(pool.size()));
    pool.parallel_for(
        static_cast<int>(data.size()), [&](int begin, int end, int slot) {
          for (int i = begin; i < end; ++i) {
            partial[static_cast<std::size_t>(slot)] +=
                data[static_cast<std::size_t>(i)];
          }
        });
    const std::uint64_t total =
        std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    ASSERT_EQ(total, expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, SlotChunksAreDeterministic) {
  // The same (count, size) must give the same slot -> range assignment on
  // every dispatch; per-slot accumulation relies on it.
  ThreadPool pool(3);
  std::vector<std::vector<int>> first(3);
  std::vector<std::vector<int>> second(3);
  const auto record = [](std::vector<std::vector<int>>& into) {
    return [&into](int begin, int end, int slot) {
      into[static_cast<std::size_t>(slot)] = {begin, end};
    };
  };
  pool.parallel_for(10, record(first));
  pool.parallel_for(10, record(second));
  EXPECT_EQ(first, second);
}

TEST(ThreadPoolTest, PropagatesChunkExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](int begin, int, int) {
                          if (begin == 0) {
                            throw std::runtime_error("chunk failed");
                          }
                        }),
      std::runtime_error);
  // The pool must survive a throwing job and accept the next one.
  std::atomic<int> touched{0};
  pool.parallel_for(100, [&](int begin, int end, int) {
    touched += end - begin;
  });
  EXPECT_EQ(touched.load(), 100);
}

}  // namespace
}  // namespace gridlb
