#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/assert.hpp"

namespace gridlb {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  TaskId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ConstructedIsValid) {
  TaskId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Comparisons) {
  EXPECT_EQ(TaskId(1), TaskId(1));
  EXPECT_NE(TaskId(1), TaskId(2));
  EXPECT_LT(TaskId(1), TaskId(2));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, NodeId>);
  static_assert(!std::is_same_v<TaskId, AgentId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId(1));
  set.insert(TaskId(2));
  set.insert(TaskId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StrFormatsValue) { EXPECT_EQ(AgentId(12).str(), "12"); }

TEST(Assert, RequireThrowsWithMessage) {
  try {
    GRIDLB_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Assert, AssertPassesOnTrue) {
  EXPECT_NO_THROW(GRIDLB_ASSERT(2 + 2 == 4));
}

TEST(Time, Constants) {
  EXPECT_LT(kNoTime, 0.0);
  EXPECT_GT(kTimeInfinity, 1e300);
}

}  // namespace
}  // namespace gridlb
