// Verifies that the built-in application models reproduce Table 1 of the
// paper exactly: predicted runtimes for 1..16 SGIOrigin2000 processors and
// the deadline domains.
#include "pace/paper_applications.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/assert.hpp"
#include "pace/evaluation_engine.hpp"

namespace gridlb::pace {
namespace {

struct Table1Row {
  DeadlineDomain deadlines;
  std::vector<double> times;
};

const std::map<std::string, Table1Row>& table1() {
  static const std::map<std::string, Table1Row> kTable = {
      {"sweep3d",
       {{4, 200},
        {50, 40, 30, 25, 23, 20, 17, 15, 13, 11, 9, 7, 6, 5, 4, 4}}},
      {"fft",
       {{10, 100},
        {25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10}}},
      {"improc",
       {{20, 192},
        {48, 41, 35, 30, 26, 23, 21, 20, 20, 21, 23, 26, 30, 35, 41, 48}}},
      {"closure",
       {{2, 36}, {9, 9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3, 2, 2}}},
      {"jacobi",
       {{6, 160},
        {40, 35, 30, 25, 23, 20, 17, 15, 13, 11, 10, 9, 8, 7, 6, 6}}},
      {"memsort",
       {{10, 68},
        {17, 16, 15, 14, 13, 12, 11, 10, 10, 11, 12, 13, 14, 15, 16, 17}}},
      {"cpi",
       {{2, 128},
        {32, 26, 21, 17, 14, 11, 9, 7, 5, 4, 3, 2, 4, 7, 12, 20}}},
  };
  return kTable;
}

TEST(PaperApplications, SevenApplicationsInTableOrder) {
  const auto& names = paper_application_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "sweep3d");
  EXPECT_EQ(names[1], "fft");
  EXPECT_EQ(names[2], "improc");
  EXPECT_EQ(names[3], "closure");
  EXPECT_EQ(names[4], "jacobi");
  EXPECT_EQ(names[5], "memsort");
  EXPECT_EQ(names[6], "cpi");
}

TEST(PaperApplications, CatalogueHoldsAllSeven) {
  const ApplicationCatalogue catalogue = paper_catalogue();
  EXPECT_EQ(catalogue.size(), 7u);
  for (const auto& name : paper_application_names()) {
    EXPECT_NE(catalogue.find(name), nullptr) << name;
  }
}

TEST(PaperApplications, UnknownNameThrows) {
  EXPECT_THROW(make_paper_application("linpack"), AssertionError);
}

class Table1Exact : public ::testing::TestWithParam<std::string> {};

TEST_P(Table1Exact, DeadlineDomainMatches) {
  const auto model = make_paper_application(GetParam());
  const Table1Row& row = table1().at(GetParam());
  EXPECT_DOUBLE_EQ(model->deadline_domain().lo, row.deadlines.lo);
  EXPECT_DOUBLE_EQ(model->deadline_domain().hi, row.deadlines.hi);
}

TEST_P(Table1Exact, ReferenceTimesMatchEveryProcCount) {
  const auto model = make_paper_application(GetParam());
  const Table1Row& row = table1().at(GetParam());
  ASSERT_EQ(model->max_procs(), 16);
  for (int k = 1; k <= 16; ++k) {
    EXPECT_DOUBLE_EQ(model->reference_time(k),
                     row.times[static_cast<std::size_t>(k - 1)])
        << GetParam() << " at " << k << " processors";
  }
}

TEST_P(Table1Exact, EvaluationEngineReproducesTable1OnReference) {
  // Through the full engine path (model × SGIOrigin2000 resource model).
  const auto model = make_paper_application(GetParam());
  EvaluationEngine engine;
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  const Table1Row& row = table1().at(GetParam());
  for (int k = 1; k <= 16; ++k) {
    EXPECT_DOUBLE_EQ(engine.evaluate(*model, sgi, k),
                     row.times[static_cast<std::size_t>(k - 1)]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, Table1Exact,
                         ::testing::ValuesIn(paper_application_names()));

TEST(Table1Trends, Sweep3dMonotoneNonIncreasing) {
  // "the run time of sweep3d decreases when the number of processors
  // increases"
  const auto model = make_paper_application("sweep3d");
  for (int k = 2; k <= 16; ++k) {
    EXPECT_LE(model->reference_time(k), model->reference_time(k - 1));
  }
}

TEST(Table1Trends, ImprocOptimumAtEight) {
  // "run time of improc decreases at an optimum of 8 processes — after
  // which the run time increases" (8 and 9 tie at 20 s in Table 1).
  const auto model = make_paper_application("improc");
  double best = 1e9;
  int best_k = 0;
  for (int k = 1; k <= 16; ++k) {
    if (model->reference_time(k) < best) {
      best = model->reference_time(k);
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 8);
  EXPECT_GT(model->reference_time(16), best);
}

TEST(Table1Trends, CpiOptimumAtTwelve) {
  const auto model = make_paper_application("cpi");
  EXPECT_DOUBLE_EQ(model->reference_time(12), 2.0);
  EXPECT_GT(model->reference_time(16), model->reference_time(12));
}

}  // namespace
}  // namespace gridlb::pace
