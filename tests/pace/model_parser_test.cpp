#include "pace/model_parser.hpp"

#include <gtest/gtest.h>

#include "pace/paper_applications.hpp"

namespace gridlb::pace {
namespace {

TEST(ModelParser, TabulatedBlock) {
  const auto model = parse_model(R"(
    # the Table 1 sweep3d row
    application sweep3d
      deadline 4 200
      times 50 40 30 25 23 20 17 15 13 11 9 7 6 5 4 4
    end
  )");
  EXPECT_EQ(model->name(), "sweep3d");
  EXPECT_EQ(model->max_procs(), 16);
  EXPECT_DOUBLE_EQ(model->reference_time(1), 50.0);
  EXPECT_DOUBLE_EQ(model->reference_time(16), 4.0);
  EXPECT_DOUBLE_EQ(model->deadline_domain().lo, 4.0);
  EXPECT_DOUBLE_EQ(model->deadline_domain().hi, 200.0);
}

TEST(ModelParser, ParametricSecondsBlock) {
  const auto model = parse_model(R"(
    application stencil2d
      deadline 10 120
      max_procs 8
      serial 2.0
      parallel 60.0
      comm_per_link 0.8
      sync 0.5
    end
  )");
  EXPECT_EQ(model->max_procs(), 8);
  EXPECT_DOUBLE_EQ(model->reference_time(1), 62.0);
  const auto* parametric = dynamic_cast<const ParametricModel*>(model.get());
  ASSERT_NE(parametric, nullptr);
  EXPECT_DOUBLE_EQ(parametric->params().comm_per_link, 0.8);
}

TEST(ModelParser, FlopsFormConvertsThroughRate) {
  const auto model = parse_model(R"(
    application mc_sim
      deadline 5 60
      flops 1.2e9
      rate 40          # Mflop/s per node
      serial_fraction 0.25
    end
  )");
  // total = 1.2e9 / 4e7 = 30 s; serial 7.5, parallel 22.5.
  EXPECT_DOUBLE_EQ(model->reference_time(1), 30.0);
  const auto* parametric = dynamic_cast<const ParametricModel*>(model.get());
  ASSERT_NE(parametric, nullptr);
  EXPECT_DOUBLE_EQ(parametric->params().serial, 7.5);
  EXPECT_DOUBLE_EQ(parametric->params().parallel, 22.5);
}

TEST(ModelParser, MultipleApplicationsIntoCatalogue) {
  const auto catalogue = parse_catalogue(R"(
    application a
      deadline 1 2
      times 5 4
    end
    application b
      deadline 1 2
      parallel 10
    end
  )");
  EXPECT_EQ(catalogue.size(), 2u);
  EXPECT_NE(catalogue.find("a"), nullptr);
  EXPECT_NE(catalogue.find("b"), nullptr);
}

TEST(ModelParser, CommentsAndBlankLines) {
  EXPECT_NO_THROW(parse_model(
      "# header\n\napplication x # trailing\n  deadline 1 2\n"
      "  times 3 # comment\nend\n"));
}

TEST(ModelParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_model("application x\n  deadline 1 2\n  bogus 1\nend\n");
    FAIL() << "expected ModelParseError";
  } catch (const ModelParseError& error) {
    EXPECT_EQ(error.line(), 3);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
}

TEST(ModelParser, RejectsStructuralMistakes) {
  // Key outside a block.
  EXPECT_THROW((void)parse_catalogue("deadline 1 2\n"), ModelParseError);
  // Nested blocks.
  EXPECT_THROW((void)parse_catalogue(
                   "application a\napplication b\nend\n"),
               ModelParseError);
  // Missing end.
  EXPECT_THROW((void)parse_catalogue("application a\n  deadline 1 2\n"),
               ModelParseError);
  // Empty document.
  EXPECT_THROW((void)parse_catalogue("# nothing\n"), ModelParseError);
  // Unterminated + no name.
  EXPECT_THROW((void)parse_catalogue("application\nend\n"), ModelParseError);
}

TEST(ModelParser, RejectsSemanticMistakes) {
  // No deadline.
  EXPECT_THROW((void)parse_model("application a\n  times 1\nend\n"),
               ModelParseError);
  // Mixing tabulated and parametric.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  times 1 2\n  serial 1\nend\n"),
               ModelParseError);
  // Mixing seconds-form and flops-form.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  serial 1\n  flops 1e9\n  rate 10\nend\n"),
               ModelParseError);
  // flops without rate.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  flops 1e9\nend\n"),
               ModelParseError);
  // No body at all.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\nend\n"),
               ModelParseError);
  // Negative table entry.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  times 5 -1\nend\n"),
               ModelParseError);
  // max_procs disagrees with table length.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  max_procs 4\n  times 5 4\nend\n"),
               ModelParseError);
  // serial_fraction out of range.
  EXPECT_THROW((void)parse_model("application a\n  deadline 1 2\n"
                                 "  flops 1e9\n  rate 10\n"
                                 "  serial_fraction 2\nend\n"),
               ModelParseError);
  // Malformed number.
  EXPECT_THROW((void)parse_model("application a\n  deadline one 2\n"
                                 "  times 1\nend\n"),
               ModelParseError);
  // Duplicate application name.
  EXPECT_THROW((void)parse_catalogue(
                   "application a\n deadline 1 2\n times 1\nend\n"
                   "application a\n deadline 1 2\n times 2\nend\n"),
               ModelParseError);
}

TEST(ModelParser, WriteModelRoundTripsTabulated) {
  const auto original = make_paper_application("improc");
  const auto reparsed = parse_model(write_model(*original));
  EXPECT_EQ(reparsed->name(), "improc");
  for (int k = 1; k <= 16; ++k) {
    EXPECT_DOUBLE_EQ(reparsed->reference_time(k),
                     original->reference_time(k));
  }
  EXPECT_DOUBLE_EQ(reparsed->deadline_domain().hi,
                   original->deadline_domain().hi);
}

TEST(ModelParser, WriteModelRoundTripsParametric) {
  ParametricModel::Params params;
  params.serial = 1.5;
  params.parallel = 42.0;
  params.comm_per_link = 0.25;
  params.sync = 0.75;
  params.max_procs = 12;
  const ParametricModel original("custom", {3, 30}, params);
  const auto reparsed = parse_model(write_model(original));
  for (int k = 1; k <= 12; ++k) {
    EXPECT_DOUBLE_EQ(reparsed->reference_time(k),
                     original.reference_time(k));
  }
}

// Property: every paper application survives a write/parse round trip.
class ModelRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelRoundTrip, Identity) {
  const auto original = make_paper_application(GetParam());
  const auto reparsed = parse_model(write_model(*original));
  for (int k = 1; k <= original->max_procs(); ++k) {
    EXPECT_DOUBLE_EQ(reparsed->reference_time(k),
                     original->reference_time(k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, ModelRoundTrip,
                         ::testing::ValuesIn(paper_application_names()));

}  // namespace
}  // namespace gridlb::pace
