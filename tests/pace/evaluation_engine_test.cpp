#include "pace/evaluation_engine.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::pace {
namespace {

TEST(EvaluationEngine, ScalesByResourceFactor) {
  EvaluationEngine engine;
  const auto model = make_paper_application("sweep3d");
  const ResourceModel sparc = ResourceModel::of(
      HardwareType::kSunSparcStation2);
  EXPECT_DOUBLE_EQ(engine.evaluate(*model, sparc, 1),
                   50.0 * sparc.factor);
  EXPECT_DOUBLE_EQ(engine.evaluate(*model, sparc, 16), 4.0 * sparc.factor);
}

TEST(EvaluationEngine, CountsEvaluations) {
  EvaluationEngine engine;
  const auto model = make_paper_application("fft");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  for (int i = 0; i < 5; ++i) engine.evaluate(*model, sgi, 4);
  EXPECT_EQ(engine.evaluations(), 5u);
}

TEST(EvaluationEngine, RejectsBadArguments) {
  EvaluationEngine engine;
  const auto model = make_paper_application("fft");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  EXPECT_THROW(engine.evaluate(*model, sgi, 0), AssertionError);
  EXPECT_THROW(engine.evaluate(*model, ResourceModel{sgi.type, 0.0}, 1),
               AssertionError);
  EXPECT_THROW(engine.evaluate(*model, ResourceModel{sgi.type, -2.0}, 1),
               AssertionError);
}

TEST(CachedEvaluator, HitsOnRepeats) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto model = make_paper_application("jacobi");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);

  const double first = cache.evaluate(*model, sgi, 8);
  const double second = cache.evaluate(*model, sgi, 8);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(engine.evaluations(), 1u);  // the engine ran only once
}

TEST(CachedEvaluator, DistinguishesProcCounts) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto model = make_paper_application("jacobi");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  for (int k = 1; k <= 16; ++k) cache.evaluate(*model, sgi, k);
  EXPECT_EQ(cache.stats().misses, 16u);
  EXPECT_EQ(cache.size(), 16u);
}

TEST(CachedEvaluator, DistinguishesResources) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto model = make_paper_application("jacobi");
  cache.evaluate(*model, ResourceModel::of(HardwareType::kSgiOrigin2000), 4);
  cache.evaluate(*model, ResourceModel::of(HardwareType::kSunUltra10), 4);
  cache.evaluate(*model, ResourceModel{HardwareType::kSunUltra10, 9.0}, 4);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(CachedEvaluator, DistinguishesApplications) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto a = make_paper_application("jacobi");
  const auto b = make_paper_application("fft");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  cache.evaluate(*a, sgi, 4);
  cache.evaluate(*b, sgi, 4);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CachedEvaluator, ClearDropsEntries) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto model = make_paper_application("cpi");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  cache.evaluate(*model, sgi, 2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.evaluate(*model, sgi, 2);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CachedEvaluator, HitRateMath) {
  CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
  EXPECT_EQ(stats.lookups(), 4u);
}

TEST(CachedEvaluator, GaScalePatternIsMostlyHits) {
  // The paper's motivating arithmetic: a GA population of 50 over 20 tasks
  // requests ~1000 evaluations per generation, but only a handful are
  // distinct (app × nproc).  Emulate a generation's request pattern.
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const ApplicationCatalogue catalogue = paper_catalogue();
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  for (int request = 0; request < 1000; ++request) {
    const auto& model = catalogue.all()[static_cast<std::size_t>(request) % 7];
    const int nproc = 1 + (request * 13) % 16;
    cache.evaluate(*model, sgi, nproc);
  }
  EXPECT_LE(cache.stats().misses, 7u * 16u);
  EXPECT_GT(cache.stats().hit_rate(), 0.85);
}

}  // namespace
}  // namespace gridlb::pace
