#include "pace/application_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace gridlb::pace {
namespace {

TEST(TabulatedModel, ReturnsTableValues) {
  const TabulatedModel model("demo", {1, 10}, {30, 20, 15, 12});
  EXPECT_DOUBLE_EQ(model.reference_time(1), 30);
  EXPECT_DOUBLE_EQ(model.reference_time(2), 20);
  EXPECT_DOUBLE_EQ(model.reference_time(4), 12);
  EXPECT_EQ(model.max_procs(), 4);
}

TEST(TabulatedModel, SaturatesBeyondMaxProcs) {
  // "when the number of processors is more than 16, the run time does not
  // improve any further" — the model clamps, rather than extrapolating.
  const TabulatedModel model("demo", {1, 10}, {30, 20});
  EXPECT_DOUBLE_EQ(model.reference_time(2), 20);
  EXPECT_DOUBLE_EQ(model.reference_time(7), 20);
  EXPECT_DOUBLE_EQ(model.reference_time(1000), 20);
}

TEST(TabulatedModel, RejectsBadInputs) {
  EXPECT_THROW(TabulatedModel("x", {0, 1}, {}), AssertionError);
  EXPECT_THROW(TabulatedModel("x", {0, 1}, {1.0, -2.0}), AssertionError);
  EXPECT_THROW(TabulatedModel("x", {0, 1}, {1.0, 0.0}), AssertionError);
  EXPECT_THROW(TabulatedModel("", {0, 1}, {1.0}), AssertionError);
  EXPECT_THROW(TabulatedModel("x", {5, 2}, {1.0}), AssertionError);
  EXPECT_THROW(TabulatedModel("x", {-1, 2}, {1.0}), AssertionError);
}

TEST(ApplicationModel, RejectsNonPositiveProcCount) {
  const TabulatedModel model("x", {0, 1}, {1.0});
  EXPECT_THROW((void)model.reference_time(0), AssertionError);
  EXPECT_THROW((void)model.reference_time(-3), AssertionError);
}

TEST(ParametricModel, FormulaMatches) {
  ParametricModel::Params params;
  params.serial = 2.0;
  params.parallel = 60.0;
  params.comm_per_link = 0.5;
  params.sync = 1.0;
  params.max_procs = 16;
  const ParametricModel model("m", {0, 1}, params);
  EXPECT_DOUBLE_EQ(model.reference_time(1), 62.0);
  EXPECT_DOUBLE_EQ(model.reference_time(4),
                   2.0 + 15.0 + 0.5 * 3 + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(model.reference_time(16),
                   2.0 + 60.0 / 16 + 0.5 * 15 + 4.0);
}

TEST(ParametricModel, CommunicationCreatesSweetSpot) {
  // With a strong per-link cost the runtime curve must turn upward, like
  // improc in Table 1.
  ParametricModel::Params params;
  params.parallel = 48.0;
  params.comm_per_link = 1.0;
  const ParametricModel model("m", {0, 1}, params);
  double best = 1e9;
  int best_k = 0;
  for (int k = 1; k <= 16; ++k) {
    if (model.reference_time(k) < best) {
      best = model.reference_time(k);
      best_k = k;
    }
  }
  EXPECT_GT(best_k, 1);
  EXPECT_LT(best_k, 16);
  EXPECT_GT(model.reference_time(16), best);
}

TEST(ParametricModel, RejectsDegenerateParams) {
  ParametricModel::Params no_work;
  EXPECT_THROW(ParametricModel("m", {0, 1}, no_work), AssertionError);
  ParametricModel::Params negative;
  negative.parallel = 10.0;
  negative.comm_per_link = -1.0;
  EXPECT_THROW(ParametricModel("m", {0, 1}, negative), AssertionError);
  ParametricModel::Params zero_procs;
  zero_procs.parallel = 10.0;
  zero_procs.max_procs = 0;
  EXPECT_THROW(ParametricModel("m", {0, 1}, zero_procs), AssertionError);
}

TEST(Catalogue, FindByName) {
  ApplicationCatalogue catalogue;
  catalogue.add(std::make_shared<TabulatedModel>(
      "alpha", DeadlineDomain{1, 2}, std::vector<double>{5.0}));
  catalogue.add(std::make_shared<TabulatedModel>(
      "beta", DeadlineDomain{1, 2}, std::vector<double>{6.0}));
  EXPECT_EQ(catalogue.size(), 2u);
  ASSERT_NE(catalogue.find("beta"), nullptr);
  EXPECT_EQ(catalogue.find("beta")->reference_time(1), 6.0);
  EXPECT_EQ(catalogue.find("gamma"), nullptr);
}

TEST(Catalogue, RejectsDuplicatesAndNull) {
  ApplicationCatalogue catalogue;
  catalogue.add(std::make_shared<TabulatedModel>(
      "alpha", DeadlineDomain{1, 2}, std::vector<double>{5.0}));
  EXPECT_THROW(catalogue.add(std::make_shared<TabulatedModel>(
                   "alpha", DeadlineDomain{1, 2}, std::vector<double>{7.0})),
               AssertionError);
  EXPECT_THROW(catalogue.add(nullptr), AssertionError);
}

// Property: parametric models are monotone in each additive component.
class ParametricMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ParametricMonotone, MoreCommNeverFaster) {
  const int k = GetParam();
  ParametricModel::Params lo;
  lo.parallel = 40.0;
  lo.comm_per_link = 0.1;
  ParametricModel::Params hi = lo;
  hi.comm_per_link = 0.9;
  const ParametricModel cheap("lo", {0, 1}, lo);
  const ParametricModel costly("hi", {0, 1}, hi);
  EXPECT_LE(cheap.reference_time(k), costly.reference_time(k));
}

INSTANTIATE_TEST_SUITE_P(Procs, ParametricMonotone,
                         ::testing::Range(1, 17));

}  // namespace
}  // namespace gridlb::pace
