#include "pace/hardware.hpp"

#include <gtest/gtest.h>

namespace gridlb::pace {
namespace {

TEST(Hardware, FiveCaseStudyPlatforms) {
  EXPECT_EQ(all_hardware_types().size(), 5u);
}

TEST(Hardware, NamesMatchFig7) {
  EXPECT_EQ(hardware_name(HardwareType::kSgiOrigin2000), "SGIOrigin2000");
  EXPECT_EQ(hardware_name(HardwareType::kSunUltra10), "SunUltra10");
  EXPECT_EQ(hardware_name(HardwareType::kSunUltra5), "SunUltra5");
  EXPECT_EQ(hardware_name(HardwareType::kSunUltra1), "SunUltra1");
  EXPECT_EQ(hardware_name(HardwareType::kSunSparcStation2),
            "SunSPARCstation2");
}

TEST(Hardware, NameRoundTrip) {
  for (const HardwareType type : all_hardware_types()) {
    const auto parsed = hardware_from_name(hardware_name(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
}

TEST(Hardware, UnknownNameIsNullopt) {
  EXPECT_FALSE(hardware_from_name("Cray T3E").has_value());
  EXPECT_FALSE(hardware_from_name("").has_value());
}

TEST(Hardware, ReferenceFactorIsOne) {
  EXPECT_DOUBLE_EQ(performance_factor(HardwareType::kSgiOrigin2000), 1.0);
}

TEST(Hardware, FactorsOrderedFastestFirst) {
  // "The SGI multi-processor is the most powerful, followed by the Sun
  // Ultra 10, 5, 1, and SPARCStation 2 in turn."
  double previous = 0.0;
  for (const HardwareType type : all_hardware_types()) {
    const double factor = performance_factor(type);
    EXPECT_GT(factor, previous);
    previous = factor;
  }
}

TEST(Hardware, ResourceModelOfUsesCatalogueFactor) {
  const ResourceModel model = ResourceModel::of(HardwareType::kSunUltra5);
  EXPECT_EQ(model.type, HardwareType::kSunUltra5);
  EXPECT_DOUBLE_EQ(model.factor,
                   performance_factor(HardwareType::kSunUltra5));
}

}  // namespace
}  // namespace gridlb::pace
