// Multi-threaded hammer tests for the sharded CachedEvaluator: many
// threads replaying overlapping lookup streams must always observe the
// same value per key, keep hits + misses equal to the number of lookups,
// and drive the engine exactly once per recorded miss.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "pace/evaluation_engine.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::pace {
namespace {

TEST(CachedEvaluatorConcurrencyTest, HammeredLookupsStayConsistent) {
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const ApplicationCatalogue catalogue = paper_catalogue();
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);

  // Serial ground truth for every (app, nproc) key.
  EvaluationEngine reference_engine;
  std::map<std::pair<const ApplicationModel*, int>, double> reference;
  for (const auto& model : catalogue.all()) {
    for (int nproc = 1; nproc <= 16; ++nproc) {
      reference[{model.get(), nproc}] =
          reference_engine.evaluate(*model, sgi, nproc);
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  const std::uint64_t per_thread_lookups =
      static_cast<std::uint64_t>(kRounds) * catalogue.size() * 16;

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread sweeps the whole key space repeatedly, starting at a
      // different offset so first-touches collide across threads.
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t a = 0; a < catalogue.size(); ++a) {
          const auto& model =
              catalogue.all()[(a + static_cast<std::size_t>(t)) %
                              catalogue.size()];
          for (int nproc = 1; nproc <= 16; ++nproc) {
            const double got = cache.evaluate(*model, sgi, nproc);
            if (got != reference[{model.get(), nproc}]) {
              ++mismatches[static_cast<std::size_t>(t)];
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
        << "thread " << t << " observed a divergent cached value";
  }

  const CacheStats stats = cache.stats();
  const std::uint64_t unique_keys = catalogue.size() * 16;
  // No lookup is ever dropped or double-counted.
  EXPECT_EQ(stats.lookups(), per_thread_lookups * kThreads);
  // Every key was eventually cached; racing first-touches may each record
  // a miss, so misses can exceed the distinct-key count but stay far
  // below one per thread per key.
  EXPECT_EQ(cache.size(), unique_keys);
  EXPECT_GE(stats.misses, unique_keys);
  EXPECT_LE(stats.misses, unique_keys * kThreads);
  // Each recorded miss drives exactly one engine evaluation.
  EXPECT_EQ(engine.evaluations(), stats.misses);
}

TEST(CachedEvaluatorConcurrencyTest, ClearUnderLoadKeepsValuesCorrect) {
  // clear() while other threads look up: values must stay correct (they
  // are recomputed from the pure engine), only the stats/occupancy move.
  EvaluationEngine engine;
  CachedEvaluator cache(engine);
  const auto model = make_paper_application("sweep3d");
  const auto sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);

  EvaluationEngine reference_engine;
  std::vector<double> reference;
  for (int nproc = 1; nproc <= 16; ++nproc) {
    reference.push_back(reference_engine.evaluate(*model, sgi, nproc));
  }

  std::vector<int> mismatches(4, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 500; ++round) {
        for (int nproc = 1; nproc <= 16; ++nproc) {
          if (cache.evaluate(*model, sgi, nproc) !=
              reference[static_cast<std::size_t>(nproc - 1)]) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  std::thread clearer([&] {
    for (int round = 0; round < 50; ++round) cache.clear();
  });
  for (auto& reader : readers) reader.join();
  clearer.join();

  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 4u * 500u * 16u);
}

}  // namespace
}  // namespace gridlb::pace
