#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "pace/evaluation_engine.hpp"
#include "pace/paper_applications.hpp"

namespace gridlb::pace {
namespace {

struct TableFixture : ::testing::Test {
  EvaluationEngine engine;
  CachedEvaluator cache{engine};
  ResourceModel sgi = ResourceModel::of(HardwareType::kSgiOrigin2000);
  ApplicationCatalogue catalogue = paper_catalogue();
};

TEST_F(TableFixture, RowMatchesCacheBitForBit) {
  PredictionTable table;
  cache.snapshot(table, sgi, 16);
  const ApplicationModel& app = *catalogue.all()[0];
  const double* row = table.ensure_row(cache, app);
  ASSERT_NE(row, nullptr);
  for (int k = 1; k <= 16; ++k) {
    EXPECT_EQ(row[k - 1], cache.evaluate(app, sgi, k));
  }
  EXPECT_EQ(table.max_nproc(), 16);
}

TEST_F(TableFixture, BuildsEachRowOnce) {
  PredictionTable table;
  cache.snapshot(table, sgi, 8);
  const ApplicationModel& a = *catalogue.all()[0];
  const ApplicationModel& b = *catalogue.all()[1];
  EXPECT_EQ(table.row_of(a), nullptr);
  (void)table.ensure_row(cache, a);
  (void)table.ensure_row(cache, b);
  EXPECT_EQ(table.app_count(), 2u);
  EXPECT_EQ(table.rows_built(), 2u);

  const std::uint64_t evaluations = engine.evaluations();
  const double* again = table.ensure_row(cache, a);
  EXPECT_EQ(again, table.row_of(a));
  EXPECT_EQ(table.rows_built(), 2u);
  // A repeat ensure_row is a pure lookup: no cache or engine traffic.
  EXPECT_EQ(engine.evaluations(), evaluations);
}

TEST_F(TableFixture, SnapshotDropsRowsAndRetargetsResource) {
  PredictionTable table;
  cache.snapshot(table, sgi, 4);
  const ApplicationModel& app = *catalogue.all()[2];
  (void)table.ensure_row(cache, app);
  ASSERT_NE(table.row_of(app), nullptr);

  const auto sparc = ResourceModel::of(HardwareType::kSunSparcStation2);
  cache.snapshot(table, sparc, 4);
  EXPECT_EQ(table.app_count(), 0u);
  EXPECT_EQ(table.row_of(app), nullptr);
  const double* row = table.ensure_row(cache, app);
  EXPECT_EQ(row[0], cache.evaluate(app, sparc, 1));
  // rows_built counts across resets (lifetime total).
  EXPECT_EQ(table.rows_built(), 2u);
}

TEST_F(TableFixture, RequiresSnapshotBeforeUse) {
  PredictionTable table;
  EXPECT_THROW((void)table.ensure_row(cache, *catalogue.all()[0]),
               AssertionError);
  EXPECT_THROW(cache.snapshot(table, sgi, 0), AssertionError);
}

}  // namespace
}  // namespace gridlb::pace
