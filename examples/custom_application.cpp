// Custom application models: bring your own PACE model and hardware.
//
// The paper's users are "scientists who are both program developers and
// end users": they model their own codes with the PACE application tools.
// This example defines two parametric application models (a
// communication-heavy stencil and an embarrassingly-parallel sweep), a
// custom hardware platform, and compares the GA scheduler against the
// FIFO baseline on an identical task stream.
//
// Run: ./build/examples/custom_application

#include <cstdio>
#include <memory>
#include <vector>

#include "gridlb.hpp"

namespace {

using namespace gridlb;

struct PolicyOutcome {
  double makespan = 0.0;
  double idle = 0.0;
  int misses = 0;
};

PolicyOutcome run_policy(sched::SchedulerPolicy policy,
                         const pace::ApplicationCatalogue& catalogue) {
  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator(pace_engine);

  // A custom 12-node platform, 1.3× slower than the SGI reference.
  const pace::ResourceModel custom{pace::HardwareType::kSunUltra10, 1.3};
  const int nodes = 12;

  sched::LocalScheduler::Config config;
  config.resource_id = AgentId(1);
  config.resource = custom;
  config.node_count = nodes;
  config.policy = policy;
  config.ga.generations = 60;
  config.seed = 11;

  double last_end = 0.0;
  int misses = 0;
  double busy = 0.0;
  sched::LocalScheduler scheduler(
      engine, evaluator, config,
      [&](const sched::CompletionRecord& record) {
        last_end = std::max(last_end, record.end);
        busy += (record.end - record.start) *
                sched::node_count(record.mask);
        if (record.end > record.deadline) ++misses;
      });

  // Twenty tasks alternating between the two custom models, arriving in
  // two bursts.
  std::uint64_t id = 1;
  for (int burst = 0; burst < 2; ++burst) {
    engine.schedule_at(static_cast<double>(burst) * 30.0, [&, burst]() {
      for (int i = 0; i < 10; ++i) {
        sched::Task task;
        task.id = TaskId(id++);
        task.app = catalogue.all()[static_cast<std::size_t>(i % 2)];
        task.arrival = engine.now();
        task.deadline = engine.now() + 90.0;
        scheduler.submit(std::move(task));
      }
    });
  }
  engine.run();

  PolicyOutcome outcome;
  outcome.makespan = last_end;
  outcome.idle = last_end * nodes - busy;
  outcome.misses = misses;
  return outcome;
}

}  // namespace

int main() {
  // --- define the custom PACE application models --------------------------
  pace::ApplicationCatalogue catalogue;

  // A stencil code: good scaling up to ~8 nodes, then communication wins.
  pace::ParametricModel::Params stencil;
  stencil.serial = 2.0;
  stencil.parallel = 60.0;
  stencil.comm_per_link = 0.8;
  stencil.sync = 0.5;
  stencil.max_procs = 16;
  catalogue.add(std::make_shared<pace::ParametricModel>(
      "stencil2d", pace::DeadlineDomain{10, 120}, stencil));

  // A parameter sweep: almost perfectly parallel.
  pace::ParametricModel::Params sweep;
  sweep.serial = 0.5;
  sweep.parallel = 45.0;
  sweep.comm_per_link = 0.05;
  sweep.sync = 0.1;
  sweep.max_procs = 16;
  catalogue.add(std::make_shared<pace::ParametricModel>(
      "paramsweep", pace::DeadlineDomain{10, 120}, sweep));

  std::printf("predicted reference runtimes (seconds):\n  procs:");
  for (int k = 1; k <= 12; ++k) std::printf(" %5d", k);
  std::printf("\n");
  for (const auto& app : catalogue.all()) {
    std::printf("  %-10s", app->name().c_str());
    for (int k = 1; k <= 12; ++k) {
      std::printf(" %5.1f", app->reference_time(k));
    }
    std::printf("\n");
  }

  // --- GA vs FIFO on the same stream --------------------------------------
  const PolicyOutcome fifo =
      run_policy(sched::SchedulerPolicy::kFifo, catalogue);
  const PolicyOutcome ga = run_policy(sched::SchedulerPolicy::kGa, catalogue);

  std::printf("\n              %10s %10s\n", "FIFO", "GA");
  std::printf("makespan (s)  %10.1f %10.1f\n", fifo.makespan, ga.makespan);
  std::printf("idle (node·s) %10.1f %10.1f\n", fifo.idle, ga.idle);
  std::printf("missed dl     %10d %10d\n", fifo.misses, ga.misses);
  return 0;
}
