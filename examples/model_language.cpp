// The PACE model-description language end to end.
//
// Grid users are "scientists who are both program developers and end
// users": they describe their applications once, ship the model file with
// the binary, and every scheduler and agent prices their tasks from it.
// This example parses a model file (inline here; `gridlb predict --model`
// reads one from disk), prints the predicted scaling curves per platform,
// and runs the parsed applications through a GA scheduler.

#include <cstdio>

#include "gridlb.hpp"

namespace {

constexpr const char* kModelFile = R"(
# Two user applications, one per modelling style.

application oceansim          # tabulated: measured reference curve
  deadline 15 180
  times 90 62 47 38 33 29 27 25 24 23 23 22 22 23 24 25
end

application genome_align      # parametric: flops through a node rate
  deadline 30 240
  flops 4.8e9
  rate 60                     # Mflop/s per reference node
  serial_fraction 0.1
  max_procs 16
end
)";

}  // namespace

int main() {
  using namespace gridlb;

  const pace::ApplicationCatalogue catalogue =
      pace::parse_catalogue(kModelFile);
  std::printf("parsed %zu application models\n\n", catalogue.size());

  pace::EvaluationEngine engine;
  for (const auto& model : catalogue.all()) {
    std::printf("%s — predicted runtime (s):\n", model->name().c_str());
    std::printf("  %-18s", "platform");
    for (const int k : {1, 2, 4, 8, 16}) std::printf(" %7d", k);
    std::printf("\n");
    for (const auto type : pace::all_hardware_types()) {
      const auto resource = pace::ResourceModel::of(type);
      std::printf("  %-18s", std::string(pace::hardware_name(type)).c_str());
      for (const int k : {1, 2, 4, 8, 16}) {
        std::printf(" %7.1f", engine.evaluate(*model, resource, k));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Round-trip: the library can re-emit the models it parsed.
  std::printf("re-emitted model file:\n%s\n",
              pace::write_model(*catalogue.all()[0]).c_str());

  // Schedule a mixed batch of the user's applications.
  pace::CachedEvaluator evaluator(engine);
  sched::ScheduleBuilder builder(
      evaluator, pace::ResourceModel::of(pace::HardwareType::kSunUltra10), 16);
  std::vector<sched::Task> tasks;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sched::Task task;
    task.id = TaskId(i + 1);
    task.app = catalogue.all()[i % 2];
    const auto domain = task.app->deadline_domain();
    task.deadline = (domain.lo + domain.hi) / 2.0;
    tasks.push_back(std::move(task));
  }
  sched::GaConfig config;
  config.generations = 80;
  sched::GaScheduler scheduler(builder, config, 3);
  const std::vector<SimTime> idle(16, 0.0);
  const auto result = scheduler.optimize(tasks, idle, 0.0);
  std::printf("GA over 8 user tasks on a 16-node SunUltra10: makespan %.1f s, "
              "%d deadline miss(es)\n",
              result.schedule.makespan, result.schedule.deadline_misses);
  return 0;
}
