// Quickstart: schedule a batch of tasks on one grid resource with the GA.
//
// This exercises the lowest public layer of the library — PACE models, the
// evaluation engine, and the GA scheduler — without agents or a network.
// It prints the evolved schedule as a Gantt chart in the style of the
// paper's Fig. 2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "gridlb.hpp"

namespace {

using namespace gridlb;

void print_gantt(const std::vector<sched::Task>& tasks,
                 const sched::DecodedSchedule& schedule, int node_count) {
  // One row per node; each column is a one-second slot.
  const double horizon = schedule.makespan;
  const int columns = 60;
  const double slot = horizon / columns;
  std::printf("\nGantt chart (one row per node, %.1fs per column):\n", slot);
  for (int node = 0; node < node_count; ++node) {
    std::string row(static_cast<std::size_t>(columns), '.');
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const sched::TaskPlacement& p = schedule.placements[t];
      if ((p.mask & (sched::NodeMask{1} << node)) == 0) continue;
      const char glyph = static_cast<char>('A' + static_cast<int>(t % 26));
      const int from = static_cast<int>(p.start / slot);
      const int to = static_cast<int>(p.end / slot);
      for (int c = from; c < to && c < columns; ++c) {
        row[static_cast<std::size_t>(c)] = glyph;
      }
    }
    std::printf("  node %2d |%s|\n", node, row.c_str());
  }
}

}  // namespace

int main() {
  // A 16-node SGIOrigin2000 — the reference platform of Table 1.
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();
  pace::EvaluationEngine engine;
  pace::CachedEvaluator evaluator(engine);
  const auto resource =
      pace::ResourceModel::of(pace::HardwareType::kSgiOrigin2000);
  const int nodes = 16;
  sched::ScheduleBuilder builder(evaluator, resource, nodes);

  // Ten tasks drawn from the paper's application set, all submitted at
  // t = 0 with deadlines in the middle of their Table 1 domains.
  std::vector<sched::Task> tasks;
  const char* apps[] = {"sweep3d", "fft",     "improc", "closure", "jacobi",
                        "memsort", "cpi",     "sweep3d", "jacobi",  "fft"};
  std::uint64_t id = 1;
  for (const char* name : apps) {
    sched::Task task;
    task.id = TaskId(id++);
    task.app = catalogue.find(name);
    task.arrival = 0.0;
    const auto domain = task.app->deadline_domain();
    task.deadline = (domain.lo + domain.hi) / 2.0;
    tasks.push_back(std::move(task));
  }

  // Evolve a schedule.
  sched::GaConfig config;
  config.generations = 100;
  sched::GaScheduler scheduler(builder, config, /*seed=*/7);
  const std::vector<SimTime> node_free(nodes, 0.0);
  const sched::GaResult result = scheduler.optimize(tasks, node_free, 0.0);

  std::printf("GA schedule over %zu tasks on %d nodes\n", tasks.size(), nodes);
  std::printf("  makespan        : %.1f s\n", result.schedule.makespan);
  std::printf("  idle time       : %.1f s (front-weighted %.1f)\n",
              result.schedule.total_idle, result.schedule.weighted_idle);
  std::printf("  deadline misses : %d of %zu\n",
              result.schedule.deadline_misses, tasks.size());
  std::printf("  cost value      : %.3f after %d generations (%llu decodes)\n",
              result.best_cost, result.generations_run,
              static_cast<unsigned long long>(result.decodes));

  std::printf("\ntask  app      nodes  start    end   deadline\n");
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const sched::TaskPlacement& p = result.schedule.placements[t];
    std::printf("  %c   %-8s %5d  %5.1f  %5.1f  %8.1f%s\n",
                static_cast<char>('A' + static_cast<int>(t % 26)),
                tasks[t].app->name().c_str(), sched::node_count(p.mask),
                p.start, p.end, tasks[t].deadline,
                p.end > tasks[t].deadline ? "  LATE" : "");
  }
  print_gantt(tasks, result.schedule, nodes);
  return 0;
}
