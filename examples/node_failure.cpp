// Node failure: the GA absorbing host departures and returns.
//
// A single 16-node cluster receives a steady task stream while half of
// its nodes fail mid-run and later return.  The resource monitor (polling
// every 30 s here for visibility; the paper polls every five minutes)
// reports the changes to the scheduler; the GA re-packs the pending queue
// onto the surviving nodes and spreads back out after the repair.
//
// Run: ./build/examples/node_failure

#include <cstdio>
#include <vector>

#include "gridlb.hpp"

int main() {
  using namespace gridlb;

  sim::Engine engine;
  pace::EvaluationEngine pace_engine;
  pace::CachedEvaluator evaluator(pace_engine);
  const auto catalogue = pace::paper_catalogue();

  sched::LocalScheduler::Config config;
  config.resource_id = AgentId(1);
  config.resource = pace::ResourceModel::of(pace::HardwareType::kSunUltra10);
  config.node_count = 16;
  config.seed = 21;

  std::vector<sched::CompletionRecord> completions;
  sched::LocalScheduler scheduler(
      engine, evaluator, config,
      [&](const sched::CompletionRecord& r) { completions.push_back(r); });

  // Ground truth + monitor: nodes 8..15 fail at t=100 and return at t=300.
  sched::NodeAvailability truth(16);
  std::vector<sched::AvailabilityEvent> script;
  for (int node = 8; node < 16; ++node) {
    script.push_back({100.0, node, false});
    script.push_back({300.0, node, true});
  }
  sched::schedule_availability(engine, truth, std::move(script));
  sched::ResourceMonitor monitor(engine, scheduler, truth, 30.0);
  monitor.start();

  // A steady stream: one task every 12 s for 20 minutes — comfortable
  // for 16 nodes, tight for the 8 that survive the outage.
  std::uint64_t id = 1;
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(static_cast<double>(i) * 12.0, [&, i]() {
      sched::Task task;
      task.id = TaskId(id++);
      task.app = catalogue.all()[static_cast<std::size_t>(i) % 7];
      const auto domain = task.app->deadline_domain();
      task.arrival = engine.now();
      task.deadline = engine.now() + (domain.lo + domain.hi) / 2.0;
      scheduler.submit(std::move(task));
    });
  }

  // Sample the scheduler's view once a minute.
  std::printf("t(s)   avail  pending  running\n");
  for (double t = 0.0; t <= 1260.0; t += 60.0) {
    engine.schedule_at(t, [&, t]() {
      std::printf("%4.0f   %5d  %7d  %7d\n", t,
                  sched::node_count(scheduler.available_nodes()),
                  scheduler.pending_count(), scheduler.running_count());
    });
  }
  engine.run_until(5000.0);

  int misses = 0;
  double busy_during_outage = 0.0;
  for (const auto& record : completions) {
    if (record.end > record.deadline) ++misses;
    // Any work scheduled onto nodes 8..15 during the outage window would
    // be a monitor/scheduler bug (graceful drain allows tasks *started*
    // before the failure report to finish).
    if (record.start > 130.0 && record.end < 300.0 &&
        (record.mask & 0xFF00u) != 0) {
      busy_during_outage += record.end - record.start;
    }
  }
  std::printf("\ncompleted %zu/100 tasks, %d missed deadlines\n",
              completions.size(), misses);
  std::printf("work started on failed nodes during the outage: %.1f s "
              "(expect 0)\n", busy_during_outage);
  return 0;
}
