// Deadline study: how deadline tightness shapes grid-level behaviour.
//
// The agent matchmaking rule (eq. 10) dispatches a request to a resource
// only if its estimated completion meets the deadline; as deadlines
// tighten, fewer resources qualify, requests escalate further up the
// hierarchy, and eventually only best-effort fallback dispatch remains.
// This example sweeps a deadline scale factor over the case-study
// workload and reports deadline-met rate, mean discovery hops and
// fallback dispatches.
//
// Run: ./build/examples/deadline_study

#include <cstdio>
#include <vector>

#include "gridlb.hpp"

namespace {

using namespace gridlb;

struct SweepPoint {
  double scale;
  double met_rate;
  double mean_hops;
  std::uint64_t fallbacks;
  double advance;
};

SweepPoint run_point(double scale) {
  sim::Engine engine;
  metrics::MetricsCollector collector;
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  agents::SystemConfig system_config;
  system_config.resources = core::case_study_resources();
  agents::AgentSystem system(engine, catalogue, std::move(system_config),
                             &collector);
  system.start();
  agents::Portal portal(engine, system.network(), catalogue, &collector);

  core::WorkloadConfig workload_config;
  workload_config.count = 180;
  const auto workload = core::generate_workload(
      workload_config, catalogue, static_cast<int>(system.size()));
  for (const auto& spec : workload) {
    engine.schedule_at(spec.at, [&, spec]() {
      portal.submit(system.agent(static_cast<std::size_t>(spec.agent_index)),
                    spec.app_name,
                    engine.now() + spec.deadline_offset * scale);
    });
  }
  while (collector.completed_tasks() <
         static_cast<std::size_t>(workload.size())) {
    if (!engine.step()) break;
  }

  const metrics::Report report = collector.report();
  SweepPoint point;
  point.scale = scale;
  point.met_rate = report.total.tasks > 0
                       ? static_cast<double>(report.total.deadlines_met) /
                             report.total.tasks
                       : 0.0;
  point.advance = report.total.advance_time;
  std::uint64_t hops = 0;
  std::uint64_t local = 0;
  point.fallbacks = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    hops += system.agent(i).stats().hops_accumulated;
    local += system.agent(i).stats().dispatched_local;
    point.fallbacks += system.agent(i).stats().fallback_dispatches;
  }
  point.mean_hops =
      local > 0 ? static_cast<double>(hops) / static_cast<double>(local) : 0.0;
  return point;
}

}  // namespace

int main() {
  std::printf("deadline sweep over the case-study grid (180 requests):\n\n");
  std::printf("  scale   met%%   eps(s)   hops  fallbacks\n");
  for (const double scale : {2.0, 1.5, 1.0, 0.75, 0.5, 0.25}) {
    const SweepPoint point = run_point(scale);
    std::printf("  %5.2f  %5.1f  %7.1f  %5.2f  %9llu\n", point.scale,
                point.met_rate * 100.0, point.advance, point.mean_hops,
                static_cast<unsigned long long>(point.fallbacks));
  }
  std::printf("\ntighter deadlines -> fewer matching resources -> more "
              "escalation and fallback dispatch.\n");
  return 0;
}
