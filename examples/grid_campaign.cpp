// Grid campaign: the full 12-agent case-study hierarchy end to end.
//
// Builds the Fig. 7 grid (two SGI Origin2000s down to two SPARCstation2
// clusters), starts the agent hierarchy with service advertisement and
// discovery enabled, fires a randomised request campaign through the user
// portal, and prints the ε / υ / β report together with the discovery
// statistics.
//
// Run: ./build/examples/grid_campaign [request_count] [seed]

#include <cstdio>
#include <cstdlib>

#include "gridlb.hpp"

int main(int argc, char** argv) {
  using namespace gridlb;

  const int requests = argc > 1 ? std::atoi(argv[1]) : 240;
  const std::uint64_t seed = argc > 2
                                 ? static_cast<std::uint64_t>(
                                       std::strtoull(argv[2], nullptr, 10))
                                 : 2003;

  core::ExperimentConfig config = core::experiment3();
  config.name = "grid campaign";
  config.workload.count = requests;
  config.workload.seed = seed;

  std::printf("running %d requests through the 12-agent case-study grid…\n",
              requests);
  const core::ExperimentResult result = core::run_experiment(config);

  std::printf("\n%s\n", metrics::format_report(result.report).c_str());
  std::printf("completed %llu/%llu tasks by t=%.0fs (virtual)\n",
              static_cast<unsigned long long>(result.tasks_completed),
              static_cast<unsigned long long>(result.requests_submitted),
              result.finished_at);
  std::printf("discovery: %.2f mean hops, %llu messages (%llu bytes) on the "
              "wire\n",
              result.mean_hops,
              static_cast<unsigned long long>(result.network_messages),
              static_cast<unsigned long long>(result.network_bytes));
  std::printf("PACE cache: %.1f%% hit rate over %llu lookups\n",
              result.cache.hit_rate() * 100.0,
              static_cast<unsigned long long>(result.cache.lookups()));

  std::printf("\nper-agent discovery behaviour:\n");
  std::printf("  agent   recv  local  match     up  fallback\n");
  for (std::size_t i = 0; i < result.agent_stats.size(); ++i) {
    const agents::AgentStats& stats = result.agent_stats[i];
    std::printf("  S%-5zu %6llu %6llu %6llu %6llu %9llu\n", i + 1,
                static_cast<unsigned long long>(stats.requests_received),
                static_cast<unsigned long long>(stats.dispatched_local),
                static_cast<unsigned long long>(stats.forwarded_match),
                static_cast<unsigned long long>(stats.forwarded_up),
                static_cast<unsigned long long>(stats.fallback_dispatches));
  }
  return 0;
}
