// Umbrella header: the public API of the gridlb library.
//
// Include this to get the whole system — the PACE performance-prediction
// toolkit, the GA/FIFO local schedulers, the agent hierarchy with service
// advertisement/discovery, fault injection and the loss-tolerant
// messaging layer, the metrics, the observability instruments, and the
// case-study experiment harness.  Individual module headers can be
// included directly for finer control over compile times.
#pragma once

#include "agents/act.hpp"              // IWYU pragma: export
#include "agents/agent.hpp"            // IWYU pragma: export
#include "agents/agent_system.hpp"     // IWYU pragma: export
#include "agents/portal.hpp"           // IWYU pragma: export
#include "agents/reliable.hpp"         // IWYU pragma: export
#include "agents/request.hpp"          // IWYU pragma: export
#include "agents/result.hpp"           // IWYU pragma: export
#include "agents/service_info.hpp"     // IWYU pragma: export
#include "common/rng.hpp"              // IWYU pragma: export
#include "common/types.hpp"            // IWYU pragma: export
#include "core/case_study.hpp"         // IWYU pragma: export
#include "core/experiment.hpp"         // IWYU pragma: export
#include "core/scenario.hpp"           // IWYU pragma: export
#include "core/workload.hpp"           // IWYU pragma: export
#include "metrics/metrics.hpp"         // IWYU pragma: export
#include "obs/obs.hpp"                 // IWYU pragma: export
#include "pace/application_model.hpp"  // IWYU pragma: export
#include "pace/evaluation_engine.hpp"  // IWYU pragma: export
#include "pace/hardware.hpp"           // IWYU pragma: export
#include "pace/model_parser.hpp"       // IWYU pragma: export
#include "pace/paper_applications.hpp" // IWYU pragma: export
#include "sched/fifo_scheduler.hpp"    // IWYU pragma: export
#include "sched/ga_scheduler.hpp"      // IWYU pragma: export
#include "sched/local_scheduler.hpp"   // IWYU pragma: export
#include "sched/resource_monitor.hpp"  // IWYU pragma: export
#include "sim/engine.hpp"              // IWYU pragma: export
#include "sim/network.hpp"             // IWYU pragma: export
#include "xml/xml.hpp"                 // IWYU pragma: export
