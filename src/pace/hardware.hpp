// PACE resource models: static hardware performance descriptions.
//
// PACE resource models are built from static benchmarks of each platform
// (the paper notes this simplification explicitly).  We reproduce the case
// study's five platform types (Fig. 7) and summarise each benchmark as a
// single relative performance factor against the reference platform
// (SGIOrigin2000, the machine Table 1 is quoted for): a task predicted to
// take T seconds on the reference takes T × factor on the platform.
//
// The factors below are synthetic (the original PACE benchmark data is not
// available) but ordered exactly as the paper orders the machines: "The
// SGI multi-processor is the most powerful, followed by the Sun Ultra 10,
// 5, 1, and SPARCStation 2 in turn."
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gridlb::pace {

/// The hardware platforms of the IPPS'03 case study (Fig. 7).
enum class HardwareType {
  kSgiOrigin2000,
  kSunUltra10,
  kSunUltra5,
  kSunUltra1,
  kSunSparcStation2,
};

/// All known platforms, fastest first.
[[nodiscard]] const std::vector<HardwareType>& all_hardware_types();

/// Model name as it appears in service-information documents
/// (e.g. "SGIOrigin2000", "SunUltra10").
[[nodiscard]] std::string_view hardware_name(HardwareType type);

/// Inverse of hardware_name; nullopt for unknown names.
[[nodiscard]] std::optional<HardwareType> hardware_from_name(
    std::string_view name);

/// Relative slowdown versus the SGIOrigin2000 reference (>= 1.0).
[[nodiscard]] double performance_factor(HardwareType type);

/// A PACE resource model for one processing node.
///
/// All nodes within a grid resource are homogeneous in the case study, so
/// one ResourceModel describes a whole 16-node cluster's node type.
struct ResourceModel {
  HardwareType type = HardwareType::kSgiOrigin2000;
  /// Slowdown versus reference; defaults to the catalogue value for `type`
  /// but can be overridden for user-defined platforms.
  double factor = 1.0;

  /// Builds the catalogue model for a platform.
  static ResourceModel of(HardwareType type);
};

}  // namespace gridlb::pace
