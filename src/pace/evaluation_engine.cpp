#include "pace/evaluation_engine.hpp"

#include <functional>
#include <optional>

#include "common/assert.hpp"
#include "common/sim_clock.hpp"
#include "obs/trace.hpp"

namespace gridlb::pace {

double EvaluationEngine::evaluate(const ApplicationModel& app,
                                  const ResourceModel& resource, int nproc) {
  GRIDLB_REQUIRE(nproc >= 1, "processor count must be >= 1");
  GRIDLB_REQUIRE(resource.factor > 0.0, "resource factor must be positive");
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  return app.reference_time(nproc) * resource.factor;
}

void PredictionTable::reset(ResourceModel resource, int max_nproc) {
  GRIDLB_REQUIRE(max_nproc >= 1, "prediction table width must be >= 1");
  resource_ = resource;
  max_nproc_ = max_nproc;
  apps_.clear();
  values_.clear();
}

const double* PredictionTable::ensure_row(CachedEvaluator& cache,
                                          const ApplicationModel& app) {
  GRIDLB_REQUIRE(max_nproc_ >= 1, "prediction table not reset");
  if (const double* row = row_of(app)) return row;
  const std::size_t offset = values_.size();
  values_.resize(offset + static_cast<std::size_t>(max_nproc_));
  for (int k = 1; k <= max_nproc_; ++k) {
    values_[offset + static_cast<std::size_t>(k - 1)] =
        cache.evaluate(app, resource_, k);
  }
  apps_.push_back(&app);
  ++rows_built_;
  return values_.data() + offset;
}

const double* PredictionTable::row_of(const ApplicationModel& app) const {
  // Linear scan: a pending queue draws from a handful of distinct models
  // (the case study has 7), so this beats any hash both in cycles and in
  // determinism of layout.
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i] == &app) {
      return values_.data() + i * static_cast<std::size_t>(max_nproc_);
    }
  }
  return nullptr;
}

std::size_t CachedEvaluator::KeyHash::operator()(const Key& key) const {
  std::size_t h = std::hash<const void*>{}(key.app);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<int>{}(static_cast<int>(key.type)));
  mix(std::hash<double>{}(key.factor));
  mix(std::hash<int>{}(key.nproc));
  return h;
}

double CachedEvaluator::evaluate(const ApplicationModel& app,
                                 const ResourceModel& resource, int nproc) {
  const Key key{&app, resource.type, resource.factor, nproc};
  const std::size_t hash = KeyHash{}(key);
  Shard& shard = shards_[hash % kShardCount];
  bool hit = true;
  double value = 0.0;
  {
    // Compute *inside* the lock: concurrent first-touches on the same key
    // then resolve as exactly one miss plus hits, so the hit/miss counters
    // are the same whatever the thread interleaving — part of the
    // shard-count determinism contract.  The model evaluation is cheap
    // (closed-form), so holding the shard through it costs little.
    const std::lock_guard lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      ++shard.stats.hits;
      value = it->second;
    } else {
      ++shard.stats.misses;
      hit = false;
      value = engine_->evaluate(app, resource, nproc);
      shard.map.emplace(key, value);
    }
  }
  obs::emit({.at = simclock::now(),
             .kind = hit ? obs::EventKind::kCacheHit
                         : obs::EventKind::kCacheMiss,
             .extra = static_cast<std::uint32_t>(nproc)});
  return value;
}

CacheStats CachedEvaluator::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
  }
  return total;
}

std::vector<CachedEvaluator::ShardSnapshot> CachedEvaluator::shard_snapshots()
    const {
  std::vector<ShardSnapshot> out;
  out.reserve(kShardCount);
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    out.push_back(ShardSnapshot{shard.stats, shard.map.size()});
  }
  return out;
}

std::size_t CachedEvaluator::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void CachedEvaluator::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    shard.map.clear();
  }
}

}  // namespace gridlb::pace
