#include "pace/evaluation_engine.hpp"

#include <functional>

#include "common/assert.hpp"

namespace gridlb::pace {

double EvaluationEngine::evaluate(const ApplicationModel& app,
                                  const ResourceModel& resource, int nproc) {
  GRIDLB_REQUIRE(nproc >= 1, "processor count must be >= 1");
  GRIDLB_REQUIRE(resource.factor > 0.0, "resource factor must be positive");
  ++evaluations_;
  return app.reference_time(nproc) * resource.factor;
}

std::size_t CachedEvaluator::KeyHash::operator()(const Key& key) const {
  std::size_t h = std::hash<const void*>{}(key.app);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<int>{}(static_cast<int>(key.type)));
  mix(std::hash<double>{}(key.factor));
  mix(std::hash<int>{}(key.nproc));
  return h;
}

double CachedEvaluator::evaluate(const ApplicationModel& app,
                                 const ResourceModel& resource, int nproc) {
  const Key key{&app, resource.type, resource.factor, nproc};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  const double value = engine_->evaluate(app, resource, nproc);
  cache_.emplace(key, value);
  return value;
}

void CachedEvaluator::clear() { cache_.clear(); }

}  // namespace gridlb::pace
