#include "pace/model_parser.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "common/assert.hpp"

namespace gridlb::pace {

ModelParseError::ModelParseError(const std::string& message, int line_number)
    : std::runtime_error(message + " (line " + std::to_string(line_number) +
                         ")"),
      line_(line_number) {}

namespace {

/// One application block under construction.
struct Block {
  std::string name;
  std::optional<DeadlineDomain> deadlines;
  int start_line = 0;
  // tabulated
  std::vector<double> times;
  // parametric (seconds form)
  std::optional<double> serial;
  std::optional<double> parallel;
  std::optional<double> comm_per_link;
  std::optional<double> sync;
  std::optional<int> max_procs;
  // parametric (operation-count form)
  std::optional<double> flops;
  std::optional<double> rate;            // Mflop/s per node
  std::optional<double> serial_fraction;
};

double parse_number(const std::string& token, int line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw ModelParseError("malformed number '" + token + "'", line);
  }
  if (consumed != token.size()) {
    throw ModelParseError("trailing junk in number '" + token + "'", line);
  }
  return value;
}

ApplicationModelPtr finish(const Block& block, int line) {
  if (block.name.empty()) {
    throw ModelParseError("application block lacks a name", block.start_line);
  }
  if (!block.deadlines) {
    throw ModelParseError("application '" + block.name +
                              "' lacks a deadline domain",
                          line);
  }
  const bool tabulated = !block.times.empty();
  const bool parametric_seconds = block.serial || block.parallel ||
                                  block.comm_per_link || block.sync;
  const bool parametric_flops =
      block.flops || block.rate || block.serial_fraction;
  if (tabulated && (parametric_seconds || parametric_flops)) {
    throw ModelParseError(
        "application '" + block.name +
            "' mixes a times table with parametric keys",
        line);
  }

  if (tabulated) {
    if (block.max_procs &&
        *block.max_procs != static_cast<int>(block.times.size())) {
      throw ModelParseError(
          "max_procs disagrees with the times table length", line);
    }
    try {
      return std::make_shared<TabulatedModel>(block.name, *block.deadlines,
                                              block.times);
    } catch (const AssertionError& error) {
      throw ModelParseError(error.what(), line);
    }
  }

  ParametricModel::Params params;
  params.max_procs = block.max_procs.value_or(16);
  if (parametric_flops) {
    if (parametric_seconds) {
      throw ModelParseError(
          "application '" + block.name +
              "' mixes seconds-form and flops-form parametric keys",
          line);
    }
    if (!block.flops || !block.rate) {
      throw ModelParseError(
          "flops-form models need both `flops` and `rate`", line);
    }
    const double rate_flops = *block.rate * 1e6;  // Mflop/s -> flop/s
    if (rate_flops <= 0.0) {
      throw ModelParseError("`rate` must be positive", line);
    }
    const double total_seconds = *block.flops / rate_flops;
    const double fraction = block.serial_fraction.value_or(0.0);
    if (fraction < 0.0 || fraction > 1.0) {
      throw ModelParseError("`serial_fraction` must be in [0, 1]", line);
    }
    params.serial = total_seconds * fraction;
    params.parallel = total_seconds * (1.0 - fraction);
  } else if (parametric_seconds) {
    params.serial = block.serial.value_or(0.0);
    params.parallel = block.parallel.value_or(0.0);
    params.comm_per_link = block.comm_per_link.value_or(0.0);
    params.sync = block.sync.value_or(0.0);
  } else {
    throw ModelParseError("application '" + block.name +
                              "' defines neither a times table nor "
                              "parametric keys",
                          line);
  }
  try {
    return std::make_shared<ParametricModel>(block.name, *block.deadlines,
                                             params);
  } catch (const AssertionError& error) {
    throw ModelParseError(error.what(), line);
  }
}

}  // namespace

ApplicationCatalogue parse_catalogue(std::string_view text) {
  ApplicationCatalogue catalogue;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  int line_number = 0;
  std::optional<Block> block;

  while (std::getline(stream, raw_line)) {
    ++line_number;
    // Strip comments and tokenize.
    const auto hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.erase(hash);
    std::istringstream words(raw_line);
    std::vector<std::string> tokens;
    for (std::string word; words >> word;) tokens.push_back(word);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    if (key == "application") {
      if (block) {
        throw ModelParseError("nested application block", line_number);
      }
      if (tokens.size() != 2) {
        throw ModelParseError("expected: application <name>", line_number);
      }
      block.emplace();
      block->name = tokens[1];
      block->start_line = line_number;
      continue;
    }
    if (!block) {
      throw ModelParseError("'" + key + "' outside an application block",
                            line_number);
    }
    if (key == "end") {
      if (tokens.size() != 1) {
        throw ModelParseError("unexpected tokens after `end`", line_number);
      }
      try {
        catalogue.add(finish(*block, line_number));
      } catch (const AssertionError& error) {
        throw ModelParseError(error.what(), line_number);
      }
      block.reset();
      continue;
    }

    const auto one_number = [&]() {
      if (tokens.size() != 2) {
        throw ModelParseError("expected: " + key + " <value>", line_number);
      }
      return parse_number(tokens[1], line_number);
    };
    if (key == "deadline") {
      if (tokens.size() != 3) {
        throw ModelParseError("expected: deadline <lo> <hi>", line_number);
      }
      block->deadlines = DeadlineDomain{parse_number(tokens[1], line_number),
                                        parse_number(tokens[2], line_number)};
    } else if (key == "times") {
      if (tokens.size() < 2) {
        throw ModelParseError("expected: times <t1> <t2> …", line_number);
      }
      block->times.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        block->times.push_back(parse_number(tokens[i], line_number));
      }
    } else if (key == "max_procs") {
      block->max_procs = static_cast<int>(one_number());
    } else if (key == "serial") {
      block->serial = one_number();
    } else if (key == "parallel") {
      block->parallel = one_number();
    } else if (key == "comm_per_link") {
      block->comm_per_link = one_number();
    } else if (key == "sync") {
      block->sync = one_number();
    } else if (key == "flops") {
      block->flops = one_number();
    } else if (key == "rate") {
      block->rate = one_number();
    } else if (key == "serial_fraction") {
      block->serial_fraction = one_number();
    } else {
      throw ModelParseError("unknown key '" + key + "'", line_number);
    }
  }
  if (block) {
    throw ModelParseError("unterminated application block (missing `end`)",
                          block->start_line);
  }
  if (catalogue.size() == 0) {
    throw ModelParseError("document defines no applications", line_number);
  }
  return catalogue;
}

ApplicationModelPtr parse_model(std::string_view text) {
  ApplicationCatalogue catalogue = parse_catalogue(text);
  if (catalogue.size() != 1) {
    throw ModelParseError("expected exactly one application, found " +
                              std::to_string(catalogue.size()),
                          0);
  }
  return catalogue.all().front();
}

std::string write_model(const ApplicationModel& model) {
  std::ostringstream os;
  os << "application " << model.name() << '\n';
  const DeadlineDomain domain = model.deadline_domain();
  os << "  deadline " << domain.lo << ' ' << domain.hi << '\n';
  if (const auto* parametric =
          dynamic_cast<const ParametricModel*>(&model)) {
    const ParametricModel::Params& params = parametric->params();
    os << "  max_procs " << params.max_procs << '\n';
    os << "  serial " << params.serial << '\n';
    os << "  parallel " << params.parallel << '\n';
    os << "  comm_per_link " << params.comm_per_link << '\n';
    os << "  sync " << params.sync << '\n';
  } else {
    os << "  times";
    for (int k = 1; k <= model.max_procs(); ++k) {
      os << ' ' << model.reference_time(k);
    }
    os << '\n';
  }
  os << "end\n";
  return os.str();
}

}  // namespace gridlb::pace
