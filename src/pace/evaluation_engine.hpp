// PACE evaluation engine and demand-driven evaluation cache.
//
// The engine combines an application model with a resource model at run
// time to produce performance data — here, the predicted execution time of
// the application on k homogeneous nodes of the resource.  The paper's GA
// issues on the order of a thousand evaluations per generation, most of
// them repeats, so "a cache of all previous evaluations has been added
// between the scheduler and the PACE evaluation engine"; CachedEvaluator
// reproduces that layer and exposes hit statistics for the cache ablation
// bench.
//
// Both layers are safe for concurrent use: the GA's evaluate phase decodes
// individuals from a thread pool, so every decode's prediction lookups may
// race.  The engine's evaluation counter is atomic, and the cache is
// sharded — each shard is an independent mutex-protected map, with the
// shard chosen by the key hash — so lookups on distinct keys mostly take
// distinct locks.  Concurrent misses on the same key may each invoke the
// engine (the value is a pure function of the key, so every computation
// agrees), which can make miss counts exceed the number of distinct keys
// by a handful under contention; hits + misses always equals lookups.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pace/application_model.hpp"
#include "pace/hardware.hpp"

namespace gridlb::pace {

/// Stateless model-combination engine (plus an evaluation counter).
/// Thread-safe: the models are immutable and the counter is atomic.
class EvaluationEngine {
 public:
  /// Predicted execution time of `app` on `nproc` nodes of `resource`.
  /// This is the t_x(ρ, σ) of the paper's eq. (6).
  double evaluate(const ApplicationModel& app, const ResourceModel& resource,
                  int nproc);

  [[nodiscard]] std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> evaluations_{0};
};

/// Hit/miss statistics.  The cache keeps one CacheStats per shard (each
/// guarded by its shard's mutex); CachedEvaluator::stats() returns the
/// point-in-time aggregate over every shard and shard_snapshots() exposes
/// the per-shard view together with each shard's occupancy.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class CachedEvaluator;

/// Flat per-run snapshot of predictions — the lock-free layer in front of
/// the sharded cache.
///
/// A scheduler's inner loop only ever asks for t_x(σ, ρ) with σ drawn from
/// the handful of distinct applications in its pending queue and |ρ| in
/// [1, node_count]: a 16-node resource running the 7 case-study codes has
/// 112 distinct predictions.  `ensure_row` materialises one application's
/// whole row (k = 1..max_nproc) through the CachedEvaluator — paying the
/// shard locks once, at snapshot time — after which every hot-path lookup
/// is pure array indexing on the returned row: no locks, no hashing, no
/// allocation.
///
/// Not thread-safe for mutation: build rows on one thread (the snapshot
/// phase), then share the table read-only with any number of readers.
/// `ensure_row` for a *new* application may grow the backing storage and
/// invalidate previously returned row pointers — take row pointers only
/// after every row is built (or re-fetch per use, as FifoScheduler does).
class PredictionTable {
 public:
  PredictionTable() = default;

  /// Drops all rows and fixes the resource and row width for the next
  /// run.  Capacity is retained, so a table reset and refilled with a
  /// similar application mix performs no allocations.
  void reset(ResourceModel resource, int max_nproc);

  /// Row of predictions for `app`: row[k-1] = t_x(app, k nodes) for k in
  /// [1, max_nproc], values read through `cache` (bit-identical to direct
  /// cache lookups).  Builds the row on first sight of `app`.
  const double* ensure_row(CachedEvaluator& cache, const ApplicationModel& app);

  /// Row for an application already materialised via `ensure_row`, or
  /// nullptr.  Const and lock-free; safe from any thread once building is
  /// done.
  [[nodiscard]] const double* row_of(const ApplicationModel& app) const;

  [[nodiscard]] int max_nproc() const { return max_nproc_; }
  [[nodiscard]] std::size_t app_count() const { return apps_.size(); }
  /// Total rows materialised over the table's lifetime (across resets).
  [[nodiscard]] std::uint64_t rows_built() const { return rows_built_; }

 private:
  ResourceModel resource_{};
  int max_nproc_ = 0;
  std::vector<const ApplicationModel*> apps_;  ///< row order
  std::vector<double> values_;                 ///< row-major, apps × width
  std::uint64_t rows_built_ = 0;
};

/// Demand-driven cache in front of an EvaluationEngine.
///
/// Keys on (application identity, resource type+factor, nproc).  The
/// application key is the model's address: models are immutable and shared
/// via ApplicationModelPtr for their whole lifetime, so the address is a
/// stable identity within a run.
///
/// Safe for concurrent `evaluate` calls from any number of threads (see
/// the file comment for the sharding scheme and its stats caveats).
class CachedEvaluator {
 public:
  explicit CachedEvaluator(EvaluationEngine& engine) : engine_(&engine) {}

  double evaluate(const ApplicationModel& app, const ResourceModel& resource,
                  int nproc);

  /// Snapshot API: (re)builds `table` over `resource` with rows of width
  /// `max_nproc`, ready for `PredictionTable::ensure_row` calls.  Sugar
  /// over `table.reset` that keeps the call site on the cache, mirroring
  /// where the data comes from.
  void snapshot(PredictionTable& table, ResourceModel resource,
                int max_nproc) {
    table.reset(resource, max_nproc);
  }

  /// Aggregated snapshot over all shards.
  [[nodiscard]] CacheStats stats() const;
  /// Per-shard hit/miss statistics and occupancy (entry count), shard
  /// order.  Useful for checking that the key hash spreads load — a hot
  /// shard serialises its callers.
  struct ShardSnapshot {
    CacheStats stats;
    std::size_t entries = 0;
  };
  [[nodiscard]] std::vector<ShardSnapshot> shard_snapshots() const;
  /// Cached entries across all shards.
  [[nodiscard]] std::size_t size() const;
  void clear();

  static constexpr std::size_t kShardCount = 16;

 private:
  struct Key {
    const ApplicationModel* app;
    HardwareType type;
    double factor;
    int nproc;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> map;
    CacheStats stats;  ///< guarded by `mutex`
  };

  EvaluationEngine* engine_;
  std::array<Shard, kShardCount> shards_;
};

}  // namespace gridlb::pace
