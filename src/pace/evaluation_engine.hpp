// PACE evaluation engine and demand-driven evaluation cache.
//
// The engine combines an application model with a resource model at run
// time to produce performance data — here, the predicted execution time of
// the application on k homogeneous nodes of the resource.  The paper's GA
// issues on the order of a thousand evaluations per generation, most of
// them repeats, so "a cache of all previous evaluations has been added
// between the scheduler and the PACE evaluation engine"; CachedEvaluator
// reproduces that layer and exposes hit statistics for the cache ablation
// bench.
//
// An optional simulated evaluation cost models the paper's observation
// that raw evaluations take "a few tenths of a second"; the ablation bench
// uses it to reproduce the cache's motivating arithmetic.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "pace/application_model.hpp"
#include "pace/hardware.hpp"

namespace gridlb::pace {

/// Stateless model-combination engine (plus an evaluation counter).
class EvaluationEngine {
 public:
  /// Predicted execution time of `app` on `nproc` nodes of `resource`.
  /// This is the t_x(ρ, σ) of the paper's eq. (6).
  double evaluate(const ApplicationModel& app, const ResourceModel& resource,
                  int nproc);

  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }

 private:
  std::uint64_t evaluations_ = 0;
};

/// Statistics for one cache instance.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// Demand-driven cache in front of an EvaluationEngine.
///
/// Keys on (application identity, resource type+factor, nproc).  The
/// application key is the model's address: models are immutable and shared
/// via ApplicationModelPtr for their whole lifetime, so the address is a
/// stable identity within a run.
class CachedEvaluator {
 public:
  explicit CachedEvaluator(EvaluationEngine& engine) : engine_(&engine) {}

  double evaluate(const ApplicationModel& app, const ResourceModel& resource,
                  int nproc);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  void clear();

 private:
  struct Key {
    const ApplicationModel* app;
    HardwareType type;
    double factor;
    int nproc;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  EvaluationEngine* engine_;
  std::unordered_map<Key, double, KeyHash> cache_;
  CacheStats stats_;
};

}  // namespace gridlb::pace
