#include "pace/paper_applications.hpp"

#include "common/assert.hpp"

namespace gridlb::pace {

namespace {

struct PaperApp {
  const char* name;
  DeadlineDomain deadlines;
  std::vector<double> times;  // T(1)..T(16) on SGIOrigin2000, Table 1
};

const std::vector<PaperApp>& paper_apps() {
  static const std::vector<PaperApp> kApps = {
      {"sweep3d",
       {4, 200},
       {50, 40, 30, 25, 23, 20, 17, 15, 13, 11, 9, 7, 6, 5, 4, 4}},
      {"fft",
       {10, 100},
       {25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10}},
      {"improc",
       {20, 192},
       {48, 41, 35, 30, 26, 23, 21, 20, 20, 21, 23, 26, 30, 35, 41, 48}},
      {"closure",
       {2, 36},
       {9, 9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3, 2, 2}},
      {"jacobi",
       {6, 160},
       {40, 35, 30, 25, 23, 20, 17, 15, 13, 11, 10, 9, 8, 7, 6, 6}},
      {"memsort",
       {10, 68},
       {17, 16, 15, 14, 13, 12, 11, 10, 10, 11, 12, 13, 14, 15, 16, 17}},
      {"cpi",
       {2, 128},
       {32, 26, 21, 17, 14, 11, 9, 7, 5, 4, 3, 2, 4, 7, 12, 20}},
  };
  return kApps;
}

}  // namespace

const std::vector<std::string>& paper_application_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(paper_apps().size());
    for (const auto& app : paper_apps()) names.emplace_back(app.name);
    return names;
  }();
  return kNames;
}

ApplicationModelPtr make_paper_application(const std::string& name) {
  for (const auto& app : paper_apps()) {
    if (name == app.name) {
      return std::make_shared<TabulatedModel>(app.name, app.deadlines,
                                              app.times);
    }
  }
  GRIDLB_REQUIRE(false, "unknown paper application: " + name);
}

ApplicationCatalogue paper_catalogue() {
  ApplicationCatalogue catalogue;
  for (const auto& app : paper_apps()) {
    catalogue.add(make_paper_application(app.name));
  }
  return catalogue;
}

}  // namespace gridlb::pace
