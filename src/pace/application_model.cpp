#include "pace/application_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace gridlb::pace {

ApplicationModel::ApplicationModel(std::string name, DeadlineDomain deadlines)
    : name_(std::move(name)), deadlines_(deadlines) {
  GRIDLB_REQUIRE(!name_.empty(), "application model needs a name");
  GRIDLB_REQUIRE(deadlines.lo >= 0.0 && deadlines.hi >= deadlines.lo,
                 "deadline domain must satisfy 0 <= lo <= hi");
}

double ApplicationModel::reference_time(int nproc) const {
  GRIDLB_REQUIRE(nproc >= 1, "processor count must be >= 1");
  const int clamped = nproc > max_procs() ? max_procs() : nproc;
  const double t = reference_time_impl(clamped);
  GRIDLB_ASSERT(t > 0.0);
  return t;
}

TabulatedModel::TabulatedModel(std::string name, DeadlineDomain deadlines,
                               std::vector<double> times)
    : ApplicationModel(std::move(name), deadlines), times_(std::move(times)) {
  GRIDLB_REQUIRE(!times_.empty(), "tabulated model needs at least one entry");
  for (const double t : times_) {
    GRIDLB_REQUIRE(t > 0.0, "tabulated times must be positive");
  }
}

ParametricModel::ParametricModel(std::string name, DeadlineDomain deadlines,
                                 Params params)
    : ApplicationModel(std::move(name), deadlines), params_(params) {
  GRIDLB_REQUIRE(params_.max_procs >= 1, "max_procs must be >= 1");
  GRIDLB_REQUIRE(params_.serial >= 0.0 && params_.parallel >= 0.0 &&
                     params_.comm_per_link >= 0.0 && params_.sync >= 0.0,
                 "parametric model components must be non-negative");
  GRIDLB_REQUIRE(params_.serial + params_.parallel > 0.0,
                 "parametric model must have some work");
}

double ParametricModel::reference_time_impl(int nproc) const {
  const auto k = static_cast<double>(nproc);
  return params_.serial + params_.parallel / k +
         params_.comm_per_link * (k - 1.0) + params_.sync * std::log2(k);
}

void ApplicationCatalogue::add(ApplicationModelPtr model) {
  GRIDLB_REQUIRE(model != nullptr, "cannot register a null model");
  GRIDLB_REQUIRE(find(model->name()) == nullptr,
                 "duplicate application model name: " + model->name());
  models_.push_back(std::move(model));
}

ApplicationModelPtr ApplicationCatalogue::find(const std::string& name) const {
  for (const auto& model : models_) {
    if (model->name() == name) return model;
  }
  return nullptr;
}

}  // namespace gridlb::pace
