// The seven case-study applications of Table 1.
//
// Table 1 lists PACE-predicted execution times for each application on
// 1..16 SGIOrigin2000 processors plus the domain from which each request's
// deadline is drawn.  These tabulated models ARE the reproduction of the
// paper's application models: the evaluation engine reproduces Table 1
// exactly on the reference platform (verified in tests and by
// bench/table1_pace_predictions).
#pragma once

#include "pace/application_model.hpp"

namespace gridlb::pace {

/// Names in Table 1 order: sweep3d, fft, improc, closure, jacobi, memsort,
/// cpi.
[[nodiscard]] const std::vector<std::string>& paper_application_names();

/// Builds the Table 1 model for one application (throws on unknown name).
[[nodiscard]] ApplicationModelPtr make_paper_application(
    const std::string& name);

/// Catalogue containing all seven models, Table 1 order.
[[nodiscard]] ApplicationCatalogue paper_catalogue();

}  // namespace gridlb::pace
