// PACE application models.
//
// In the original toolkit an application model is derived from source-code
// analysis and captures, per parallel template, the computation and
// communication an application performs; the evaluation engine combines it
// with a resource model to predict execution time on k processors.  Two
// concrete model families are provided:
//
//  * TabulatedModel — a measured/authored reference curve T(k) on the
//    reference platform.  The seven case-study applications (Table 1) are
//    tabulated models so their predictions match the paper exactly.
//  * ParametricModel — an analytic compute/communication decomposition
//    T(k) = serial + parallel/k + comm·(k−1) + sync·log2(k), the shape PACE
//    derives for SPMD codes.  This is what a user writing their own
//    application model would use (see examples/custom_application.cpp).
//
// Every model also carries the *deadline domain* [lo, hi] from which the
// case study draws each request's execution deadline (Table 1's bracketed
// ranges).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace gridlb::pace {

/// Inclusive bounds of the random deadline offset, seconds (Table 1).
struct DeadlineDomain {
  double lo = 0.0;
  double hi = 0.0;
};

class ApplicationModel {
 public:
  ApplicationModel(std::string name, DeadlineDomain deadlines);
  virtual ~ApplicationModel() = default;

  ApplicationModel(const ApplicationModel&) = delete;
  ApplicationModel& operator=(const ApplicationModel&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] DeadlineDomain deadline_domain() const { return deadlines_; }

  /// Predicted execution time on `nproc` reference-platform processors.
  /// `nproc` must be >= 1; processor counts beyond `max_procs()` saturate
  /// at the `max_procs()` prediction (the paper: "when the number of
  /// processors is more than 16, the run time does not improve any
  /// further").
  [[nodiscard]] double reference_time(int nproc) const;

  /// Largest processor count the model distinguishes.
  [[nodiscard]] virtual int max_procs() const = 0;

 protected:
  /// Hook for subclasses; called with 1 <= nproc <= max_procs().
  [[nodiscard]] virtual double reference_time_impl(int nproc) const = 0;

 private:
  std::string name_;
  DeadlineDomain deadlines_;
};

/// Convenient shared handle: models are immutable and shared between the
/// catalogue, tasks, schedulers and agents.
using ApplicationModelPtr = std::shared_ptr<const ApplicationModel>;

/// Reference curve given directly, times[k-1] = T(k).
class TabulatedModel final : public ApplicationModel {
 public:
  TabulatedModel(std::string name, DeadlineDomain deadlines,
                 std::vector<double> times);

  [[nodiscard]] int max_procs() const override {
    return static_cast<int>(times_.size());
  }

 protected:
  [[nodiscard]] double reference_time_impl(int nproc) const override {
    return times_[static_cast<std::size_t>(nproc - 1)];
  }

 private:
  std::vector<double> times_;
};

/// Analytic SPMD decomposition:
///   T(k) = serial + parallel/k + comm_per_link·(k−1) + sync·log2(k)
class ParametricModel final : public ApplicationModel {
 public:
  struct Params {
    double serial = 0.0;         ///< non-parallelisable seconds
    double parallel = 0.0;       ///< perfectly-divisible seconds
    double comm_per_link = 0.0;  ///< pairwise exchange cost per extra node
    double sync = 0.0;           ///< log-tree synchronisation cost
    int max_procs = 16;
  };

  ParametricModel(std::string name, DeadlineDomain deadlines, Params params);

  [[nodiscard]] int max_procs() const override { return params_.max_procs; }
  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] double reference_time_impl(int nproc) const override;

 private:
  Params params_;
};

/// Registry of application models by name, as published by the portal's
/// application tools.  Lookup is by the name used in request documents.
class ApplicationCatalogue {
 public:
  void add(ApplicationModelPtr model);
  [[nodiscard]] ApplicationModelPtr find(const std::string& name) const;
  [[nodiscard]] const std::vector<ApplicationModelPtr>& all() const {
    return models_;
  }
  [[nodiscard]] std::size_t size() const { return models_.size(); }

 private:
  std::vector<ApplicationModelPtr> models_;
};

}  // namespace gridlb::pace
