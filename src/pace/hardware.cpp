#include "pace/hardware.hpp"

#include "common/assert.hpp"

namespace gridlb::pace {

const std::vector<HardwareType>& all_hardware_types() {
  static const std::vector<HardwareType> kTypes = {
      HardwareType::kSgiOrigin2000, HardwareType::kSunUltra10,
      HardwareType::kSunUltra5, HardwareType::kSunUltra1,
      HardwareType::kSunSparcStation2};
  return kTypes;
}

std::string_view hardware_name(HardwareType type) {
  switch (type) {
    case HardwareType::kSgiOrigin2000: return "SGIOrigin2000";
    case HardwareType::kSunUltra10: return "SunUltra10";
    case HardwareType::kSunUltra5: return "SunUltra5";
    case HardwareType::kSunUltra1: return "SunUltra1";
    case HardwareType::kSunSparcStation2: return "SunSPARCstation2";
  }
  GRIDLB_ASSERT(false);
}

std::optional<HardwareType> hardware_from_name(std::string_view name) {
  for (const HardwareType type : all_hardware_types()) {
    if (hardware_name(type) == name) return type;
  }
  return std::nullopt;
}

double performance_factor(HardwareType type) {
  // Synthetic static benchmark factors; see header for rationale.  The
  // spread is calibrated so that the case-study workload saturates the
  // slow platforms without the agent mechanism (experiments 1–2) while the
  // grid as a whole can still absorb it when discovery redistributes load
  // (experiment 3) — the regime Table 3 reports.
  switch (type) {
    case HardwareType::kSgiOrigin2000: return 1.0;
    case HardwareType::kSunUltra10: return 1.6;
    case HardwareType::kSunUltra5: return 2.2;
    case HardwareType::kSunUltra1: return 3.0;
    case HardwareType::kSunSparcStation2: return 5.0;
  }
  GRIDLB_ASSERT(false);
}

ResourceModel ResourceModel::of(HardwareType type) {
  return ResourceModel{type, performance_factor(type)};
}

}  // namespace gridlb::pace
