// PACE application-model description language.
//
// In the original toolkit the portal embeds "application tools" that turn
// a user's source code into a performance model; grid users ship the
// resulting model file alongside their binary (Fig. 6 references it as
// `<modelname>`).  This module provides the file format those tools would
// emit in this reproduction: a small line-oriented language describing
// either a tabulated reference curve or a parametric compute/communicate
// decomposition.
//
//   # comments run to end of line
//   application sweep3d
//     deadline 4 200            # the Table 1 deadline domain
//     times 50 40 30 25 23 20 17 15 13 11 9 7 6 5 4 4
//   end
//
//   application stencil2d
//     deadline 10 120
//     max_procs 16
//     serial 2.0                # non-parallelisable seconds
//     parallel 60.0             # perfectly-divisible seconds
//     comm_per_link 0.8         # pairwise exchange per extra node
//     sync 0.5                  # log-tree synchronisation
//   end
//
//   application mc_sim
//     deadline 5 60
//     flops 1.2e9               # work given as operations…
//     rate 40                   # …converted at `rate` Mflop/s per node
//     serial_fraction 0.02      # share of the work that is serial
//   end
//
// A file may define any number of applications; `parse_catalogue` returns
// them as an ApplicationCatalogue.  Errors carry the line number.
#pragma once

#include <stdexcept>
#include <string_view>

#include "pace/application_model.hpp"

namespace gridlb::pace {

class ModelParseError : public std::runtime_error {
 public:
  ModelParseError(const std::string& message, int line);
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parses one or more `application … end` blocks.
[[nodiscard]] ApplicationCatalogue parse_catalogue(std::string_view text);

/// Parses a document that must contain exactly one application.
[[nodiscard]] ApplicationModelPtr parse_model(std::string_view text);

/// Renders a model back into the description language (tabulated models
/// emit a `times` row; parametric models their parameters).  Parsing the
/// output reproduces the model exactly.
[[nodiscard]] std::string write_model(const ApplicationModel& model);

}  // namespace gridlb::pace
