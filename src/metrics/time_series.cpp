#include "metrics/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::metrics {

Timeline build_timeline(
    const std::vector<sched::CompletionRecord>& records,
    const std::vector<std::pair<std::string, int>>& resources, double window,
    SimTime start, SimTime end) {
  GRIDLB_REQUIRE(window > 0.0, "window width must be positive");
  GRIDLB_REQUIRE(end >= start, "timeline ends before it starts");
  GRIDLB_REQUIRE(!resources.empty(), "timeline needs resources");

  Timeline out;
  out.window = window;
  out.start = start;
  const auto buckets = static_cast<std::size_t>(
      std::max(1.0, std::ceil((end - start) / window)));

  double total_nodes = 0.0;
  for (const auto& [label, node_count] : resources) {
    GRIDLB_REQUIRE(node_count >= 1, "resource needs nodes: " + label);
    UtilisationSeries series;
    series.label = label;
    series.node_count = node_count;
    series.utilisation.assign(buckets, 0.0);
    out.resources.push_back(std::move(series));
    total_nodes += node_count;
  }
  out.total.assign(buckets, 0.0);

  const double span_end = start + static_cast<double>(buckets) * window;
  for (const auto& record : records) {
    // AgentIds are 1-based; a zero id would wrap to a huge unsigned index.
    GRIDLB_REQUIRE(record.resource.value() >= 1,
                   "completion record has resource id 0 (ids are 1-based)");
    const auto resource_index =
        static_cast<std::size_t>(record.resource.value() - 1);
    GRIDLB_REQUIRE(resource_index < out.resources.size(),
                   "record references an unknown resource");
    GRIDLB_REQUIRE(record.end >= record.start,
                   "completion record runs backwards in time");
    UtilisationSeries& series = out.resources[resource_index];
    const double weight = static_cast<double>(sched::node_count(record.mask));
    // Spread the execution's node-seconds over the buckets it overlaps.
    // Only the bucket range [first, last) intersecting [start, end) is
    // visited — the build is linear in records, not records × buckets.
    // The range is widened by one bucket on each side so floating-point
    // rounding in the division can never skip a bucket the overlap test
    // would have charged; the `overlap <= 0` guard keeps the arithmetic
    // bit-identical to a full scan.
    const double clip_lo = std::max(record.start, start);
    const double clip_hi = std::min(record.end, span_end);
    if (clip_hi <= clip_lo) continue;
    auto first = static_cast<std::size_t>((clip_lo - start) / window);
    if (first > 0) --first;
    auto last = static_cast<std::size_t>(std::ceil((clip_hi - start) / window));
    if (last < buckets) ++last;
    last = std::min(last, buckets);
    for (std::size_t bucket = first; bucket < last; ++bucket) {
      const double lo = start + static_cast<double>(bucket) * window;
      const double hi = lo + window;
      const double overlap =
          std::max(0.0, std::min(hi, record.end) - std::max(lo, record.start));
      if (overlap <= 0.0) continue;
      series.utilisation[bucket] +=
          overlap * weight / (window * series.node_count);
      out.total[bucket] += overlap * weight / (window * total_nodes);
    }
  }
  return out;
}

Timeline build_timeline(const MetricsCollector& collector, double window) {
  return build_timeline(collector.records(), collector.resource_specs(),
                        window, collector.window_start(),
                        collector.last_completion());
}

std::string timeline_csv(const Timeline& timeline) {
  std::ostringstream os;
  os << "window_start,resource,utilisation\n";
  for (std::size_t bucket = 0; bucket < timeline.buckets(); ++bucket) {
    const double at =
        timeline.start + static_cast<double>(bucket) * timeline.window;
    for (const auto& series : timeline.resources) {
      os << at << ',' << series.label << ','
         << series.utilisation[bucket] << '\n';
    }
    os << at << ",Total," << timeline.total[bucket] << '\n';
  }
  return os.str();
}

std::string render_timeline(const Timeline& timeline) {
  // Decile shading, darkest = fully busy.
  static constexpr char kShades[] = " .:-=+*#%@";
  const auto shade = [](double utilisation) {
    const int decile = std::clamp(static_cast<int>(utilisation * 10.0), 0, 9);
    return kShades[decile];
  };
  std::ostringstream os;
  os << "utilisation per " << timeline.window << "s window ( ";
  os << kShades << " = 0..100% )\n";
  const auto emit = [&os, &shade](const std::string& label,
                                  const std::vector<double>& series) {
    os << label;
    for (std::size_t pad = label.size(); pad < 7; ++pad) os << ' ';
    os << '|';
    for (const double value : series) os << shade(value);
    os << "|\n";
  };
  for (const auto& series : timeline.resources) {
    emit(series.label, series.utilisation);
  }
  emit("Total", timeline.total);
  return os.str();
}

}  // namespace gridlb::metrics
