// The paper's three grid load-balancing metrics (§3.3).
//
// Over an observation window of length t during which M tasks ran on N
// processing nodes:
//   ε — average advance time of application execution completion
//       (eq. 11): mean of (δ_j − η_j); negative when most deadlines fail.
//   υ — resource utilisation rate: per node, busy seconds / t (eq. 12);
//       averaged per resource and over the whole grid (eq. 13).
//   β — load-balancing level: β = (1 − d/ῡ)·100% where d is the mean
//       square deviation of the per-node rates (eqs. 14–15); most
//       effective balancing is d = 0 and β = 100%.
//
// The window is [first submission, last completion] of the whole run — the
// only reading consistent with Table 3, where lightly-loaded resources
// show single-digit utilisation while the experiment is dominated by the
// overloaded ones.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sched/local_scheduler.hpp"

namespace gridlb::metrics {

/// ε / υ / β for one resource (one Table 3 row segment) or the grid total.
struct MetricsRow {
  std::string label;
  int tasks = 0;           ///< tasks completed here
  int deadlines_met = 0;
  double advance_time = 0.0;  ///< ε, seconds (negative = late on average)
  double utilisation = 0.0;   ///< υ, in [0, 1]
  double balance = 0.0;       ///< β, in [0, 1] (can go negative if d > ῡ)
};

struct Report {
  std::vector<MetricsRow> resources;  ///< one row per resource, added order
  MetricsRow total;                   ///< grid-wide row (label "Total")
  SimTime window_start = 0.0;
  SimTime window_end = 0.0;
  [[nodiscard]] double window() const { return window_end - window_start; }
};

class MetricsCollector {
 public:
  /// Registers a resource before any records reference it.
  void add_resource(AgentId id, std::string label, int node_count);

  /// Notes a request submission (the window opens at the first one).
  void on_submission(SimTime time);

  /// Ingests one completed task.
  void record(const sched::CompletionRecord& record);

  [[nodiscard]] std::size_t completed_tasks() const { return records_.size(); }
  [[nodiscard]] const std::vector<sched::CompletionRecord>& records() const {
    return records_;
  }
  /// Registered resources as (label, node_count), registration order.
  [[nodiscard]] std::vector<std::pair<std::string, int>> resource_specs()
      const;
  [[nodiscard]] SimTime window_start() const {
    return first_submission_.value_or(0.0);
  }
  [[nodiscard]] SimTime last_completion() const { return last_completion_; }

  /// Computes the full ε/υ/β report.  `window_end` defaults to the last
  /// completion; pass an explicit end to evaluate a truncated window.
  [[nodiscard]] Report report(
      std::optional<SimTime> window_end = std::nullopt) const;

 private:
  struct Resource {
    AgentId id;
    std::string label;
    int node_count = 0;
    std::vector<double> node_busy;  ///< busy seconds per node
    std::vector<sched::CompletionRecord> completions;
  };

  [[nodiscard]] const Resource* find(AgentId id) const;
  Resource* find(AgentId id);

  std::vector<Resource> resources_;
  std::vector<sched::CompletionRecord> records_;
  std::optional<SimTime> first_submission_;
  SimTime last_completion_ = 0.0;
};

/// Nearest-rank percentile: the smallest value with at least p% of the
/// sample at or below it (p in [0, 100]).  Deterministic — no
/// interpolation — and 0.0 for an empty sample, so zero-completion
/// windows report 0 instead of NaN.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Renders a report as an aligned text table (used by benches/examples).
[[nodiscard]] std::string format_report(const Report& report);

/// Same table with caveat lines appended — one per note, `(note)` style.
/// Callers use this to surface measurement caveats (e.g. trace-ring
/// drops) next to the numbers they qualify instead of in a log stream.
[[nodiscard]] std::string format_report(const Report& report,
                                        const std::vector<std::string>& notes);

}  // namespace gridlb::metrics
