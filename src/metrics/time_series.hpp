// Windowed time series of grid activity.
//
// Table 3 reports whole-run aggregates; to see *when* utilisation and
// balance diverge (queue build-up on overloaded resources, the agent
// mechanism spreading load), the sampler buckets completed executions
// into fixed windows and reports per-resource busy fractions over time.
// Used by bench/timeline_utilisation and exportable as CSV.
#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.hpp"

namespace gridlb::metrics {

/// One resource's busy fraction per window.
struct UtilisationSeries {
  std::string label;
  int node_count = 0;
  std::vector<double> utilisation;  ///< per window, in [0, 1]
};

struct Timeline {
  double window = 0.0;     ///< bucket width, seconds
  SimTime start = 0.0;     ///< left edge of bucket 0
  std::vector<UtilisationSeries> resources;
  /// Grid-wide busy fraction per window (node-weighted mean).
  std::vector<double> total;
  [[nodiscard]] std::size_t buckets() const { return total.size(); }
};

/// Buckets `records` (each execution charges [start, end) on its nodes)
/// into windows of `window` seconds starting at `start`.  `resources`
/// supplies labels and node counts in AgentId order 1..N; records must
/// carry 1-based resource ids.  Each record only touches the buckets its
/// execution overlaps, so the build is linear in the record count.
[[nodiscard]] Timeline build_timeline(
    const std::vector<sched::CompletionRecord>& records,
    const std::vector<std::pair<std::string, int>>& resources, double window,
    SimTime start, SimTime end);

/// Convenience over a collector's records and registered resources.
[[nodiscard]] Timeline build_timeline(const MetricsCollector& collector,
                                      double window);

/// window_start,resource,utilisation rows (long format).
[[nodiscard]] std::string timeline_csv(const Timeline& timeline);

/// Fixed-width text rendering: one row per resource, one column per
/// window, shaded by utilisation ( .:-=+*#%@ deciles).
[[nodiscard]] std::string render_timeline(const Timeline& timeline);

}  // namespace gridlb::metrics
