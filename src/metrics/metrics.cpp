#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::metrics {

void MetricsCollector::add_resource(AgentId id, std::string label,
                                    int node_count) {
  GRIDLB_REQUIRE(id.valid(), "resource id must be valid");
  GRIDLB_REQUIRE(node_count >= 1, "resource needs at least one node");
  GRIDLB_REQUIRE(find(id) == nullptr, "resource registered twice");
  Resource resource;
  resource.id = id;
  resource.label = std::move(label);
  resource.node_count = node_count;
  resource.node_busy.assign(static_cast<std::size_t>(node_count), 0.0);
  resources_.push_back(std::move(resource));
}

void MetricsCollector::on_submission(SimTime time) {
  if (!first_submission_ || time < *first_submission_) {
    first_submission_ = time;
  }
}

const MetricsCollector::Resource* MetricsCollector::find(AgentId id) const {
  for (const auto& resource : resources_) {
    if (resource.id == id) return &resource;
  }
  return nullptr;
}

MetricsCollector::Resource* MetricsCollector::find(AgentId id) {
  return const_cast<Resource*>(
      static_cast<const MetricsCollector*>(this)->find(id));
}

void MetricsCollector::record(const sched::CompletionRecord& record) {
  Resource* resource = find(record.resource);
  GRIDLB_REQUIRE(resource != nullptr,
                 "completion for unregistered resource " +
                     record.resource.str());
  GRIDLB_REQUIRE(record.end >= record.start, "task ends before it starts");
  const double busy = record.end - record.start;
  sched::for_each_node(record.mask, [&](int node) {
    GRIDLB_REQUIRE(node < resource->node_count,
                   "completion references a node beyond the resource");
    resource->node_busy[static_cast<std::size_t>(node)] += busy;
  });
  resource->completions.push_back(record);
  records_.push_back(record);
  last_completion_ = std::max(last_completion_, record.end);
}

namespace {

/// Mean and "mean square deviation" (eq. 14: d = sqrt(Σ(υi−ῡ)²/N)).
struct Spread {
  double mean = 0.0;
  double deviation = 0.0;
};

Spread spread_of(const std::vector<double>& values) {
  Spread out;
  if (values.empty()) return out;
  for (const double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double sum_sq = 0.0;
  for (const double v : values) {
    sum_sq += (v - out.mean) * (v - out.mean);
  }
  out.deviation = std::sqrt(sum_sq / static_cast<double>(values.size()));
  return out;
}

/// β = 1 − d/ῡ (eq. 15); an idle window (ῡ = 0) reports β = 0.
double balance_of(const Spread& spread) {
  if (spread.mean <= 0.0) return 0.0;
  return 1.0 - spread.deviation / spread.mean;
}

}  // namespace

std::vector<std::pair<std::string, int>> MetricsCollector::resource_specs()
    const {
  std::vector<std::pair<std::string, int>> specs;
  specs.reserve(resources_.size());
  for (const auto& resource : resources_) {
    specs.emplace_back(resource.label, resource.node_count);
  }
  return specs;
}

Report MetricsCollector::report(std::optional<SimTime> window_end) const {
  Report out;
  out.window_start = first_submission_.value_or(0.0);
  out.window_end = window_end.value_or(last_completion_);
  const double window = out.window() > 0.0 ? out.window() : 0.0;

  std::vector<double> all_rates;
  double total_advance = 0.0;
  int total_tasks = 0;
  int total_met = 0;

  for (const auto& resource : resources_) {
    MetricsRow row;
    row.label = resource.label;
    row.tasks = static_cast<int>(resource.completions.size());

    std::vector<double> rates;
    rates.reserve(resource.node_busy.size());
    for (const double busy : resource.node_busy) {
      const double rate = window > 0.0 ? busy / window : 0.0;
      rates.push_back(rate);
      all_rates.push_back(rate);
    }
    const Spread spread = spread_of(rates);
    row.utilisation = spread.mean;
    row.balance = balance_of(spread);

    double advance = 0.0;
    for (const auto& completion : resource.completions) {
      advance += completion.deadline - completion.end;
      if (completion.end <= completion.deadline) ++row.deadlines_met;
    }
    row.advance_time =
        row.tasks > 0 ? advance / static_cast<double>(row.tasks) : 0.0;

    total_advance += advance;
    total_tasks += row.tasks;
    total_met += row.deadlines_met;
    out.resources.push_back(std::move(row));
  }

  const Spread total_spread = spread_of(all_rates);
  out.total.label = "Total";
  out.total.tasks = total_tasks;
  out.total.deadlines_met = total_met;
  out.total.advance_time =
      total_tasks > 0 ? total_advance / static_cast<double>(total_tasks) : 0.0;
  out.total.utilisation = total_spread.mean;
  out.total.balance = balance_of(total_spread);
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  GRIDLB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values[std::min(values.size() - 1, rank > 0 ? rank - 1 : 0)];
}

std::string format_report(const Report& report) {
  std::ostringstream os;
  os << std::fixed;
  os << std::setw(8) << "resource" << std::setw(8) << "tasks" << std::setw(10)
     << "met" << std::setw(12) << "eps(s)" << std::setw(10) << "util(%)"
     << std::setw(10) << "beta(%)" << '\n';
  const auto emit = [&os](const MetricsRow& row) {
    os << std::setw(8) << row.label << std::setw(8) << row.tasks
       << std::setw(10) << row.deadlines_met << std::setw(12)
       << std::setprecision(1) << row.advance_time << std::setw(10)
       << std::setprecision(1) << row.utilisation * 100.0 << std::setw(10)
       << std::setprecision(1) << row.balance * 100.0 << '\n';
  };
  for (const auto& row : report.resources) emit(row);
  emit(report.total);
  if (report.total.tasks == 0) {
    // An all-zero table looks like a measured result; say explicitly that
    // nothing completed so the window statistics are vacuous.
    os << "(no completions: utilisation and balance are undefined over an "
          "empty window)\n";
  }
  return os.str();
}

std::string format_report(const Report& report,
                          const std::vector<std::string>& notes) {
  std::string out = format_report(report);
  for (const std::string& note : notes) {
    out += '(';
    out += note;
    out += ")\n";
  }
  return out;
}

}  // namespace gridlb::metrics
