// A small fixed-size thread pool for data-parallel loops.
//
// The GA's evaluate phase (schedule decode + cost for every individual,
// every generation) is embarrassingly parallel, and the population size is
// fixed, so static chunking is enough: `parallel_for(count, fn)` splits
// [0, count) into `size()` contiguous chunks and runs `fn(begin, end,
// slot)` once per non-empty chunk.  The calling thread executes slot 0
// itself, so a pool of size N uses exactly N threads per invocation and a
// pool of size 1 degenerates to a plain loop on the caller — the exact
// serial code path, no worker threads at all.
//
// Slots are stable: chunk `s` always covers the same index range for the
// same `count`, whichever OS thread picks it up.  Callers that accumulate
// into per-slot storage and reduce over slots therefore get results that
// are independent of thread scheduling — the determinism contract the
// parallel GA relies on (see DESIGN.md).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gridlb {

class ThreadPool {
 public:
  /// A chunk body: fn(begin, end, slot) with begin < end and
  /// 0 <= slot < size().
  using ChunkFn = std::function<void(int begin, int end, int slot)>;

  /// Creates a pool that runs `threads` chunks per parallel_for (the
  /// caller plus `threads - 1` workers).  `threads` must be >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return threads_; }

  /// Runs `fn` over [0, count) in `size()` static contiguous chunks and
  /// blocks until every chunk has finished.  The first exception thrown by
  /// any chunk is rethrown on the calling thread (remaining chunks still
  /// run to completion).  Not reentrant: a pool must not be re-entered
  /// from inside a chunk, and only one thread may dispatch at a time.
  void parallel_for(int count, const ChunkFn& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop(int slot);
  void run_chunk(int count, int slot);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;  ///< signals workers: new job / stop
  std::condition_variable done_cv_;   ///< signals caller: all chunks done
  const ChunkFn* job_ = nullptr;      ///< current job (valid while pending)
  int count_ = 0;                     ///< current job's index range
  std::uint64_t generation_ = 0;      ///< bumped once per dispatch
  int pending_ = 0;                   ///< worker chunks not yet finished
  std::exception_ptr first_error_;    ///< first chunk exception, if any
  bool stop_ = false;
};

}  // namespace gridlb
