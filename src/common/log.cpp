#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace gridlb::log {

namespace {

Level initial_level() {
  const char* env = std::getenv("GRIDLB_LOG");
  if (env == nullptr) return Level::kWarn;
  const std::string value(env);
  if (value == "debug") return Level::kDebug;
  if (value == "info") return Level::kInfo;
  if (value == "warn") return Level::kWarn;
  return Level::kOff;
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> storage{initial_level()};
  return storage;
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level lvl) {
  level_storage().store(lvl, std::memory_order_relaxed);
}

void write(Level lvl, const std::string& message) {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr << "[gridlb " << tag(lvl) << "] " << message << '\n';
}

}  // namespace gridlb::log
