#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/sim_clock.hpp"

namespace gridlb::log {

namespace {

Level initial_level() {
  const char* env = std::getenv("GRIDLB_LOG");
  if (env == nullptr) return Level::kWarn;
  const std::string value(env);
  if (value == "debug") return Level::kDebug;
  if (value == "info") return Level::kInfo;
  if (value == "warn") return Level::kWarn;
  if (value == "off") return Level::kOff;
  // Unknown values silence the logger rather than spam: a typo in
  // GRIDLB_LOG should never flood a batch run.
  return Level::kOff;
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> storage{initial_level()};
  return storage;
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level lvl) {
  level_storage().store(lvl, std::memory_order_relaxed);
}

void write(Level lvl, const std::string& message) {
  // Prefix every line with the published simulation time so interleaved
  // narration from different subsystems stays sortable; "t=-" before the
  // first engine event (or outside any simulation).
  char stamp[32];
  if (simclock::available()) {
    std::snprintf(stamp, sizeof stamp, "t=%.3f", simclock::now());
  } else {
    std::snprintf(stamp, sizeof stamp, "t=-");
  }
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr << "[gridlb " << tag(lvl) << ' ' << stamp << "] " << message
            << '\n';
}

}  // namespace gridlb::log
