#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gridlb {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  GRIDLB_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int slot = 1; slot < threads; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(n));
}

void ThreadPool::run_chunk(int count, int slot) {
  // Static chunking: slot s covers [count·s/S, count·(s+1)/S).  Ranges are
  // contiguous, cover [0, count) exactly, and differ in size by at most 1.
  const int begin = static_cast<int>(
      static_cast<long long>(count) * slot / threads_);
  const int end = static_cast<int>(
      static_cast<long long>(count) * (slot + 1) / threads_);
  if (begin >= end) return;
  try {
    (*job_)(begin, end, slot);
  } catch (...) {
    const std::lock_guard lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    int count;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      count = count_;
    }
    run_chunk(count, slot);
    {
      const std::lock_guard lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(int count, const ChunkFn& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    // Single-threaded pool: the exact serial code path.
    fn(0, count, 0);
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    job_ = &fn;
    count_ = count;
    pending_ = static_cast<int>(workers_.size());
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(count, 0);  // the caller takes slot 0
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace gridlb
