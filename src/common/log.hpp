// Minimal leveled logger.
//
// The simulator is quiet by default; set_level(Level::kDebug) (or the
// GRIDLB_LOG environment variable: "debug" / "info" / "warn" / "off")
// turns narration of scheduling and discovery decisions on or off — which
// is invaluable when diagnosing a divergent experiment run.  Every line
// carries the level and the current simulation time (`t=-` before the
// first event), so interleaved narration stays sortable.
#pragma once

#include <sstream>
#include <string>

namespace gridlb::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Current threshold; messages below it are dropped.
Level level();
void set_level(Level level);

/// Writes one line to stderr if `lvl` passes the threshold.
void write(Level lvl, const std::string& message);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gridlb::log
