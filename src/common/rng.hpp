// Deterministic pseudo-random number generation.
//
// The case study depends on run-to-run reproducibility ("the seed is set to
// the same so that the workload for each experiment is identical"), so all
// randomness in gridlb flows through this engine rather than std::rand or
// random_device.  The generator is xoshiro256**, seeded via splitmix64; it
// is small, fast, and has well-understood statistical quality.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gridlb {

/// xoshiro256** engine with convenience distributions.
///
/// Not thread-safe; each simulation component owns its own stream (use
/// `split()` to derive independent child streams deterministically).
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) with rejection sampling (no modulo bias).
  /// `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives a child stream whose sequence is independent of later draws
  /// from this stream (both are fully determined by the original seed).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace gridlb
