// Minimal command-line flag parser for the tools and examples.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms, plus
// positional arguments.  Repeated flags resolve last-wins (scripts append
// overrides to a baseline command line), and numeric getters require the
// whole token to parse ("16x" is an error, not 16).  Declared flags carry
// a help line; `usage()` renders them.  Unknown flags raise
// AssertionError so typos fail fast.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace gridlb {

class Flags {
 public:
  /// Declares a flag before parsing; `value_hint` is shown in usage (empty
  /// for boolean flags).
  void declare(std::string name, std::string value_hint, std::string help);

  /// Parses argv (excluding argv[0]).  Throws AssertionError on unknown
  /// or malformed flags.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Declaration {
    std::string name;
    std::string value_hint;
    std::string help;
  };
  struct Value {
    std::string name;
    std::string value;  // "true" for bare boolean flags
  };

  [[nodiscard]] const Declaration* find_declaration(
      const std::string& name) const;
  [[nodiscard]] std::optional<std::string> find_value(
      const std::string& name) const;

  std::vector<Declaration> declarations_;
  std::vector<Value> values_;
  std::vector<std::string> positional_;
};

}  // namespace gridlb
