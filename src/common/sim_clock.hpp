// Process-wide published simulation time.
//
// The discrete-event engine is the only component that knows the current
// virtual time, but two consumers outside the event loop need it: the
// logger (to prefix narration with sim-time) and the trace recorder (PACE
// cache events fire on thread-pool workers that have no engine reference).
// The engine publishes its clock here with one relaxed store per event;
// readers take one relaxed load.  The value is advisory — exact ordering
// across threads is not required, only a usable timestamp.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace gridlb::simclock {

namespace detail {
inline std::atomic<SimTime>& storage() {
  static std::atomic<SimTime> time{kNoTime};
  return time;
}
}  // namespace detail

/// Called by the engine as its clock advances.
inline void publish(SimTime now) {
  detail::storage().store(now, std::memory_order_relaxed);
}

/// Last published virtual time, or kNoTime if no engine has run yet.
[[nodiscard]] inline SimTime now() {
  return detail::storage().load(std::memory_order_relaxed);
}

/// True once an engine has published a clock value.
[[nodiscard]] inline bool available() { return now() >= 0.0; }

/// Returns the clock to the "no engine has run" state (used by tests).
inline void reset() { detail::storage().store(kNoTime, std::memory_order_relaxed); }

}  // namespace gridlb::simclock
