// Process-wide published simulation time.
//
// The discrete-event engine is the only component that knows the current
// virtual time, but two consumers outside the event loop need it: the
// logger (to prefix narration with sim-time) and the trace recorder (PACE
// cache events fire on thread-pool workers that have no engine reference).
// The engine publishes its clock here with one relaxed store per event;
// readers take one relaxed load.  The value is advisory — exact ordering
// across threads is not required, only a usable timestamp.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace gridlb::simclock {

namespace detail {
inline std::atomic<SimTime>& storage() {
  static std::atomic<SimTime> time{kNoTime};
  return time;
}
}  // namespace detail

/// Called by the engine as its clock advances.
inline void publish(SimTime now) {
  detail::storage().store(now, std::memory_order_relaxed);
}

/// Last published virtual time, or kNoTime if no engine has run yet.
[[nodiscard]] inline SimTime now() {
  return detail::storage().load(std::memory_order_relaxed);
}

/// True once an engine has published a clock value.
[[nodiscard]] inline bool available() { return now() >= 0.0; }

/// Returns the clock to the "no engine has run" state (used by tests).
inline void reset() { detail::storage().store(kNoTime, std::memory_order_relaxed); }

namespace detail {
/// The shard whose event is executing on this thread, biased by +1 so 0
/// means "unsharded / outside any shard event".  Per-thread because each
/// shard of a partitioned simulation is driven by its own worker.
inline thread_local std::uint16_t tls_shard = 0;
}  // namespace detail

/// Called by the engine on every event: 1 + shard index in lineage
/// (sharded) mode, 0 on the classic single-queue engine.
inline void publish_shard(std::uint16_t shard_plus_one) {
  detail::tls_shard = shard_plus_one;
}

/// 1 + the executing shard, or 0 when unsharded.  Trace events are
/// stamped with this so exporters can group a sharded run by shard.
[[nodiscard]] inline std::uint16_t current_shard() {
  return detail::tls_shard;
}

}  // namespace gridlb::simclock
