// Lightweight always-on assertion macros.
//
// Simulation correctness bugs (negative times, inconsistent schedules) are
// far cheaper to catch at the point of violation than three modules later,
// so these stay enabled in release builds.  They throw rather than abort so
// tests can assert on the failure.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gridlb {

/// Thrown when a GRIDLB_ASSERT / GRIDLB_REQUIRE condition fails.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assertion_failed(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace gridlb

/// Internal invariant; failure indicates a bug in gridlb itself.
#define GRIDLB_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::gridlb::detail::assertion_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Precondition on caller-supplied data; `msg` names the offending input.
#define GRIDLB_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr))                                                            \
      ::gridlb::detail::assertion_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
