#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace gridlb {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GRIDLB_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of `bound` that fits in 64 bits.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GRIDLB_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in practice
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_double() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GRIDLB_REQUIRE(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() {
  Rng child(next_u64());
  return child;
}

}  // namespace gridlb
