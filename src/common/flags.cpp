#include "common/flags.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace gridlb {

void Flags::declare(std::string name, std::string value_hint,
                    std::string help) {
  GRIDLB_REQUIRE(!name.empty() && name[0] != '-',
                 "declare flag names without dashes");
  GRIDLB_REQUIRE(find_declaration(name) == nullptr,
                 "flag declared twice: " + name);
  declarations_.push_back(
      Declaration{std::move(name), std::move(value_hint), std::move(help)});
}

const Flags::Declaration* Flags::find_declaration(
    const std::string& name) const {
  for (const auto& declaration : declarations_) {
    if (declaration.name == name) return &declaration;
  }
  return nullptr;
}

std::optional<std::string> Flags::find_value(const std::string& name) const {
  // Last occurrence wins, so scripts can append overrides to a baseline
  // command line (`gridlb … --seed 1 … --seed 2` runs with seed 2).
  for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
    if (it->name == name) return it->value;
  }
  return std::nullopt;
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto equals = name.find('='); equals != std::string::npos) {
      value = name.substr(equals + 1);
      name.erase(equals);
      have_value = true;
    }
    const Declaration* declaration = find_declaration(name);
    GRIDLB_REQUIRE(declaration != nullptr, "unknown flag: --" + name);
    const bool wants_value = !declaration->value_hint.empty();
    if (wants_value && !have_value) {
      GRIDLB_REQUIRE(i + 1 < argc, "flag --" + name + " needs a value");
      value = argv[++i];
      have_value = true;
    }
    if (!wants_value && !have_value) value = "true";
    values_.push_back(Value{std::move(name), std::move(value)});
  }
}

bool Flags::has(const std::string& name) const {
  return find_value(name).has_value();
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  GRIDLB_REQUIRE(find_declaration(name) != nullptr,
                 "reading undeclared flag: " + name);
  return find_value(name).value_or(fallback);
}

int Flags::get_int(const std::string& name, int fallback) const {
  const auto value = find_value(name);
  if (!value) {
    GRIDLB_REQUIRE(find_declaration(name) != nullptr,
                   "reading undeclared flag: " + name);
    return fallback;
  }
  try {
    std::size_t consumed = 0;
    const int parsed = std::stoi(*value, &consumed);
    // std::stoi stops at the first non-digit; "16x" must not parse as 16.
    if (consumed == value->size()) return parsed;
  } catch (const std::exception&) {
  }
  GRIDLB_REQUIRE(false, "flag --" + name + " expects an integer, got '" +
                            *value + "'");
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto value = find_value(name);
  if (!value) {
    GRIDLB_REQUIRE(find_declaration(name) != nullptr,
                   "reading undeclared flag: " + name);
    return fallback;
  }
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    // std::stod stops at the first bad char; "0.05typo" must not parse.
    if (consumed == value->size()) return parsed;
  } catch (const std::exception&) {
  }
  GRIDLB_REQUIRE(false, "flag --" + name + " expects a number, got '" +
                            *value + "'");
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto value = find_value(name);
  if (!value) {
    GRIDLB_REQUIRE(find_declaration(name) != nullptr,
                   "reading undeclared flag: " + name);
    return fallback;
  }
  if (*value == "true" || *value == "1" || *value == "on") return true;
  if (*value == "false" || *value == "0" || *value == "off") return false;
  GRIDLB_REQUIRE(false, "flag --" + name + " expects a boolean, got '" +
                            *value + "'");
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& declaration : declarations_) {
    std::string left = "  --" + declaration.name;
    if (!declaration.value_hint.empty()) {
      left += " <" + declaration.value_hint + ">";
    }
    os << left;
    // Pad to a fixed help column, but never glue a wide flag to its help
    // text: at least two spaces always separate the columns.
    const std::size_t column = std::max<std::size_t>(34, left.size() + 2);
    for (std::size_t pad = left.size(); pad < column; ++pad) os << ' ';
    os << declaration.help << '\n';
  }
  return os.str();
}

}  // namespace gridlb
