// Fundamental vocabulary types shared by every gridlb module.
//
// Simulated time is a plain double number of seconds since the start of a
// simulation run.  Strong-typedef wrappers are used for the identifier
// families (tasks, nodes, agents/resources) so that an AgentId can never be
// passed where a TaskId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace gridlb {

/// Simulated wall-clock time in seconds since the start of the run.
using SimTime = double;

/// Sentinel for "no time" / "not yet happened".
inline constexpr SimTime kNoTime = -1.0;

/// A value safely beyond any event horizon used in practice.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

namespace detail {

/// CRTP-free strong integer id.  `Tag` makes distinct instantiations
/// incompatible; the underlying value is a 64-bit unsigned integer.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  [[nodiscard]] std::string str() const { return std::to_string(value_); }

  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

 private:
  std::uint64_t value_ = kInvalid;
};

}  // namespace detail

struct TaskTag {};
struct NodeTag {};
struct AgentTag {};

/// Identifies one task (one submitted request) for its whole lifetime.
using TaskId = detail::StrongId<TaskTag>;
/// Identifies one processing node within a single grid resource (0-based).
using NodeId = detail::StrongId<NodeTag>;
/// Identifies one agent == one grid resource (S1..S12 in the case study).
using AgentId = detail::StrongId<AgentTag>;

}  // namespace gridlb

namespace std {
template <class Tag>
struct hash<gridlb::detail::StrongId<Tag>> {
  size_t operator()(gridlb::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
