#include "agents/request.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace gridlb::agents {

std::string to_xml(const Request& request) {
  xml::Element root("agentgrid");
  root.set_attribute("type", "request");
  root.set_attribute("taskid", request.task.str());
  if (request.origin) {
    root.set_attribute("origin", std::to_string(*request.origin));
  }
  if (!request.visited.empty()) {
    std::ostringstream visited;
    for (std::size_t i = 0; i < request.visited.size(); ++i) {
      if (i != 0) visited << ',';
      visited << request.visited[i].value();
    }
    root.set_attribute("visited", visited.str());
  }

  xml::Element& application = root.add_child("application");
  application.add_child_with_text("name", request.app_name);
  xml::Element& binary = application.add_child("binary");
  binary.add_child_with_text("file", request.binary_file);
  binary.add_child_with_text("inputfile", request.input_file);
  xml::Element& performance = application.add_child("performance");
  performance.add_child_with_text("datatype", "pacemodel");
  performance.add_child_with_text("modelname", request.model_name);

  xml::Element& requirement = root.add_child("requirement");
  requirement.add_child_with_text("environment", request.environment);
  requirement.add_child_with_text("deadline",
                                  std::to_string(request.deadline));

  root.add_child_with_text("email", request.email);
  return xml::write(root);
}

Request request_from_xml(std::string_view document) {
  const auto root = xml::parse(document);
  GRIDLB_REQUIRE(root->name() == "agentgrid", "not an agentgrid document");
  GRIDLB_REQUIRE(root->attribute("type") == "request",
                 "not a request document");

  Request request;
  if (const auto taskid = root->attribute("taskid")) {
    request.task = TaskId(std::stoull(std::string(*taskid)));
  }
  if (const auto origin = root->attribute("origin")) {
    request.origin =
        static_cast<std::uint32_t>(std::stoul(std::string(*origin)));
  }
  if (const auto visited = root->attribute("visited")) {
    std::istringstream is{std::string(*visited)};
    std::string token;
    while (std::getline(is, token, ',')) {
      request.visited.push_back(AgentId(std::stoull(token)));
    }
  }

  const xml::Element* application = root->child("application");
  GRIDLB_REQUIRE(application != nullptr, "request lacks <application>");
  request.app_name = application->child_text("name");
  if (const xml::Element* binary = application->child("binary")) {
    request.binary_file = binary->child_text("file");
    request.input_file = binary->child_text("inputfile");
  }
  if (const xml::Element* performance = application->child("performance")) {
    GRIDLB_REQUIRE(performance->child_text("datatype") == "pacemodel",
                   "unsupported performance data type");
    request.model_name = performance->child_text("modelname");
  }

  const xml::Element* requirement = root->child("requirement");
  GRIDLB_REQUIRE(requirement != nullptr, "request lacks <requirement>");
  request.environment = requirement->child_text("environment");
  const std::string deadline_text = requirement->child_text("deadline");
  GRIDLB_REQUIRE(!deadline_text.empty(), "request lacks a deadline");
  request.deadline = std::stod(deadline_text);

  request.email = root->child_text("email");
  return request;
}

}  // namespace gridlb::agents
