// Request documents (paper Fig. 6).
//
// A grid user submits, through the portal, the application's identity
// (binary + PACE performance model), its requirements (execution
// environment and deadline) and contact information:
//
//   <agentgrid type="request">
//     <application>
//       <name>sweep3d</name>
//       <binary> <file>…</file> <inputfile>…</inputfile> </binary>
//       <performance> <datatype>pacemodel</datatype>
//                     <modelname>…</modelname> </performance>
//     </application>
//     <requirement> <environment>test</environment>
//                   <deadline>…</deadline> </requirement>
//     <email>…</email>
//   </agentgrid>
//
// Two simulation-level extensions travel as attributes of the root
// element (invisible to the Fig. 6 schema): `taskid` identifies the
// request end-to-end, and `visited` lists agents the discovery process has
// already tried so a request is never bounced in a cycle.  As with
// freetime, the deadline is serialised as decimal sim-seconds rather than
// a calendar date.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

struct Request {
  TaskId task;
  // <application>
  std::string app_name;
  std::string binary_file;
  std::string input_file;
  std::string model_name;  ///< PACE application model reference
  // <requirement>
  std::string environment = "test";
  SimTime deadline = 0.0;  ///< absolute execution deadline δ_r
  // contact
  std::string email;
  // discovery bookkeeping (root-element attributes)
  std::vector<AgentId> visited;
  /// Network endpoint the execution result is posted back to (the paper
  /// emails the user; the simulation replies to the originating portal).
  /// Travels as the `origin` root attribute; nullopt = fire-and-forget.
  std::optional<std::uint32_t> origin;

  bool operator==(const Request&) const = default;
};

[[nodiscard]] std::string to_xml(const Request& request);

[[nodiscard]] Request request_from_xml(std::string_view document);

}  // namespace gridlb::agents
