#include "agents/agent.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pace/hardware.hpp"

namespace gridlb::agents {

Agent::Agent(sim::Engine& engine, sim::Network& network,
             pace::CachedEvaluator& evaluator,
             const pace::ApplicationCatalogue& catalogue, AgentConfig config,
             sched::LocalScheduler& scheduler)
    : engine_(engine),
      network_(network),
      evaluator_(evaluator),
      catalogue_(catalogue),
      config_(std::move(config)),
      scheduler_(scheduler),
      link_(engine, network, config_.retry) {
  GRIDLB_REQUIRE(config_.id.valid(), "agent needs a valid id");
  endpoint_ = network_.register_endpoint(
      config_.address, config_.port,
      [this](const sim::Message& message) { on_message(message); });
  link_.set_self(endpoint_);
}

void Agent::set_parent(Agent* parent) {
  GRIDLB_REQUIRE(parent != this, "an agent cannot be its own parent");
  parent_ = parent;
}

void Agent::add_child(Agent* child) {
  GRIDLB_REQUIRE(child != nullptr && child != this, "invalid child agent");
  children_.push_back(child);
}

void Agent::start() {
  if (!config_.discovery_enabled || config_.pull_period <= 0.0) return;
  pull_timer_ = engine_.schedule_periodic(0.0, config_.pull_period,
                                          [this]() { pull_from_neighbours(); });
}

std::vector<TaskId> Agent::crash() {
  GRIDLB_REQUIRE(alive_, "cannot crash a dead agent");
  alive_ = false;
  ++stats_.crashes;
  network_.set_endpoint_up(endpoint_, false);
  if (pull_timer_ != 0) {
    engine_.cancel(pull_timer_);
    pull_timer_ = 0;
  }
  act_ = CapabilityTable{};
  pending_results_.clear();
  queue_copies_.clear();  // the drained pending tasks go back via the portal
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kAgentCrashed,
             .resource = config_.id.value()});
  log::warn("agent ", config_.name, " t=", engine_.now(), " crashed");
  std::vector<TaskId> stranded = scheduler_.drain_pending();
  // Requests this agent had forwarded but not yet seen acked die with it;
  // without recovery they would be black holes (the sender's retries are
  // gone too).  Results are not recovered: their execution already counted.
  for (const std::string& payload : link_.reset()) {
    const auto document = xml::parse(payload);
    if (document->attribute("type") == "request") {
      stranded.push_back(request_from_xml(payload).task);
    }
  }
  return stranded;
}

void Agent::restart() {
  GRIDLB_REQUIRE(!alive_, "cannot restart a live agent");
  alive_ = true;
  ++stats_.restarts;
  network_.set_endpoint_up(endpoint_, true);
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kAgentRestarted,
             .resource = config_.id.value()});
  log::info("agent ", config_.name, " t=", engine_.now(), " restarted");
  if (!config_.discovery_enabled || config_.pull_period <= 0.0) return;
  pull_timer_ = engine_.schedule_periodic(
      engine_.now(), config_.pull_period, [this]() { pull_from_neighbours(); });
}

ServiceInfo Agent::service_snapshot() const {
  ServiceInfo info;
  info.agent_address = config_.address;
  info.agent_port = config_.port;
  info.local_address = config_.address;
  info.local_port = config_.port + 9000;  // scheduler's own port (Fig. 5)
  info.hardware_type =
      std::string(pace::hardware_name(scheduler_.config().resource.type));
  info.nproc = scheduler_.config().node_count;
  info.environments = scheduler_.config().environments;
  info.freetime = scheduler_.freetime();
  return info;
}

std::optional<SimTime> Agent::estimate_completion(
    const ServiceInfo& info, const Request& request) const {
  if (std::find(info.environments.begin(), info.environments.end(),
                request.environment) == info.environments.end()) {
    return std::nullopt;
  }
  const pace::ApplicationModelPtr app = catalogue_.find(request.app_name);
  if (app == nullptr) return std::nullopt;
  const auto type = pace::hardware_from_name(info.hardware_type);
  if (!type) return std::nullopt;
  const pace::ResourceModel resource = pace::ResourceModel::of(*type);

  // eq. 10: for a homogeneous resource the evaluation function is called
  // n times; η_r = ω + min_k t_x(k, σ_r).
  double best = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= info.nproc; ++k) {
    best = std::min(best, evaluator_.evaluate(*app, resource, k));
  }
  const SimTime now = engine_.now();
  const double backlog = std::max(0.0, info.freetime - now);
  return now + backlog + best;
}

std::optional<double> Agent::expected_occupancy(const ServiceInfo& info,
                                                const Request& request) const {
  const pace::ApplicationModelPtr app = catalogue_.find(request.app_name);
  if (app == nullptr || info.nproc <= 0) return std::nullopt;
  const auto type = pace::hardware_from_name(info.hardware_type);
  if (!type) return std::nullopt;
  const pace::ResourceModel resource = pace::ResourceModel::of(*type);
  double best_exec = std::numeric_limits<double>::infinity();
  int best_k = 1;
  for (int k = 1; k <= info.nproc; ++k) {
    const double exec = evaluator_.evaluate(*app, resource, k);
    if (exec < best_exec) {
      best_exec = exec;
      best_k = k;
    }
  }
  return best_exec * static_cast<double>(best_k) /
         static_cast<double>(info.nproc);
}

bool Agent::already_visited(const Request& request, AgentId agent) const {
  return std::find(request.visited.begin(), request.visited.end(), agent) !=
         request.visited.end();
}

Agent* Agent::neighbour_by_id(AgentId agent) const {
  if (parent_ != nullptr && parent_->id() == agent) return parent_;
  for (Agent* child : children_) {
    if (child->id() == agent) return child;
  }
  return nullptr;
}

std::optional<AgentId> Agent::neighbour_for_endpoint(
    sim::EndpointId endpoint) const {
  if (parent_ != nullptr && parent_->endpoint() == endpoint) {
    return parent_->id();
  }
  for (const Agent* child : children_) {
    if (child->endpoint() == endpoint) return child->id();
  }
  return std::nullopt;
}

void Agent::receive_request(Request request, bool final_dispatch) {
  ++stats_.requests_received;
  const auto hops = static_cast<std::uint64_t>(request.visited.size());

  if (final_dispatch || !config_.discovery_enabled) {
    stats_.hops_accumulated += hops;
    if (hops == 0) ++stats_.zero_hop_dispatches;
    dispatch_local(std::move(request));
    return;
  }

  if (hops >= static_cast<std::uint64_t>(config_.max_hops)) {
    // Routing budget exhausted (only reachable with transitive routing
    // gone degenerate): execute here rather than bounce forever.
    if (config_.strict_failure) {
      note_strict_drop(request, hops);
      return;
    }
    ++stats_.fallback_dispatches;
    stats_.hops_accumulated += hops;
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kDiscoveryFallback,
               .extra = static_cast<std::uint32_t>(hops),
               .task = request.task.value(),
               .resource = config_.id.value()});
    dispatch_local(std::move(request));
    return;
  }
  if (!already_visited(request, config_.id)) {
    request.visited.push_back(config_.id);
  }

  // 1. Own service first.
  const ServiceInfo own = service_snapshot();
  if (const auto eta = estimate_completion(own, request);
      eta && *eta <= request.deadline) {
    log::debug("agent ", config_.name, " t=", engine_.now(), " task ",
               request.task.str(), " matched locally, eta=", *eta);
    stats_.hops_accumulated += hops;
    if (hops == 0) ++stats_.zero_hop_dispatches;
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kDiscoveryLocal,
               .extra = static_cast<std::uint32_t>(hops),
               .task = request.task.value(),
               .resource = config_.id.value(),
               .a = *eta});
    dispatch_local(std::move(request));
    return;
  }

  // 2. Advertised services: best requirement/resource match.  Each entry
  // is routed through the neighbour it was learned from (for a
  // neighbour's own service, the neighbour itself).
  Agent* best_route = nullptr;
  AgentId best_described;
  const ServiceInfo* best_info = nullptr;
  SimTime best_eta = std::numeric_limits<double>::infinity();
  SimTime best_updated = 0.0;
  for (const auto& entry : act_.entries()) {
    if (entry.agent == config_.id) continue;
    if (already_visited(request, entry.agent)) continue;
    if (CapabilityTable::expired(entry, engine_.now(), config_.act_expiry)) {
      continue;  // neighbour stopped advertising — suspected dead
    }
    Agent* route = neighbour_by_id(entry.via);
    if (route == nullptr) continue;
    if (const auto eta = estimate_completion(entry.info, request);
        eta && *eta <= request.deadline && *eta < best_eta) {
      best_eta = *eta;
      best_route = route;
      best_described = entry.agent;
      best_info = &entry.info;
      best_updated = entry.updated_at;
    }
  }
  if (best_route != nullptr) {
    ++stats_.forwarded_match;
    const double staleness = std::max(0.0, engine_.now() - best_updated);
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kDiscoveryNeighbour,
               .extra = static_cast<std::uint32_t>(hops),
               .task = request.task.value(),
               .resource = best_described.value(),
               .a = best_eta,
               .b = staleness});
    if (auto* reg = obs::registry()) {
      reg->histogram("act.staleness_at_use",
                     {0.0, 0.5, 1, 2, 5, 10, 20, 50, 100, 200})
          .observe(staleness);
    }
    log::debug("agent ", config_.name, " t=", engine_.now(), " task ",
               request.task.str(), " forwarded toward agent ",
               best_described.str(), " via ", best_route->name(),
               ", eta=", best_eta);
    if (const auto occupancy = expected_occupancy(*best_info, request)) {
      act_.advance_freetime(best_described, engine_.now(), *occupancy);
    }
    forward(std::move(request), best_route, false);
    return;
  }

  // 3. No advertised service meets the requirement: escalate.
  if (parent_ != nullptr && !already_visited(request, parent_->id())) {
    ++stats_.forwarded_up;
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kDiscoveryUpper,
               .extra = static_cast<std::uint32_t>(hops),
               .task = request.task.value(),
               .resource = parent_->id().value()});
    log::debug("agent ", config_.name, " t=", engine_.now(), " task ",
               request.task.str(), " escalated to ", parent_->name());
    forward(std::move(request), parent_, false);
    return;
  }

  // 4. Head of the hierarchy (or dead end): discovery terminated
  // unsuccessfully in the paper's sense.
  if (config_.strict_failure) {
    note_strict_drop(request, hops);
    log::warn("agent ", config_.name, " t=", engine_.now(), " task ",
              request.task.str(), " dropped: no grid resource matches");
    return;
  }
  ++stats_.fallback_dispatches;
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kDiscoveryFallback,
             .extra = static_cast<std::uint32_t>(hops),
             .task = request.task.value(),
             .resource = config_.id.value()});
  // Best effort: smallest estimated completion among the own resource and
  // every known service, deadline or not.
  Agent* target = nullptr;  // nullptr = self
  const ServiceInfo* target_info = nullptr;
  SimTime target_eta =
      estimate_completion(own, request)
          .value_or(std::numeric_limits<double>::infinity());
  for (const auto& entry : act_.entries()) {
    // Final dispatch executes at the recipient, so only services owned by
    // a direct neighbour qualify here.
    if (entry.via != entry.agent) continue;
    if (CapabilityTable::expired(entry, engine_.now(), config_.act_expiry)) {
      continue;
    }
    Agent* neighbour = neighbour_by_id(entry.agent);
    if (neighbour == nullptr) continue;
    if (const auto eta = estimate_completion(entry.info, request);
        eta && *eta < target_eta) {
      target_eta = *eta;
      target = neighbour;
      target_info = &entry.info;
    }
  }
  if (target == nullptr) {
    stats_.hops_accumulated += hops;
    if (hops == 0) ++stats_.zero_hop_dispatches;
    dispatch_local(std::move(request));
  } else {
    log::debug("agent ", config_.name, " t=", engine_.now(), " task ",
               request.task.str(), " best-effort dispatch to ",
               target->name());
    if (const auto occupancy = expected_occupancy(*target_info, request)) {
      act_.advance_freetime(target->id(), engine_.now(), *occupancy);
    }
    forward(std::move(request), target, true);
  }
}

void Agent::note_strict_drop(const Request& request, std::uint64_t hops) {
  ++stats_.dropped;
  if (auto* reg = obs::registry()) reg->counter("flow.dropped").add(1);
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kRequestRejected,
             .extra = static_cast<std::uint32_t>(hops),
             .task = request.task.value(),
             .resource = config_.id.value()});
  if (drop_sink_) {
    // Deferred by one network latency as a milestone: the drop can flip
    // the drive's stop predicate exactly like a completion, and the delay
    // is shard-count independent (latency == the coordinator lookahead),
    // so every shard count halts on the same event.
    const TaskId task = request.task;
    engine_.schedule_milestone_at(engine_.now() + network_.latency(),
                                  [this, task]() { drop_sink_(task); });
  }
}

void Agent::dispatch_local(Request request) {
  ++stats_.dispatched_local;
  const auto hops = static_cast<std::uint32_t>(request.visited.size());
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kRequestDispatched,
             .extra = hops,
             .task = request.task.value(),
             .resource = config_.id.value(),
             .a = request.deadline});
  if (auto* reg = obs::registry()) {
    reg->histogram("discovery.hops", {0, 1, 2, 3, 4, 6, 8, 12, 16})
        .observe(static_cast<double>(hops));
  }
  const pace::ApplicationModelPtr app = catalogue_.find(request.app_name);
  GRIDLB_REQUIRE(app != nullptr,
                 "dispatch of unknown application " + request.app_name);
  if (request.origin) {
    pending_results_.push_back(
        PendingResult{request.task, *request.origin, request.email});
  }
  if (config_.migration.enabled) queue_copies_.push_back(request);
  sched::Task task;
  task.id = request.task;
  task.app = app;
  task.arrival = engine_.now();
  task.deadline = request.deadline;
  task.environment = request.environment;
  scheduler_.submit(std::move(task));
  if (config_.push_on_dispatch) push_to_neighbours();
}

void Agent::on_task_completed(const sched::CompletionRecord& record) {
  if (!queue_copies_.empty()) {
    const auto copy = std::find_if(
        queue_copies_.begin(), queue_copies_.end(),
        [&record](const Request& r) { return r.task == record.task; });
    if (copy != queue_copies_.end()) queue_copies_.erase(copy);
  }
  const auto it = std::find_if(
      pending_results_.begin(), pending_results_.end(),
      [&record](const PendingResult& pending) {
        return pending.task == record.task;
      });
  if (it == pending_results_.end()) return;  // fire-and-forget submission
  if (!alive_) return;  // the process that knew the origin died with it

  ExecutionResult result;
  result.task = record.task;
  result.app_name = record.app_name;
  result.resource_name = config_.name;
  result.start = record.start;
  result.completion = record.end;
  result.deadline = record.deadline;
  result.email = it->email;
  const sim::EndpointId origin = it->origin;
  pending_results_.erase(it);
  ++stats_.results_sent;
  link_.send(origin, to_xml(result));
}

void Agent::forward(Request request, Agent* to, bool final_dispatch) {
  GRIDLB_REQUIRE(to != nullptr, "cannot forward to a null agent");
  std::string payload = to_xml(request);
  if (final_dispatch) {
    // The `final` marker rides as a root attribute, like taskid/visited.
    auto document = xml::parse(payload);
    document->set_attribute("final", "1");
    payload = xml::write(*document);
  }
  link_.send(to->endpoint(), std::move(payload),
             [this](sim::EndpointId dead, const std::string& lost) {
               handle_send_failure(dead, lost);
             });
}

void Agent::handle_send_failure(sim::EndpointId to, const std::string& payload) {
  if (!alive_) return;  // crashed while the retries were in flight
  const auto neighbour = neighbour_for_endpoint(to);
  const auto document = xml::parse(payload);
  const auto type = document->attribute("type");
  if (neighbour) {
    // Retry budget exhausted: distrust everything learned from or about
    // that neighbour so discovery stops routing through it.
    const std::size_t purged = act_.erase_involving(*neighbour);
    log::warn("agent ", config_.name, " t=", engine_.now(), " neighbour ",
              neighbour->str(), " unresponsive, purged ", purged,
              " ACT entries");
  }
  if (type != "request") return;  // results are re-requested by the portal
  Request request = request_from_xml(payload);
  if (neighbour && !already_visited(request, *neighbour)) {
    request.visited.push_back(*neighbour);
  }
  ++stats_.reroutes;
  log::warn("agent ", config_.name, " t=", engine_.now(), " task ",
            request.task.str(), " rerouting after delivery failure");
  receive_request(std::move(request), false);
}

void Agent::pull_from_neighbours() {
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kAdvertisementPull,
             .resource = config_.id.value(),
             .a = static_cast<double>(act_.size())});
  xml::Element pull("agentgrid");
  pull.set_attribute("type", "pull");
  const std::string payload = xml::write(pull);
  if (parent_ != nullptr) {
    ++stats_.pulls_sent;
    network_.send(endpoint_, parent_->endpoint(), payload);
  }
  for (const Agent* child : children_) {
    ++stats_.pulls_sent;
    network_.send(endpoint_, child->endpoint(), payload);
  }
}

void Agent::push_to_neighbours() {
  const std::string payload = to_xml(service_snapshot());
  if (parent_ != nullptr) {
    network_.send(endpoint_, parent_->endpoint(), payload);
  }
  for (const Agent* child : children_) {
    network_.send(endpoint_, child->endpoint(), payload);
  }
}

void Agent::on_message(const sim::Message& message) {
  if (link_.on_message(message) == ReliableLink::Inbound::kConsumed) return;
  const auto document = xml::parse(message.payload);
  GRIDLB_REQUIRE(document->name() == "agentgrid",
                 "unexpected message document: " + document->name());
  const auto type = document->attribute("type");
  GRIDLB_REQUIRE(type.has_value(), "agentgrid message lacks a type");

  if (*type == "pull") {
    handle_pull(message);
  } else if (*type == "service") {
    handle_advertisement(message);
  } else if (*type == "request") {
    const bool final_dispatch = document->attribute("final") == "1";
    receive_request(request_from_xml(message.payload), final_dispatch);
  } else {
    GRIDLB_REQUIRE(false, "unknown agentgrid message type");
  }
}

void Agent::handle_pull(const sim::Message& message) {
  network_.send(endpoint_, message.from, to_xml(service_snapshot()));
  if (config_.scope != AdvertisementScope::kTransitive) return;
  // Relay known services, split-horizon: never back toward the neighbour
  // they were learned from, and never the requester's own service.
  const auto requester = neighbour_for_endpoint(message.from);
  if (!requester) return;
  for (const auto& entry : act_.entries()) {
    if (entry.via == *requester || entry.agent == *requester) continue;
    auto document = xml::parse(to_xml(entry.info));
    document->set_attribute("agentid", entry.agent.str());
    network_.send(endpoint_, message.from, xml::write(*document));
  }
}

void Agent::handle_advertisement(const sim::Message& message) {
  const auto sender = neighbour_for_endpoint(message.from);
  if (!sender) {
    log::warn("agent ", config_.name,
              " ignoring advertisement from non-neighbour endpoint");
    return;
  }
  ++stats_.advertisements_received;
  // A relayed advertisement names the described resource in the `agentid`
  // attribute; a plain one describes the sender itself.
  AgentId described = *sender;
  const auto document = xml::parse(message.payload);
  if (const auto agentid = document->attribute("agentid")) {
    described = AgentId(std::stoull(std::string(*agentid)));
  }
  if (described == config_.id) return;  // echo of our own service
  // `a` carries the age of the entry being replaced (0 for a first sight):
  // the refresh interval actually achieved, as opposed to the staleness
  // observed when an entry is *used* (kDiscoveryNeighbour's `b`).
  const auto* previous = act_.find(described);
  const double refresh_age =
      previous ? std::max(0.0, engine_.now() - previous->updated_at) : 0.0;
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kAdvertisementReceived,
             .resource = described.value(),
             .a = refresh_age});
  act_.upsert(described, service_info_from_xml(message.payload),
              engine_.now(), *sender);
  maybe_migrate(described);
}

void Agent::maybe_migrate(AgentId described) {
  if (!config_.migration.enabled || queue_copies_.empty()) return;
  // Migrations are final dispatches, so only a direct neighbour — one we
  // can deliver to ourselves — qualifies as a target.
  Agent* const target = neighbour_by_id(described);
  if (target == nullptr) return;
  const SimTime now = engine_.now();
  const double own_backlog = std::max(0.0, scheduler_.freetime() - now);
  if (own_backlog <= config_.migration.overload_threshold) return;
  const CapabilityTable::Entry* entry = act_.find(described);
  if (entry == nullptr) return;
  if (std::max(0.0, entry->info.freetime - now) >=
      config_.migration.underload_threshold) {
    return;
  }

  // Newest queued tasks first: they are the deepest in the backlog and
  // gain the most from re-homing.
  int moved = 0;
  for (std::size_t i = queue_copies_.size();
       i-- > 0 && moved < config_.migration.max_batch;) {
    Request request = queue_copies_[i];
    if (already_visited(request, described)) continue;
    if (request.visited.size() >=
        static_cast<std::size_t>(config_.max_hops)) {
      continue;
    }
    if (!estimate_completion(entry->info, request)) continue;
    if (!scheduler_.cancel(request.task)) {
      // Already started (or gone): the retained copy is stale.
      queue_copies_.erase(queue_copies_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      continue;
    }
    // The queue slot is gone; reply routing moves with the request (its
    // origin/email ride the document and the recipient re-records them).
    if (!already_visited(request, config_.id)) {
      request.visited.push_back(config_.id);
    }
    const auto pending = std::find_if(
        pending_results_.begin(), pending_results_.end(),
        [&request](const PendingResult& p) { return p.task == request.task; });
    if (pending != pending_results_.end()) pending_results_.erase(pending);
    ++stats_.migrations;
    if (auto* reg = obs::registry()) reg->counter("flow.migrated").add(1);
    obs::emit({.at = now,
               .kind = obs::EventKind::kTaskMigrated,
               .extra = static_cast<std::uint32_t>(request.visited.size()),
               .task = request.task.value(),
               .resource = described.value(),
               .a = own_backlog,
               .b = std::max(0.0, entry->info.freetime - now)});
    log::debug("agent ", config_.name, " t=", now, " task ",
               request.task.str(), " migrated to ", target->name(),
               " (backlog ", own_backlog, "s)");
    if (const auto occupancy = expected_occupancy(entry->info, request)) {
      act_.advance_freetime(described, now, *occupancy);
    }
    queue_copies_.erase(queue_copies_.begin() +
                        static_cast<std::ptrdiff_t>(i));
    forward(std::move(request), target, true);
    ++moved;
  }
}

}  // namespace gridlb::agents
