#include "agents/agent_system.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gridlb::agents {

AgentSystem::AgentSystem(sim::Engine& engine,
                         const pace::ApplicationCatalogue& catalogue,
                         SystemConfig config,
                         metrics::MetricsCollector* collector)
    : engine_(engine), config_(std::move(config)) {
  GRIDLB_REQUIRE(!config_.resources.empty(), "grid needs >= 1 resource");

  network_ = std::make_unique<sim::Network>(engine_, config_.network_latency);
  engine_pace_ = std::make_unique<pace::EvaluationEngine>();
  evaluator_ = std::make_unique<pace::CachedEvaluator>(*engine_pace_);

  Rng seeder(config_.seed);
  int heads = 0;
  for (std::size_t i = 0; i < config_.resources.size(); ++i) {
    const ResourceSpec& spec = config_.resources[i];
    GRIDLB_REQUIRE(!spec.name.empty(), "resource needs a name");
    GRIDLB_REQUIRE(
        spec.parent < static_cast<int>(i),
        "parents must precede children in the resource list: " + spec.name);
    if (spec.parent < 0) {
      ++heads;
      head_index_ = i;
    }

    const AgentId id(i + 1);
    if (collector != nullptr) {
      collector->add_resource(id, spec.name, spec.node_count);
    }

    sched::LocalScheduler::Config scheduler_config;
    scheduler_config.resource_id = id;
    scheduler_config.resource = pace::ResourceModel::of(spec.hardware);
    scheduler_config.node_count = spec.node_count;
    scheduler_config.policy = config_.policy;
    scheduler_config.fifo_objective = config_.fifo_objective;
    scheduler_config.ga = config_.ga;
    scheduler_config.seed = seeder.next_u64();
    scheduler_config.prediction_error = config_.prediction_error;
    const std::size_t agent_index = i;
    schedulers_.push_back(std::make_unique<sched::LocalScheduler>(
        engine_, *evaluator_, std::move(scheduler_config),
        [this, collector, agent_index](const sched::CompletionRecord& record) {
          if (collector != nullptr) collector->record(record);
          // The agent may not exist yet while the system is being built,
          // but completions only fire once the simulation runs.
          if (agent_index < agents_.size()) {
            agents_[agent_index]->on_task_completed(record);
          }
        }));

    AgentConfig agent_config;
    agent_config.id = id;
    agent_config.name = spec.name;
    agent_config.address = spec.name + ".gridlb.sim";
    agent_config.port = 1000 + static_cast<int>(i);
    agent_config.discovery_enabled = config_.discovery_enabled;
    agent_config.strict_failure = config_.strict_failure;
    agent_config.pull_period = config_.pull_period;
    agent_config.push_on_dispatch = config_.push_on_dispatch;
    agent_config.scope = config_.scope;
    agents_.push_back(std::make_unique<Agent>(
        engine_, *network_, *evaluator_, catalogue, std::move(agent_config),
        *schedulers_.back()));
  }
  GRIDLB_REQUIRE(heads == 1, "the hierarchy must have exactly one head");

  if (config_.churn.enabled) {
    Rng churn_seeder(config_.churn.seed);
    for (std::size_t i = 0; i < schedulers_.size(); ++i) {
      const int nodes = config_.resources[i].node_count;
      availability_.push_back(
          std::make_unique<sched::NodeAvailability>(nodes));
      sched::schedule_availability(
          engine_, *availability_.back(),
          sched::random_availability_script(nodes, config_.churn.horizon,
                                            config_.churn.mtbf,
                                            config_.churn.mttr,
                                            churn_seeder.next_u64()));
      monitors_.push_back(std::make_unique<sched::ResourceMonitor>(
          engine_, *schedulers_[i], *availability_.back(),
          config_.churn.poll_period));
    }
  }

  for (std::size_t i = 0; i < config_.resources.size(); ++i) {
    const int parent = config_.resources[i].parent;
    if (parent < 0) continue;
    agents_[i]->set_parent(agents_[static_cast<std::size_t>(parent)].get());
    agents_[static_cast<std::size_t>(parent)]->add_child(agents_[i].get());
  }
}

void AgentSystem::start() {
  for (const auto& agent : agents_) agent->start();
  for (const auto& monitor : monitors_) monitor->start();
}

Agent& AgentSystem::agent(std::size_t index) {
  GRIDLB_REQUIRE(index < agents_.size(), "agent index out of range");
  return *agents_[index];
}

const Agent& AgentSystem::agent(std::size_t index) const {
  GRIDLB_REQUIRE(index < agents_.size(), "agent index out of range");
  return *agents_[index];
}

Agent& AgentSystem::agent_named(const std::string& name) {
  for (const auto& agent : agents_) {
    if (agent->name() == name) return *agent;
  }
  GRIDLB_REQUIRE(false, "unknown agent name: " + name);
}

}  // namespace gridlb::agents
