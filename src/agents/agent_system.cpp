#include "agents/agent_system.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace gridlb::agents {

AgentSystem::AgentSystem(sim::Engine& engine,
                         const pace::ApplicationCatalogue& catalogue,
                         SystemConfig config,
                         metrics::MetricsCollector* collector)
    : engine_(engine), config_(std::move(config)) {
  build(catalogue, collector);
}

AgentSystem::AgentSystem(sim::ShardedEngine& sharded,
                         const pace::ApplicationCatalogue& catalogue,
                         SystemConfig config,
                         metrics::MetricsCollector* collector)
    : engine_(sharded.shard(0)), sharded_(&sharded), config_(std::move(config)) {
  build(catalogue, collector);
}

std::vector<std::size_t> AgentSystem::assign_shards(
    const std::vector<ResourceSpec>& resources, std::size_t shards) {
  const std::size_t n = resources.size();
  std::vector<std::size_t> shard_of(n, 0);
  if (shards <= 1 || n == 0) return shard_of;
  std::vector<std::vector<std::size_t>> children(n);
  std::size_t root = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (resources[i].parent >= 0) {
      children[static_cast<std::size_t>(resources[i].parent)].push_back(i);
    } else {
      root = i;
    }
  }
  // DFS preorder keeps each subtree contiguous, so cutting the order into
  // equal chunks pins whole subtrees (parent/child message chatter)
  // together wherever the chunk boundaries allow.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> stack{root};
  while (!stack.empty()) {
    const std::size_t index = stack.back();
    stack.pop_back();
    order.push_back(index);
    for (auto it = children[index].rbegin(); it != children[index].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  GRIDLB_ASSERT(order.size() == n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    shard_of[order[pos]] = pos * shards / n;
  }
  return shard_of;
}

std::size_t AgentSystem::shard_of(std::size_t index) const {
  GRIDLB_REQUIRE(index < shard_assignment_.size(), "agent index out of range");
  return shard_assignment_[index];
}

void AgentSystem::build(const pace::ApplicationCatalogue& catalogue,
                        metrics::MetricsCollector* collector) {
  GRIDLB_REQUIRE(!config_.resources.empty(), "grid needs >= 1 resource");

  const std::size_t shards =
      sharded_ != nullptr ? sharded_->shard_count() : std::size_t{1};
  collect_sharded_ = shards > 1;
  collector_ = collector;
  shard_assignment_ = assign_shards(config_.resources, shards);
  completion_buffers_.resize(shards);
  if (collect_sharded_ && config_.ga.eval_threads != 1) {
    // One GA thread pool per scheduler does not scale to thousands of
    // agents, and the PR-1 determinism contract makes eval_threads
    // irrelevant to results — the shards themselves are the parallelism.
    // Only an explicit >1 request deserves a warning; the auto default
    // (0 = hardware concurrency) is normalized silently.
    if (config_.ga.eval_threads > 1) {
      log::warn("sharded run overrides ga.eval_threads=",
                config_.ga.eval_threads, " to 1 (shards are the parallelism; ",
                shards, " shards)");
    }
    config_.ga.eval_threads = 1;
  }

  network_ = std::make_unique<sim::Network>(engine_, config_.network_latency,
                                            config_.fault);
  if (sharded_ != nullptr) network_->attach_router(sharded_);
  engine_pace_ = std::make_unique<pace::EvaluationEngine>();
  evaluator_ = std::make_unique<pace::CachedEvaluator>(*engine_pace_);

  Rng seeder(config_.seed);
  int heads = 0;
  for (std::size_t i = 0; i < config_.resources.size(); ++i) {
    const ResourceSpec& spec = config_.resources[i];
    GRIDLB_REQUIRE(!spec.name.empty(), "resource needs a name");
    GRIDLB_REQUIRE(
        spec.parent < static_cast<int>(i),
        "parents must precede children in the resource list: " + spec.name);
    if (spec.parent < 0) {
      ++heads;
      head_index_ = i;
    }

    const AgentId id(i + 1);
    if (collector != nullptr) {
      collector->add_resource(id, spec.name, spec.node_count);
    }

    sim::Engine& agent_engine = engine_for(i);
    network_->set_registration_shard(shard_assignment_[i]);

    sched::LocalScheduler::Config scheduler_config;
    scheduler_config.resource_id = id;
    scheduler_config.resource = pace::ResourceModel::of(spec.hardware);
    scheduler_config.node_count = spec.node_count;
    scheduler_config.policy = config_.policy;
    scheduler_config.fifo_objective = config_.fifo_objective;
    scheduler_config.ga = config_.ga;
    scheduler_config.seed = seeder.next_u64();
    scheduler_config.prediction_error = config_.prediction_error;
    const std::size_t agent_index = i;
    schedulers_.push_back(std::make_unique<sched::LocalScheduler>(
        agent_engine, *evaluator_, std::move(scheduler_config),
        [this, collector, agent_index](const sched::CompletionRecord& record) {
          if (collect_sharded_) {
            // Buffer on the shard that executed the completion, tagged
            // with its exec record; finalize_completions() restores the
            // global order after the run.
            sim::Engine* const current = sim::Engine::current();
            GRIDLB_ASSERT(current != nullptr);
            completion_buffers_[current->shard_index()].push_back(
                {record, current->current_record_ticket()});
            completed_count_.fetch_add(1, std::memory_order_relaxed);
          } else {
            if (collector != nullptr) collector->record(record);
            completed_count_.fetch_add(1, std::memory_order_relaxed);
          }
          // The agent may not exist yet while the system is being built,
          // but completions only fire once the simulation runs.
          if (agent_index < agents_.size()) {
            agents_[agent_index]->on_task_completed(record);
          }
        }));

    AgentConfig agent_config;
    agent_config.id = id;
    agent_config.name = spec.name;
    agent_config.address = spec.name + ".gridlb.sim";
    agent_config.port = 1000 + static_cast<int>(i);
    agent_config.discovery_enabled = config_.discovery_enabled;
    agent_config.strict_failure = config_.strict_failure;
    agent_config.pull_period = config_.pull_period;
    agent_config.push_on_dispatch = config_.push_on_dispatch;
    agent_config.scope = config_.scope;
    if (config_.fault_tolerance.enabled) {
      agent_config.retry = config_.fault_tolerance.retry;
      agent_config.retry.enabled = true;
      agent_config.act_expiry =
          static_cast<double>(config_.fault_tolerance.act_expiry_periods) *
          config_.pull_period;
    }
    agent_config.migration = config_.migration;
    agents_.push_back(std::make_unique<Agent>(
        agent_engine, *network_, *evaluator_, catalogue,
        std::move(agent_config), *schedulers_.back()));
    agents_.back()->set_drop_sink([this](TaskId) {
      dropped_count_.fetch_add(1, std::memory_order_relaxed);
    });
  }
  GRIDLB_REQUIRE(heads == 1, "the hierarchy must have exactly one head");

  if (config_.churn.enabled) {
    Rng churn_seeder(config_.churn.seed);
    for (std::size_t i = 0; i < schedulers_.size(); ++i) {
      const int nodes = config_.resources[i].node_count;
      availability_.push_back(
          std::make_unique<sched::NodeAvailability>(nodes));
      sched::schedule_availability(
          engine_for(i), *availability_.back(),
          sched::random_availability_script(nodes, config_.churn.horizon,
                                            config_.churn.mtbf,
                                            config_.churn.mttr,
                                            churn_seeder.next_u64()));
      monitors_.push_back(std::make_unique<sched::ResourceMonitor>(
          engine_for(i), *schedulers_[i], *availability_.back(),
          config_.churn.poll_period));
    }
  }

  for (std::size_t i = 0; i < config_.resources.size(); ++i) {
    const int parent = config_.resources[i].parent;
    if (parent < 0) continue;
    agents_[i]->set_parent(agents_[static_cast<std::size_t>(parent)].get());
    agents_[static_cast<std::size_t>(parent)]->add_child(agents_[i].get());
  }

  if (config_.agent_churn.enabled) schedule_agent_churn();
}

void AgentSystem::finalize_completions() {
  if (!collect_sharded_) return;
  std::vector<BufferedCompletion> all;
  std::size_t total = 0;
  for (const auto& buffer : completion_buffers_) total += buffer.size();
  all.reserve(total);
  for (auto& buffer : completion_buffers_) {
    for (auto& buffered : buffer) all.push_back(std::move(buffered));
    buffer.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const BufferedCompletion& a, const BufferedCompletion& b) {
              GRIDLB_ASSERT(a.ticket->finalized && b.ticket->finalized);
              return a.ticket->rank < b.ticket->rank;
            });
  if (collector_ != nullptr) {
    for (const BufferedCompletion& buffered : all) {
      collector_->record(buffered.record);
    }
  }
}

void AgentSystem::schedule_agent_churn() {
  const AgentChurnConfig& churn = config_.agent_churn;
  GRIDLB_REQUIRE(churn.mtbf > 0.0 && churn.mttr > 0.0,
                 "agent churn needs positive mtbf and mttr");
  Rng rng(churn.seed);
  const auto exponential = [&rng](double mean) {
    // Inverse-CDF sampling; 1 − u avoids log(0).
    return -mean * std::log(1.0 - rng.next_double());
  };
  // Alternating up/down script per agent, fully drawn up-front so the
  // schedule depends only on the churn seed (never on simulation events).
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (churn.protect_head && i == head_index_) continue;
    SimTime t = 0.0;
    while (true) {
      t += exponential(churn.mtbf);
      if (t >= churn.horizon) break;
      engine_for(i).schedule_at(t, [this, i]() { crash_agent(i); });
      t += exponential(churn.mttr);
      engine_for(i).schedule_at(t, [this, i]() { agents_[i]->restart(); });
    }
  }
}

void AgentSystem::crash_agent(std::size_t index) {
  const std::vector<TaskId> stranded = agents_[index]->crash();
  for (const TaskId task : stranded) {
    if (stranded_sink_) stranded_sink_(task);
  }
}

void AgentSystem::start() {
  for (const auto& agent : agents_) agent->start();
  for (const auto& monitor : monitors_) monitor->start();
}

Agent& AgentSystem::agent(std::size_t index) {
  GRIDLB_REQUIRE(index < agents_.size(), "agent index out of range");
  return *agents_[index];
}

const Agent& AgentSystem::agent(std::size_t index) const {
  GRIDLB_REQUIRE(index < agents_.size(), "agent index out of range");
  return *agents_[index];
}

Agent* AgentSystem::find_agent(const std::string& name) {
  for (const auto& agent : agents_) {
    if (agent->name() == name) return agent.get();
  }
  return nullptr;
}

Agent& AgentSystem::agent_named(const std::string& name) {
  Agent* agent = find_agent(name);
  GRIDLB_REQUIRE(agent != nullptr, "unknown agent name: " + name);
  return *agent;
}

}  // namespace gridlb::agents
