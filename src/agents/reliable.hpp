// Reliable delivery over the unreliable simulated network.
//
// The paper's agents assume TCP underneath; once sim::Network can drop
// messages (DESIGN.md §10), the agent protocol needs its own guarantee.
// ReliableLink adds one to any endpoint, Fig. 5/6 documents unchanged
// except for bookkeeping attributes on the root element:
//
//   * every reliable send stamps a globally unique `msgid` attribute and
//     arms an acknowledgement timeout;
//   * receivers acknowledge every msgid with a tiny
//     `<agentgrid type="ack" msgid="…"/>` document (acks are themselves
//     unreliable — a lost ack simply provokes one more retransmission);
//   * an unacknowledged message is retransmitted with bounded exponential
//     backoff; after `max_attempts` transmissions the sender gives up and
//     invokes the send's failure callback (e.g. to reroute a request away
//     from a suspected-dead neighbour);
//   * receivers remember every msgid they have delivered and suppress
//     duplicates (re-acking them), so at-least-once transport yields
//     effectively-once processing.
//
// With the policy disabled the link is a transparent pass-through: sends
// are byte-identical to a plain network_.send (no msgid attribute, no
// acks, no timers), which is what keeps the zero-fault experiment results
// bit-for-bit identical to the pre-fault implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace gridlb::agents {

/// Retry/timeout/backoff knobs of one reliable sender.
struct RetryPolicy {
  bool enabled = false;
  double ack_timeout = 0.5;  ///< first acknowledgement timeout, seconds
  double backoff = 2.0;      ///< timeout multiplier per retransmission
  double max_timeout = 8.0;  ///< ceiling the backoff saturates at
  int max_attempts = 5;      ///< total transmissions, the first included
};

/// Reliability bookkeeping of one link.
struct LinkStats {
  std::uint64_t reliable_sent = 0;  ///< first transmissions with a msgid
  std::uint64_t retries = 0;        ///< retransmissions after a timeout
  std::uint64_t expired = 0;        ///< sends that exhausted max_attempts
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_suppressed = 0;
};

class ReliableLink {
 public:
  /// Invoked (once) when a reliable send exhausts its retry budget.
  /// `payload` is the original document, msgid attribute included.
  using FailureFn =
      std::function<void(sim::EndpointId to, const std::string& payload)>;

  ReliableLink(sim::Engine& engine, sim::Network& network, RetryPolicy policy);

  ReliableLink(const ReliableLink&) = delete;
  ReliableLink& operator=(const ReliableLink&) = delete;

  /// The owning endpoint; must be set (once) before the first send.
  void set_self(sim::EndpointId self) { self_ = self; }

  /// Sends an agentgrid document.  Disabled policy: plain passthrough.
  /// Enabled: stamps a msgid, transmits, and retries until acked or the
  /// attempt budget runs out (then calls `on_failure`, if given).
  void send(sim::EndpointId to, std::string payload,
            FailureFn on_failure = nullptr);

  /// Inbound filter; the endpoint handler must call this first.
  ///   kConsumed — the message was an ack or a duplicate; do not process.
  ///   kDeliver  — fresh traffic (acked if it carried a msgid); process it.
  enum class Inbound { kDeliver, kConsumed };
  Inbound on_message(const sim::Message& message);

  /// Drops all in-flight sends and their timers without invoking failure
  /// callbacks — the state a crashing process loses.  Delivered-msgid
  /// memory survives (the paper's agents would keep it in stable storage);
  /// forgetting it would let a retransmission double-execute a task.
  /// Returns the undelivered payloads in send order so the owner can
  /// recover what the crash would otherwise black-hole (a forwarded
  /// request dying with its forwarder).
  std::vector<std::string> reset();

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Pending {
    sim::EndpointId to = 0;
    std::string payload;   ///< retransmitted verbatim (same msgid)
    int attempts = 1;
    double timeout = 0.0;  ///< the currently armed timeout
    sim::EventId timer = 0;
    FailureFn on_failure;
  };

  void arm_timer(std::uint64_t msgid);
  void on_timeout(std::uint64_t msgid);

  sim::Engine& engine_;
  sim::Network& network_;
  RetryPolicy policy_;
  sim::EndpointId self_ = 0;
  std::uint64_t next_serial_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<std::uint64_t> delivered_;
  LinkStats stats_;
};

}  // namespace gridlb::agents
