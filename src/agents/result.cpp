#include "agents/result.hpp"

#include "common/assert.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

std::string to_xml(const ExecutionResult& result) {
  xml::Element root("agentgrid");
  root.set_attribute("type", "result");
  root.set_attribute("taskid", result.task.str());

  xml::Element& application = root.add_child("application");
  application.add_child_with_text("name", result.app_name);

  xml::Element& execution = root.add_child("execution");
  execution.add_child_with_text("resource", result.resource_name);
  execution.add_child_with_text("start", std::to_string(result.start));
  execution.add_child_with_text("completion",
                                std::to_string(result.completion));
  execution.add_child_with_text("deadline", std::to_string(result.deadline));

  root.add_child_with_text("email", result.email);
  return xml::write(root);
}

ExecutionResult result_from_xml(std::string_view document) {
  const auto root = xml::parse(document);
  GRIDLB_REQUIRE(root->name() == "agentgrid", "not an agentgrid document");
  GRIDLB_REQUIRE(root->attribute("type") == "result",
                 "not a result document");

  ExecutionResult result;
  if (const auto taskid = root->attribute("taskid")) {
    result.task = TaskId(std::stoull(std::string(*taskid)));
  }
  const xml::Element* application = root->child("application");
  GRIDLB_REQUIRE(application != nullptr, "result lacks <application>");
  result.app_name = application->child_text("name");

  const xml::Element* execution = root->child("execution");
  GRIDLB_REQUIRE(execution != nullptr, "result lacks <execution>");
  result.resource_name = execution->child_text("resource");
  result.start = std::stod(execution->child_text("start"));
  result.completion = std::stod(execution->child_text("completion"));
  result.deadline = std::stod(execution->child_text("deadline"));

  result.email = root->child_text("email");
  return result;
}

}  // namespace gridlb::agents
