#include "agents/reliable.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

ReliableLink::ReliableLink(sim::Engine& engine, sim::Network& network,
                           RetryPolicy policy)
    : engine_(engine), network_(network), policy_(policy) {
  GRIDLB_REQUIRE(policy_.ack_timeout > 0.0, "ack timeout must be positive");
  GRIDLB_REQUIRE(policy_.backoff >= 1.0, "backoff must not shrink timeouts");
  GRIDLB_REQUIRE(policy_.max_timeout >= policy_.ack_timeout,
                 "timeout ceiling below the initial timeout");
  GRIDLB_REQUIRE(policy_.max_attempts >= 1, "need at least one attempt");
}

void ReliableLink::send(sim::EndpointId to, std::string payload,
                        FailureFn on_failure) {
  if (!policy_.enabled) {
    network_.send(self_, to, std::move(payload));
    return;
  }
  // Globally unique: the owning endpoint in the high bits, a serial below.
  const std::uint64_t msgid =
      (static_cast<std::uint64_t>(self_) << 32) | (next_serial_++ & 0xFFFFFFFF);
  auto document = xml::parse(payload);
  document->set_attribute("msgid", std::to_string(msgid));
  payload = xml::write(*document);

  Pending pending;
  pending.to = to;
  pending.payload = payload;
  pending.timeout = policy_.ack_timeout;
  pending.on_failure = std::move(on_failure);
  pending_.emplace(msgid, std::move(pending));
  ++stats_.reliable_sent;
  network_.send(self_, to, std::move(payload));
  arm_timer(msgid);
}

void ReliableLink::arm_timer(std::uint64_t msgid) {
  Pending& pending = pending_.at(msgid);
  pending.timer = engine_.schedule_in(
      pending.timeout, [this, msgid]() { on_timeout(msgid); });
}

void ReliableLink::on_timeout(std::uint64_t msgid) {
  const auto it = pending_.find(msgid);
  if (it == pending_.end()) return;  // acked in the meantime
  Pending& pending = it->second;
  if (pending.attempts >= policy_.max_attempts) {
    ++stats_.expired;
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kMessageExpired,
               .extra = static_cast<std::uint32_t>(pending.attempts),
               .a = static_cast<double>(self_),
               .b = static_cast<double>(pending.to)});
    // Detach before the callback: it may reroute through this same link.
    const FailureFn on_failure = std::move(pending.on_failure);
    const sim::EndpointId to = pending.to;
    const std::string payload = std::move(pending.payload);
    pending_.erase(it);
    if (on_failure) on_failure(to, payload);
    return;
  }
  ++pending.attempts;
  ++stats_.retries;
  pending.timeout = std::min(pending.timeout * policy_.backoff,
                             policy_.max_timeout);
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kMessageRetry,
             .extra = static_cast<std::uint32_t>(pending.attempts),
             .a = static_cast<double>(self_),
             .b = static_cast<double>(pending.to)});
  network_.send(self_, pending.to, pending.payload);
  arm_timer(msgid);
}

ReliableLink::Inbound ReliableLink::on_message(const sim::Message& message) {
  if (!policy_.enabled) return Inbound::kDeliver;
  const auto document = xml::parse(message.payload);
  if (document->attribute("type") == "ack") {
    const auto msgid_text = document->attribute("msgid");
    GRIDLB_REQUIRE(msgid_text.has_value(), "ack lacks a msgid");
    const auto msgid = std::stoull(std::string(*msgid_text));
    const auto it = pending_.find(msgid);
    if (it != pending_.end()) {
      ++stats_.acks_received;
      engine_.cancel(it->second.timer);
      pending_.erase(it);
    }
    return Inbound::kConsumed;
  }
  const auto msgid_text = document->attribute("msgid");
  if (!msgid_text) return Inbound::kDeliver;  // unreliable traffic
  const auto msgid = std::stoull(std::string(*msgid_text));
  xml::Element ack("agentgrid");
  ack.set_attribute("type", "ack");
  ack.set_attribute("msgid", std::string(*msgid_text));
  ++stats_.acks_sent;
  network_.send(self_, message.from, xml::write(ack));
  if (!delivered_.insert(msgid).second) {
    ++stats_.duplicates_suppressed;
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kDuplicateSuppressed,
               .a = static_cast<double>(message.from),
               .b = static_cast<double>(self_)});
    return Inbound::kConsumed;
  }
  return Inbound::kDeliver;
}

std::vector<std::string> ReliableLink::reset() {
  std::vector<std::pair<std::uint64_t, std::string>> undelivered;
  undelivered.reserve(pending_.size());
  for (auto& [msgid, pending] : pending_) {
    engine_.cancel(pending.timer);
    undelivered.emplace_back(msgid, std::move(pending.payload));
  }
  pending_.clear();
  // Send order (serials ascend): unordered_map iteration must not leak
  // into the simulation's event order.
  std::sort(undelivered.begin(), undelivered.end());
  std::vector<std::string> payloads;
  payloads.reserve(undelivered.size());
  for (auto& [msgid, payload] : undelivered) {
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

}  // namespace gridlb::agents
