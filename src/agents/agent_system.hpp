// Construction of the whole agent hierarchy (paper Fig. 4 / Fig. 7).
//
// AgentSystem owns every piece of one grid: the simulated network, the
// PACE evaluation engine and cache, one LocalScheduler per resource, and
// one Agent per resource wired into a hierarchy of homogeneous agents.
// Completion records flow into an optional MetricsCollector.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <atomic>

#include "agents/agent.hpp"
#include "metrics/metrics.hpp"
#include "pace/hardware.hpp"
#include "sched/resource_monitor.hpp"
#include "sim/sharded_engine.hpp"

namespace gridlb::agents {

/// One grid resource and its position in the hierarchy.
struct ResourceSpec {
  std::string name;  ///< agent name, e.g. "S1"
  pace::HardwareType hardware = pace::HardwareType::kSgiOrigin2000;
  int node_count = 16;
  /// Index of the upper agent within the spec list; -1 marks the head.
  /// Parents must precede children in the list (topological order).
  int parent = -1;
};

/// Optional node-churn model applied identically to every resource.
struct ChurnConfig {
  bool enabled = false;
  double mtbf = 600.0;        ///< mean node up-time, seconds
  double mttr = 120.0;        ///< mean repair time, seconds
  double horizon = 1200.0;    ///< failures generated until this time
  double poll_period = 300.0; ///< resource-monitor query period (paper: 5 min)
  std::uint64_t seed = 7;
};

/// Loss tolerance for the agent protocol (DESIGN.md §10).  Disabled, the
/// protocol is byte-identical to the lossless one.
struct FaultToleranceConfig {
  bool enabled = false;
  /// Retry/timeout/backoff for request and result documents.
  RetryPolicy retry;
  /// An ACT entry missing this many advertisement periods is distrusted
  /// during discovery (the neighbour is suspected dead).
  int act_expiry_periods = 3;
};

/// Whole-agent process churn: crashes kill the agent's protocol state and
/// its pending queue; restarts come back with an empty ACT.  Distinct from
/// node-level ChurnConfig, which only removes processing nodes.
struct AgentChurnConfig {
  bool enabled = false;
  double mtbf = 1800.0;     ///< mean agent up-time, seconds
  double mttr = 30.0;       ///< mean process restart time, seconds
  double horizon = 600.0;   ///< crashes generated until this time
  /// Keep the hierarchy head alive (it is the portal's fallback entry).
  bool protect_head = true;
  std::uint64_t seed = 99;
};

struct SystemConfig {
  std::vector<ResourceSpec> resources;
  sched::SchedulerPolicy policy = sched::SchedulerPolicy::kGa;
  sched::FifoObjective fifo_objective = sched::FifoObjective::kMinExecution;
  sched::GaConfig ga;
  bool discovery_enabled = true;
  bool strict_failure = false;
  double pull_period = 10.0;       ///< case study: ten seconds
  bool push_on_dispatch = false;
  AdvertisementScope scope = AdvertisementScope::kOwnService;
  double network_latency = 0.05;   ///< one-way message delay, seconds
  /// Engine shards driving the simulation: 1 = the classic single-queue
  /// reference, 0 = one per hardware thread, N = exactly N (clamped to the
  /// agent count).  Results are bit-for-bit identical at any value (see
  /// DESIGN.md §13).
  int sim_shards = 1;
  std::uint64_t seed = 42;         ///< per-scheduler GA seeds derive from it
  double prediction_error = 0.0;   ///< see LocalScheduler::Config
  ChurnConfig churn;
  /// Deterministic network faults (drops, jitter, partitions).
  sim::FaultPlan fault;
  FaultToleranceConfig fault_tolerance;
  AgentChurnConfig agent_churn;
  /// Threshold-triggered queue migration, applied to every agent.
  MigrationConfig migration;
};

class AgentSystem {
 public:
  /// Builds (but does not start) the system.  `collector` may be null; if
  /// given, every resource is registered and completions are recorded.
  AgentSystem(sim::Engine& engine, const pace::ApplicationCatalogue& catalogue,
              SystemConfig config, metrics::MetricsCollector* collector);

  /// Sharded build: agents are pinned to `sharded`'s engine shards by
  /// subtree-affine assignment (contiguous DFS-preorder chunks, head on
  /// shard 0) so parent/child chatter stays intra-shard.  With a single
  /// shard this is exactly the classic constructor on `sharded.shard(0)`.
  AgentSystem(sim::ShardedEngine& sharded,
              const pace::ApplicationCatalogue& catalogue, SystemConfig config,
              metrics::MetricsCollector* collector);

  AgentSystem(const AgentSystem&) = delete;
  AgentSystem& operator=(const AgentSystem&) = delete;

  /// Arms periodic advertisement on every agent.
  void start();

  [[nodiscard]] std::size_t size() const { return agents_.size(); }
  [[nodiscard]] Agent& agent(std::size_t index);
  [[nodiscard]] const Agent& agent(std::size_t index) const;
  /// Agent by name ("S3"); nullptr for unknown names.
  [[nodiscard]] Agent* find_agent(const std::string& name);
  /// Agent by name ("S3"); throws for unknown names.
  [[nodiscard]] Agent& agent_named(const std::string& name);
  [[nodiscard]] Agent& head() { return agent(head_index_); }

  /// Receiver for tasks stranded by an agent crash (pending on the dead
  /// agent's scheduler, never started).  Typically the portal's resubmit.
  void set_stranded_sink(std::function<void(TaskId)> sink) {
    stranded_sink_ = std::move(sink);
  }

  [[nodiscard]] sim::Network& network() { return *network_; }
  [[nodiscard]] pace::CachedEvaluator& evaluator() { return *evaluator_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] std::size_t head_index() const { return head_index_; }
  /// Shard the given agent is pinned to (always 0 without sharding).
  [[nodiscard]] std::size_t shard_of(std::size_t index) const;
  /// Completions recorded so far.  In sharded mode this is the only
  /// completion signal safe to read from the drive coordinator; records
  /// themselves are buffered per shard until finalize_completions().
  [[nodiscard]] std::uint64_t completed_count() const {
    return completed_count_.load(std::memory_order_relaxed);
  }
  /// Strict-failure drops notified so far (always 0 outside strict mode).
  /// Like completed_count(), safe to read from the drive coordinator: the
  /// notifications are milestone events, so completed + dropped can form
  /// the drive goal at any shard count.
  [[nodiscard]] std::uint64_t dropped_count() const {
    return dropped_count_.load(std::memory_order_relaxed);
  }
  /// Flushes shard-buffered completion records into the collector in
  /// global execution order (their finalized lineage ranks).  Call once,
  /// after the drive finishes.  No-op in single-queue mode, where records
  /// flow into the collector directly.
  void finalize_completions();
  /// Subtree-affine shard assignment: DFS preorder of the hierarchy cut
  /// into `shards` contiguous chunks.  Exposed for tests.
  static std::vector<std::size_t> assign_shards(
      const std::vector<ResourceSpec>& resources, std::size_t shards);
  /// Per-resource monitors (empty unless churn is enabled).
  [[nodiscard]] const std::vector<std::unique_ptr<sched::ResourceMonitor>>&
  monitors() const {
    return monitors_;
  }

 private:
  struct BufferedCompletion {
    sched::CompletionRecord record;
    sim::ExecRecordPtr ticket;  ///< exec record of the completion event
  };

  void build(const pace::ApplicationCatalogue& catalogue,
             metrics::MetricsCollector* collector);
  [[nodiscard]] sim::Engine& engine_for(std::size_t index) {
    return sharded_ != nullptr ? sharded_->shard(shard_assignment_[index])
                               : engine_;
  }
  void schedule_agent_churn();
  void crash_agent(std::size_t index);

  sim::Engine& engine_;
  sim::ShardedEngine* sharded_ = nullptr;
  SystemConfig config_;
  std::function<void(TaskId)> stranded_sink_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<pace::EvaluationEngine> engine_pace_;
  std::unique_ptr<pace::CachedEvaluator> evaluator_;
  std::vector<std::unique_ptr<sched::LocalScheduler>> schedulers_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<std::unique_ptr<sched::NodeAvailability>> availability_;
  std::vector<std::unique_ptr<sched::ResourceMonitor>> monitors_;
  std::size_t head_index_ = 0;
  // Sharded-collection state (engaged only with > 1 shard): completions
  // are buffered per shard — each vector written exclusively by its
  // shard's thread — and merged into the collector afterwards.
  bool collect_sharded_ = false;
  metrics::MetricsCollector* collector_ = nullptr;
  std::vector<std::size_t> shard_assignment_;
  std::vector<std::vector<BufferedCompletion>> completion_buffers_;
  std::atomic<std::uint64_t> completed_count_{0};
  std::atomic<std::uint64_t> dropped_count_{0};
};

}  // namespace gridlb::agents
