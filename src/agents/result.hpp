// Execution-result documents.
//
// "The task execution results are sent directly back to the user from
// where the request originates" (paper §2.2); the case-study portal posts
// them to the user's email address.  In simulation the executing agent
// composes a result document and sends it over the network to the
// request's originating endpoint (the portal), which records the outcome:
//
//   <agentgrid type="result" taskid="…">
//     <application> <name>sweep3d</name> </application>
//     <execution>
//       <resource>S3</resource>
//       <start>…</start> <completion>…</completion> <deadline>…</deadline>
//     </execution>
//     <email>…</email>
//   </agentgrid>
#pragma once

#include <string>

#include "common/types.hpp"

namespace gridlb::agents {

struct ExecutionResult {
  TaskId task;
  std::string app_name;
  std::string resource_name;  ///< executing agent's name, e.g. "S3"
  SimTime start = 0.0;
  SimTime completion = 0.0;  ///< η_j
  SimTime deadline = 0.0;    ///< δ_j
  std::string email;

  [[nodiscard]] bool met_deadline() const { return completion <= deadline; }

  bool operator==(const ExecutionResult&) const = default;
};

[[nodiscard]] std::string to_xml(const ExecutionResult& result);

[[nodiscard]] ExecutionResult result_from_xml(std::string_view document);

}  // namespace gridlb::agents
