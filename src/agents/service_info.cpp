#include "agents/service_info.hpp"

#include <charconv>

#include "common/assert.hpp"

namespace gridlb::agents {

namespace {

int parse_int(const std::string& text, const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  GRIDLB_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
                 std::string("malformed integer in ") + what + ": " + text);
  return value;
}

double parse_double(const std::string& text, const char* what) {
  GRIDLB_REQUIRE(!text.empty(), std::string(what) + " is empty");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    GRIDLB_REQUIRE(false,
                   std::string("malformed number in ") + what + ": " + text);
  }
  GRIDLB_REQUIRE(consumed == text.size(),
                 std::string("trailing junk in ") + what + ": " + text);
  return value;
}

}  // namespace

std::string to_xml(const ServiceInfo& info) {
  xml::Element root("agentgrid");
  root.set_attribute("type", "service");

  xml::Element& agent = root.add_child("agent");
  agent.add_child_with_text("address", info.agent_address);
  agent.add_child_with_text("port", std::to_string(info.agent_port));

  xml::Element& local = root.add_child("local");
  local.add_child_with_text("address", info.local_address);
  local.add_child_with_text("port", std::to_string(info.local_port));
  local.add_child_with_text("type", info.hardware_type);
  local.add_child_with_text("nproc", std::to_string(info.nproc));
  for (const auto& environment : info.environments) {
    local.add_child_with_text("environment", environment);
  }
  local.add_child_with_text("freetime", std::to_string(info.freetime));

  return xml::write(root);
}

ServiceInfo service_info_from_xml(std::string_view document) {
  const auto root = xml::parse(document);
  GRIDLB_REQUIRE(root->name() == "agentgrid", "not an agentgrid document");
  GRIDLB_REQUIRE(root->attribute("type") == "service",
                 "not a service document");

  ServiceInfo info;
  const xml::Element* agent = root->child("agent");
  GRIDLB_REQUIRE(agent != nullptr, "service document lacks <agent>");
  info.agent_address = agent->child_text("address");
  info.agent_port = parse_int(agent->child_text("port"), "agent port");

  const xml::Element* local = root->child("local");
  GRIDLB_REQUIRE(local != nullptr, "service document lacks <local>");
  info.local_address = local->child_text("address");
  info.local_port = parse_int(local->child_text("port"), "local port");
  info.hardware_type = local->child_text("type");
  info.nproc = parse_int(local->child_text("nproc"), "nproc");
  for (const xml::Element* environment : local->children_named("environment")) {
    info.environments.push_back(environment->text());
  }
  info.freetime = parse_double(local->child_text("freetime"), "freetime");
  return info;
}

}  // namespace gridlb::agents
