// The user portal (paper §3.2, Fig. 6).
//
// Users submit application-execution requests destined for the grid
// through the portal; each request names the application (binary + PACE
// model), the required environment, the deadline and contact information.
// The portal is itself a network endpoint: requests travel to the chosen
// entry agent as Fig. 6 XML documents over the simulated network, exactly
// like inter-agent traffic.
#pragma once

#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "agents/result.hpp"
#include "metrics/metrics.hpp"
#include "pace/application_model.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace gridlb::agents {

class Portal {
 public:
  /// `collector` may be null.  `retry` governs reliable delivery of the
  /// request documents (and duplicate suppression of retransmitted
  /// results); disabled, traffic is byte-identical to the lossless
  /// protocol.
  Portal(sim::Engine& engine, sim::Network& network,
         const pace::ApplicationCatalogue& catalogue,
         metrics::MetricsCollector* collector, RetryPolicy retry = {});

  /// Submits one request to `entry` now.  `deadline` is absolute
  /// simulation time.  Returns the assigned task id.
  TaskId submit(Agent& entry, const std::string& app_name, SimTime deadline,
                const std::string& environment = "test",
                const std::string& email = "user@gridlb.sim");

  /// Where requests go when their entry agent is unreachable or a crash
  /// strands them: typically the (churn-protected) hierarchy head.
  void set_fallback_entry(Agent* entry) { fallback_ = entry; }

  /// Re-discovers a previously submitted task (same task id — the original
  /// submission never executed) through the fallback entry.
  void resubmit(TaskId task);

  [[nodiscard]] std::uint64_t requests_sent() const { return submitted_; }
  [[nodiscard]] std::uint64_t tasks_resubmitted() const {
    return resubmitted_;
  }
  [[nodiscard]] const LinkStats& link_stats() const { return link_.stats(); }

  /// One delivered execution result plus the user-visible turnaround
  /// (result delivery time − submission time, network latency included).
  struct Outcome {
    ExecutionResult result;
    SimTime submitted = 0.0;
    SimTime delivered = 0.0;
    [[nodiscard]] double turnaround() const { return delivered - submitted; }
  };

  /// Results received so far, delivery order.
  [[nodiscard]] const std::vector<Outcome>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] std::uint64_t results_received() const {
    return outcomes_.size();
  }
  /// Mean turnaround over delivered results (0 when none).
  [[nodiscard]] double mean_turnaround() const;

 private:
  void on_message(const sim::Message& message);
  void send_request(const Request& request, sim::EndpointId to);

  sim::Engine& engine_;
  sim::Network& network_;
  const pace::ApplicationCatalogue& catalogue_;
  metrics::MetricsCollector* collector_;
  ReliableLink link_;
  sim::EndpointId endpoint_;
  Agent* fallback_ = nullptr;
  std::uint64_t submitted_ = 0;
  std::uint64_t resubmitted_ = 0;
  std::vector<Outcome> outcomes_;
  /// Submission times by task id (dense: task ids are 1-based serials).
  std::vector<SimTime> submit_times_;
  /// What was asked for, so a stranded task can be re-discovered.
  struct Submission {
    std::string app_name;
    SimTime deadline = 0.0;
    std::string environment;
    std::string email;
  };
  std::vector<Submission> submissions_;
};

}  // namespace gridlb::agents
