#include "agents/portal.hpp"

#include "agents/request.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

Portal::Portal(sim::Engine& engine, sim::Network& network,
               const pace::ApplicationCatalogue& catalogue,
               metrics::MetricsCollector* collector, RetryPolicy retry)
    : engine_(engine),
      network_(network),
      catalogue_(catalogue),
      collector_(collector),
      link_(engine, network, retry) {
  endpoint_ = network_.register_endpoint(
      "portal.gridlb.sim", 80,
      [this](const sim::Message& message) { on_message(message); });
  link_.set_self(endpoint_);
}

TaskId Portal::submit(Agent& entry, const std::string& app_name,
                      SimTime deadline, const std::string& environment,
                      const std::string& email) {
  GRIDLB_REQUIRE(catalogue_.find(app_name) != nullptr,
                 "unknown application: " + app_name);
  GRIDLB_REQUIRE(deadline >= engine_.now(),
                 "deadline lies before submission time");

  Request request;
  request.task = TaskId(++submitted_);
  request.app_name = app_name;
  request.binary_file = "/gridlb/binary/" + app_name;
  request.input_file = "/gridlb/binary/" + app_name + ".input";
  request.model_name = "/gridlb/model/" + app_name;
  request.environment = environment;
  request.deadline = deadline;
  request.email = email;
  request.origin = endpoint_;

  submit_times_.resize(static_cast<std::size_t>(submitted_) + 1, kNoTime);
  submit_times_[static_cast<std::size_t>(submitted_)] = engine_.now();
  submissions_.resize(static_cast<std::size_t>(submitted_) + 1);
  submissions_[static_cast<std::size_t>(submitted_)] =
      Submission{app_name, deadline, environment, email};

  if (collector_ != nullptr) collector_->on_submission(engine_.now());
  // Live arrival counter for the continuous sampler; the end-of-run
  // `portal.requests_submitted` total stays authoritative.
  if (auto* reg = obs::registry()) reg->counter("flow.submitted").add(1);
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kRequestSubmitted,
             .task = request.task.value(),
             .resource = entry.id().value(),
             .a = deadline});
  send_request(request, entry.endpoint());
  return request.task;
}

void Portal::resubmit(TaskId task) {
  const auto value = static_cast<std::size_t>(task.value());
  GRIDLB_REQUIRE(task.valid() && value < submissions_.size(),
                 "resubmit of a task never submitted: " + task.str());
  GRIDLB_REQUIRE(fallback_ != nullptr,
                 "resubmission needs a fallback entry agent");
  const Submission& original = submissions_[value];

  // Same task id — the stranded submission never executed, so this is a
  // re-discovery, not a new task (the collector saw the submission once).
  Request request;
  request.task = task;
  request.app_name = original.app_name;
  request.binary_file = "/gridlb/binary/" + original.app_name;
  request.input_file = "/gridlb/binary/" + original.app_name + ".input";
  request.model_name = "/gridlb/model/" + original.app_name;
  request.environment = original.environment;
  request.deadline = original.deadline;
  request.email = original.email;
  request.origin = endpoint_;

  ++resubmitted_;
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kTaskResubmitted,
             .task = task.value(),
             .resource = fallback_->id().value(),
             .a = original.deadline});
  log::warn("portal t=", engine_.now(), " resubmitting task ", task.str(),
            " through ", fallback_->name());
  send_request(request, fallback_->endpoint());
}

void Portal::send_request(const Request& request, sim::EndpointId to) {
  const TaskId task = request.task;
  link_.send(to, to_xml(request),
             [this, task](sim::EndpointId, const std::string&) {
               // Entry unreachable after the full retry budget: route the
               // task through the fallback instead of black-holing it.
               if (fallback_ != nullptr) resubmit(task);
             });
}

void Portal::on_message(const sim::Message& message) {
  if (link_.on_message(message) == ReliableLink::Inbound::kConsumed) return;
  // The portal only ever receives result documents ("the task execution
  // results are sent directly back to the user").
  const auto document = xml::parse(message.payload);
  if (document->attribute("type") != "result") {
    log::warn("portal ignoring unexpected ", message.payload.size(),
              "-byte message");
    return;
  }
  Outcome outcome;
  outcome.result = result_from_xml(message.payload);
  outcome.delivered = engine_.now();
  const auto task_value = outcome.result.task.value();
  if (outcome.result.task.valid() && task_value < submit_times_.size()) {
    outcome.submitted = submit_times_[static_cast<std::size_t>(task_value)];
  }
  outcomes_.push_back(std::move(outcome));
}

double Portal::mean_turnaround() const {
  if (outcomes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& outcome : outcomes_) sum += outcome.turnaround();
  return sum / static_cast<double>(outcomes_.size());
}

}  // namespace gridlb::agents
