#include "agents/portal.hpp"

#include "agents/request.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

Portal::Portal(sim::Engine& engine, sim::Network& network,
               const pace::ApplicationCatalogue& catalogue,
               metrics::MetricsCollector* collector)
    : engine_(engine),
      network_(network),
      catalogue_(catalogue),
      collector_(collector) {
  endpoint_ = network_.register_endpoint(
      "portal.gridlb.sim", 80,
      [this](const sim::Message& message) { on_message(message); });
}

TaskId Portal::submit(Agent& entry, const std::string& app_name,
                      SimTime deadline, const std::string& environment,
                      const std::string& email) {
  GRIDLB_REQUIRE(catalogue_.find(app_name) != nullptr,
                 "unknown application: " + app_name);
  GRIDLB_REQUIRE(deadline >= engine_.now(),
                 "deadline lies before submission time");

  Request request;
  request.task = TaskId(++submitted_);
  request.app_name = app_name;
  request.binary_file = "/gridlb/binary/" + app_name;
  request.input_file = "/gridlb/binary/" + app_name + ".input";
  request.model_name = "/gridlb/model/" + app_name;
  request.environment = environment;
  request.deadline = deadline;
  request.email = email;
  request.origin = endpoint_;

  submit_times_.resize(static_cast<std::size_t>(submitted_) + 1, kNoTime);
  submit_times_[static_cast<std::size_t>(submitted_)] = engine_.now();

  if (collector_ != nullptr) collector_->on_submission(engine_.now());
  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kRequestSubmitted,
             .task = request.task.value(),
             .resource = entry.id().value(),
             .a = deadline});
  network_.send(endpoint_, entry.endpoint(), to_xml(request));
  return request.task;
}

void Portal::on_message(const sim::Message& message) {
  // The portal only ever receives result documents ("the task execution
  // results are sent directly back to the user").
  const auto document = xml::parse(message.payload);
  if (document->attribute("type") != "result") {
    log::warn("portal ignoring unexpected ", message.payload.size(),
              "-byte message");
    return;
  }
  Outcome outcome;
  outcome.result = result_from_xml(message.payload);
  outcome.delivered = engine_.now();
  const auto task_value = outcome.result.task.value();
  if (outcome.result.task.valid() && task_value < submit_times_.size()) {
    outcome.submitted = submit_times_[static_cast<std::size_t>(task_value)];
  }
  outcomes_.push_back(std::move(outcome));
}

double Portal::mean_turnaround() const {
  if (outcomes_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& outcome : outcomes_) sum += outcome.turnaround();
  return sum / static_cast<double>(outcomes_.size());
}

}  // namespace gridlb::agents
