// Agent Capability Table (ACT).
//
// Each agent maintains "a set of service information for the other agents
// in the system" — in this implementation, exactly its neighbours (upper
// and lower agents), refreshed by the advertisement process.  Entries are
// timestamped so staleness can be measured (the advertisement ablation).
#pragma once

#include <optional>
#include <vector>

#include "agents/service_info.hpp"
#include "common/types.hpp"

namespace gridlb::agents {

class CapabilityTable {
 public:
  struct Entry {
    AgentId agent;       ///< the resource the service information describes
    AgentId via;         ///< the neighbour that advertised it (routing hop)
    ServiceInfo info;
    SimTime updated_at = 0.0;
  };

  /// Inserts or refreshes the entry for `agent`.  `via` names the
  /// neighbour the advertisement arrived from; for a neighbour's own
  /// service, `via == agent`.
  void upsert(AgentId agent, ServiceInfo info, SimTime now, AgentId via);
  /// Convenience for direct (neighbour-own) advertisements.
  void upsert(AgentId agent, ServiceInfo info, SimTime now);

  /// Optimistically advances the cached freetime of `agent` by `seconds`.
  ///
  /// Advertisements only refresh every pull period; without local
  /// bookkeeping an agent would dispatch every request inside one
  /// staleness window to the same "best" neighbour.  After forwarding a
  /// task, the sender bumps its own estimate of the target's backlog by
  /// the task's expected makespan contribution, so consecutive decisions
  /// spread load.  The next real advertisement overwrites the estimate.
  void advance_freetime(AgentId agent, SimTime now, double seconds);

  /// Entry for `agent`, if any advertisement has been received.
  [[nodiscard]] const Entry* find(AgentId agent) const;

  /// Removes every entry describing `agent` or routed through it — the
  /// reaction to a suspected-dead neighbour (retry budget exhausted).
  /// Returns the number of entries dropped.
  std::size_t erase_involving(AgentId agent);

  /// True when the entry is too old to trust: fault-tolerant discovery
  /// skips entries not refreshed within `max_age` seconds (`max_age <= 0`
  /// trusts everything, the pre-fault behaviour).
  [[nodiscard]] static bool expired(const Entry& entry, SimTime now,
                                    double max_age) {
    return max_age > 0.0 && now - entry.updated_at > max_age;
  }

  /// All entries, insertion order.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Age of the oldest entry at `now` (0 when empty).
  [[nodiscard]] double max_staleness(SimTime now) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace gridlb::agents
