// A grid agent (paper §3).
//
// Each agent provides the high-level representation of one local grid
// resource and cooperates with its *neighbours only* — its upper agent and
// its lower agents in the homogeneous hierarchy — through two activities:
//
//  * Service advertisement — by default each agent pulls service
//    information from its upper and lower agents periodically (every ten
//    seconds in the case study); an event-triggered push mode exists for
//    the advertisement-strategy ablation.  Advertisements land in the
//    agent capability table (ACT).
//
//  * Service discovery — on request arrival "its own service is evaluated
//    first.  If the requirement can be met locally, the discovery ends
//    successfully.  Otherwise service information from both upper and
//    lower agents is evaluated and the request dispatched to the agent
//    which is able to provide the best requirement/resource match.  If no
//    service can meet the requirement, the request is submitted to the
//    upper agent."  Matchmaking uses eq. 10: for a homogeneous n-node
//    resource the PACE evaluation function is called n times and
//    η_r = ω + min_k t_x(k, σ_r); the resource qualifies iff η_r ≤ δ_r.
//
// At the head of the hierarchy an unmatched request means "a request for
// computing resource which is not supported by the available grid".  The
// case study nevertheless executes all 600 tasks, so the default policy
// dispatches such requests to the best-estimate resource anyway (marked
// `final` so the recipient executes it without further discovery);
// `strict_failure` restores the paper's literal unsuccessful termination.
//
// All inter-agent traffic travels as Fig. 5 / Fig. 6 XML documents through
// the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "agents/act.hpp"
#include "agents/reliable.hpp"
#include "agents/request.hpp"
#include "agents/result.hpp"
#include "agents/service_info.hpp"
#include "pace/application_model.hpp"
#include "pace/evaluation_engine.hpp"
#include "sched/local_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace gridlb::agents {

/// How much service information an agent shares when advertising.
enum class AdvertisementScope {
  /// Each agent advertises only its own service (the case study's setup).
  kOwnService,
  /// Each agent also relays its capability-table entries, split-horizon
  /// (never back to the neighbour they came from).  Discovery can then
  /// route requests to non-neighbour resources through the neighbour that
  /// advertised them — wider reach for more advertisement traffic.
  kTransitive,
};

/// Threshold-triggered migration of *queued* (never running) tasks
/// (ROADMAP item 3, DESIGN.md §17).  When an advertisement shows a direct
/// neighbour far idler than the own backlog, up to `max_batch` still-
/// pending tasks are cancelled on the local scheduler and re-forwarded to
/// that neighbour as final dispatches.  Migration documents are ordinary
/// request documents riding the ReliableLink, so they survive message
/// drops (retries) and churn (crash strands them back to the portal).
struct MigrationConfig {
  bool enabled = false;
  /// Own backlog (scheduler freetime − now, seconds) above which the agent
  /// starts looking for a migration target.  90 s is tuned on the
  /// ablation_migration sweep: 120 leaves hot queues standing, 60 thrashes
  /// (re-homed tasks bounce between agents and balance degrades).
  double overload_threshold = 90.0;
  /// Advertised neighbour backlog below which it qualifies as a target.
  double underload_threshold = 30.0;
  /// Queued tasks re-homed per qualifying advertisement, newest first.
  int max_batch = 4;
};

struct AgentConfig {
  AgentId id;
  std::string name;     ///< "S1".."S12" in the case study
  std::string address;  ///< identity tuple used in the XML documents
  int port = 0;
  /// Experiments 1–2 disable the agent mechanism: every request executes
  /// on the resource it arrived at.
  bool discovery_enabled = true;
  /// Literal paper semantics at the hierarchy head (drop unmatched
  /// requests) instead of best-effort dispatch.
  bool strict_failure = false;
  /// Period of the advertisement pull (<= 0 disables pulling).
  double pull_period = 10.0;
  /// Push own service info to neighbours after every local dispatch
  /// (event-triggered advertisement, for the ablation bench).
  bool push_on_dispatch = false;
  AdvertisementScope scope = AdvertisementScope::kOwnService;
  /// Discovery hop budget; exceeding it forces best-effort dispatch (or a
  /// drop under strict_failure).  Transitive routing can legitimately
  /// revisit an agent, so the budget — not the visited set — bounds it.
  int max_hops = 32;
  /// Reliable delivery of request/result documents (DESIGN.md §10).
  /// Disabled: sends are byte-identical to the pre-fault protocol.
  RetryPolicy retry;
  /// ACT entries older than this many seconds are distrusted during
  /// discovery (a neighbour that stopped advertising is suspected dead).
  /// <= 0 trusts every entry forever — the pre-fault behaviour.
  double act_expiry = 0.0;
  /// Queue migration (off by default: the protocol is byte-identical to
  /// the non-migrating one when disabled).
  MigrationConfig migration;
};

/// Counters for the discovery/advertisement behaviour of one agent.
struct AgentStats {
  std::uint64_t requests_received = 0;   ///< arrivals incl. forwarded ones
  std::uint64_t dispatched_local = 0;    ///< executed on the own resource
  std::uint64_t forwarded_match = 0;     ///< sent to the best-match neighbour
  std::uint64_t forwarded_up = 0;        ///< escalated to the upper agent
  std::uint64_t fallback_dispatches = 0; ///< head-of-hierarchy best effort
  std::uint64_t dropped = 0;             ///< strict-mode failures
  std::uint64_t pulls_sent = 0;
  std::uint64_t advertisements_received = 0;
  std::uint64_t hops_accumulated = 0;    ///< Σ hops of locally-dispatched reqs
  std::uint64_t zero_hop_dispatches = 0; ///< executed where they entered
  std::uint64_t results_sent = 0;        ///< result documents posted back
  // Fault handling.
  std::uint64_t crashes = 0;             ///< agent-churn process failures
  std::uint64_t restarts = 0;
  std::uint64_t reroutes = 0;            ///< forwards rerouted after retry
                                         ///  exhaustion (neighbour suspected
                                         ///  dead)
  std::uint64_t migrations = 0;          ///< queued tasks re-homed to an
                                         ///  idler neighbour
};

class Agent {
 public:
  Agent(sim::Engine& engine, sim::Network& network,
        pace::CachedEvaluator& evaluator,
        const pace::ApplicationCatalogue& catalogue, AgentConfig config,
        sched::LocalScheduler& scheduler);

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Topology wiring; must be complete before `start()`.
  void set_parent(Agent* parent);
  void add_child(Agent* child);

  /// Arms the periodic advertisement pull.
  void start();

  /// Agent-churn process failure: the endpoint goes deaf, the pull timer
  /// and in-flight retries die, and the ACT plus reply-routing state is
  /// lost.  Tasks still *pending* (not yet started) on the local scheduler
  /// die with the process and are returned so the portal can re-discover
  /// them; tasks already executing run to completion on the resource.
  [[nodiscard]] std::vector<TaskId> crash();

  /// Recovery: the endpoint comes back up and advertisement restarts from
  /// an empty ACT.
  void restart();

  [[nodiscard]] bool alive() const { return alive_; }

  /// Entry point for requests (from the portal, or locally generated).
  void receive_request(Request request, bool final_dispatch = false);

  /// Observer for strict-failure drops.  The notification is deferred by
  /// one network latency as a *milestone* event, so the drive goal can
  /// count it like a completion and stop on the same event at any shard
  /// count (DESIGN.md §13).
  void set_drop_sink(std::function<void(TaskId)> sink) {
    drop_sink_ = std::move(sink);
  }

  /// Completion notification from the local scheduler; posts the
  /// execution result back to the request's originating endpoint ("the
  /// task execution results are sent directly back to the user from where
  /// the request originates").
  void on_task_completed(const sched::CompletionRecord& record);

  [[nodiscard]] const AgentConfig& config() const { return config_; }
  [[nodiscard]] AgentId id() const { return config_.id; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] Agent* parent() const { return parent_; }
  [[nodiscard]] const std::vector<Agent*>& children() const {
    return children_;
  }
  [[nodiscard]] sim::EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] const LinkStats& link_stats() const { return link_.stats(); }
  [[nodiscard]] const CapabilityTable& act() const { return act_; }
  [[nodiscard]] sched::LocalScheduler& scheduler() const { return scheduler_; }

  /// Current Fig. 5 snapshot of the own resource.
  [[nodiscard]] ServiceInfo service_snapshot() const;

  /// Estimated completion time η_r (eq. 10) of `request` on the resource
  /// described by `info`; nullopt when the environment is unsupported or
  /// the application model is unknown.
  [[nodiscard]] std::optional<SimTime> estimate_completion(
      const ServiceInfo& info, const Request& request) const;

  /// Expected makespan contribution of `request` on the resource described
  /// by `info` (execution time × nodes / nproc at the most efficient
  /// allocation); used for the optimistic ACT bookkeeping after a forward.
  [[nodiscard]] std::optional<double> expected_occupancy(
      const ServiceInfo& info, const Request& request) const;

 private:
  void on_message(const sim::Message& message);
  void handle_pull(const sim::Message& message);
  void handle_advertisement(const sim::Message& message);
  void handle_send_failure(sim::EndpointId to, const std::string& payload);
  void pull_from_neighbours();
  void push_to_neighbours();
  void dispatch_local(Request request);
  void forward(Request request, Agent* to, bool final_dispatch);
  void note_strict_drop(const Request& request, std::uint64_t hops);
  /// Migration trigger, run after each advertisement upsert: when this
  /// agent is overloaded and the freshly described *direct neighbour* is
  /// underloaded, re-home up to migration.max_batch still-queued tasks.
  void maybe_migrate(AgentId described);
  [[nodiscard]] std::optional<AgentId> neighbour_for_endpoint(
      sim::EndpointId endpoint) const;
  [[nodiscard]] Agent* neighbour_by_id(AgentId id) const;
  [[nodiscard]] bool already_visited(const Request& request,
                                     AgentId agent) const;

  sim::Engine& engine_;
  sim::Network& network_;
  pace::CachedEvaluator& evaluator_;
  const pace::ApplicationCatalogue& catalogue_;
  AgentConfig config_;
  sched::LocalScheduler& scheduler_;
  ReliableLink link_;
  bool alive_ = true;
  sim::EventId pull_timer_ = 0;
  sim::EndpointId endpoint_ = 0;
  Agent* parent_ = nullptr;
  std::vector<Agent*> children_;
  CapabilityTable act_;
  AgentStats stats_;
  /// Reply routing for locally-executing tasks (task -> origin, email).
  struct PendingResult {
    TaskId task;
    sim::EndpointId origin;
    std::string email;
  };
  std::vector<PendingResult> pending_results_;
  /// Retained copies of locally queued requests (migration only): filled
  /// on dispatch, erased on completion/cancel/crash.  A copy whose task
  /// already started is detected lazily by LocalScheduler::cancel failing.
  std::vector<Request> queue_copies_;
  std::function<void(TaskId)> drop_sink_;
};

}  // namespace gridlb::agents
