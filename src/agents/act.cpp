#include "agents/act.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gridlb::agents {

void CapabilityTable::upsert(AgentId agent, ServiceInfo info, SimTime now,
                             AgentId via) {
  GRIDLB_REQUIRE(agent.valid(), "ACT entries need a valid agent id");
  GRIDLB_REQUIRE(via.valid(), "ACT entries need a valid via agent");
  for (auto& entry : entries_) {
    if (entry.agent == agent) {
      entry.via = via;
      entry.info = std::move(info);
      entry.updated_at = now;
      return;
    }
  }
  entries_.push_back(Entry{agent, via, std::move(info), now});
}

void CapabilityTable::upsert(AgentId agent, ServiceInfo info, SimTime now) {
  upsert(agent, std::move(info), now, agent);
}

void CapabilityTable::advance_freetime(AgentId agent, SimTime now,
                                       double seconds) {
  GRIDLB_REQUIRE(seconds >= 0.0, "cannot rewind a freetime estimate");
  for (auto& entry : entries_) {
    if (entry.agent == agent) {
      entry.info.freetime = std::max(entry.info.freetime, now) + seconds;
      return;
    }
  }
}

std::size_t CapabilityTable::erase_involving(AgentId agent) {
  const auto first = std::remove_if(
      entries_.begin(), entries_.end(), [agent](const Entry& entry) {
        return entry.agent == agent || entry.via == agent;
      });
  const auto removed = static_cast<std::size_t>(entries_.end() - first);
  entries_.erase(first, entries_.end());
  return removed;
}

const CapabilityTable::Entry* CapabilityTable::find(AgentId agent) const {
  for (const auto& entry : entries_) {
    if (entry.agent == agent) return &entry;
  }
  return nullptr;
}

double CapabilityTable::max_staleness(SimTime now) const {
  double staleness = 0.0;
  for (const auto& entry : entries_) {
    staleness = std::max(staleness, now - entry.updated_at);
  }
  return staleness;
}

}  // namespace gridlb::agents
