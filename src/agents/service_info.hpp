// Service information documents (paper Fig. 5).
//
// A local scheduler periodically publishes a snapshot of its resource to
// its agent, which advertises it through the hierarchy:
//
//   <agentgrid type="service">
//     <agent>  <address>…</address> <port>…</port> </agent>
//     <local>  <address>…</address> <port>…</port>
//              <type>SunUltra10</type> <nproc>16</nproc>
//              <environment>mpi</environment> …
//              <freetime>…</freetime> </local>
//   </agentgrid>
//
// One deviation from Fig. 5: the paper encodes freetime as a calendar date
// string ("Sun Nov 15 04:43:10 2001"); in simulation the natural epoch is
// the virtual clock, so freetime is serialised as decimal sim-seconds.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "xml/xml.hpp"

namespace gridlb::agents {

struct ServiceInfo {
  // Identity of the owning agent (address/port tuple, as in Fig. 5).
  std::string agent_address;
  int agent_port = 0;
  // Identity and description of the local grid resource.
  std::string local_address;
  int local_port = 0;
  std::string hardware_type;  ///< e.g. "SunUltra10"
  int nproc = 0;
  std::vector<std::string> environments;  ///< "mpi", "pvm", "test"
  /// Earliest (approximate) absolute time the resource's processors become
  /// available for more tasks — the advertised GA makespan.
  SimTime freetime = 0.0;

  bool operator==(const ServiceInfo&) const = default;
};

/// Serialises to the Fig. 5 document shape.
[[nodiscard]] std::string to_xml(const ServiceInfo& info);

/// Parses a Fig. 5 document; throws xml::ParseError / AssertionError on
/// malformed or incomplete input.
[[nodiscard]] ServiceInfo service_info_from_xml(std::string_view document);

}  // namespace gridlb::agents
