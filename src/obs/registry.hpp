// Runtime metrics registry: named counters, gauges and histograms.
//
// The registry is the queryable complement to the trace recorder: where
// the trace answers "what happened, in order", the registry answers "how
// much / how often / how spread".  Instrumentation sites observe samples
// live (discovery hops per request, advertisement staleness at use, GA
// generations-to-converge, queue depth) and the experiment harness folds
// in end-of-run aggregates (cache hit rate, per-shard occupancy, network
// traffic) so the snapshot is consistent with Table 3's statistics.
//
// Snapshots render as an aligned text table or as a JSON document; both
// list every instrument in name order so diffs between runs are stable.
//
// Thread-safety: instrument lookup takes the registry mutex; Counter and
// Gauge updates are atomic; Histogram::observe takes a per-histogram
// mutex.  The hot simulator paths observe at most a few samples per
// scheduling decision, so contention is negligible.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gridlb::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `bounds` are the upper edges of the finite buckets, strictly
  /// increasing; an implicit +inf bucket catches the rest.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::vector<double> bounds;        ///< finite upper edges
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +inf)
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

/// Structured point-in-time view of a whole registry, every instrument in
/// name order.  This is what the continuous sampler (sampler.hpp) diffs
/// between ticks to turn monotonic counters into per-interval deltas.
struct RegistrySample {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates.  Instrument references stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are used only when the histogram does not exist yet; later
  /// calls with a different spec return the existing instrument.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Aligned human-readable table, one instrument per line.
  [[nodiscard]] std::string text_snapshot() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} — valid JSON
  /// (non-finite values are serialised as null).
  [[nodiscard]] std::string json_snapshot() const;
  /// Structured snapshot in name order (see RegistrySample).
  [[nodiscard]] RegistrySample sample() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

namespace detail {
inline std::atomic<MetricsRegistry*> g_registry{nullptr};
void install_registry(MetricsRegistry* registry);
}  // namespace detail

/// The active registry, or null when metrics are disabled.  Sites guard
/// with one branch: `if (auto* reg = obs::registry()) ...`.
[[nodiscard]] inline MetricsRegistry* registry() {
  return detail::g_registry.load(std::memory_order_acquire);
}

}  // namespace gridlb::obs
