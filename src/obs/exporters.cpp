#include "obs/exporters.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace gridlb::obs {

namespace {

constexpr int kGridPid = 1;
constexpr int kGaPid = 2;

void number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

std::string resource_label(const std::vector<std::string>& names,
                           std::uint64_t id) {
  if (id >= 1 && id <= names.size()) {
    return names[static_cast<std::size_t>(id - 1)];
  }
  return "R" + std::to_string(id);
}

void metadata(std::ostringstream& os, const char* what, int pid, int tid,
              const std::string& name, bool& first) {
  if (!first) os << ',';
  first = false;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
}

/// Microsecond timestamp of a virtual-time event.
double ts_us(SimTime at) { return at * 1e6; }

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snapshot,
                              const std::vector<std::string>& resource_names) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Name the tracks for every resource that appears in the snapshot.
  std::vector<std::uint64_t> seen;
  for (const TraceEvent& event : snapshot.events) {
    if (event.resource == 0) continue;
    if (std::find(seen.begin(), seen.end(), event.resource) != seen.end()) {
      continue;
    }
    seen.push_back(event.resource);
  }
  std::sort(seen.begin(), seen.end());
  metadata(os, "process_name", kGridPid, 0, "grid resources", first);
  metadata(os, "process_name", kGaPid, 0, "ga scheduling", first);
  for (const std::uint64_t id : seen) {
    const std::string label = resource_label(resource_names, id);
    const int tid = static_cast<int>(id);
    metadata(os, "thread_name", kGridPid, tid, label, first);
    metadata(os, "thread_name", kGaPid, tid, label + " GA", first);
  }

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for (const TraceEvent& event : snapshot.events) {
    const int tid = static_cast<int>(event.resource);
    switch (event.kind) {
      case EventKind::kTaskSpan: {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"task " << event.task << "\",\"cat\":\"task\","
           << "\"ph\":\"X\",\"pid\":" << kGridPid << ",\"tid\":" << tid
           << ",\"ts\":";
        number(os, ts_us(event.a));
        os << ",\"dur\":";
        number(os, ts_us(event.b - event.a));
        os << ",\"args\":{\"task\":" << event.task
           << ",\"nodes\":" << event.extra << "}}";
        break;
      }
      case EventKind::kGaGeneration: {
        // One counter sample per generation; the +1 µs-per-generation
        // offset spreads an (instantaneous) GA run into a visible curve.
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\""
           << resource_label(resource_names, event.resource)
           << " ga cost\",\"ph\":\"C\",\"pid\":" << kGaPid
           << ",\"tid\":" << tid << ",\"ts\":";
        number(os, ts_us(event.at) + event.extra);
        os << ",\"args\":{\"best\":";
        number(os, event.a);
        os << ",\"mean\":";
        number(os, event.b);
        os << "}}";
        break;
      }
      case EventKind::kQueueDepth: {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\""
           << resource_label(resource_names, event.resource)
           << " queue\",\"ph\":\"C\",\"pid\":" << kGridPid
           << ",\"tid\":" << tid << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"depth\":";
        number(os, event.a);
        os << "}}";
        break;
      }
      case EventKind::kCacheHit:
        ++cache_hits;
        break;
      case EventKind::kCacheMiss:
        ++cache_misses;
        break;
      default: {
        // Everything else renders as a thread-scoped instant on the
        // involved resource's track (GA run markers on the GA process).
        const bool ga = event.kind == EventKind::kGaRunStarted ||
                        event.kind == EventKind::kGaRunFinished;
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << kind_name(event.kind)
           << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
           << (ga ? kGaPid : kGridPid) << ",\"tid\":" << tid << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"task\":" << event.task << ",\"a\":";
        number(os, event.a);
        os << ",\"b\":";
        number(os, event.b);
        os << ",\"extra\":" << event.extra << "}}";
        break;
      }
    }
  }
  os << "],\"otherData\":{\"recorded\":" << snapshot.recorded
     << ",\"dropped\":" << snapshot.dropped
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses << "}}";
  return os.str();
}

std::string events_jsonl(const TraceSnapshot& snapshot) {
  std::ostringstream os;
  for (const TraceEvent& event : snapshot.events) {
    os << "{\"t\":";
    number(os, event.at);
    os << ",\"kind\":\"" << kind_name(event.kind) << '"';
    if (event.task != 0) os << ",\"task\":" << event.task;
    if (event.resource != 0) os << ",\"resource\":" << event.resource;
    os << ",\"a\":";
    number(os, event.a);
    os << ",\"b\":";
    number(os, event.b);
    os << ",\"extra\":" << event.extra << "}\n";
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << contents;
  if (!out) {
    log::warn("failed to write ", path);
    return false;
  }
  return true;
}

}  // namespace gridlb::obs
