#include "obs/exporters.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace gridlb::obs {

namespace {

constexpr int kGridPid = 1;
constexpr int kGaPid = 2;
// Per-shard engine telemetry counters (kShardSample) live in their own
// process so Perfetto shows one "engine shards" group with a counter
// track per shard.
constexpr int kShardsPid = 3;
// Sharded runs: each engine shard renders as its own process so the
// per-shard interleaving is visible at a glance.  Shard stamps are
// 1-based (0 = unsharded), so shard index s maps to pid 10 + s.
constexpr int kShardPidBase = 10;

/// Grid-side pid: the executing shard's process on sharded runs, the
/// classic single "grid resources" process otherwise.  Events recorded
/// off-engine (shard stamp 0) stay on the classic pids either way, which
/// also keeps an unsharded run's output byte-identical to before.
int grid_pid(const TraceEvent& event) {
  return event.shard != 0 ? kShardPidBase + event.shard - 1 : kGridPid;
}
int ga_pid(const TraceEvent& event) {
  return event.shard != 0 ? kShardPidBase + event.shard - 1 : kGaPid;
}
/// Inside a shard process the grid and GA tracks share one tid space;
/// GA tracks are offset so they stay distinct threads.
int ga_tid(const TraceEvent& event) {
  const int tid = static_cast<int>(event.resource);
  return event.shard != 0 ? 1000 + tid : tid;
}

void number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

std::string resource_label(const std::vector<std::string>& names,
                           std::uint64_t id) {
  if (id >= 1 && id <= names.size()) {
    return names[static_cast<std::size_t>(id - 1)];
  }
  return "R" + std::to_string(id);
}

void metadata(std::ostringstream& os, const char* what, int pid, int tid,
              const std::string& name, bool& first) {
  if (!first) os << ',';
  first = false;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
}

[[nodiscard]] bool is_ga_kind(EventKind kind) {
  return kind == EventKind::kGaRunStarted ||
         kind == EventKind::kGaGeneration ||
         kind == EventKind::kGaRunFinished;
}

/// Microsecond timestamp of a virtual-time event.
double ts_us(SimTime at) { return at * 1e6; }

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snapshot,
                              const std::vector<std::string>& resource_names) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Name the tracks for every resource that appears in the snapshot, and
  // collect the shard layout of a sharded run: which shard stamps occur,
  // and which (shard, resource) tracks need names.
  std::vector<std::uint64_t> seen;
  std::set<int> shard_stamps;
  std::set<int> sample_stamps;
  std::set<std::pair<int, std::uint64_t>> shard_tracks;  // grid-side
  std::set<std::pair<int, std::uint64_t>> shard_ga_tracks;
  for (const TraceEvent& event : snapshot.events) {
    if (event.kind == EventKind::kShardSample) {
      sample_stamps.insert(static_cast<int>(event.extra));
      continue;
    }
    if (event.shard != 0) {
      shard_stamps.insert(event.shard);
      if (event.resource != 0) {
        (is_ga_kind(event.kind) ? shard_ga_tracks : shard_tracks)
            .emplace(event.shard, event.resource);
      }
    }
    if (event.resource == 0) continue;
    if (std::find(seen.begin(), seen.end(), event.resource) != seen.end()) {
      continue;
    }
    seen.push_back(event.resource);
  }
  std::sort(seen.begin(), seen.end());
  metadata(os, "process_name", kGridPid, 0, "grid resources", first);
  metadata(os, "process_name", kGaPid, 0, "ga scheduling", first);
  for (const std::uint64_t id : seen) {
    const std::string label = resource_label(resource_names, id);
    const int tid = static_cast<int>(id);
    metadata(os, "thread_name", kGridPid, tid, label, first);
    metadata(os, "thread_name", kGaPid, tid, label + " GA", first);
  }
  // Sharded layout (empty on unsharded runs, leaving the classic output
  // byte-identical): one process per engine shard, plus the "engine
  // shards" counter process when sampler telemetry is present.
  for (const int stamp : shard_stamps) {
    metadata(os, "process_name", kShardPidBase + stamp - 1, 0,
             "shard " + std::to_string(stamp - 1), first);
  }
  for (const auto& [stamp, resource] : shard_tracks) {
    metadata(os, "thread_name", kShardPidBase + stamp - 1,
             static_cast<int>(resource), resource_label(resource_names, resource),
             first);
  }
  for (const auto& [stamp, resource] : shard_ga_tracks) {
    metadata(os, "thread_name", kShardPidBase + stamp - 1,
             1000 + static_cast<int>(resource),
             resource_label(resource_names, resource) + " GA", first);
  }
  if (!sample_stamps.empty()) {
    metadata(os, "process_name", kShardsPid, 0, "engine shards", first);
    for (const int index : sample_stamps) {
      metadata(os, "thread_name", kShardsPid, index + 1,
               "shard " + std::to_string(index), first);
    }
  }

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for (const TraceEvent& event : snapshot.events) {
    const int tid = static_cast<int>(event.resource);
    switch (event.kind) {
      case EventKind::kTaskSpan: {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"task " << event.task << "\",\"cat\":\"task\","
           << "\"ph\":\"X\",\"pid\":" << grid_pid(event) << ",\"tid\":" << tid
           << ",\"ts\":";
        number(os, ts_us(event.a));
        os << ",\"dur\":";
        number(os, ts_us(event.b - event.a));
        os << ",\"args\":{\"task\":" << event.task
           << ",\"nodes\":" << event.extra << "}}";
        break;
      }
      case EventKind::kGaGeneration: {
        // One counter sample per generation; the +1 µs-per-generation
        // offset spreads an (instantaneous) GA run into a visible curve.
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\""
           << resource_label(resource_names, event.resource)
           << " ga cost\",\"ph\":\"C\",\"pid\":" << ga_pid(event)
           << ",\"tid\":" << ga_tid(event) << ",\"ts\":";
        number(os, ts_us(event.at) + event.extra);
        os << ",\"args\":{\"best\":";
        number(os, event.a);
        os << ",\"mean\":";
        number(os, event.b);
        os << "}}";
        break;
      }
      case EventKind::kQueueDepth: {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\""
           << resource_label(resource_names, event.resource)
           << " queue\",\"ph\":\"C\",\"pid\":" << grid_pid(event)
           << ",\"tid\":" << tid << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"depth\":";
        number(os, event.a);
        os << "}}";
        break;
      }
      case EventKind::kCacheHit:
        ++cache_hits;
        break;
      case EventKind::kCacheMiss:
        ++cache_misses;
        break;
      case EventKind::kShardSample: {
        // Per-shard engine telemetry: two counter tracks per shard under
        // the "engine shards" process (events executed and barrier-wait
        // milliseconds per sampling interval).  `extra` carries the
        // 0-based shard index being described — the recorder stamps
        // `.shard` with whichever shard ran the sampler tick instead.
        const int index = static_cast<int>(event.extra);
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"shard " << index
           << " events\",\"ph\":\"C\",\"pid\":" << kShardsPid
           << ",\"tid\":" << index + 1 << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"events\":";
        number(os, event.a);
        os << "}},{\"name\":\"shard " << index
           << " barrier_ms\",\"ph\":\"C\",\"pid\":" << kShardsPid
           << ",\"tid\":" << index + 1 << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"ms\":";
        number(os, event.b / 1e6);
        os << "}}";
        break;
      }
      default: {
        // Everything else renders as a thread-scoped instant on the
        // involved resource's track (GA run markers on the GA process).
        const bool ga = event.kind == EventKind::kGaRunStarted ||
                        event.kind == EventKind::kGaRunFinished;
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << kind_name(event.kind)
           << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
           << (ga ? ga_pid(event) : grid_pid(event))
           << ",\"tid\":" << (ga ? ga_tid(event) : tid) << ",\"ts\":";
        number(os, ts_us(event.at));
        os << ",\"args\":{\"task\":" << event.task << ",\"a\":";
        number(os, event.a);
        os << ",\"b\":";
        number(os, event.b);
        os << ",\"extra\":" << event.extra << "}}";
        break;
      }
    }
  }
  os << "],\"otherData\":{\"recorded\":" << snapshot.recorded
     << ",\"dropped\":" << snapshot.dropped
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses << "}}";
  return os.str();
}

std::string events_jsonl(const TraceSnapshot& snapshot) {
  std::ostringstream os;
  for (const TraceEvent& event : snapshot.events) {
    os << "{\"t\":";
    number(os, event.at);
    os << ",\"kind\":\"" << kind_name(event.kind) << '"';
    if (event.task != 0) os << ",\"task\":" << event.task;
    if (event.resource != 0) os << ",\"resource\":" << event.resource;
    // 0-based shard index; absent on unsharded runs (stamp 0), which
    // keeps the classic JSONL byte-identical.
    if (event.shard != 0) os << ",\"shard\":" << event.shard - 1;
    os << ",\"a\":";
    number(os, event.a);
    os << ",\"b\":";
    number(os, event.b);
    os << ",\"extra\":" << event.extra << "}\n";
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << contents;
  if (!out) {
    log::warn("failed to write ", path);
    return false;
  }
  return true;
}

}  // namespace gridlb::obs
