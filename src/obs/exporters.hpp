// Trace exporters.
//
// Two formats over the same TraceSnapshot:
//
//  * Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
//    chrome://tracing.  Layout: process 1 "grid" holds one thread track
//    per resource carrying task execution spans (ph "X"), request /
//    discovery / advertisement instants (ph "i") and a per-resource queue
//    depth counter (ph "C"); process 2 "ga" holds one track per resource
//    with GA run instants plus best/mean cost counters, each generation
//    offset by one microsecond so a whole run (which happens at a single
//    simulated instant) is still readable as a convergence curve.
//    Timestamps are virtual seconds scaled to microseconds.  The
//    high-frequency cache channel is summarised in metadata rather than
//    exported event-by-event — millions of instants would drown the UI.
//
//  * JSONL — one JSON object per line per event, every kind included.
//    The post-mortem format: trivially greppable and loadable from
//    pandas/jq without a trace viewer.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gridlb::obs {

/// `resource_names[i]` labels AgentId i+1 ("S1".."S12"); resources beyond
/// the list fall back to "R<id>".
[[nodiscard]] std::string chrome_trace_json(
    const TraceSnapshot& snapshot,
    const std::vector<std::string>& resource_names);

[[nodiscard]] std::string events_jsonl(const TraceSnapshot& snapshot);

/// Writes `contents` to `path`; returns false (and logs a warning) on IO
/// failure instead of throwing — a failed export must never abort a
/// finished multi-hour run.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace gridlb::obs
