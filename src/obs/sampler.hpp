// Continuous registry sampling: sim-time snapshots of the metrics
// registry folded into an append-only time series.
//
// A single end-of-run registry snapshot collapses a multi-hour campaign
// into one aggregate row; the sampler restores the time axis.  Every
// `--metrics-interval` simulated seconds (the experiment harness drives
// the ticks through the engine, so cadence is virtual-time exact and
// identical at any shard count) the sampler reads the whole registry and
// appends one row:
//
//   * counters  — as per-interval deltas, so each column is a rate once
//     divided by the interval (flow.completed = completions this window);
//   * gauges    — as their current value;
//   * histograms — as `<name>.count` (observations this window),
//     `<name>.mean` (window mean) and `<name>.p50/.p90/.p99` (estimated
//     from the window's bucket deltas, Prometheus-style linear
//     interpolation within the bucket).
//
// The series exports as JSONL (one object per row, only the columns that
// moved) and CSV (the sorted union of all columns; empty cells where a
// column had no value yet).  Both are inputs to tools/campaign_report.py.
//
// Sampling is read-only on atomics plus short histogram mutexes, so it is
// observation-neutral by construction; the experiment harness additionally
// subtracts the tick events themselves from `sim_events` so the published
// ExperimentResult stays bit-for-bit identical with the sampler on or off
// (pinned by tests/obs/determinism_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/registry.hpp"

namespace gridlb::obs {

/// Percentile estimate from cumulative histogram buckets, Prometheus
/// style: find the bucket where the cumulative count crosses q·total and
/// interpolate linearly inside it (the first bucket's lower edge is 0; a
/// quantile landing in the +inf bucket reports the last finite bound).
/// `buckets` has bounds.size() + 1 entries; returns 0 when all are empty.
[[nodiscard]] double histogram_percentile(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& buckets, double q);

/// Append-only series of named-column rows with JSONL and CSV renderers.
class TimeSeries {
 public:
  struct Row {
    SimTime t = 0.0;
    std::vector<std::pair<std::string, double>> values;  ///< name order
  };

  /// `values` must be sorted by name (the sampler emits them that way).
  void append(SimTime t, std::vector<std::pair<std::string, double>> values);

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// One JSON object per row: {"t":<sim-time>,"<col>":<value>,...}.
  [[nodiscard]] std::string jsonl() const;
  /// Header = "t" + sorted union of every column ever seen; cells are
  /// empty where a row lacks the column.
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<Row> rows_;
};

/// Diffs registry snapshots between ticks into TimeSeries rows (see the
/// file comment for the column scheme).  Additionally republishes the
/// per-shard engine telemetry (`shard.<s>.events` / `.barrier_wait_ns`
/// counters, DESIGN.md §14) as kShardSample trace events so Perfetto
/// shows per-shard counter tracks over sim time.
class Sampler {
 public:
  explicit Sampler(const MetricsRegistry& registry);

  /// Takes one sample at sim time `at`.  Rows must be appended in
  /// non-decreasing time order; a duplicate timestamp is ignored (the
  /// final end-of-run sample can coincide with the last periodic tick).
  void sample(SimTime at);

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  const MetricsRegistry* registry_;
  std::map<std::string, std::uint64_t> prev_counters_;
  std::map<std::string, Histogram::Snapshot> prev_histograms_;
  TimeSeries series_;
  std::uint64_t samples_ = 0;
  bool have_row_ = false;
  SimTime last_at_ = 0.0;
};

}  // namespace gridlb::obs
