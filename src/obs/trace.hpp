// Structured trace recorder.
//
// Every interesting moment in a run — a request moving through discovery,
// a GA invocation converging, a task occupying nodes, a PACE cache lookup
// — is a typed, timestamped TraceEvent.  Events are recorded into
// per-thread ring buffers so that
//   * disabled tracing costs one branch and one relaxed load per site
//     (plus the engine's unconditional relaxed clock store), and
//   * enabled tracing takes no locks on the steady-state path: each OS
//     thread owns its rings outright and registration happens once per
//     thread per session.
//
// Rings are bounded; when a ring wraps, the oldest events are overwritten
// and the loss is reported in the snapshot's `dropped` count.  High-volume
// kinds (PACE cache hits/misses, emitted from GA evaluate-phase worker
// threads) go to a separate channel so they can never evict the sparse
// control-flow events that make a trace readable.
//
// The recorder is installed globally (see obs.hpp's Session); merging and
// exporting happen after the simulation has quiesced, so snapshot() must
// not race with record() — in this codebase the thread pools are always
// joined between GA invocations, which provides that guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace gridlb::obs {

enum class EventKind : std::uint8_t {
  // Request lifecycle.
  kRequestSubmitted,   ///< portal hands the request to its entry agent
  kRequestDispatched,  ///< a discovery decision placed it on a local queue
  kRequestRejected,    ///< strict-failure drop (no grid resource matches)
  // Discovery hops.
  kDiscoveryLocal,     ///< own service met the requirement
  kDiscoveryNeighbour, ///< forwarded to the best-match neighbour
  kDiscoveryUpper,     ///< escalated to the upper agent
  kDiscoveryFallback,  ///< head-of-hierarchy best-effort dispatch
  // Advertisement.
  kAdvertisementPull,      ///< periodic pull sent to all neighbours
  kAdvertisementReceived,  ///< service document landed in the ACT
  // GA scheduling.
  kGaRunStarted,
  kGaGeneration,       ///< one generation's best/mean cost
  kGaRunFinished,
  // PACE evaluation cache (high-frequency channel).
  kCacheHit,
  kCacheMiss,
  // Task execution.
  kTaskSpan,           ///< committed execution: occupies nodes start..end
  kTaskCompleted,
  // Scheduler queue.
  kQueueDepth,         ///< pending-count sample after a queue change
  // Fault injection & tolerance (DESIGN.md §10).
  kMessageDropped,     ///< network loss: a=from b=to endpoint, extra=reason
  kMessageRetry,       ///< reliable sender re-armed after an ack timeout
  kMessageExpired,     ///< retry budget exhausted; sender gave up
  kDuplicateSuppressed,///< at-least-once delivery deduplicated by msgid
  kAgentCrashed,       ///< agent process failed (endpoint down)
  kAgentRestarted,     ///< agent process came back (fresh ACT)
  kTaskResubmitted,    ///< portal re-injected a task stranded on a crash
  // Stateless placement (DESIGN.md §15).
  kPlacementDecision,  ///< hashed placement: resource=winning target,
                       ///< a=winning straw draw, b=live map weight,
                       ///< extra=target index
  // Engine-shard telemetry (DESIGN.md §14).
  kShardSample,        ///< sampler tick: extra=shard index (0-based),
                       ///< a=events, b=barrier-wait ns this interval
  // Queue migration (DESIGN.md §17).
  kTaskMigrated,       ///< queued task re-homed: resource=target agent,
                       ///< a=own backlog, b=target backlog, extra=hops
};

/// Short stable identifier ("ga_generation", "cache_hit", …) used by the
/// JSONL exporter and tests.
[[nodiscard]] std::string_view kind_name(EventKind kind);

/// Fixed-size POD event.  Field meaning depends on `kind`:
///   task     — TaskId::value() of the request/task involved (0 if none)
///   resource — AgentId::value() of the agent/resource involved (0 if none)
///   a, b     — kind-specific payload, e.g. for kTaskSpan a=start b=end;
///              for kGaGeneration a=best cost b=mean cost; for
///              kDiscoveryNeighbour a=estimated completion b=advertisement
///              staleness at use; for kQueueDepth a=depth
///   extra    — small kind-specific integer (generation index, node count,
///              hop count, …)
///   shard    — 1 + the engine shard the event was recorded on, or 0 when
///              the run is unsharded (or the emitting thread is outside
///              any shard).  Sites never set it: record() stamps it from
///              the executing engine's published shard (sim_clock.hpp), so
///              the chrome exporter can group a sharded run by shard.
struct TraceEvent {
  SimTime at = 0.0;
  EventKind kind = EventKind::kRequestSubmitted;
  std::uint16_t shard = 0;
  std::uint32_t extra = 0;
  std::uint64_t task = 0;
  std::uint64_t resource = 0;
  double a = 0.0;
  double b = 0.0;
};

/// Merged, time-sorted view of everything currently recorded.
struct TraceSnapshot {
  std::vector<TraceEvent> events;  ///< ascending `at`; stable within a ring
  std::uint64_t recorded = 0;      ///< events ever recorded
  std::uint64_t dropped = 0;       ///< overwritten by ring wrap-around
};

class TraceRecorder {
 public:
  /// Capacities are per thread per channel, in events.
  explicit TraceRecorder(std::size_t control_capacity = 1u << 18,
                         std::size_t highfreq_capacity = 1u << 16);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records one event into the calling thread's ring.  Lock-free except
  /// for the first event per thread per channel (ring registration).
  void record(const TraceEvent& event);

  /// Merged snapshot of every ring, sorted ascending by timestamp.  Must
  /// only be called while no thread is concurrently recording.
  [[nodiscard]] TraceSnapshot snapshot() const;

  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    std::uint64_t pushed = 0;  ///< total events; slot index = pushed % size
    void push(const TraceEvent& event) {
      slots[static_cast<std::size_t>(pushed % slots.size())] = event;
      ++pushed;
    }
  };

  [[nodiscard]] Ring* register_ring(bool highfreq);

  const std::size_t control_capacity_;
  const std::size_t highfreq_capacity_;
  const std::uint64_t epoch_;  ///< distinguishes recorder generations

  mutable std::mutex mutex_;   ///< guards `rings_` growth only
  std::vector<std::unique_ptr<Ring>> rings_;
};

namespace detail {
/// The installed recorder (null = tracing off) and its generation counter.
/// Loaded with acquire so a worker thread that observes the pointer also
/// observes the fully-constructed recorder.
inline std::atomic<TraceRecorder*> g_recorder{nullptr};
inline std::atomic<std::uint64_t> g_epoch{0};
/// Installation used by obs::Session; pass nullptr to uninstall.
void install_recorder(TraceRecorder* recorder);
[[nodiscard]] std::uint64_t current_epoch();
}  // namespace detail

/// The active recorder, or null when tracing is disabled.
[[nodiscard]] inline TraceRecorder* trace() {
  return detail::g_recorder.load(std::memory_order_acquire);
}

/// Records `event` iff tracing is enabled — the one-branch fast path every
/// instrumentation site goes through.
inline void emit(const TraceEvent& event) {
  if (TraceRecorder* recorder = trace()) recorder->record(event);
}

}  // namespace gridlb::obs
