#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace gridlb::obs {

namespace {

/// JSON-safe number: non-finite doubles have no JSON spelling.
void json_number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  os << std::setprecision(17) << value << std::setprecision(6);
}

void json_string(std::ostringstream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) {
  GRIDLB_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                     std::adjacent_find(bounds.begin(), bounds.end()) ==
                         bounds.end(),
                 "histogram bounds must be strictly increasing");
  data_.bounds = std::move(bounds);
  data_.buckets.assign(data_.bounds.size() + 1, 0);
}

void Histogram::observe(double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0) {
    data_.min = data_.max = value;
  } else {
    data_.min = std::min(data_.min, value);
    data_.max = std::max(data_.max, value);
  }
  ++data_.count;
  data_.sum += value;
  const auto it =
      std::lower_bound(data_.bounds.begin(), data_.bounds.end(), value);
  ++data_.buckets[static_cast<std::size_t>(it - data_.bounds.begin())];
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

std::string MetricsRegistry::text_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << std::left << std::setw(36) << name << ' ' << counter->value()
       << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    os << std::left << std::setw(36) << name << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    os << std::left << std::setw(36) << name << " count=" << snap.count
       << " mean=" << snap.mean() << " min=" << snap.min
       << " max=" << snap.max << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::json_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':' << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    json_number(os, gauge->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ',';
    first = false;
    const Histogram::Snapshot snap = histogram->snapshot();
    json_string(os, name);
    os << ":{\"count\":" << snap.count << ",\"sum\":";
    json_number(os, snap.sum);
    os << ",\"min\":";
    json_number(os, snap.min);
    os << ",\"max\":";
    json_number(os, snap.max);
    os << ",\"mean\":";
    json_number(os, snap.mean());
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"le\":";
      if (i < snap.bounds.size()) {
        json_number(os, snap.bounds[i]);
      } else {
        os << "\"+inf\"";
      }
      os << ",\"count\":" << snap.buckets[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

RegistrySample MetricsRegistry::sample() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySample out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

namespace detail {

void install_registry(MetricsRegistry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

}  // namespace detail

}  // namespace gridlb::obs
