// Observability session: configuration + scoped global installation.
//
// Overhead contract (see DESIGN.md §9):
//   * With no Session active every instrumentation site costs one relaxed
//     atomic load and one branch; the engine additionally publishes its
//     clock with one relaxed store per event.  Nothing allocates.
//   * With a Session active, trace events go to bounded per-thread ring
//     buffers with no locking on the steady-state path; registry updates
//     take short uncontended mutexes off the per-event hot path.
//   * Observation never feeds back into scheduling: enabling tracing is
//     bit-for-bit neutral to every experiment result (pinned by
//     tests/obs/determinism_test.cpp).
//
// One Session may be active at a time; construction installs the recorder
// and registry behind the global obs::trace()/obs::registry() accessors
// and destruction uninstalls them, so scoping a Session to a run is all
// the plumbing an experiment needs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace gridlb::obs {

struct ObsConfig {
  /// Record trace events (implied by either trace output path).
  bool trace = false;
  /// Maintain the metrics registry (implied by metrics_json_out).
  bool metrics = false;
  std::size_t control_ring_capacity = 1u << 18;   ///< events/thread
  std::size_t highfreq_ring_capacity = 1u << 16;  ///< events/thread
  std::string trace_out;        ///< Chrome trace-event JSON path ("" = off)
  std::string events_out;       ///< flat JSONL event dump path
  std::string metrics_json_out; ///< registry JSON snapshot path

  /// Continuous profiling: snapshot the registry every `metrics_interval`
  /// sim-seconds (0 = use the 60 s default when a series output or
  /// --progress turns the sampler on).  Sampling rides the engine's
  /// milestone machinery, so the cadence is identical at any shard count.
  double metrics_interval = 0.0;
  std::string series_jsonl_out;  ///< time-series JSONL path ("" = off)
  std::string series_csv_out;    ///< time-series CSV path ("" = off)
  bool progress = false;         ///< stderr heartbeat line per sample

  [[nodiscard]] bool trace_enabled() const {
    return trace || !trace_out.empty() || !events_out.empty();
  }
  [[nodiscard]] bool sampler_enabled() const {
    return metrics_interval > 0.0 || !series_jsonl_out.empty() ||
           !series_csv_out.empty() || progress;
  }
  /// Sampling cadence in sim-seconds when the sampler is on.
  [[nodiscard]] double effective_interval() const {
    return metrics_interval > 0.0 ? metrics_interval : 60.0;
  }
  [[nodiscard]] bool metrics_enabled() const {
    return metrics || !metrics_json_out.empty() || sampler_enabled();
  }
  [[nodiscard]] bool enabled() const {
    return trace_enabled() || metrics_enabled();
  }
};

class Session {
 public:
  /// Installs the configured instruments globally.  A config with nothing
  /// enabled yields an inert session (accessors stay null).
  explicit Session(ObsConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const ObsConfig& config() const { return config_; }
  /// Null when the corresponding piece is disabled.
  [[nodiscard]] TraceRecorder* recorder() { return recorder_.get(); }
  [[nodiscard]] MetricsRegistry* registry() { return registry_.get(); }
  [[nodiscard]] Sampler* sampler() { return sampler_.get(); }

  /// Writes every configured output file (Chrome trace, JSONL dump,
  /// metrics JSON).  `resource_names[i]` labels AgentId i+1.  Returns
  /// false if any write failed.  Call after the simulation has quiesced.
  bool export_outputs(const std::vector<std::string>& resource_names);

 private:
  ObsConfig config_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Sampler> sampler_;
};

}  // namespace gridlb::obs
