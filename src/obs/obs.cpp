#include "obs/obs.hpp"

#include "common/assert.hpp"
#include "obs/exporters.hpp"

namespace gridlb::obs {

Session::Session(ObsConfig config) : config_(std::move(config)) {
  // Qualified calls: the unqualified names would find the member
  // accessors (still null mid-construction), not the global ones.
  if (config_.trace_enabled()) {
    GRIDLB_REQUIRE(gridlb::obs::trace() == nullptr,
                   "another observability session is already tracing");
    recorder_ = std::make_unique<TraceRecorder>(
        config_.control_ring_capacity, config_.highfreq_ring_capacity);
    detail::install_recorder(recorder_.get());
  }
  if (config_.metrics_enabled()) {
    GRIDLB_REQUIRE(gridlb::obs::registry() == nullptr,
                   "another observability session already has a registry");
    registry_ = std::make_unique<MetricsRegistry>();
    detail::install_registry(registry_.get());
    if (config_.sampler_enabled()) {
      sampler_ = std::make_unique<Sampler>(*registry_);
    }
  }
}

Session::~Session() {
  if (recorder_ != nullptr) detail::install_recorder(nullptr);
  if (registry_ != nullptr) detail::install_registry(nullptr);
}

bool Session::export_outputs(const std::vector<std::string>& resource_names) {
  bool ok = true;
  if (recorder_ != nullptr &&
      (!config_.trace_out.empty() || !config_.events_out.empty())) {
    const TraceSnapshot snapshot = recorder_->snapshot();
    if (!config_.trace_out.empty()) {
      ok &= write_file(config_.trace_out,
                       chrome_trace_json(snapshot, resource_names));
    }
    if (!config_.events_out.empty()) {
      ok &= write_file(config_.events_out, events_jsonl(snapshot));
    }
  }
  if (registry_ != nullptr && !config_.metrics_json_out.empty()) {
    ok &= write_file(config_.metrics_json_out, registry_->json_snapshot());
  }
  if (sampler_ != nullptr) {
    if (!config_.series_jsonl_out.empty()) {
      ok &= write_file(config_.series_jsonl_out, sampler_->series().jsonl());
    }
    if (!config_.series_csv_out.empty()) {
      ok &= write_file(config_.series_csv_out, sampler_->series().csv());
    }
  }
  return ok;
}

}  // namespace gridlb::obs
