#include "obs/sampler.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace gridlb::obs {

namespace {

void number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

/// CSV cell: shortest round-trip-safe spelling, no quoting needed (column
/// names are metric identifiers, values are numbers).
void csv_number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) return;  // empty cell
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

/// Splits "shard.<s>.<metric>" into its shard index and metric suffix.
/// Returns false for every other name.
bool parse_shard_metric(const std::string& name, std::uint32_t* shard,
                        std::string* metric) {
  constexpr std::string_view prefix = "shard.";
  if (name.rfind(prefix, 0) != 0) return false;
  std::size_t pos = prefix.size();
  const auto digit = [&name](std::size_t i) {
    return std::isdigit(static_cast<unsigned char>(name[i])) != 0;
  };
  if (pos >= name.size() || !digit(pos)) return false;
  std::uint32_t s = 0;
  while (pos < name.size() && digit(pos)) {
    s = s * 10 + static_cast<std::uint32_t>(name[pos] - '0');
    ++pos;
  }
  if (pos >= name.size() || name[pos] != '.') return false;
  *shard = s;
  *metric = name.substr(pos + 1);
  return true;
}

}  // namespace

double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<std::uint64_t>& buckets,
                            double q) {
  GRIDLB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  GRIDLB_REQUIRE(buckets.size() == bounds.size() + 1,
                 "buckets must be bounds.size() + 1 wide");
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target) {
      if (i >= bounds.size()) {
        // +inf bucket: no finite upper edge to interpolate toward; report
        // the largest finite bound (Prometheus does the same).
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double width = bounds[i] - lower;
      const double inside = buckets[i] == 0
                                ? 0.0
                                : (target - cumulative) /
                                      static_cast<double>(buckets[i]);
      return lower + width * inside;
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void TimeSeries::append(SimTime t,
                        std::vector<std::pair<std::string, double>> values) {
  GRIDLB_ASSERT(std::is_sorted(
      values.begin(), values.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  rows_.push_back(Row{t, std::move(values)});
}

std::string TimeSeries::jsonl() const {
  std::ostringstream os;
  for (const Row& row : rows_) {
    os << "{\"t\":";
    number(os, row.t);
    for (const auto& [name, value] : row.values) {
      os << ",\"" << name << "\":";
      number(os, value);
    }
    os << "}\n";
  }
  return os.str();
}

std::string TimeSeries::csv() const {
  std::set<std::string> columns;
  for (const Row& row : rows_) {
    for (const auto& [name, value] : row.values) columns.insert(name);
  }
  std::ostringstream os;
  os << "t";
  for (const std::string& column : columns) os << ',' << column;
  os << '\n';
  for (const Row& row : rows_) {
    csv_number(os, row.t);
    // row.values and `columns` are both name-sorted: one linear sweep.
    auto it = row.values.begin();
    for (const std::string& column : columns) {
      os << ',';
      while (it != row.values.end() && it->first < column) ++it;
      if (it != row.values.end() && it->first == column) {
        csv_number(os, it->second);
      }
    }
    os << '\n';
  }
  return os.str();
}

Sampler::Sampler(const MetricsRegistry& registry) : registry_(&registry) {}

void Sampler::sample(SimTime at) {
  if (have_row_ && at <= last_at_) return;  // duplicate end-of-run tick
  have_row_ = true;
  last_at_ = at;
  ++samples_;

  const RegistrySample snap = registry_->sample();
  std::vector<std::pair<std::string, double>> values;
  values.reserve(snap.counters.size() + snap.gauges.size() +
                 5 * snap.histograms.size());

  // Per-shard engine telemetry re-published as Perfetto counter samples
  // (chrome exporter renders kShardSample on the "engine shards" process).
  std::map<std::uint32_t, std::pair<double, double>> shard_samples;

  for (const auto& [name, value] : snap.counters) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    prev_counters_[name] = value;
    const std::uint64_t delta = value - prev;
    std::uint32_t shard = 0;
    std::string metric;
    if (parse_shard_metric(name, &shard, &metric)) {
      if (metric == "events") {
        shard_samples[shard].first = static_cast<double>(delta);
      } else if (metric == "barrier_wait_ns") {
        shard_samples[shard].second = static_cast<double>(delta);
      }
    }
    if (delta != 0) {
      values.emplace_back(name, static_cast<double>(delta));
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    values.emplace_back(name, value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    const auto it = prev_histograms_.find(name);
    const Histogram::Snapshot* prev =
        it == prev_histograms_.end() ? nullptr : &it->second;
    const std::uint64_t dcount = hist.count - (prev ? prev->count : 0);
    if (dcount > 0) {
      const double dsum = hist.sum - (prev ? prev->sum : 0.0);
      std::vector<std::uint64_t> dbuckets = hist.buckets;
      if (prev != nullptr) {
        for (std::size_t i = 0; i < dbuckets.size(); ++i) {
          dbuckets[i] -= prev->buckets[i];
        }
      }
      values.emplace_back(name + ".count", static_cast<double>(dcount));
      values.emplace_back(name + ".mean",
                          dsum / static_cast<double>(dcount));
      values.emplace_back(name + ".p50",
                          histogram_percentile(hist.bounds, dbuckets, 0.50));
      values.emplace_back(name + ".p90",
                          histogram_percentile(hist.bounds, dbuckets, 0.90));
      values.emplace_back(name + ".p99",
                          histogram_percentile(hist.bounds, dbuckets, 0.99));
    }
    prev_histograms_[name] = hist;
  }

  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  series_.append(at, std::move(values));

  for (const auto& [shard, sample] : shard_samples) {
    emit({.at = at,
          .kind = EventKind::kShardSample,
          .extra = shard,
          .a = sample.first,     // events executed this interval
          .b = sample.second});  // barrier-wait ns this interval
  }
}

}  // namespace gridlb::obs
