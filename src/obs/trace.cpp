#include "obs/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/sim_clock.hpp"

namespace gridlb::obs {

namespace {

[[nodiscard]] bool is_highfreq(EventKind kind) {
  return kind == EventKind::kCacheHit || kind == EventKind::kCacheMiss;
}

}  // namespace

std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRequestSubmitted: return "request_submitted";
    case EventKind::kRequestDispatched: return "request_dispatched";
    case EventKind::kRequestRejected: return "request_rejected";
    case EventKind::kDiscoveryLocal: return "discovery_local";
    case EventKind::kDiscoveryNeighbour: return "discovery_neighbour";
    case EventKind::kDiscoveryUpper: return "discovery_upper";
    case EventKind::kDiscoveryFallback: return "discovery_fallback";
    case EventKind::kAdvertisementPull: return "advertisement_pull";
    case EventKind::kAdvertisementReceived: return "advertisement_received";
    case EventKind::kGaRunStarted: return "ga_run_started";
    case EventKind::kGaGeneration: return "ga_generation";
    case EventKind::kGaRunFinished: return "ga_run_finished";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kTaskSpan: return "task_span";
    case EventKind::kTaskCompleted: return "task_completed";
    case EventKind::kQueueDepth: return "queue_depth";
    case EventKind::kMessageDropped: return "message_dropped";
    case EventKind::kMessageRetry: return "message_retry";
    case EventKind::kMessageExpired: return "message_expired";
    case EventKind::kDuplicateSuppressed: return "duplicate_suppressed";
    case EventKind::kAgentCrashed: return "agent_crashed";
    case EventKind::kAgentRestarted: return "agent_restarted";
    case EventKind::kTaskResubmitted: return "task_resubmitted";
    case EventKind::kPlacementDecision: return "placement_decision";
    case EventKind::kShardSample: return "shard_sample";
    case EventKind::kTaskMigrated: return "task_migrated";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t control_capacity,
                             std::size_t highfreq_capacity)
    : control_capacity_(control_capacity),
      highfreq_capacity_(highfreq_capacity),
      epoch_(detail::g_epoch.fetch_add(1, std::memory_order_relaxed) + 1) {
  GRIDLB_REQUIRE(control_capacity_ >= 1 && highfreq_capacity_ >= 1,
                 "ring capacities must be >= 1");
}

TraceRecorder::~TraceRecorder() {
  // Never destroy the installed recorder: stale thread-local ring pointers
  // would dangle.  Sessions uninstall first.
  GRIDLB_ASSERT(detail::g_recorder.load(std::memory_order_acquire) != this);
}

TraceRecorder::Ring* TraceRecorder::register_ring(bool highfreq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>(highfreq ? highfreq_capacity_
                                                   : control_capacity_));
  return rings_.back().get();
}

void TraceRecorder::record(const TraceEvent& event) {
  // Per-thread ring cache.  `epoch` ties the cached pointers to one
  // recorder generation: a new recorder (even one allocated at a recycled
  // address) carries a fresh epoch and so invalidates every thread's
  // cache on first use.
  struct ThreadRings {
    std::uint64_t epoch = 0;
    Ring* control = nullptr;
    Ring* highfreq = nullptr;
  };
  thread_local ThreadRings tls;
  if (tls.epoch != epoch_) tls = ThreadRings{.epoch = epoch_};
  const bool highfreq = is_highfreq(event.kind);
  Ring*& ring = highfreq ? tls.highfreq : tls.control;
  if (ring == nullptr) ring = register_ring(highfreq);
  if (event.shard == 0) {
    // Stamp the executing engine shard (0 stays 0 on unsharded runs, so
    // the exporter layout of a classic run is untouched).
    TraceEvent stamped = event;
    stamped.shard = simclock::current_shard();
    ring->push(stamped);
    return;
  }
  ring->push(event);
}

std::size_t TraceRecorder::thread_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

TraceSnapshot TraceRecorder::snapshot() const {
  TraceSnapshot out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      out.recorded += ring->pushed;
      const std::uint64_t capacity = ring->slots.size();
      const std::uint64_t kept = std::min(ring->pushed, capacity);
      out.dropped += ring->pushed - kept;
      // Oldest surviving event first so a stable sort preserves each
      // ring's emission order among equal timestamps.
      const std::uint64_t first = ring->pushed - kept;
      for (std::uint64_t i = first; i < ring->pushed; ++i) {
        out.events.push_back(
            ring->slots[static_cast<std::size_t>(i % capacity)]);
      }
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.at < y.at;
                   });
  return out;
}

namespace detail {

void install_recorder(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

std::uint64_t current_epoch() {
  return g_epoch.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace gridlb::obs
