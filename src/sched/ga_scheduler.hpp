// The genetic-algorithm task scheduler (paper §2.1).
//
// A fixed-size population of two-part solution strings evolves under
// stochastic remainder selection, the specialised two-part crossover and
// mutation operators, and the combined cost function of eq. 8 normalised
// by dynamic scaling (eq. 9).  The population persists across invocations:
// when the task set changes between events, surviving tasks keep their
// evolved ordering and allocations and new arrivals are inserted randomly,
// so the algorithm "is able to absorb system changes such as the addition
// or deletion of tasks".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sched/cost.hpp"
#include "sched/schedule_builder.hpp"

namespace gridlb::sched {

/// Within-run genotype memoization (DESIGN.md §11).
///
/// Crossover under elitism routinely re-creates genotypes already costed
/// this run; the memo lets them skip re-evaluation.  Flat open-addressed
/// table keyed by SolutionString::Fingerprint — entries hold only the
/// fingerprint, cost and metrics (no genome copy), so lookups and inserts
/// are allocation-free.  A run boundary is an O(1) epoch bump: entries
/// from earlier runs read as empty, because their metrics were computed
/// against a different clock/queue state.  Main-thread only.
class GenotypeMemo {
 public:
  struct Entry {
    SolutionString::Fingerprint fp;
    double cost = 0.0;
    ScheduleMetrics metrics;
    std::uint64_t epoch = 0;  ///< 0 = slot never written
  };

  /// Starts a new run expecting at most `expected` distinct genotypes.
  /// Sizes the table to keep the load factor ≤ 0.5, so steady-state runs
  /// never rehash.
  void begin_run(std::size_t expected);

  /// Entry for `fp` in the current run, or nullptr.
  [[nodiscard]] const Entry* find(
      const SolutionString::Fingerprint& fp) const;

  void insert(const SolutionString::Fingerprint& fp, double cost,
              const ScheduleMetrics& metrics);

  [[nodiscard]] std::size_t capacity() const { return entries_.size(); }
  [[nodiscard]] std::size_t live() const { return live_; }

 private:
  void grow();

  std::vector<Entry> entries_;  ///< power-of-two size
  std::uint64_t epoch_ = 0;
  std::size_t live_ = 0;  ///< entries written this epoch
};

struct GaConfig {
  int population_size = 50;  ///< fixed population size (paper: 50)
  int generations = 25;      ///< generations evolved per invocation
  double crossover_rate = 0.8;
  double order_swap_rate = 0.25;  ///< P(transposition in the ordering part)
  double bit_flip_rate = 0.02;    ///< per-bit flip rate in the mapping part
  int elite = 1;  ///< individuals carried over unchanged each generation
  /// Seed the population each invocation with two greedy list-scheduling
  /// individuals (arrival order and earliest-deadline-first, each with the
  /// per-task best node subset).  The arrival-order seed decodes to
  /// exactly the FIFO baseline's schedule, so an elitist GA can never plan
  /// worse than FIFO.
  bool seed_heuristic = true;
  /// Threads for the evaluate phase (decode + cost of every individual).
  /// 0 = hardware concurrency; 1 = the exact serial code path (no pool).
  /// Results are bit-for-bit identical for every value — see DESIGN.md's
  /// determinism contract.
  int eval_threads = 0;
  CostWeights weights;
};

struct GaResult {
  SolutionString best;
  DecodedSchedule schedule;   ///< decode of `best`
  double best_cost = 0.0;
  int generations_run = 0;
  /// Schedule evaluations actually performed this invocation (including
  /// the single full decode of the winner).  With memoization on,
  /// `decodes + memo_hits == population × generations + 1`.
  std::uint64_t decodes = 0;
  /// Evaluations skipped because the genotype was already costed this run
  /// (cross-generation memo hits + within-generation duplicates).
  std::uint64_t memo_hits = 0;
  /// Prediction-table lookups this invocation — the lock-free reads that
  /// replace per-task evaluation-cache lookups on the hot path.  Delta
  /// evaluations only re-read their replayed suffix.
  std::uint64_t table_reads = 0;
  /// Evaluations that restored a prefix checkpoint instead of rebuilding
  /// from position 0 (DESIGN.md §16).  `delta_evals + full_evals ==
  /// decodes` for non-empty task sets; both counts depend only on the
  /// population contents, never on `eval_threads`.
  std::uint64_t delta_evals = 0;
  /// Evaluations that rebuilt the schedule from position 0 (chain heads,
  /// generation-0 individuals and the winner's final decode).
  std::uint64_t full_evals = 0;
  /// Resolved evaluate-phase thread count that actually ran.
  int eval_threads = 1;
  /// Per-generation convergence curve (observability; filled on every
  /// invocation — a handful of doubles, and gathering it consumes no
  /// randomness, so results are identical whether or not anyone looks).
  struct GenerationStat {
    double best_cost = 0.0;  ///< best individual this generation
    double mean_cost = 0.0;  ///< population mean this generation
  };
  std::vector<GenerationStat> generations;
  /// Generation index (0-based) at which the best-ever cost last
  /// improved — the "generations to converge" of the run.
  int converged_at = 0;
};

class GaScheduler {
 public:
  GaScheduler(ScheduleBuilder& builder, GaConfig config, std::uint64_t seed);

  /// Evolves the (persistent) population for `config.generations`
  /// generations over the given pending tasks and returns the best
  /// schedule found.  `node_free` gives each node's earliest availability.
  GaResult optimize(std::span<const Task> tasks,
                    std::span<const SimTime> node_free, SimTime now);

  /// As above with only the nodes in `available` usable (resource-monitor
  /// view); every individual is constrained to the available set before
  /// evolution, which is how the GA absorbs host departures and returns.
  GaResult optimize(std::span<const Task> tasks,
                    std::span<const SimTime> node_free, SimTime now,
                    NodeMask available);

  [[nodiscard]] const GaConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t total_decodes() const { return total_decodes_; }
  [[nodiscard]] std::uint64_t total_memo_hits() const {
    return total_memo_hits_;
  }
  [[nodiscard]] std::uint64_t total_table_reads() const {
    return total_table_reads_;
  }
  [[nodiscard]] std::uint64_t total_delta_evals() const {
    return total_delta_evals_;
  }
  [[nodiscard]] std::uint64_t total_full_evals() const {
    return total_full_evals_;
  }
  /// Resolved evaluate-phase thread count (config value, with 0 expanded
  /// to the hardware concurrency).
  [[nodiscard]] int eval_threads() const {
    return pool_ ? pool_->size() : 1;
  }

 private:
  /// Aligns the persistent population with the new task set (matching by
  /// TaskId), reseeding from scratch only on the first call.
  void sync_population(std::span<const Task> tasks);

  /// Greedy list-scheduling individual: tasks in arrival or deadline
  /// order, each allocated a subset of the earliest-free nodes.  With
  /// `efficient` false the subset minimises the task's own completion
  /// (always the widest/fastest allocation on an idle resource); with
  /// `efficient` true it is the narrowest allocation that still meets the
  /// task's deadline (minimum node·seconds), falling back to min
  /// completion when no allocation is deadline-feasible.  Seeding both
  /// families keeps the population out of the serial-wide basin that pure
  /// min-completion greedy occupies.
  /// Reads its predictions from the prepared `context_` (and counts them
  /// into `scratches_[0]`), so seeding shares the run's snapshot.
  [[nodiscard]] SolutionString greedy_seed(std::span<const Task> tasks,
                                           std::span<const SimTime> node_free,
                                           SimTime now, NodeMask available,
                                           bool deadline_order,
                                           bool efficient);

  /// Stochastic remainder selection: expected copies e_k = f_v,k·N/Σf_v;
  /// ⌊e_k⌋ copies deterministically, then Bernoulli draws on the
  /// fractional parts until the pool holds N parents.
  [[nodiscard]] std::vector<int> select_parents(
      std::span<const double> fitness);

  ScheduleBuilder* builder_;
  GaConfig config_;
  /// Workers for the evaluate phase; null when it resolves to one thread.
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  std::vector<SolutionString> population_;
  std::vector<TaskId> known_tasks_;  ///< task index -> id at last invocation
  std::uint64_t total_decodes_ = 0;
  std::uint64_t total_memo_hits_ = 0;
  std::uint64_t total_table_reads_ = 0;
  std::uint64_t total_delta_evals_ = 0;
  std::uint64_t total_full_evals_ = 0;

  // -- hot-path state, reused across invocations (DESIGN.md §11) ----------
  /// One genome awaiting evaluation: its fingerprint, population index and
  /// lineage (previous-generation parent index + dirty span vs that
  /// parent, recorded at breeding time for the delta path of §16).
  struct EvalItem {
    SolutionString::Fingerprint fp;
    int index = 0;
    int parent = -1;
    int span = 0;
  };
  /// A within-generation duplicate: copy `rep`'s result to `index`.
  struct Fanout {
    int index = 0;
    int rep = 0;
  };

  DecodeContext context_;
  std::vector<DecodeScratch> scratches_;  ///< one per evaluate-phase slot
  GenotypeMemo memo_;
  std::vector<double> costs_;
  std::vector<ScheduleMetrics> metrics_;
  std::vector<EvalItem> eval_list_;
  std::vector<Fanout> fanout_;
  std::vector<std::uint64_t> decode_slots_;
  /// Lineage of the current population: index of each individual's primary
  /// parent in the previous generation (-1 = none) and the dirty span of
  /// the operator chain that bred it (min over crossover/mutate/constrain).
  std::vector<int> parent_;
  std::vector<int> span_;
  /// Evaluation chains: `chain_order_` permutes eval-list indices so that
  /// same-parent genomes are adjacent, widest span first;
  /// `chain_bounds_[c]..chain_bounds_[c+1]` delimit chain c.  Each chain
  /// runs sequentially in one scratch — the head rebuilds fully, every
  /// later member repairs from its own span.
  std::vector<int> chain_order_;
  std::vector<int> chain_bounds_;
  std::vector<char> chain_taken_;
};

}  // namespace gridlb::sched
