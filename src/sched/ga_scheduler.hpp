// The genetic-algorithm task scheduler (paper §2.1).
//
// A fixed-size population of two-part solution strings evolves under
// stochastic remainder selection, the specialised two-part crossover and
// mutation operators, and the combined cost function of eq. 8 normalised
// by dynamic scaling (eq. 9).  The population persists across invocations:
// when the task set changes between events, surviving tasks keep their
// evolved ordering and allocations and new arrivals are inserted randomly,
// so the algorithm "is able to absorb system changes such as the addition
// or deletion of tasks".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sched/cost.hpp"
#include "sched/schedule_builder.hpp"

namespace gridlb::sched {

struct GaConfig {
  int population_size = 50;  ///< fixed population size (paper: 50)
  int generations = 25;      ///< generations evolved per invocation
  double crossover_rate = 0.8;
  double order_swap_rate = 0.25;  ///< P(transposition in the ordering part)
  double bit_flip_rate = 0.02;    ///< per-bit flip rate in the mapping part
  int elite = 1;  ///< individuals carried over unchanged each generation
  /// Seed the population each invocation with two greedy list-scheduling
  /// individuals (arrival order and earliest-deadline-first, each with the
  /// per-task best node subset).  The arrival-order seed decodes to
  /// exactly the FIFO baseline's schedule, so an elitist GA can never plan
  /// worse than FIFO.
  bool seed_heuristic = true;
  /// Threads for the evaluate phase (decode + cost of every individual).
  /// 0 = hardware concurrency; 1 = the exact serial code path (no pool).
  /// Results are bit-for-bit identical for every value — see DESIGN.md's
  /// determinism contract.
  int eval_threads = 0;
  CostWeights weights;
};

struct GaResult {
  SolutionString best;
  DecodedSchedule schedule;   ///< decode of `best`
  double best_cost = 0.0;
  int generations_run = 0;
  std::uint64_t decodes = 0;  ///< schedule evaluations this invocation
  /// Per-generation convergence curve (observability; filled on every
  /// invocation — a handful of doubles, and gathering it consumes no
  /// randomness, so results are identical whether or not anyone looks).
  struct GenerationStat {
    double best_cost = 0.0;  ///< best individual this generation
    double mean_cost = 0.0;  ///< population mean this generation
  };
  std::vector<GenerationStat> generations;
  /// Generation index (0-based) at which the best-ever cost last
  /// improved — the "generations to converge" of the run.
  int converged_at = 0;
};

class GaScheduler {
 public:
  GaScheduler(ScheduleBuilder& builder, GaConfig config, std::uint64_t seed);

  /// Evolves the (persistent) population for `config.generations`
  /// generations over the given pending tasks and returns the best
  /// schedule found.  `node_free` gives each node's earliest availability.
  GaResult optimize(std::span<const Task> tasks,
                    std::span<const SimTime> node_free, SimTime now);

  /// As above with only the nodes in `available` usable (resource-monitor
  /// view); every individual is constrained to the available set before
  /// evolution, which is how the GA absorbs host departures and returns.
  GaResult optimize(std::span<const Task> tasks,
                    std::span<const SimTime> node_free, SimTime now,
                    NodeMask available);

  [[nodiscard]] const GaConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t total_decodes() const { return total_decodes_; }
  /// Resolved evaluate-phase thread count (config value, with 0 expanded
  /// to the hardware concurrency).
  [[nodiscard]] int eval_threads() const {
    return pool_ ? pool_->size() : 1;
  }

 private:
  /// Aligns the persistent population with the new task set (matching by
  /// TaskId), reseeding from scratch only on the first call.
  void sync_population(std::span<const Task> tasks);

  /// Greedy list-scheduling individual: tasks in arrival or deadline
  /// order, each allocated a subset of the earliest-free nodes.  With
  /// `efficient` false the subset minimises the task's own completion
  /// (always the widest/fastest allocation on an idle resource); with
  /// `efficient` true it is the narrowest allocation that still meets the
  /// task's deadline (minimum node·seconds), falling back to min
  /// completion when no allocation is deadline-feasible.  Seeding both
  /// families keeps the population out of the serial-wide basin that pure
  /// min-completion greedy occupies.
  [[nodiscard]] SolutionString greedy_seed(std::span<const Task> tasks,
                                           std::span<const SimTime> node_free,
                                           SimTime now, NodeMask available,
                                           bool deadline_order,
                                           bool efficient) const;

  /// Stochastic remainder selection: expected copies e_k = f_v,k·N/Σf_v;
  /// ⌊e_k⌋ copies deterministically, then Bernoulli draws on the
  /// fractional parts until the pool holds N parents.
  [[nodiscard]] std::vector<int> select_parents(
      std::span<const double> fitness);

  ScheduleBuilder* builder_;
  GaConfig config_;
  /// Workers for the evaluate phase; null when it resolves to one thread.
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  std::vector<SolutionString> population_;
  std::vector<TaskId> known_tasks_;  ///< task index -> id at last invocation
  std::uint64_t total_decodes_ = 0;
};

}  // namespace gridlb::sched
