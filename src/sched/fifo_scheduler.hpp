// The FIFO baseline scheduler (paper §4.1, experiment 1).
//
// "The FIFO scheduling does not change the order of tasks.  Each task is
// scheduled according to the time at which it arrives (also driven by the
// PACE predictive data).  All of the possible resource allocations (a
// total of 2^16−1 possibilities) are tried.  As soon as the current best
// solution is found, it is fixed and will not change as new tasks enter
// the system."
//
// For each arriving task every non-empty node subset is enumerated against
// the already-fixed schedule (the per-node free times).  Two readings of
// "best" are supported:
//
//  * kMinExecution (default, used for experiment 1) — the subset with the
//    smallest PACE-predicted execution time t_x wins; availability only
//    breaks ties.  Tasks queue for the execution-optimal allocation while
//    other nodes idle — this is the only reading consistent with Table 3's
//    experiment 1 signature (overloaded resources at ~44% utilisation with
//    ~-1000 s delays).
//  * kMinCompletion — the subset with the earliest completion (start +
//    execution) wins; a stronger baseline, kept for the FIFO-objective
//    ablation bench.
//
// Ties break toward fewer nodes and then the lower mask for determinism.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "pace/evaluation_engine.hpp"
#include "sched/node_mask.hpp"
#include "sched/task.hpp"

namespace gridlb::sched {

struct FifoPlacement {
  NodeMask mask = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

enum class FifoObjective { kMinExecution, kMinCompletion };

class FifoScheduler {
 public:
  FifoScheduler(pace::CachedEvaluator& evaluator, pace::ResourceModel resource,
                int node_count,
                FifoObjective objective = FifoObjective::kMinExecution);

  [[nodiscard]] FifoObjective objective() const { return objective_; }

  /// Chooses the fixed allocation for `task` given the current per-node
  /// free times (absolute; values before `now` count as free now).
  [[nodiscard]] FifoPlacement place(const Task& task,
                                    std::span<const SimTime> node_free,
                                    SimTime now);

  /// As above with only the nodes in `available` usable (resource-monitor
  /// view); subsets touching a down node are enumerated but never chosen.
  [[nodiscard]] FifoPlacement place(const Task& task,
                                    std::span<const SimTime> node_free,
                                    SimTime now, NodeMask available);

  /// Total subsets enumerated so far (2^n − 1 per placed task).
  [[nodiscard]] std::uint64_t subsets_tried() const { return subsets_tried_; }
  /// Prediction-table reads so far (one per processor count per placed
  /// task — the lock-free lookups that replace per-place cache queries).
  [[nodiscard]] std::uint64_t table_reads() const { return table_reads_; }

 private:
  pace::CachedEvaluator* evaluator_;
  pace::ResourceModel resource_;
  int node_count_;
  FifoObjective objective_;
  /// Per-scheduler prediction snapshot: rows build lazily as new
  /// applications arrive and persist across place() calls, so the 2^n−1
  /// subset sweep (and repeat arrivals of the same code) never touches
  /// the evaluation cache's shard locks.
  pace::PredictionTable table_;
  std::uint64_t subsets_tried_ = 0;
  std::uint64_t table_reads_ = 0;
};

}  // namespace gridlb::sched
