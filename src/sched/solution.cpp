#include "sched/solution.hpp"

#include <algorithm>
#include <numeric>

namespace gridlb::sched {

SolutionString::SolutionString(std::vector<int> order,
                               std::vector<NodeMask> mapping, int node_count)
    : order_(std::move(order)),
      mapping_(std::move(mapping)),
      node_count_(node_count) {
  GRIDLB_REQUIRE(order_.size() == mapping_.size(),
                 "ordering and mapping parts must cover the same tasks");
  GRIDLB_REQUIRE(node_count_ >= 1 && node_count_ <= kMaxNodesPerResource,
                 "node count out of range");
  GRIDLB_REQUIRE(valid(), "solution string is structurally invalid");
}

SolutionString SolutionString::random(int task_count, int node_count,
                                      Rng& rng) {
  GRIDLB_REQUIRE(task_count >= 0, "negative task count");
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
  SolutionString s;
  s.node_count_ = node_count;
  s.order_.resize(static_cast<std::size_t>(task_count));
  std::iota(s.order_.begin(), s.order_.end(), 0);
  rng.shuffle(s.order_);
  s.mapping_.resize(static_cast<std::size_t>(task_count));
  const NodeMask all = full_mask(node_count);
  for (auto& mask : s.mapping_) {
    mask = static_cast<NodeMask>(rng.next_u64()) & all;
    if (mask == 0) {
      mask = NodeMask{1} << rng.next_below(static_cast<std::uint64_t>(
                 node_count));
    }
  }
  return s;
}

bool SolutionString::valid() const {
  std::vector<bool> seen(order_.size(), false);
  for (const int t : order_) {
    if (t < 0 || static_cast<std::size_t>(t) >= order_.size()) return false;
    if (seen[static_cast<std::size_t>(t)]) return false;
    seen[static_cast<std::size_t>(t)] = true;
  }
  return std::all_of(mapping_.begin(), mapping_.end(), [this](NodeMask m) {
    return valid_mask(m, node_count_);
  });
}

void SolutionString::repair_mask(int task, Rng& rng) {
  auto& mask = mapping_[static_cast<std::size_t>(task)];
  if (mask == 0) {
    mask = NodeMask{1} << rng.next_below(
               static_cast<std::uint64_t>(node_count_));
  }
}

int SolutionString::constrain(NodeMask allowed, Rng& rng) {
  GRIDLB_REQUIRE(valid_mask(allowed, node_count_),
                 "allowed set must be a non-empty subset of the resource");
  const int width = ::gridlb::sched::node_count(allowed);
  std::vector<char> changed(mapping_.size(), 0);
  for (std::size_t t = 0; t < mapping_.size(); ++t) {
    auto& mask = mapping_[t];
    const NodeMask before = mask;
    mask &= allowed;
    if (mask == 0) {
      // Pick a uniformly random allowed node.
      auto pick = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(width)));
      for_each_node(allowed, [&](int node) {
        if (pick-- == 0) mask = NodeMask{1} << node;
      });
    }
    changed[t] = mask != before;
  }
  GRIDLB_ASSERT(valid());
  return first_changed_position(changed);
}

// The ordering part is untouched by the caller, so the dirty span is the
// first position whose task's mask changed.
int SolutionString::first_changed_position(
    const std::vector<char>& changed_task) const {
  const int m = task_count();
  for (int p = 0; p < m; ++p) {
    if (changed_task[static_cast<std::size_t>(task_at(p))]) return p;
  }
  return m;
}

SolutionString SolutionString::crossover(const SolutionString& mate, Rng& rng,
                                         int* first_changed) const {
  GRIDLB_REQUIRE(task_count() == mate.task_count() &&
                     node_count_ == mate.node_count_,
                 "crossover parents must agree on task and node counts");
  const int m = task_count();
  SolutionString child;
  child.node_count_ = node_count_;
  if (first_changed != nullptr) *first_changed = m;
  if (m == 0) return child;

  // --- ordering part: splice at a random cut, complete in mate order.
  const auto cut =
      static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(m) + 1));
  child.order_.assign(order_.begin(),
                      order_.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  for (const int t : child.order_) used[static_cast<std::size_t>(t)] = true;
  for (const int t : mate.order_) {
    if (!used[static_cast<std::size_t>(t)]) child.order_.push_back(t);
  }

  // --- mapping part: single-point binary crossover over the child-order-
  // aligned concatenation of per-task bit strings.  Bits strictly before
  // the cut come from this parent, the rest from the mate.
  child.mapping_.resize(static_cast<std::size_t>(m));
  const int bits_per_task = node_count_;
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(bits_per_task);
  const std::uint64_t bit_cut = rng.next_below(total_bits + 1);
  for (int p = 0; p < m; ++p) {
    const int t = child.task_at(p);
    const std::uint64_t first_bit =
        static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(bits_per_task);
    NodeMask mask;
    if (first_bit + static_cast<std::uint64_t>(bits_per_task) <= bit_cut) {
      mask = mask_of(t);
    } else if (first_bit >= bit_cut) {
      mask = mate.mask_of(t);
    } else {
      const int split = static_cast<int>(bit_cut - first_bit);
      const NodeMask low = full_mask(split);
      mask = static_cast<NodeMask>((mask_of(t) & low) |
                                   (mate.mask_of(t) & ~low));
      mask &= full_mask(node_count_);
    }
    child.mapping_[static_cast<std::size_t>(t)] = mask;
    child.repair_mask(t, rng);
  }
  if (first_changed != nullptr) {
    // Dirty span vs `*this`: first position whose (task, mask) pair
    // differs.  When the tasks agree, comparing that task's mask in both
    // genomes compares the pair.  Direct comparison (rather than deriving
    // the span from the cuts) also covers repairs and the bit-split mask.
    int span = m;
    for (int p = 0; p < m; ++p) {
      const int t = order_[static_cast<std::size_t>(p)];
      if (t != child.order_[static_cast<std::size_t>(p)] ||
          mapping_[static_cast<std::size_t>(t)] !=
              child.mapping_[static_cast<std::size_t>(t)]) {
        span = p;
        break;
      }
    }
    *first_changed = span;
  }
  return child;
}

int SolutionString::mutate(double order_swap_rate, double bit_flip_rate,
                           Rng& rng) {
  const int m = task_count();
  if (m == 0) return 0;
  int span = m;
  // Ordering part: a random transposition ("switching operator").
  if (m >= 2 && rng.chance(order_swap_rate)) {
    const auto a = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(m)));
    auto b = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(m - 1)));
    if (b >= a) ++b;
    std::swap(order_[a], order_[b]);
    span = static_cast<int>(a < b ? a : b);
  }
  // Mapping part: independent random bit flips.  The flip loop stays in
  // task-index order (the seeded draw sequence is pinned); the positional
  // span is recovered afterwards from the per-task change flags.
  std::vector<char> changed(static_cast<std::size_t>(m), 0);
  bool any_mask_changed = false;
  for (int t = 0; t < m; ++t) {
    NodeMask& mask = mapping_[static_cast<std::size_t>(t)];
    const NodeMask before = mask;
    for (int bit = 0; bit < node_count_; ++bit) {
      if (rng.chance(bit_flip_rate)) {
        mask ^= NodeMask{1} << bit;
      }
    }
    repair_mask(t, rng);
    changed[static_cast<std::size_t>(t)] = mask != before;
    any_mask_changed |= mask != before;
  }
  if (any_mask_changed) {
    const int mask_span = first_changed_position(changed);
    if (mask_span < span) span = mask_span;
  }
  return span;
}

SolutionString::Fingerprint SolutionString::fingerprint() const {
  // Two independent splitmix64-style lanes over the same word stream.
  const auto mix = [](std::uint64_t h, std::uint64_t v,
                      std::uint64_t gamma) {
    h += v + gamma;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h;
  };
  Fingerprint fp{0x243F6A8885A308D3ULL, 0x13198A2E03707344ULL};
  const auto absorb = [&](std::uint64_t v) {
    fp.lo = mix(fp.lo, v, 0x9E3779B97F4A7C15ULL);
    fp.hi = mix(fp.hi, v, 0xC2B2AE3D27D4EB4FULL);
  };
  absorb(static_cast<std::uint64_t>(node_count_));
  absorb(order_.size());
  for (const int t : order_) absorb(static_cast<std::uint64_t>(t));
  for (const NodeMask m : mapping_) absorb(static_cast<std::uint64_t>(m));
  return fp;
}

void SolutionString::remap_tasks(const std::vector<int>& kept,
                                 int new_task_count, Rng& rng) {
  GRIDLB_REQUIRE(kept.size() == order_.size(),
                 "remap table must cover the old task set");
  GRIDLB_REQUIRE(new_task_count >= 0, "negative task count");

  // Surviving tasks keep their relative order and node allocations.
  std::vector<int> new_order;
  new_order.reserve(static_cast<std::size_t>(new_task_count));
  std::vector<NodeMask> new_mapping(static_cast<std::size_t>(new_task_count),
                                    0);
  std::vector<bool> present(static_cast<std::size_t>(new_task_count), false);
  for (const int old_task : order_) {
    const int new_task = kept[static_cast<std::size_t>(old_task)];
    if (new_task < 0) continue;
    GRIDLB_REQUIRE(new_task < new_task_count, "remap target out of range");
    new_order.push_back(new_task);
    new_mapping[static_cast<std::size_t>(new_task)] =
        mapping_[static_cast<std::size_t>(old_task)];
    present[static_cast<std::size_t>(new_task)] = true;
  }
  // Fresh arrivals enter at random positions with random allocations.
  const NodeMask all = full_mask(node_count_);
  for (int t = 0; t < new_task_count; ++t) {
    if (present[static_cast<std::size_t>(t)]) continue;
    const auto pos = static_cast<std::ptrdiff_t>(
        rng.next_below(new_order.size() + 1));
    new_order.insert(new_order.begin() + pos, t);
    NodeMask mask = static_cast<NodeMask>(rng.next_u64()) & all;
    new_mapping[static_cast<std::size_t>(t)] = mask;
  }
  order_ = std::move(new_order);
  mapping_ = std::move(new_mapping);
  for (int t = 0; t < new_task_count; ++t) repair_mask(t, rng);
  GRIDLB_ASSERT(valid());
}

}  // namespace gridlb::sched
