// A task: one submitted application-execution request as seen by a local
// scheduler.
#pragma once

#include <string>
#include <utility>

#include "common/types.hpp"
#include "pace/application_model.hpp"

namespace gridlb::sched {

struct Task {
  TaskId id;
  pace::ApplicationModelPtr app;  ///< PACE application model σ_j
  SimTime arrival = 0.0;          ///< time the request reached this scheduler
  SimTime deadline = 0.0;         ///< absolute execution deadline δ_j
  std::string environment = "test";  ///< "mpi" | "pvm" | "test"
};

}  // namespace gridlb::sched
