#include "sched/ga_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace gridlb::sched {

GaScheduler::GaScheduler(ScheduleBuilder& builder, GaConfig config,
                         std::uint64_t seed)
    : builder_(&builder), config_(config), rng_(seed) {
  GRIDLB_REQUIRE(config_.population_size >= 2, "population must hold >= 2");
  GRIDLB_REQUIRE(config_.generations >= 1, "need at least one generation");
  GRIDLB_REQUIRE(config_.elite >= 0 &&
                     config_.elite < config_.population_size,
                 "elite count must be < population size");
  GRIDLB_REQUIRE(config_.crossover_rate >= 0.0 && config_.crossover_rate <= 1.0,
                 "crossover rate must be in [0,1]");
  GRIDLB_REQUIRE(config_.eval_threads >= 0,
                 "eval_threads must be >= 0 (0 = hardware concurrency)");
  const int threads = config_.eval_threads == 0
                          ? ThreadPool::hardware_threads()
                          : config_.eval_threads;
  // Never spin up more chunks than the population can fill.
  const int useful = std::min(threads, config_.population_size);
  if (useful > 1) pool_ = std::make_unique<ThreadPool>(useful);
}

void GaScheduler::sync_population(std::span<const Task> tasks) {
  const int m = static_cast<int>(tasks.size());
  const int nodes = builder_->node_count();

  if (population_.empty()) {
    population_.reserve(static_cast<std::size_t>(config_.population_size));
    for (int k = 0; k < config_.population_size; ++k) {
      population_.push_back(SolutionString::random(m, nodes, rng_));
    }
  } else {
    // Match surviving tasks by id; started/cancelled tasks drop out and
    // fresh arrivals are inserted at random positions.
    std::vector<int> kept(known_tasks_.size(), -1);
    for (std::size_t old_index = 0; old_index < known_tasks_.size();
         ++old_index) {
      for (int new_index = 0; new_index < m; ++new_index) {
        if (tasks[static_cast<std::size_t>(new_index)].id ==
            known_tasks_[old_index]) {
          kept[old_index] = new_index;
          break;
        }
      }
    }
    for (auto& individual : population_) {
      individual.remap_tasks(kept, m, rng_);
    }
  }

  known_tasks_.clear();
  known_tasks_.reserve(tasks.size());
  for (const Task& task : tasks) known_tasks_.push_back(task.id);
}

std::vector<int> GaScheduler::select_parents(std::span<const double> fitness) {
  const int n = static_cast<int>(fitness.size());
  const double total = std::accumulate(fitness.begin(), fitness.end(), 0.0);
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(n));
  if (total <= 0.0) {
    // All-zero fitness (cannot happen with dynamic scaling, but guard):
    // uniform pool.
    for (int k = 0; k < n; ++k) pool.push_back(k);
    return pool;
  }
  std::vector<double> fraction(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double expected =
        fitness[static_cast<std::size_t>(k)] * static_cast<double>(n) / total;
    const double floor_part = std::floor(expected);
    for (int c = 0; c < static_cast<int>(floor_part); ++c) pool.push_back(k);
    fraction[static_cast<std::size_t>(k)] = expected - floor_part;
  }
  // Fill the remainder with Bernoulli draws on the fractional parts.
  while (static_cast<int>(pool.size()) < n) {
    for (int k = 0; k < n && static_cast<int>(pool.size()) < n; ++k) {
      if (rng_.chance(fraction[static_cast<std::size_t>(k)])) {
        pool.push_back(k);
      }
    }
    // Degenerate fractional mass (all ~0): top up uniformly.
    if (std::accumulate(fraction.begin(), fraction.end(), 0.0) < 1e-12) {
      while (static_cast<int>(pool.size()) < n) {
        pool.push_back(static_cast<int>(
            rng_.next_below(static_cast<std::uint64_t>(n))));
      }
    }
  }
  return pool;
}

SolutionString GaScheduler::greedy_seed(std::span<const Task> tasks,
                                        std::span<const SimTime> node_free,
                                        SimTime now, NodeMask available,
                                        bool deadline_order,
                                        bool efficient) const {
  const int m = static_cast<int>(tasks.size());
  const int nodes = builder_->node_count();
  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  if (deadline_order) {
    std::stable_sort(order.begin(), order.end(), [&tasks](int a, int b) {
      return tasks[static_cast<std::size_t>(a)].deadline <
             tasks[static_cast<std::size_t>(b)].deadline;
    });
  }

  std::vector<SimTime> free(node_free.begin(), node_free.end());
  for (auto& f : free) f = std::max(f, now);
  std::vector<int> by_free;
  by_free.reserve(static_cast<std::size_t>(nodes));
  std::vector<NodeMask> mapping(static_cast<std::size_t>(m), 0);

  for (const int t : order) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    by_free.clear();
    for_each_node(available, [&by_free](int node) { by_free.push_back(node); });
    std::stable_sort(by_free.begin(), by_free.end(),
                     [&free](int a, int b) {
                       return free[static_cast<std::size_t>(a)] <
                              free[static_cast<std::size_t>(b)];
                     });
    const int usable = static_cast<int>(by_free.size());
    // For k nodes the optimal subset is the k earliest-free ones, so the
    // exhaustive 2^n−1 FIFO search reduces to an n-way scan.
    double best_end = std::numeric_limits<double>::infinity();
    int best_k = 1;
    double best_work = std::numeric_limits<double>::infinity();
    bool best_feasible = false;
    for (int k = 1; k <= usable; ++k) {
      const SimTime start =
          free[static_cast<std::size_t>(by_free[static_cast<std::size_t>(
              k - 1)])];
      const double exec = builder_->evaluator().evaluate(
          *task.app, builder_->resource(), k);
      const SimTime end = start + exec;
      bool better;
      if (efficient) {
        // Narrowest deadline-feasible allocation (min node·seconds);
        // min completion among the infeasible as the fallback.
        const bool feasible = end <= task.deadline;
        const double work = static_cast<double>(k) * exec;
        if (feasible) {
          better = !best_feasible || work < best_work;
        } else {
          better = !best_feasible && end < best_end;
        }
        if (better) {
          best_feasible = feasible;
          best_work = work;
        }
      } else {
        better = end < best_end;
      }
      if (better) {
        best_end = end;
        best_k = k;
      }
    }
    NodeMask mask = 0;
    for (int i = 0; i < best_k; ++i) {
      const int node = by_free[static_cast<std::size_t>(i)];
      mask |= NodeMask{1} << node;
      free[static_cast<std::size_t>(node)] = best_end;
    }
    mapping[static_cast<std::size_t>(t)] = mask;
  }
  return SolutionString(std::move(order), std::move(mapping), nodes);
}

GaResult GaScheduler::optimize(std::span<const Task> tasks,
                               std::span<const SimTime> node_free,
                               SimTime now) {
  return optimize(tasks, node_free, now, full_mask(builder_->node_count()));
}

GaResult GaScheduler::optimize(std::span<const Task> tasks,
                               std::span<const SimTime> node_free,
                               SimTime now, NodeMask available) {
  GRIDLB_REQUIRE(valid_mask(available, builder_->node_count()),
                 "optimize needs at least one available node");
  sync_population(tasks);
  const bool constrained = available != full_mask(builder_->node_count());
  if (constrained) {
    for (auto& individual : population_) individual.constrain(available, rng_);
  }
  if (config_.seed_heuristic && !tasks.empty()) {
    // Greedy seeds go at the tail; the warm-started best individual from
    // the previous invocation lives at the front and must survive.  Four
    // variants: {arrival, EDF} × {fastest, narrowest-feasible}.
    const std::size_t last = population_.size() - 1;
    std::size_t slot = last;
    for (const bool efficient : {false, true}) {
      for (const bool deadline_order : {false, true}) {
        population_[slot] = greedy_seed(tasks, node_free, now, available,
                                        deadline_order, efficient);
        if (slot == 0) break;
        --slot;
      }
    }
  }

  GaResult result;
  if (tasks.empty()) {
    result.best = SolutionString({}, {}, builder_->node_count());
    result.schedule = builder_->decode(tasks, result.best, node_free, now);
    return result;
  }

  const int n = config_.population_size;
  std::vector<double> costs(static_cast<std::size_t>(n));
  std::vector<DecodedSchedule> decoded(static_cast<std::size_t>(n));

  // Per-slot decode counters: chunks accumulate into their own slot and
  // the main thread reduces after the join, so the count (and everything
  // else in GaResult) is independent of thread scheduling.
  std::vector<std::uint64_t> decode_slots(
      static_cast<std::size_t>(pool_ ? pool_->size() : 1));
  const auto evaluate_chunk = [&](int begin, int end, int slot) {
    for (int k = begin; k < end; ++k) {
      decoded[static_cast<std::size_t>(k)] =
          builder_->decode(tasks, population_[static_cast<std::size_t>(k)],
                           node_free, now, available);
      costs[static_cast<std::size_t>(k)] =
          cost_value(decoded[static_cast<std::size_t>(k)], config_.weights);
      ++decode_slots[static_cast<std::size_t>(slot)];
    }
  };

  bool have_best = false;
  result.generations.reserve(static_cast<std::size_t>(config_.generations));
  for (int generation = 0; generation < config_.generations; ++generation) {
    // Evaluate.  Only this phase runs on the pool: each individual's
    // decode and cost are pure (the evaluation cache is thread-safe and
    // memoises a pure function), so the contents of `decoded` and `costs`
    // do not depend on the interleaving.  Selection, crossover and
    // mutation below stay on this thread and consume `rng_` in the
    // serial order.
    if (pool_) {
      pool_->parallel_for(n, evaluate_chunk);
    } else {
      evaluate_chunk(0, n, 0);
    }
    // Track the best-ever individual.
    const auto best_it = std::min_element(costs.begin(), costs.end());
    const auto best_index =
        static_cast<std::size_t>(best_it - costs.begin());
    if (!have_best || *best_it < result.best_cost) {
      have_best = true;
      result.best_cost = *best_it;
      result.best = population_[best_index];
      result.schedule = decoded[best_index];
      result.converged_at = generation;
    }
    result.generations.push_back(GaResult::GenerationStat{
        *best_it, std::accumulate(costs.begin(), costs.end(), 0.0) /
                      static_cast<double>(n)});
    ++result.generations_run;
    if (generation + 1 == config_.generations) break;

    // Breed the next generation.
    const std::vector<double> fitness = fitness_values(costs);
    const std::vector<int> pool = select_parents(fitness);

    std::vector<SolutionString> next;
    next.reserve(static_cast<std::size_t>(n));
    if (config_.elite > 0) {
      // Elites: the `elite` lowest-cost individuals, unchanged.
      std::vector<int> by_cost(static_cast<std::size_t>(n));
      std::iota(by_cost.begin(), by_cost.end(), 0);
      std::partial_sort(by_cost.begin(),
                        by_cost.begin() + config_.elite, by_cost.end(),
                        [&costs](int a, int b) {
                          return costs[static_cast<std::size_t>(a)] <
                                 costs[static_cast<std::size_t>(b)];
                        });
      for (int e = 0; e < config_.elite; ++e) {
        next.push_back(
            population_[static_cast<std::size_t>(by_cost[
                static_cast<std::size_t>(e)])]);
      }
    }
    while (static_cast<int>(next.size()) < n) {
      const int a = pool[static_cast<std::size_t>(
          rng_.next_below(pool.size()))];
      const int b = pool[static_cast<std::size_t>(
          rng_.next_below(pool.size()))];
      SolutionString child =
          rng_.chance(config_.crossover_rate)
              ? population_[static_cast<std::size_t>(a)].crossover(
                    population_[static_cast<std::size_t>(b)], rng_)
              : population_[static_cast<std::size_t>(a)];
      child.mutate(config_.order_swap_rate, config_.bit_flip_rate, rng_);
      if (constrained) child.constrain(available, rng_);
      next.push_back(std::move(child));
    }
    population_ = std::move(next);
  }

  for (const std::uint64_t slot_decodes : decode_slots) {
    result.decodes += slot_decodes;
  }
  total_decodes_ += result.decodes;
  // Keep the best individual alive for the next invocation's warm start.
  population_.front() = result.best;
  return result;
}

}  // namespace gridlb::sched
