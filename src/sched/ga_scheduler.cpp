#include "sched/ga_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace gridlb::sched {

void GenotypeMemo::begin_run(std::size_t expected) {
  ++epoch_;
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;
  if (entries_.size() < want) entries_.assign(want, Entry{});
  live_ = 0;
}

const GenotypeMemo::Entry* GenotypeMemo::find(
    const SolutionString::Fingerprint& fp) const {
  if (entries_.empty()) return nullptr;
  const std::size_t mask = entries_.size() - 1;
  // Load factor ≤ 0.5 guarantees the probe chain hits a dead slot.
  for (std::size_t i = static_cast<std::size_t>(fp.lo) & mask;;
       i = (i + 1) & mask) {
    const Entry& entry = entries_[i];
    if (entry.epoch != epoch_) return nullptr;  // dead slot ends the chain
    if (entry.fp == fp) return &entry;
  }
}

void GenotypeMemo::insert(const SolutionString::Fingerprint& fp, double cost,
                          const ScheduleMetrics& metrics) {
  GRIDLB_REQUIRE(!entries_.empty(), "memo used before begin_run");
  if ((live_ + 1) * 2 > entries_.size()) grow();
  const std::size_t mask = entries_.size() - 1;
  for (std::size_t i = static_cast<std::size_t>(fp.lo) & mask;;
       i = (i + 1) & mask) {
    Entry& entry = entries_[i];
    if (entry.epoch != epoch_) {
      entry = Entry{fp, cost, metrics, epoch_};
      ++live_;
      return;
    }
    if (entry.fp == fp) return;  // already present; values are identical
  }
}

void GenotypeMemo::grow() {
  std::vector<Entry> old = std::move(entries_);
  entries_.assign(old.size() * 2, Entry{});
  const std::size_t mask = entries_.size() - 1;
  for (const Entry& entry : old) {
    if (entry.epoch != epoch_) continue;
    for (std::size_t i = static_cast<std::size_t>(entry.fp.lo) & mask;;
         i = (i + 1) & mask) {
      if (entries_[i].epoch != epoch_) {
        entries_[i] = entry;
        break;
      }
    }
  }
}

GaScheduler::GaScheduler(ScheduleBuilder& builder, GaConfig config,
                         std::uint64_t seed)
    : builder_(&builder), config_(config), rng_(seed) {
  GRIDLB_REQUIRE(config_.population_size >= 2, "population must hold >= 2");
  GRIDLB_REQUIRE(config_.generations >= 1, "need at least one generation");
  GRIDLB_REQUIRE(config_.elite >= 0 &&
                     config_.elite < config_.population_size,
                 "elite count must be < population size");
  GRIDLB_REQUIRE(config_.crossover_rate >= 0.0 && config_.crossover_rate <= 1.0,
                 "crossover rate must be in [0,1]");
  GRIDLB_REQUIRE(config_.eval_threads >= 0,
                 "eval_threads must be >= 0 (0 = hardware concurrency)");
  const int threads = config_.eval_threads == 0
                          ? ThreadPool::hardware_threads()
                          : config_.eval_threads;
  // Never spin up more chunks than the population can fill.
  const int useful = std::min(threads, config_.population_size);
  if (useful > 1) pool_ = std::make_unique<ThreadPool>(useful);
  scratches_.resize(static_cast<std::size_t>(pool_ ? pool_->size() : 1));
  decode_slots_.resize(scratches_.size());
}

void GaScheduler::sync_population(std::span<const Task> tasks) {
  const int m = static_cast<int>(tasks.size());
  const int nodes = builder_->node_count();

  if (population_.empty()) {
    population_.reserve(static_cast<std::size_t>(config_.population_size));
    for (int k = 0; k < config_.population_size; ++k) {
      population_.push_back(SolutionString::random(m, nodes, rng_));
    }
  } else {
    // Match surviving tasks by id; started/cancelled tasks drop out and
    // fresh arrivals are inserted at random positions.
    std::vector<int> kept(known_tasks_.size(), -1);
    for (std::size_t old_index = 0; old_index < known_tasks_.size();
         ++old_index) {
      for (int new_index = 0; new_index < m; ++new_index) {
        if (tasks[static_cast<std::size_t>(new_index)].id ==
            known_tasks_[old_index]) {
          kept[old_index] = new_index;
          break;
        }
      }
    }
    for (auto& individual : population_) {
      individual.remap_tasks(kept, m, rng_);
    }
  }

  known_tasks_.clear();
  known_tasks_.reserve(tasks.size());
  for (const Task& task : tasks) known_tasks_.push_back(task.id);
}

std::vector<int> GaScheduler::select_parents(std::span<const double> fitness) {
  const int n = static_cast<int>(fitness.size());
  const double total = std::accumulate(fitness.begin(), fitness.end(), 0.0);
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(n));
  if (total <= 0.0) {
    // All-zero fitness (cannot happen with dynamic scaling, but guard):
    // uniform pool.
    for (int k = 0; k < n; ++k) pool.push_back(k);
    return pool;
  }
  std::vector<double> fraction(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double expected =
        fitness[static_cast<std::size_t>(k)] * static_cast<double>(n) / total;
    const double floor_part = std::floor(expected);
    for (int c = 0; c < static_cast<int>(floor_part); ++c) pool.push_back(k);
    fraction[static_cast<std::size_t>(k)] = expected - floor_part;
  }
  // Fill the remainder with Bernoulli draws on the fractional parts.
  while (static_cast<int>(pool.size()) < n) {
    for (int k = 0; k < n && static_cast<int>(pool.size()) < n; ++k) {
      if (rng_.chance(fraction[static_cast<std::size_t>(k)])) {
        pool.push_back(k);
      }
    }
    // Degenerate fractional mass (all ~0): top up uniformly.
    if (std::accumulate(fraction.begin(), fraction.end(), 0.0) < 1e-12) {
      while (static_cast<int>(pool.size()) < n) {
        pool.push_back(static_cast<int>(
            rng_.next_below(static_cast<std::uint64_t>(n))));
      }
    }
  }
  return pool;
}

SolutionString GaScheduler::greedy_seed(std::span<const Task> tasks,
                                        std::span<const SimTime> node_free,
                                        SimTime now, NodeMask available,
                                        bool deadline_order,
                                        bool efficient) {
  const int m = static_cast<int>(tasks.size());
  const int nodes = builder_->node_count();
  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  if (deadline_order) {
    std::stable_sort(order.begin(), order.end(), [&tasks](int a, int b) {
      return tasks[static_cast<std::size_t>(a)].deadline <
             tasks[static_cast<std::size_t>(b)].deadline;
    });
  }

  std::vector<SimTime> free(node_free.begin(), node_free.end());
  for (auto& f : free) f = std::max(f, now);
  std::vector<int> by_free;
  by_free.reserve(static_cast<std::size_t>(nodes));
  std::vector<NodeMask> mapping(static_cast<std::size_t>(m), 0);

  for (const int t : order) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    by_free.clear();
    for_each_node(available, [&by_free](int node) { by_free.push_back(node); });
    std::stable_sort(by_free.begin(), by_free.end(),
                     [&free](int a, int b) {
                       return free[static_cast<std::size_t>(a)] <
                              free[static_cast<std::size_t>(b)];
                     });
    const int usable = static_cast<int>(by_free.size());
    // For k nodes the optimal subset is the k earliest-free ones, so the
    // exhaustive 2^n−1 FIFO search reduces to an n-way scan.
    double best_end = std::numeric_limits<double>::infinity();
    int best_k = 1;
    double best_work = std::numeric_limits<double>::infinity();
    bool best_feasible = false;
    for (int k = 1; k <= usable; ++k) {
      const SimTime start =
          free[static_cast<std::size_t>(by_free[static_cast<std::size_t>(
              k - 1)])];
      const double exec = context_.exec_time(t, k);
      ++scratches_[0].table_reads;
      const SimTime end = start + exec;
      bool better;
      if (efficient) {
        // Narrowest deadline-feasible allocation (min node·seconds);
        // min completion among the infeasible as the fallback.
        const bool feasible = end <= task.deadline;
        const double work = static_cast<double>(k) * exec;
        if (feasible) {
          better = !best_feasible || work < best_work;
        } else {
          better = !best_feasible && end < best_end;
        }
        if (better) {
          best_feasible = feasible;
          best_work = work;
        }
      } else {
        better = end < best_end;
      }
      if (better) {
        best_end = end;
        best_k = k;
      }
    }
    NodeMask mask = 0;
    for (int i = 0; i < best_k; ++i) {
      const int node = by_free[static_cast<std::size_t>(i)];
      mask |= NodeMask{1} << node;
      free[static_cast<std::size_t>(node)] = best_end;
    }
    mapping[static_cast<std::size_t>(t)] = mask;
  }
  return SolutionString(std::move(order), std::move(mapping), nodes);
}

GaResult GaScheduler::optimize(std::span<const Task> tasks,
                               std::span<const SimTime> node_free,
                               SimTime now) {
  return optimize(tasks, node_free, now, full_mask(builder_->node_count()));
}

GaResult GaScheduler::optimize(std::span<const Task> tasks,
                               std::span<const SimTime> node_free,
                               SimTime now, NodeMask available) {
  GRIDLB_REQUIRE(valid_mask(available, builder_->node_count()),
                 "optimize needs at least one available node");
  // Snapshot phase: the only part of the run that touches the evaluation
  // cache's shard locks.  Everything downstream (greedy seeds included)
  // reads predictions from the table.
  builder_->prepare(context_, tasks, node_free, now, available);
  for (DecodeScratch& scratch : scratches_) {
    scratch.table_reads = 0;
    scratch.delta_evals = 0;
    scratch.full_evals = 0;
  }
  sync_population(tasks);
  const bool constrained = available != full_mask(builder_->node_count());
  if (constrained) {
    for (auto& individual : population_) individual.constrain(available, rng_);
  }
  if (config_.seed_heuristic && !tasks.empty()) {
    // Greedy seeds go at the tail; the warm-started best individual from
    // the previous invocation lives at the front and must survive.  Four
    // variants: {arrival, EDF} × {fastest, narrowest-feasible}.
    const std::size_t last = population_.size() - 1;
    std::size_t slot = last;
    for (const bool efficient : {false, true}) {
      for (const bool deadline_order : {false, true}) {
        population_[slot] = greedy_seed(tasks, node_free, now, available,
                                        deadline_order, efficient);
        if (slot == 0) break;
        --slot;
      }
    }
  }

  GaResult result;
  result.eval_threads = eval_threads();
  if (tasks.empty()) {
    result.best = SolutionString({}, {}, builder_->node_count());
    result.schedule = builder_->decode(context_, result.best, scratches_[0]);
    result.table_reads = scratches_[0].table_reads;
    total_table_reads_ += result.table_reads;
    return result;
  }

  const int n = config_.population_size;
  const int m = static_cast<int>(tasks.size());
  costs_.assign(static_cast<std::size_t>(n), 0.0);
  metrics_.assign(static_cast<std::size_t>(n), ScheduleMetrics{});
  memo_.begin_run(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(config_.generations));
  // Sync/constrain/seeding rewrote genomes above, so generation 0 has no
  // usable lineage: every individual rebuilds fully.
  parent_.assign(static_cast<std::size_t>(n), -1);
  span_.assign(static_cast<std::size_t>(n), 0);

  // Per-slot decode counters: chunks accumulate into their own slot and
  // the main thread reduces after the join, so the count (and everything
  // else in GaResult) is independent of thread scheduling.
  decode_slots_.assign(scratches_.size(), 0);
  const auto evaluate_chains = [&](int begin, int end, int slot) {
    DecodeScratch& scratch = scratches_[static_cast<std::size_t>(slot)];
    for (int c = begin; c < end; ++c) {
      const int first = chain_bounds_[static_cast<std::size_t>(c)];
      const int last = chain_bounds_[static_cast<std::size_t>(c) + 1];
      for (int i = first; i < last; ++i) {
        const EvalItem& item =
            eval_list_[static_cast<std::size_t>(chain_order_[
                static_cast<std::size_t>(i)])];
        const auto k = static_cast<std::size_t>(item.index);
        // The chain head rebuilds fully (the scratch may hold any earlier
        // chain's stream); every later member agrees with the member
        // before it on at least its own span, so its span is valid.
        const int span = i == first ? 0 : item.span;
        metrics_[k] =
            builder_->evaluate_from(context_, population_[k], scratch, span);
        costs_[k] = cost_value(metrics_[k], config_.weights);
        ++decode_slots_[static_cast<std::size_t>(slot)];
      }
    }
  };

  bool have_best = false;
  result.generations.reserve(static_cast<std::size_t>(config_.generations));
  for (int generation = 0; generation < config_.generations; ++generation) {
    // Triage on the main thread: memo hits and within-generation
    // duplicates resolve without evaluation; only genuinely new genotypes
    // reach the pool.  The triage consumes no randomness and depends only
    // on population contents, so every eval_threads value sees the same
    // eval list and the same counters.
    eval_list_.clear();
    fanout_.clear();
    for (int k = 0; k < n; ++k) {
      const SolutionString::Fingerprint fp =
          population_[static_cast<std::size_t>(k)].fingerprint();
      if (const GenotypeMemo::Entry* hit = memo_.find(fp)) {
        costs_[static_cast<std::size_t>(k)] = hit->cost;
        metrics_[static_cast<std::size_t>(k)] = hit->metrics;
        ++result.memo_hits;
        continue;
      }
      int rep = -1;
      for (const EvalItem& item : eval_list_) {
        if (item.fp == fp) {
          rep = item.index;
          break;
        }
      }
      if (rep >= 0) {
        fanout_.push_back(Fanout{k, rep});
      } else {
        eval_list_.push_back(EvalItem{fp, k,
                                      parent_[static_cast<std::size_t>(k)],
                                      span_[static_cast<std::size_t>(k)]});
      }
    }

    // Group the eval list into per-parent chains (DESIGN.md §16): genomes
    // bred from the same previous-generation parent agree with its decoded
    // stream up to their spans, so once the widest-span member has rebuilt
    // the scratch, each later member's own span is valid against it.  The
    // grouping depends only on population contents — never on thread
    // count or scheduling — so the delta/full split is data-determined.
    chain_order_.clear();
    chain_bounds_.clear();
    chain_taken_.assign(eval_list_.size(), 0);
    for (std::size_t i = 0; i < eval_list_.size(); ++i) {
      if (chain_taken_[i] != 0) continue;
      const auto head = static_cast<std::ptrdiff_t>(chain_order_.size());
      chain_bounds_.push_back(static_cast<int>(head));
      chain_order_.push_back(static_cast<int>(i));
      chain_taken_[i] = 1;
      const int parent = eval_list_[i].parent;
      if (parent < 0 || eval_list_[i].span <= 0) continue;
      for (std::size_t j = i + 1; j < eval_list_.size(); ++j) {
        if (chain_taken_[j] == 0 && eval_list_[j].parent == parent &&
            eval_list_[j].span > 0) {
          chain_order_.push_back(static_cast<int>(j));
          chain_taken_[j] = 1;
        }
      }
      std::stable_sort(chain_order_.begin() + head, chain_order_.end(),
                       [this](int x, int y) {
                         return eval_list_[static_cast<std::size_t>(x)].span >
                                eval_list_[static_cast<std::size_t>(y)].span;
                       });
    }
    chain_bounds_.push_back(static_cast<int>(chain_order_.size()));

    // Evaluate.  Only this phase runs on the pool: each individual's
    // metrics and cost are pure functions of its genome and the prepared
    // context, so the contents of `metrics_` and `costs_` do not depend
    // on the interleaving.  Chains are the unit of distribution — a chain
    // never splits across scratches.  Selection, crossover and mutation
    // below stay on this thread and consume `rng_` in the serial order.
    const int num_chains = static_cast<int>(chain_bounds_.size()) - 1;
    if (pool_ && num_chains > 1) {
      pool_->parallel_for(num_chains, evaluate_chains);
    } else if (num_chains > 0) {
      evaluate_chains(0, num_chains, 0);
    }

    // Publish results: new genotypes enter the memo (main thread, index
    // order) and duplicates copy their representative's result.
    for (const EvalItem& item : eval_list_) {
      memo_.insert(item.fp, costs_[static_cast<std::size_t>(item.index)],
                   metrics_[static_cast<std::size_t>(item.index)]);
    }
    for (const Fanout& dup : fanout_) {
      costs_[static_cast<std::size_t>(dup.index)] =
          costs_[static_cast<std::size_t>(dup.rep)];
      metrics_[static_cast<std::size_t>(dup.index)] =
          metrics_[static_cast<std::size_t>(dup.rep)];
      ++result.memo_hits;
    }

    // Track the best-ever individual (genome + cost only; the winning
    // schedule is decoded once, after the final generation).
    const auto best_it = std::min_element(costs_.begin(), costs_.end());
    const auto best_index =
        static_cast<std::size_t>(best_it - costs_.begin());
    if (!have_best || *best_it < result.best_cost) {
      have_best = true;
      result.best_cost = *best_it;
      result.best = population_[best_index];
      result.converged_at = generation;
    }
    result.generations.push_back(GaResult::GenerationStat{
        *best_it, std::accumulate(costs_.begin(), costs_.end(), 0.0) /
                      static_cast<double>(n)});
    ++result.generations_run;
    if (generation + 1 == config_.generations) break;

    // Breed the next generation.
    const std::vector<double> fitness = fitness_values(costs_);
    const std::vector<int> pool = select_parents(fitness);

    std::vector<SolutionString> next;
    next.reserve(static_cast<std::size_t>(n));
    if (config_.elite > 0) {
      // Elites: the `elite` lowest-cost individuals, unchanged.
      std::vector<int> by_cost(static_cast<std::size_t>(n));
      std::iota(by_cost.begin(), by_cost.end(), 0);
      std::partial_sort(by_cost.begin(),
                        by_cost.begin() + config_.elite, by_cost.end(),
                        [this](int a, int b) {
                          return costs_[static_cast<std::size_t>(a)] <
                                 costs_[static_cast<std::size_t>(b)];
                        });
      for (int e = 0; e < config_.elite; ++e) {
        const int src = by_cost[static_cast<std::size_t>(e)];
        // Unchanged copy: full agreement with its source (span = m); the
        // memo resolves elites before the chain stage ever sees them.
        parent_[next.size()] = src;
        span_[next.size()] = m;
        next.push_back(population_[static_cast<std::size_t>(src)]);
      }
    }
    while (static_cast<int>(next.size()) < n) {
      const int a = pool[static_cast<std::size_t>(
          rng_.next_below(pool.size()))];
      const int b = pool[static_cast<std::size_t>(
          rng_.next_below(pool.size()))];
      // Lineage for the delta path: the child agrees with parent `a` on
      // every position before the min of its operators' dirty spans.
      int span = m;
      SolutionString child;
      if (rng_.chance(config_.crossover_rate)) {
        child = population_[static_cast<std::size_t>(a)].crossover(
            population_[static_cast<std::size_t>(b)], rng_, &span);
      } else {
        child = population_[static_cast<std::size_t>(a)];
      }
      const int mutate_span =
          child.mutate(config_.order_swap_rate, config_.bit_flip_rate, rng_);
      span = std::min(span, mutate_span);
      if (constrained) {
        span = std::min(span, child.constrain(available, rng_));
      }
      parent_[next.size()] = a;
      span_[next.size()] = span;
      next.push_back(std::move(child));
    }
    population_ = std::move(next);
  }

  for (const std::uint64_t slot_decodes : decode_slots_) {
    result.decodes += slot_decodes;
  }
  // The one full decode of the run: placements for the winner only.
  result.schedule = builder_->decode(context_, result.best, scratches_[0]);
  ++result.decodes;
  for (const DecodeScratch& scratch : scratches_) {
    result.table_reads += scratch.table_reads;
    result.delta_evals += scratch.delta_evals;
    result.full_evals += scratch.full_evals;
  }
  total_decodes_ += result.decodes;
  total_memo_hits_ += result.memo_hits;
  total_table_reads_ += result.table_reads;
  total_delta_evals_ += result.delta_evals;
  total_full_evals_ += result.full_evals;
  // Keep the best individual alive for the next invocation's warm start.
  population_.front() = result.best;
  return result;
}

}  // namespace gridlb::sched
