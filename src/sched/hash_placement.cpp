#include "sched/hash_placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace gridlb::sched {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, the same shape the
/// Rng seeder uses.  Placement only needs a stationary hash (no stream),
/// so one round per word keeps place() cheap.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash of (seed, key, target) mapped to (0, 1]: the top 53 bits make the
/// mantissa, +1 excludes zero so the logarithm below is always finite.
double unit_draw(std::uint64_t seed, std::uint64_t key, std::uint64_t target) {
  const std::uint64_t h = mix64(mix64(seed ^ key) ^ target);
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

HashPlacement::HashPlacement(Config config, std::vector<PlacementTarget> targets)
    : config_(config), targets_(std::move(targets)) {
  GRIDLB_REQUIRE(!targets_.empty(), "placement needs at least one target");
  GRIDLB_REQUIRE(config_.load_tau >= 0.0,
                 "load tau cannot be negative (0 = no load tracking)");
  for (const PlacementTarget& target : targets_) {
    GRIDLB_REQUIRE(target.resource.valid(),
                   "placement target needs a valid resource id");
    GRIDLB_REQUIRE(target.weight > 0.0,
                   "placement weights must be positive");
  }
  available_.assign(targets_.size(), 1);
  busy_until_.assign(targets_.size(), 0.0);
}

double HashPlacement::hardware_weight(const pace::ResourceModel& model,
                                      int node_count) {
  GRIDLB_REQUIRE(node_count >= 1 && model.factor > 0.0,
                 "hardware weight needs nodes and a positive factor");
  return static_cast<double>(node_count) / model.factor;
}

PlacementDecision HashPlacement::place(std::uint64_t key, SimTime now) const {
  // Straw2: every available target draws ln(u)/w — a negative number
  // closer to zero the heavier the target — and the largest draw wins.
  // Each draw depends only on (seed, key, own id, own weight), never on
  // the other targets, which is the whole remapping contract.
  PlacementDecision best;
  double best_draw = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (!available_[i]) continue;
    double weight = targets_[i].weight;
    if (config_.load_tau > 0.0) {
      const double backlog = std::max(0.0, busy_until_[i] - now);
      weight /= 1.0 + backlog / config_.load_tau;
    }
    const double draw =
        std::log(unit_draw(config_.seed, key, targets_[i].resource.value())) /
        weight;
    if (!found || draw > best_draw) {
      found = true;
      best_draw = draw;
      best.index = i;
    }
  }
  GRIDLB_REQUIRE(found, "placement has no available target");
  best.resource = targets_[best.index].resource;
  best.draw = best_draw;
  return best;
}

void HashPlacement::record_dispatch(std::size_t index, SimTime now,
                                    double occupancy) {
  GRIDLB_REQUIRE(index < targets_.size(), "placement target out of range");
  if (config_.load_tau <= 0.0) return;
  busy_until_[index] =
      std::max(busy_until_[index], now) + std::max(0.0, occupancy);
}

void HashPlacement::set_weight(std::size_t index, double weight) {
  GRIDLB_REQUIRE(index < targets_.size(), "placement target out of range");
  GRIDLB_REQUIRE(weight > 0.0, "placement weights must be positive");
  targets_[index].weight = weight;
}

void HashPlacement::set_available(std::size_t index, bool up) {
  GRIDLB_REQUIRE(index < targets_.size(), "placement target out of range");
  available_[index] = up ? 1 : 0;
}

bool HashPlacement::available(std::size_t index) const {
  GRIDLB_REQUIRE(index < targets_.size(), "placement target out of range");
  return available_[index] != 0;
}

double HashPlacement::total_weight() const {
  double total = 0.0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (available_[i]) total += targets_[i].weight;
  }
  return total;
}

}  // namespace gridlb::sched
