#include "sched/fifo_scheduler.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"

namespace gridlb::sched {

FifoScheduler::FifoScheduler(pace::CachedEvaluator& evaluator,
                             pace::ResourceModel resource, int node_count,
                             FifoObjective objective)
    : evaluator_(&evaluator),
      resource_(resource),
      node_count_(node_count),
      objective_(objective) {
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
  evaluator_->snapshot(table_, resource_, node_count_);
}

FifoPlacement FifoScheduler::place(const Task& task,
                                   std::span<const SimTime> node_free,
                                   SimTime now) {
  return place(task, node_free, now, full_mask(node_count_));
}

FifoPlacement FifoScheduler::place(const Task& task,
                                   std::span<const SimTime> node_free,
                                   SimTime now, NodeMask available) {
  GRIDLB_REQUIRE(static_cast<int>(node_free.size()) == node_count_,
                 "node_free size mismatch");
  GRIDLB_REQUIRE(valid_mask(available, node_count_),
                 "place needs at least one available node");

  std::array<SimTime, kMaxNodesPerResource> free{};
  for (int i = 0; i < node_count_; ++i) {
    free[static_cast<std::size_t>(i)] =
        std::max(node_free[static_cast<std::size_t>(i)], now);
  }
  // One prediction row per application, materialised through the cache on
  // first sight and then reused lock-free; the subset loop only combines
  // row values.  Re-fetched per place() because a new application's row
  // build may relocate the table's storage.
  const double* exec_row = table_.ensure_row(*evaluator_, *task.app);
  table_reads_ += static_cast<std::uint64_t>(node_count_);

  FifoPlacement best;
  double best_exec = 0.0;
  bool have_best = false;
  const std::uint64_t all = full_mask(node_count_);
  for (std::uint64_t raw = 1; raw <= all; ++raw) {
    const auto mask = static_cast<NodeMask>(raw);
    ++subsets_tried_;
    if ((mask & ~available) != 0) continue;  // touches a down node
    SimTime start = now;
    for_each_node(mask, [&](int node) {
      start = std::max(start, free[static_cast<std::size_t>(node)]);
    });
    const double exec = exec_row[node_count(mask) - 1];
    const SimTime end = start + exec;
    bool better;
    if (objective_ == FifoObjective::kMinExecution) {
      // Execution time first; among equally-fast allocations take the one
      // that can begin earliest.
      better = !have_best || exec < best_exec ||
               (exec == best_exec && end < best.end);
    } else {
      better = !have_best || end < best.end;
    }
    if (!better && have_best &&
        ((objective_ == FifoObjective::kMinExecution &&
          exec == best_exec && end == best.end) ||
         (objective_ == FifoObjective::kMinCompletion && end == best.end))) {
      // Deterministic tie-breaks: fewer nodes, then the lower mask.
      better = node_count(mask) < node_count(best.mask) ||
               (node_count(mask) == node_count(best.mask) && mask < best.mask);
    }
    if (better) {
      have_best = true;
      best_exec = exec;
      best = FifoPlacement{mask, start, end};
    }
  }
  GRIDLB_ASSERT(have_best);
  return best;
}

}  // namespace gridlb::sched
