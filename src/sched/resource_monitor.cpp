#include "sched/resource_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gridlb::sched {

NodeAvailability::NodeAvailability(int node_count)
    : mask_(full_mask(node_count)), node_count_(node_count) {
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
}

void NodeAvailability::set(int node, bool up) {
  GRIDLB_REQUIRE(node >= 0 && node < node_count_, "node index out of range");
  const NodeMask bit = NodeMask{1} << node;
  const NodeMask updated = up ? (mask_ | bit) : (mask_ & ~bit);
  if (updated != mask_) {
    mask_ = updated;
    ++transitions_;
  }
}

bool NodeAvailability::up(int node) const {
  GRIDLB_REQUIRE(node >= 0 && node < node_count_, "node index out of range");
  return ((mask_ >> node) & 1u) != 0;
}

std::vector<AvailabilityEvent> random_availability_script(
    int node_count, SimTime horizon, double mtbf, double mttr,
    std::uint64_t seed) {
  GRIDLB_REQUIRE(node_count >= 1, "need at least one node");
  GRIDLB_REQUIRE(horizon > 0.0, "horizon must be positive");
  GRIDLB_REQUIRE(mtbf > 0.0 && mttr > 0.0, "MTBF and MTTR must be positive");

  Rng rng(seed);
  const auto exponential = [&rng](double mean) {
    // Inverse-CDF sampling; 1 − u avoids log(0).
    return -mean * std::log(1.0 - rng.next_double());
  };

  std::vector<AvailabilityEvent> events;
  for (int node = 0; node < node_count; ++node) {
    SimTime t = 0.0;
    for (;;) {
      t += exponential(mtbf);  // next failure
      if (t >= horizon) break;
      events.push_back(AvailabilityEvent{t, node, false});
      t += exponential(mttr);  // repair
      if (t >= horizon) break;
      events.push_back(AvailabilityEvent{t, node, true});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const AvailabilityEvent& a, const AvailabilityEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.node < b.node;
            });
  return events;
}

void schedule_availability(sim::Engine& engine, NodeAvailability& truth,
                           std::vector<AvailabilityEvent> script) {
  for (const AvailabilityEvent& event : script) {
    GRIDLB_REQUIRE(event.at >= engine.now(),
                   "availability script reaches into the past");
    engine.schedule_at(event.at, [&truth, event]() {
      truth.set(event.node, event.up);
    });
  }
}

ResourceMonitor::ResourceMonitor(sim::Engine& engine,
                                 LocalScheduler& scheduler,
                                 const NodeAvailability& truth,
                                 double poll_period)
    : engine_(engine),
      scheduler_(scheduler),
      truth_(truth),
      poll_period_(poll_period),
      view_(full_mask(truth.node_count())) {
  GRIDLB_REQUIRE(poll_period > 0.0, "poll period must be positive");
  GRIDLB_REQUIRE(truth.node_count() == scheduler.config().node_count,
                 "monitor and scheduler disagree on the node count");
}

void ResourceMonitor::start() {
  GRIDLB_REQUIRE(!started_, "monitor already started");
  started_ = true;
  engine_.schedule_periodic(0.0, poll_period_, [this]() { poll(); });
}

void ResourceMonitor::poll() {
  ++polls_;
  const NodeMask current = truth_.mask();
  const NodeMask changed = current ^ view_;
  if (changed == 0) return;
  for_each_node(changed, [&](int node) {
    ++changes_;
    scheduler_.set_node_available(node, truth_.up(node));
  });
  view_ = current;
}

}  // namespace gridlb::sched
