// The performance-driven local grid scheduler (paper §2.2, Fig. 3).
//
// One LocalScheduler manages one grid resource: a homogeneous cluster of
// processing nodes.  It reproduces the paper's six functional modules in
// simulation form:
//   * communication  — `submit` (requests in) and the completion sink /
//                      service snapshot (results + service info out),
//   * task management — the pending queue with unique task ids,
//   * GA / FIFO scheduling — the pluggable policy below,
//   * resource monitoring — per-node availability (free times) and the
//                      service-information snapshot with the advertised
//                      *freetime* ("the latest GA scheduling makespan
//                      indicates the earliest (approximate) time that
//                      corresponding processors become available"),
//   * task execution — in the paper's *test mode*: a committed task holds
//                      its nodes for exactly the PACE-predicted duration,
//   * PACE evaluation engine — shared CachedEvaluator.
//
// Scheduling dynamics: on every arrival and completion the GA re-optimises
// the pending queue (warm-started population); tasks whose planned start
// has arrived are committed to their nodes and leave the optimisation set
// ("once a task begins execution, it is removed from the task set T").
// The FIFO policy instead fixes each task's allocation permanently the
// moment it arrives.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pace/evaluation_engine.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sched/ga_scheduler.hpp"
#include "sim/engine.hpp"

namespace gridlb::sched {

enum class SchedulerPolicy { kFifo, kGa };

[[nodiscard]] std::string_view policy_name(SchedulerPolicy policy);

/// Aggregate queueing behaviour of one scheduler.
struct QueueStats {
  std::uint64_t started = 0;       ///< tasks that began executing
  double total_wait = 0.0;         ///< Σ (start − arrival), seconds
  double max_wait = 0.0;
  double total_execution = 0.0;    ///< Σ (end − start) as committed
  int peak_queue_length = 0;       ///< largest pending count observed
  [[nodiscard]] double mean_wait() const {
    return started > 0 ? total_wait / static_cast<double>(started) : 0.0;
  }
};

/// Emitted once per task at its (virtual-time) completion.
struct CompletionRecord {
  TaskId task;
  AgentId resource;
  NodeMask mask = 0;
  std::string app_name;
  SimTime submitted = 0.0;  ///< arrival at this scheduler
  SimTime start = 0.0;      ///< τ_j
  SimTime end = 0.0;        ///< η_j
  SimTime deadline = 0.0;   ///< δ_j
};

class LocalScheduler {
 public:
  struct Config {
    AgentId resource_id;
    pace::ResourceModel resource;
    int node_count = 16;
    SchedulerPolicy policy = SchedulerPolicy::kGa;
    FifoObjective fifo_objective = FifoObjective::kMinExecution;
    GaConfig ga;
    std::vector<std::string> environments = {"mpi", "pvm", "test"};
    std::uint64_t seed = 1;
    /// Prediction-accuracy study (the paper's stated future work): when
    /// non-zero, a task's *actual* execution time deviates from the PACE
    /// prediction by a deterministic multiplicative factor uniform in
    /// [1−e, 1+e].  Schedulers still plan with the predictions; reality
    /// drifts, deadlines slip, and advertised freetimes go stale.
    double prediction_error = 0.0;
  };

  using CompletionSink = std::function<void(const CompletionRecord&)>;

  LocalScheduler(sim::Engine& engine, pace::CachedEvaluator& evaluator,
                 Config config, CompletionSink sink);

  LocalScheduler(const LocalScheduler&) = delete;
  LocalScheduler& operator=(const LocalScheduler&) = delete;

  /// Accepts a task for scheduling and execution.
  void submit(Task task);

  /// Removes a still-pending task from the queue (task-management
  /// "deleting" operation).  Returns false if the task already started
  /// executing or was never submitted; running tasks cannot be recalled.
  bool cancel(TaskId task);

  /// Removes every still-pending task at once — the local consequence of
  /// an agent-process crash (DESIGN.md §10).  Running tasks are untouched
  /// (they hold their nodes on the resource, not in the agent process).
  /// Returns the ids of the drained tasks so the caller can re-discover
  /// them.
  [[nodiscard]] std::vector<TaskId> drain_pending();

  /// Resource-monitoring input: marks one processing node as available or
  /// unavailable.  Down nodes finish their current task (graceful drain)
  /// but receive no new work until they return; the GA re-optimises the
  /// pending queue around the change.
  void set_node_available(int node, bool up);

  /// Nodes currently usable for new work.
  [[nodiscard]] NodeMask available_nodes() const { return available_; }

  /// Earliest (approximate) absolute time the resource's processors become
  /// available for more work — the freetime item of the Fig. 5 service
  /// document.
  [[nodiscard]] SimTime freetime() const;

  /// True if the requested execution environment is supported.
  [[nodiscard]] bool supports(const std::string& environment) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int pending_count() const {
    return static_cast<int>(pending_.size());
  }
  [[nodiscard]] int running_count() const { return running_; }
  [[nodiscard]] std::uint64_t tasks_completed() const { return completed_; }
  [[nodiscard]] std::span<const SimTime> node_free() const {
    return node_free_;
  }
  [[nodiscard]] const ScheduleBuilder& builder() const { return builder_; }
  /// GA statistics (zero when the FIFO policy is active).
  [[nodiscard]] std::uint64_t ga_invocations() const { return ga_runs_; }
  [[nodiscard]] std::uint64_t ga_decodes() const {
    return ga_ ? ga_->total_decodes() : 0;
  }
  [[nodiscard]] std::uint64_t ga_memo_hits() const {
    return ga_ ? ga_->total_memo_hits() : 0;
  }
  /// Incremental vs full schedule evaluations (DESIGN.md §16);
  /// `ga_delta_evals() + ga_full_evals() == ga_decodes()`.
  [[nodiscard]] std::uint64_t ga_delta_evals() const {
    return ga_ ? ga_->total_delta_evals() : 0;
  }
  [[nodiscard]] std::uint64_t ga_full_evals() const {
    return ga_ ? ga_->total_full_evals() : 0;
  }
  /// Resolved GA evaluate-phase thread count (1 under the FIFO policy).
  [[nodiscard]] int ga_eval_threads() const {
    return ga_ ? ga_->eval_threads() : 1;
  }
  [[nodiscard]] std::uint64_t fifo_subsets_tried() const {
    return fifo_ ? fifo_->subsets_tried() : 0;
  }
  /// Lock-free prediction-table reads across whichever policy is active
  /// (DESIGN.md §11) — the lookups that no longer reach the shared cache.
  [[nodiscard]] std::uint64_t prediction_table_reads() const {
    if (ga_) return ga_->total_table_reads();
    return fifo_ ? fifo_->table_reads() : 0;
  }
  [[nodiscard]] const QueueStats& queue_stats() const { return queue_stats_; }

 private:
  void request_reschedule();
  void reschedule();
  void commit(std::size_t pending_index, NodeMask mask, SimTime start,
              SimTime end);

  sim::Engine& engine_;
  Config config_;
  ScheduleBuilder builder_;
  std::optional<GaScheduler> ga_;
  std::optional<FifoScheduler> fifo_;
  CompletionSink sink_;

  std::vector<Task> pending_;
  std::vector<SimTime> node_free_;
  NodeMask available_ = 0;
  SimTime last_plan_completion_ = 0.0;
  int running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t ga_runs_ = 0;
  QueueStats queue_stats_;
  bool reschedule_pending_ = false;
};

}  // namespace gridlb::sched
