#include "sched/cost.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gridlb::sched {

double cost_value(const ScheduleMetrics& schedule, const CostWeights& weights) {
  GRIDLB_REQUIRE(weights.makespan >= 0.0 && weights.idle >= 0.0 &&
                     weights.deadline >= 0.0 && weights.flowtime >= 0.0,
                 "cost weights must be non-negative");
  const double denominator = weights.makespan + weights.idle +
                             weights.deadline + weights.flowtime;
  GRIDLB_REQUIRE(denominator > 0.0, "at least one cost weight must be set");
  return (weights.makespan * schedule.makespan +
          weights.idle * schedule.weighted_idle +
          weights.deadline * schedule.contract_penalty +
          weights.flowtime * schedule.mean_completion) /
         denominator;
}

std::vector<double> fitness_values(std::span<const double> costs) {
  std::vector<double> fitness(costs.size(), 1.0);
  if (costs.empty()) return fitness;
  const auto [min_it, max_it] = std::minmax_element(costs.begin(), costs.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (hi - lo <= 0.0) return fitness;  // degenerate: uniform fitness
  for (std::size_t k = 0; k < costs.size(); ++k) {
    fitness[k] = (hi - costs[k]) / (hi - lo);
  }
  return fitness;
}

}  // namespace gridlb::sched
