// Decoding a solution string into a concrete schedule (Gantt chart).
//
// Implements the paper's schedule semantics: tasks are laid out in the
// ordering part's sequence; each task starts at the earliest moment all of
// its allocated nodes are simultaneously free ("a start time at which the
// allocated nodes all begin to execute the task in unison", eq. 6) and
// completes after the PACE-predicted execution time t_x(ρ_j, σ_j).
//
// Alongside the placements the decoder produces the three raw metrics the
// GA's cost function combines (eq. 8):
//   ω  makespan — latest completion, relative to `now` (eq. 7),
//   φ  front-weighted idle time — "idle time at the front of the schedule
//      is particularly undesirable … solutions that have large idle times
//      are penalised by weighting pockets of idle time",
//   θ  contract penalty — total deadline overrun Σ max(0, η_j − δ_j).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "pace/evaluation_engine.hpp"
#include "sched/solution.hpp"
#include "sched/task.hpp"

namespace gridlb::sched {

/// Where one task landed in the decoded schedule.
struct TaskPlacement {
  SimTime start = 0.0;  ///< τ_j (absolute)
  SimTime end = 0.0;    ///< η_j (absolute)
  NodeMask mask = 0;    ///< ρ_j
};

/// A fully-decoded schedule plus its cost-function inputs.
struct DecodedSchedule {
  std::vector<TaskPlacement> placements;  ///< indexed by task index
  SimTime completion = 0.0;  ///< absolute latest completion (max η_j)
  double makespan = 0.0;     ///< ω: completion − now (0 for empty schedules)
  double total_idle = 0.0;   ///< unweighted idle seconds across all nodes
  double weighted_idle = 0.0;  ///< φ: front-weighted idle
  double contract_penalty = 0.0;  ///< θ: Σ max(0, η_j − δ_j)
  double mean_completion = 0.0;   ///< Φ: mean of (η_j − now), the flowtime
  int deadline_misses = 0;
};

class ScheduleBuilder {
 public:
  /// `evaluator` and `resource` provide t_x; `node_count` fixes ρ's width.
  ScheduleBuilder(pace::CachedEvaluator& evaluator,
                  pace::ResourceModel resource, int node_count);

  /// Decodes `solution` over `tasks`, starting from per-node earliest
  /// availability `node_free` (absolute times; entries before `now` are
  /// treated as free-at-`now` — idle already in the past is sunk cost and
  /// identical for every candidate schedule).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now) const;

  /// As above, but nodes outside `available` are down (resource-monitor
  /// view): they count as free only at `now + kUnavailableHorizon`, so any
  /// solution allocating them is heavily penalised through its makespan,
  /// and they contribute no idle time (an absent node is not wasted
  /// capacity).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now, NodeMask available) const;

  /// Virtual availability horizon for down nodes (seconds past `now`).
  static constexpr double kUnavailableHorizon = 1e7;

  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] const pace::ResourceModel& resource() const {
    return resource_;
  }
  [[nodiscard]] pace::CachedEvaluator& evaluator() const {
    return *evaluator_;
  }

 private:
  pace::CachedEvaluator* evaluator_;
  pace::ResourceModel resource_;
  int node_count_;
};

}  // namespace gridlb::sched
