// Decoding a solution string into a concrete schedule (Gantt chart).
//
// Implements the paper's schedule semantics: tasks are laid out in the
// ordering part's sequence; each task starts at the earliest moment all of
// its allocated nodes are simultaneously free ("a start time at which the
// allocated nodes all begin to execute the task in unison", eq. 6) and
// completes after the PACE-predicted execution time t_x(ρ_j, σ_j).
//
// Alongside the placements the decoder produces the three raw metrics the
// GA's cost function combines (eq. 8):
//   ω  makespan — latest completion, relative to `now` (eq. 7),
//   φ  front-weighted idle time — "idle time at the front of the schedule
//      is particularly undesirable … solutions that have large idle times
//      are penalised by weighting pockets of idle time",
//   θ  contract penalty — total deadline overrun Σ max(0, η_j − δ_j).
//
// Two decoding paths share one implementation (DESIGN.md §11):
//   * evaluate() — metrics only, the GA's hot path.  All genome-invariant
//     work (prediction-table snapshot, per-task rows, clamped node
//     availability) is hoisted into a DecodeContext by prepare(), and all
//     mutable buffers live in a caller-owned DecodeScratch, so steady-state
//     evaluation performs zero heap allocations and zero lock acquisitions.
//   * decode() — evaluate() plus the per-task placements, run once for the
//     winning solution (and by tests/tools that want the full Gantt view).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pace/evaluation_engine.hpp"
#include "sched/solution.hpp"
#include "sched/task.hpp"

namespace gridlb::sched {

/// Where one task landed in the decoded schedule.
struct TaskPlacement {
  SimTime start = 0.0;  ///< τ_j (absolute)
  SimTime end = 0.0;    ///< η_j (absolute)
  NodeMask mask = 0;    ///< ρ_j
};

/// The cost-function inputs of one decoded schedule — everything the GA
/// needs to rank an individual, with no per-task storage.
struct ScheduleMetrics {
  SimTime completion = 0.0;  ///< absolute latest completion (max η_j)
  double makespan = 0.0;     ///< ω: completion − now (0 for empty schedules)
  double total_idle = 0.0;   ///< unweighted idle seconds across all nodes
  double weighted_idle = 0.0;  ///< φ: front-weighted idle
  double contract_penalty = 0.0;  ///< θ: Σ max(0, η_j − δ_j)
  double mean_completion = 0.0;   ///< Φ: mean of (η_j − now), the flowtime
  int deadline_misses = 0;
};

/// A fully-decoded schedule: the metrics plus its cost-function inputs.
struct DecodedSchedule : ScheduleMetrics {
  std::vector<TaskPlacement> placements;  ///< indexed by task index
};

/// Genome-invariant state for decoding one task set: the prediction-table
/// snapshot, per-task prediction rows, and the clamped per-node
/// availability.  Built once per scheduling run by
/// ScheduleBuilder::prepare and then shared read-only by every evaluate /
/// decode of that run (any number of threads).  Reusing one context across
/// runs reuses all of its capacity.
class DecodeContext {
 public:
  DecodeContext() = default;

  [[nodiscard]] int task_count() const {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] NodeMask available() const { return available_; }

  /// Predicted execution time of task `t` on `k` nodes — pure array
  /// indexing into the snapshot (bit-identical to the cache's value).
  [[nodiscard]] double exec_time(int t, int k) const {
    return rows_[static_cast<std::size_t>(t)][k - 1];
  }

  [[nodiscard]] const pace::PredictionTable& table() const { return table_; }

  /// Identity of this prepared state — bumped by every prepare(), unique
  /// across contexts.  A scratch stamps the epoch its recorded prefix
  /// belongs to, so stale checkpoints can never be replayed against a
  /// different task set (DESIGN.md §16).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  friend class ScheduleBuilder;

  pace::PredictionTable table_;
  std::vector<const double*> rows_;  ///< task index -> prediction row
  std::vector<double> deadlines_;    ///< task index -> δ_j (hoisted)
  /// Effective per-node availability: past free times clamped to `now`,
  /// down nodes pushed to the unavailable horizon.
  std::array<SimTime, kMaxNodesPerResource> base_free_{};
  SimTime now_ = 0.0;
  NodeMask available_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Per-thread mutable buffers for evaluate/decode, laid out as structure-
/// of-arrays (DESIGN.md §16): idle pockets live in parallel start/length
/// vectors (compacted branch-free), and the decoded (task, mask) stream
/// plus stride-`kCheckpointStride` prefix checkpoints make incremental
/// re-evaluation possible.  One scratch per worker slot; capacity grows to
/// the run's high-water mark and is then reused, so steady-state decoding
/// never allocates.
struct DecodeScratch {
  /// Checkpoint spacing in schedule positions: the delta path replays at
  /// most kCheckpointStride-1 positions of agreed prefix before reaching
  /// the first change.  32 keeps checkpoint storage per scratch at ~3% of
  /// the stream while bounding replay waste to half a stride on average.
  static constexpr int kCheckpointStride = 32;

  std::array<SimTime, kMaxNodesPerResource> free{};

  // -- idle pockets, structure-of-arrays ---------------------------------
  // gap_start[i]/gap_length[i] describe one pocket of idle time (before a
  // task's unison start, or trailing idle before the makespan end).  The
  // arrays are sized for the worst case up front and compacted without
  // branches; entries past the live count are scratch garbage.
  std::vector<SimTime> gap_start;
  std::vector<double> gap_length;

  /// Prediction-table reads performed through this scratch (one per task
  /// actually replayed — delta evaluations only re-read their suffix).
  std::uint64_t table_reads = 0;
  /// Evaluations that reused a checkpointed prefix (includes unchanged-
  /// genome evaluations answered from `last_metrics`).
  std::uint64_t delta_evals = 0;
  /// Evaluations that rebuilt the schedule from position 0.
  std::uint64_t full_evals = 0;

  // -- incremental-evaluation state (DESIGN.md §16) ----------------------
  // The (task, mask) stream of the last evaluation and prefix checkpoints
  // of the decode state before positions 0, S, 2S, ... (S = stride).
  // Valid only while `context_epoch` matches the context and `done_count`
  // equals its task count; managed by ScheduleBuilder::run.
  std::uint64_t context_epoch = 0;
  int done_count = -1;  ///< positions recorded by the last evaluation
  std::vector<int> done_task;        ///< position -> task decoded there
  std::vector<NodeMask> done_mask;   ///< position -> mask used
  std::vector<SimTime> ck_free;      ///< checkpoint c: node frees (flat)
  std::vector<SimTime> ck_completion;
  std::vector<double> ck_mean_sum;   ///< Σ (η_j − now) before the position
  std::vector<double> ck_penalty;
  std::vector<int> ck_misses;
  std::vector<std::size_t> ck_gap_count;
  /// Metrics of the last evaluation — returned verbatim when a dirty span
  /// says nothing changed.
  ScheduleMetrics last_metrics;
};

class ScheduleBuilder {
 public:
  /// `evaluator` and `resource` provide t_x; `node_count` fixes ρ's width.
  ScheduleBuilder(pace::CachedEvaluator& evaluator,
                  pace::ResourceModel resource, int node_count);

  // -- hot path -----------------------------------------------------------

  /// Builds `context` for one scheduling run: snapshots the prediction
  /// table for every distinct application in `tasks` (the only step that
  /// touches the shard locks), hoists per-task rows, and clamps per-node
  /// availability (`node_free` entries before `now` count as free-at-`now`
  /// — idle already in the past is sunk cost; nodes outside `available`
  /// come free only at `now + kUnavailableHorizon`, so any solution
  /// allocating them is heavily penalised through its makespan, and they
  /// contribute no idle time).
  void prepare(DecodeContext& context, std::span<const Task> tasks,
               std::span<const SimTime> node_free, SimTime now,
               NodeMask available) const;

  /// Metrics-only decode of `solution` under `context` — the GA's
  /// steady-state evaluation: zero heap allocations (all buffers live in
  /// `scratch`) and zero lock acquisitions (all predictions come from the
  /// context's snapshot).  Returns exactly the metrics decode() would.
  ///
  /// Incremental: the scratch records the (task, mask) stream it last
  /// decoded, so this entry point diffs `solution` against that stream and
  /// repairs only from the first differing position (full rebuild when the
  /// recorded prefix is stale or the genomes diverge at position 0).
  /// Results are bit-for-bit those of a full rebuild in every case.
  [[nodiscard]] ScheduleMetrics evaluate(const DecodeContext& context,
                                         const SolutionString& solution,
                                         DecodeScratch& scratch) const;

  /// evaluate() with a caller-supplied dirty span: `first_changed` asserts
  /// that `solution` decodes identically to the scratch's recorded stream
  /// at every position before it (the spans reported by
  /// SolutionString::crossover / mutate / constrain, combined by min over
  /// the operator chain, satisfy this for the bred child vs its primary
  /// parent).  Restores the nearest prefix checkpoint at or before
  /// `first_changed` and replays only the suffix; `first_changed <= 0` or
  /// an invalid recorded prefix falls back to a full rebuild, and
  /// `first_changed >= task_count` returns the previous metrics verbatim.
  /// Unlike evaluate(), no O(task_count) diff scan is paid.
  [[nodiscard]] ScheduleMetrics evaluate_from(const DecodeContext& context,
                                              const SolutionString& solution,
                                              DecodeScratch& scratch,
                                              int first_changed) const;

  /// Full decode under a prepared context: evaluate() plus the per-task
  /// placements.  Run once for the winning solution.
  [[nodiscard]] DecodedSchedule decode(const DecodeContext& context,
                                       const SolutionString& solution,
                                       DecodeScratch& scratch) const;

  // -- convenience (self-contained, allocates its own context) ------------

  /// Decodes `solution` over `tasks`, starting from per-node earliest
  /// availability `node_free` (absolute times).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now) const;

  /// As above, but nodes outside `available` are down (resource-monitor
  /// view).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now, NodeMask available) const;

  /// Virtual availability horizon for down nodes (seconds past `now`).
  static constexpr double kUnavailableHorizon = 1e7;

  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] const pace::ResourceModel& resource() const {
    return resource_;
  }
  [[nodiscard]] pace::CachedEvaluator& evaluator() const {
    return *evaluator_;
  }

 private:
  /// Shared implementation of evaluate/evaluate_from/decode; `placements`
  /// (indexed by task) is written only when non-null, which also forces a
  /// full rebuild (a reused prefix would leave prefix placements unwritten).
  /// `first_changed` is the trusted dirty span (<= 0 for a full rebuild).
  /// The arithmetic is identical in all modes — same operations on the
  /// same values in the same order — so metrics-only evaluation, delta
  /// re-evaluation and full decode agree bit-for-bit.
  ScheduleMetrics run(const DecodeContext& context,
                      const SolutionString& solution, DecodeScratch& scratch,
                      TaskPlacement* placements, int first_changed) const;

  pace::CachedEvaluator* evaluator_;
  pace::ResourceModel resource_;
  int node_count_;
};

}  // namespace gridlb::sched
