// Decoding a solution string into a concrete schedule (Gantt chart).
//
// Implements the paper's schedule semantics: tasks are laid out in the
// ordering part's sequence; each task starts at the earliest moment all of
// its allocated nodes are simultaneously free ("a start time at which the
// allocated nodes all begin to execute the task in unison", eq. 6) and
// completes after the PACE-predicted execution time t_x(ρ_j, σ_j).
//
// Alongside the placements the decoder produces the three raw metrics the
// GA's cost function combines (eq. 8):
//   ω  makespan — latest completion, relative to `now` (eq. 7),
//   φ  front-weighted idle time — "idle time at the front of the schedule
//      is particularly undesirable … solutions that have large idle times
//      are penalised by weighting pockets of idle time",
//   θ  contract penalty — total deadline overrun Σ max(0, η_j − δ_j).
//
// Two decoding paths share one implementation (DESIGN.md §11):
//   * evaluate() — metrics only, the GA's hot path.  All genome-invariant
//     work (prediction-table snapshot, per-task rows, clamped node
//     availability) is hoisted into a DecodeContext by prepare(), and all
//     mutable buffers live in a caller-owned DecodeScratch, so steady-state
//     evaluation performs zero heap allocations and zero lock acquisitions.
//   * decode() — evaluate() plus the per-task placements, run once for the
//     winning solution (and by tests/tools that want the full Gantt view).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pace/evaluation_engine.hpp"
#include "sched/solution.hpp"
#include "sched/task.hpp"

namespace gridlb::sched {

/// Where one task landed in the decoded schedule.
struct TaskPlacement {
  SimTime start = 0.0;  ///< τ_j (absolute)
  SimTime end = 0.0;    ///< η_j (absolute)
  NodeMask mask = 0;    ///< ρ_j
};

/// The cost-function inputs of one decoded schedule — everything the GA
/// needs to rank an individual, with no per-task storage.
struct ScheduleMetrics {
  SimTime completion = 0.0;  ///< absolute latest completion (max η_j)
  double makespan = 0.0;     ///< ω: completion − now (0 for empty schedules)
  double total_idle = 0.0;   ///< unweighted idle seconds across all nodes
  double weighted_idle = 0.0;  ///< φ: front-weighted idle
  double contract_penalty = 0.0;  ///< θ: Σ max(0, η_j − δ_j)
  double mean_completion = 0.0;   ///< Φ: mean of (η_j − now), the flowtime
  int deadline_misses = 0;
};

/// A fully-decoded schedule: the metrics plus its cost-function inputs.
struct DecodedSchedule : ScheduleMetrics {
  std::vector<TaskPlacement> placements;  ///< indexed by task index
};

/// Genome-invariant state for decoding one task set: the prediction-table
/// snapshot, per-task prediction rows, and the clamped per-node
/// availability.  Built once per scheduling run by
/// ScheduleBuilder::prepare and then shared read-only by every evaluate /
/// decode of that run (any number of threads).  Reusing one context across
/// runs reuses all of its capacity.
class DecodeContext {
 public:
  DecodeContext() = default;

  [[nodiscard]] int task_count() const {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] NodeMask available() const { return available_; }

  /// Predicted execution time of task `t` on `k` nodes — pure array
  /// indexing into the snapshot (bit-identical to the cache's value).
  [[nodiscard]] double exec_time(int t, int k) const {
    return rows_[static_cast<std::size_t>(t)][k - 1];
  }

  [[nodiscard]] const pace::PredictionTable& table() const { return table_; }

 private:
  friend class ScheduleBuilder;

  pace::PredictionTable table_;
  std::vector<const double*> rows_;  ///< task index -> prediction row
  std::vector<double> deadlines_;    ///< task index -> δ_j (hoisted)
  /// Effective per-node availability: past free times clamped to `now`,
  /// down nodes pushed to the unavailable horizon.
  std::array<SimTime, kMaxNodesPerResource> base_free_{};
  SimTime now_ = 0.0;
  NodeMask available_ = 0;
};

/// Per-thread mutable buffers for evaluate/decode.  One scratch per worker
/// slot; capacity grows to the run's high-water mark and is then reused,
/// so steady-state decoding never allocates.
struct DecodeScratch {
  /// One pocket of idle time (a gap before a task's unison start, or
  /// trailing idle before the makespan end).
  struct Gap {
    SimTime start;
    double length;
  };

  std::array<SimTime, kMaxNodesPerResource> free{};
  std::vector<Gap> gaps;
  /// Prediction-table reads performed through this scratch (one per task
  /// per evaluation) — the lookups the sharded cache no longer sees.
  std::uint64_t table_reads = 0;
};

class ScheduleBuilder {
 public:
  /// `evaluator` and `resource` provide t_x; `node_count` fixes ρ's width.
  ScheduleBuilder(pace::CachedEvaluator& evaluator,
                  pace::ResourceModel resource, int node_count);

  // -- hot path -----------------------------------------------------------

  /// Builds `context` for one scheduling run: snapshots the prediction
  /// table for every distinct application in `tasks` (the only step that
  /// touches the shard locks), hoists per-task rows, and clamps per-node
  /// availability (`node_free` entries before `now` count as free-at-`now`
  /// — idle already in the past is sunk cost; nodes outside `available`
  /// come free only at `now + kUnavailableHorizon`, so any solution
  /// allocating them is heavily penalised through its makespan, and they
  /// contribute no idle time).
  void prepare(DecodeContext& context, std::span<const Task> tasks,
               std::span<const SimTime> node_free, SimTime now,
               NodeMask available) const;

  /// Metrics-only decode of `solution` under `context` — the GA's
  /// steady-state evaluation: zero heap allocations (all buffers live in
  /// `scratch`) and zero lock acquisitions (all predictions come from the
  /// context's snapshot).  Returns exactly the metrics decode() would.
  [[nodiscard]] ScheduleMetrics evaluate(const DecodeContext& context,
                                         const SolutionString& solution,
                                         DecodeScratch& scratch) const;

  /// Full decode under a prepared context: evaluate() plus the per-task
  /// placements.  Run once for the winning solution.
  [[nodiscard]] DecodedSchedule decode(const DecodeContext& context,
                                       const SolutionString& solution,
                                       DecodeScratch& scratch) const;

  // -- convenience (self-contained, allocates its own context) ------------

  /// Decodes `solution` over `tasks`, starting from per-node earliest
  /// availability `node_free` (absolute times).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now) const;

  /// As above, but nodes outside `available` are down (resource-monitor
  /// view).
  [[nodiscard]] DecodedSchedule decode(std::span<const Task> tasks,
                                       const SolutionString& solution,
                                       std::span<const SimTime> node_free,
                                       SimTime now, NodeMask available) const;

  /// Virtual availability horizon for down nodes (seconds past `now`).
  static constexpr double kUnavailableHorizon = 1e7;

  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] const pace::ResourceModel& resource() const {
    return resource_;
  }
  [[nodiscard]] pace::CachedEvaluator& evaluator() const {
    return *evaluator_;
  }

 private:
  /// Shared implementation of evaluate/decode; `placements` (indexed by
  /// task) is written only when non-null.  The arithmetic is identical in
  /// both modes, so metrics-only evaluation is bit-for-bit the metrics of
  /// a full decode.
  ScheduleMetrics run(const DecodeContext& context,
                      const SolutionString& solution, DecodeScratch& scratch,
                      TaskPlacement* placements) const;

  pace::CachedEvaluator* evaluator_;
  pace::ResourceModel resource_;
  int node_count_;
};

}  // namespace gridlb::sched
