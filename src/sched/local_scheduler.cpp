#include "sched/local_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace gridlb::sched {

namespace {

constexpr double kStartEpsilon = 1e-9;

/// Pending-count sample: one trace event (rendered as a Chrome counter
/// track per resource) plus one histogram observation.
void observe_queue_depth(SimTime now, AgentId resource, int depth) {
  obs::emit({.at = now,
             .kind = obs::EventKind::kQueueDepth,
             .resource = resource.value(),
             .a = static_cast<double>(depth)});
  if (auto* reg = obs::registry()) {
    reg->histogram("sched.queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(depth));
  }
}

// Deterministic per-task uniform(0,1) draw, independent of call order (so
// FIFO and GA runs see identical realities for the same task).
double hash_unit(std::uint64_t seed, TaskId task) {
  std::uint64_t x = seed ^ (task.value() * 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo: return "FIFO";
    case SchedulerPolicy::kGa: return "GA";
  }
  GRIDLB_ASSERT(false);
}

LocalScheduler::LocalScheduler(sim::Engine& engine,
                               pace::CachedEvaluator& evaluator, Config config,
                               CompletionSink sink)
    : engine_(engine),
      config_(std::move(config)),
      builder_(evaluator, config_.resource, config_.node_count),
      sink_(std::move(sink)) {
  GRIDLB_REQUIRE(sink_ != nullptr, "completion sink must be set");
  GRIDLB_REQUIRE(config_.node_count >= 1 &&
                     config_.node_count <= kMaxNodesPerResource,
                 "node count out of range");
  node_free_.assign(static_cast<std::size_t>(config_.node_count),
                    engine_.now());
  available_ = full_mask(config_.node_count);
  last_plan_completion_ = engine_.now();
  switch (config_.policy) {
    case SchedulerPolicy::kGa:
      ga_.emplace(builder_, config_.ga, config_.seed);
      break;
    case SchedulerPolicy::kFifo:
      fifo_.emplace(evaluator, config_.resource, config_.node_count,
                    config_.fifo_objective);
      break;
  }
}

bool LocalScheduler::supports(const std::string& environment) const {
  return std::find(config_.environments.begin(), config_.environments.end(),
                   environment) != config_.environments.end();
}

SimTime LocalScheduler::freetime() const {
  // Only available nodes count: an absent node's horizon is not backlog.
  SimTime latest = engine_.now();
  for_each_node(available_, [&](int node) {
    latest = std::max(latest, node_free_[static_cast<std::size_t>(node)]);
  });
  return std::max(latest, last_plan_completion_);
}

bool LocalScheduler::cancel(TaskId task) {
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [task](const Task& pending) { return pending.id == task; });
  if (it == pending_.end()) return false;
  log::debug("resource ", config_.resource_id.str(), " t=", engine_.now(),
             " cancel task ", task.str());
  pending_.erase(it);
  return true;
}

std::vector<TaskId> LocalScheduler::drain_pending() {
  std::vector<TaskId> drained;
  drained.reserve(pending_.size());
  for (const Task& task : pending_) drained.push_back(task.id);
  pending_.clear();
  if (!drained.empty()) {
    log::warn("resource ", config_.resource_id.str(), " t=", engine_.now(),
              " drained ", drained.size(), " pending tasks");
  }
  return drained;
}

void LocalScheduler::set_node_available(int node, bool up) {
  GRIDLB_REQUIRE(node >= 0 && node < config_.node_count,
                 "node index out of range");
  const NodeMask bit = NodeMask{1} << node;
  const NodeMask updated = up ? (available_ | bit) : (available_ & ~bit);
  if (updated == available_) return;
  available_ = updated;
  log::debug("resource ", config_.resource_id.str(), " t=", engine_.now(),
             " node ", node, up ? " up" : " down", ", available=",
             available_);
  if (!pending_.empty()) request_reschedule();
}

void LocalScheduler::submit(Task task) {
  GRIDLB_REQUIRE(task.app != nullptr, "task needs an application model");
  GRIDLB_REQUIRE(supports(task.environment),
                 "unsupported execution environment: " + task.environment);
  log::debug("resource ", config_.resource_id.str(), " t=", engine_.now(),
             " submit task ", task.id.str(), " app=", task.app->name());
  pending_.push_back(std::move(task));
  queue_stats_.peak_queue_length =
      std::max(queue_stats_.peak_queue_length, pending_count());
  observe_queue_depth(engine_.now(), config_.resource_id, pending_count());
  if (config_.policy == SchedulerPolicy::kFifo) {
    // FIFO fixes the allocation immediately and permanently.
    reschedule();
  } else {
    request_reschedule();
  }
}

void LocalScheduler::request_reschedule() {
  if (reschedule_pending_) return;
  reschedule_pending_ = true;
  engine_.schedule_in(0.0, [this]() {
    reschedule_pending_ = false;
    reschedule();
  });
}

void LocalScheduler::commit(std::size_t pending_index, NodeMask mask,
                            SimTime start, SimTime end) {
  const Task task = pending_[static_cast<std::size_t>(pending_index)];
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(pending_index));
  queue_stats_.started += 1;
  const double wait = std::max(0.0, start - task.arrival);
  queue_stats_.total_wait += wait;
  queue_stats_.max_wait = std::max(queue_stats_.max_wait, wait);
  queue_stats_.total_execution += end - start;
  if (config_.prediction_error > 0.0) {
    // The schedule was built from the prediction; reality deviates.
    const double u = hash_unit(config_.seed, task.id);
    const double factor =
        1.0 + config_.prediction_error * (2.0 * u - 1.0);
    end = start + (end - start) * factor;
  }
  for_each_node(mask, [&](int node) {
    node_free_[static_cast<std::size_t>(node)] = end;
  });
  ++running_;

  obs::emit({.at = engine_.now(),
             .kind = obs::EventKind::kTaskSpan,
             .extra = static_cast<std::uint32_t>(node_count(mask)),
             .task = task.id.value(),
             .resource = config_.resource_id.value(),
             .a = start,
             .b = end});
  observe_queue_depth(engine_.now(), config_.resource_id, pending_count());

  CompletionRecord record;
  record.task = task.id;
  record.resource = config_.resource_id;
  record.mask = mask;
  record.app_name = task.app->name();
  record.submitted = task.arrival;
  record.start = start;
  record.end = end;
  record.deadline = task.deadline;

  // A completion is a *milestone*: it can flip the experiment's stop
  // predicate, so the sharded driver must be able to count pending ones at
  // its synchronization barriers (schedule_milestone_at is plain
  // schedule_at on a non-sharded engine).  `end` is always at least a task
  // execution time in the future, far beyond the lookahead lead.
  engine_.schedule_milestone_at(end, [this, record = std::move(record)]() {
    --running_;
    ++completed_;
    if (auto* reg = obs::registry()) {
      // Live flow counters for the continuous sampler.  Busy time is
      // node-seconds in integer microseconds: integer adds commute, so
      // the running totals are identical at every shard count.
      reg->counter("flow.completed").add(1);
      reg->counter("flow.busy_us")
          .add(static_cast<std::uint64_t>(
                   std::llround((record.end - record.start) * 1e6)) *
               static_cast<std::uint64_t>(node_count(record.mask)));
      // Sojourn time (completion − submission): the steady-state latency
      // the open-loop campaigns track as a success criterion.
      reg->histogram("sched.latency",
                     {1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200})
          .observe(record.end - record.submitted);
    }
    obs::emit({.at = engine_.now(),
               .kind = obs::EventKind::kTaskCompleted,
               .task = record.task.value(),
               .resource = record.resource.value(),
               .a = record.deadline - record.end});  // advance time ε_j
    sink_(record);
    if (config_.policy == SchedulerPolicy::kGa && !pending_.empty()) {
      request_reschedule();
    }
  });
}

void LocalScheduler::reschedule() {
  const SimTime now = engine_.now();
  if (pending_.empty()) return;
  if (available_ == 0) {
    // Every node is down: hold the queue until the monitor reports a
    // repair (set_node_available re-arms the reschedule).
    log::warn("resource ", config_.resource_id.str(), " t=", now,
              " holding ", pending_.size(), " task(s): no nodes available");
    return;
  }

  if (config_.policy == SchedulerPolicy::kFifo) {
    // Place every still-unplaced task in arrival order; allocations are
    // fixed the moment they are chosen.
    while (!pending_.empty()) {
      const Task& task = pending_.front();
      const FifoPlacement placement =
          fifo_->place(task, node_free_, now, available_);
      log::debug("resource ", config_.resource_id.str(), " t=", now,
                 " FIFO fixes task ", task.id.str(), " mask=",
                 placement.mask, " start=", placement.start);
      commit(0, placement.mask, placement.start, placement.end);
    }
    last_plan_completion_ = freetime();
    return;
  }

  // GA policy: re-optimise the whole pending set, then start the tasks
  // whose planned moment has arrived.
  ++ga_runs_;
  obs::emit({.at = now,
             .kind = obs::EventKind::kGaRunStarted,
             .resource = config_.resource_id.value(),
             .a = static_cast<double>(pending_.size())});
  const GaResult result = ga_->optimize(pending_, node_free_, now, available_);
  if (obs::trace() != nullptr) {
    for (std::size_t g = 0; g < result.generations.size(); ++g) {
      obs::emit({.at = now,
                 .kind = obs::EventKind::kGaGeneration,
                 .extra = static_cast<std::uint32_t>(g),
                 .resource = config_.resource_id.value(),
                 .a = result.generations[g].best_cost,
                 .b = result.generations[g].mean_cost});
    }
  }
  obs::emit({.at = now,
             .kind = obs::EventKind::kGaRunFinished,
             .extra = static_cast<std::uint32_t>(result.generations_run),
             .resource = config_.resource_id.value(),
             .a = result.best_cost,
             .b = static_cast<double>(result.converged_at)});
  if (auto* reg = obs::registry()) {
    reg->histogram("ga.generations_to_converge",
                   {0, 1, 2, 4, 8, 12, 16, 20, 25, 50})
        .observe(static_cast<double>(result.converged_at));
    // Live split of the incremental-evaluation hot path (DESIGN.md §16).
    reg->counter("ga.delta_evals").add(result.delta_evals);
    reg->counter("ga.full_evals").add(result.full_evals);
  }
  last_plan_completion_ = std::max(result.schedule.completion, now);
  if (result.schedule.completion >=
      now + ScheduleBuilder::kUnavailableHorizon) {
    // The plan routes through a down node (can only happen transiently);
    // don't advertise the virtual horizon as backlog.
    last_plan_completion_ = now;
  }

  // The GA result indexes tasks by their position in `pending_` at
  // optimise time; commits erase from `pending_`, so snapshot the ids
  // first and look each task up by id when its turn comes.
  std::vector<TaskId> ids;
  ids.reserve(pending_.size());
  for (const Task& task : pending_) ids.push_back(task.id);

  // Walk positions in schedule order so earlier tasks claim their nodes
  // first; tasks whose planned start is now begin executing.
  for (int p = 0; p < result.best.task_count(); ++p) {
    const int t = result.best.task_at(p);
    const TaskPlacement& placement =
        result.schedule.placements[static_cast<std::size_t>(t)];
    if (placement.start > now + kStartEpsilon) continue;

    const TaskId id = ids[static_cast<std::size_t>(t)];
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [id](const Task& task) { return task.id == id; });
    GRIDLB_ASSERT(it != pending_.end());

    // Defensive: the decode serialises node usage, so the nodes of an
    // immediately-starting task must still be free; skip (and retry at
    // the next event) if an inconsistency ever appears.
    bool nodes_free = true;
    for_each_node(placement.mask, [&](int node) {
      if (node_free_[static_cast<std::size_t>(node)] > now + kStartEpsilon) {
        nodes_free = false;
      }
    });
    if (!nodes_free) continue;

    log::debug("resource ", config_.resource_id.str(), " t=", now,
               " GA starts task ", id.str(), " mask=", placement.mask,
               " end=", placement.end);
    commit(static_cast<std::size_t>(it - pending_.begin()), placement.mask,
           placement.start, placement.end);
  }
}

}  // namespace gridlb::sched
