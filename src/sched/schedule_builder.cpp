#include "sched/schedule_builder.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gridlb::sched {

ScheduleBuilder::ScheduleBuilder(pace::CachedEvaluator& evaluator,
                                 pace::ResourceModel resource, int node_count)
    : evaluator_(&evaluator), resource_(resource), node_count_(node_count) {
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
}

void ScheduleBuilder::prepare(DecodeContext& context,
                              std::span<const Task> tasks,
                              std::span<const SimTime> node_free, SimTime now,
                              NodeMask available) const {
  GRIDLB_REQUIRE(static_cast<int>(node_free.size()) == node_count_,
                 "node_free size mismatch");
  GRIDLB_REQUIRE((available & ~full_mask(node_count_)) == 0,
                 "available mask exceeds the resource");

  context.now_ = now;
  context.available_ = available;

  // Effective per-node availability, clamping past idle to `now`; down
  // nodes only come free at the distant horizon.
  for (int i = 0; i < node_count_; ++i) {
    const bool up = ((available >> i) & 1u) != 0;
    context.base_free_[static_cast<std::size_t>(i)] =
        up ? std::max(node_free[static_cast<std::size_t>(i)], now)
           : now + kUnavailableHorizon;
  }

  // Snapshot first, hoist row pointers second: ensure_row for a new
  // application may reallocate the table's storage, so pointers are only
  // stable once every distinct application has a row.
  evaluator_->snapshot(context.table_, resource_, node_count_);
  for (const Task& task : tasks) {
    (void)context.table_.ensure_row(*evaluator_, *task.app);
  }
  context.rows_.clear();
  context.deadlines_.clear();
  context.rows_.reserve(tasks.size());
  context.deadlines_.reserve(tasks.size());
  for (const Task& task : tasks) {
    context.rows_.push_back(context.table_.row_of(*task.app));
    context.deadlines_.push_back(task.deadline);
  }
}

ScheduleMetrics ScheduleBuilder::evaluate(const DecodeContext& context,
                                          const SolutionString& solution,
                                          DecodeScratch& scratch) const {
  return run(context, solution, scratch, nullptr);
}

DecodedSchedule ScheduleBuilder::decode(const DecodeContext& context,
                                        const SolutionString& solution,
                                        DecodeScratch& scratch) const {
  DecodedSchedule out;
  out.placements.resize(static_cast<std::size_t>(context.task_count()));
  static_cast<ScheduleMetrics&>(out) =
      run(context, solution, scratch, out.placements.data());
  return out;
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now) const {
  return decode(tasks, solution, node_free, now, full_mask(node_count_));
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now,
                                        NodeMask available) const {
  GRIDLB_REQUIRE(static_cast<int>(tasks.size()) == solution.task_count(),
                 "solution does not cover the task set");
  DecodeContext context;
  DecodeScratch scratch;
  prepare(context, tasks, node_free, now, available);
  return decode(context, solution, scratch);
}

ScheduleMetrics ScheduleBuilder::run(const DecodeContext& context,
                                     const SolutionString& solution,
                                     DecodeScratch& scratch,
                                     TaskPlacement* placements) const {
  const int task_count = context.task_count();
  GRIDLB_REQUIRE(solution.task_count() == task_count,
                 "solution does not cover the prepared task set");
  GRIDLB_REQUIRE(solution.node_count() == node_count_ || task_count == 0,
                 "solution node width mismatch");

  const SimTime now = context.now_;
  scratch.free = context.base_free_;

  auto& gaps = scratch.gaps;
  gaps.clear();
  // Worst case one gap per allocated node per task plus one trailing gap
  // per node; reserving that up front means push_back below can never
  // reallocate, keeping steady-state evaluation allocation-free once the
  // scratch has seen the run's largest task set.
  const std::size_t worst_gaps =
      (static_cast<std::size_t>(task_count) + 1) *
      static_cast<std::size_t>(node_count_);
  if (gaps.capacity() < worst_gaps) gaps.reserve(worst_gaps);

  ScheduleMetrics out;
  SimTime completion = now;
  for (int p = 0; p < task_count; ++p) {
    const int t = solution.task_at(p);
    const NodeMask mask = solution.mask_of(t);

    SimTime start = now;
    for_each_node(mask, [&](int node) {
      start = std::max(start, scratch.free[static_cast<std::size_t>(node)]);
    });
    const double exec =
        context.exec_time(t, ::gridlb::sched::node_count(mask));
    ++scratch.table_reads;
    const SimTime end = start + exec;

    for_each_node(mask, [&](int node) {
      const SimTime was_free = scratch.free[static_cast<std::size_t>(node)];
      if (start > was_free) {
        gaps.push_back(DecodeScratch::Gap{was_free, start - was_free});
      }
      scratch.free[static_cast<std::size_t>(node)] = end;
    });

    if (placements != nullptr) {
      auto& placement = placements[static_cast<std::size_t>(t)];
      placement.start = start;
      placement.end = end;
      placement.mask = mask;
    }
    completion = std::max(completion, end);

    const double overrun = end - context.deadlines_[static_cast<std::size_t>(t)];
    if (overrun > 0.0) {
      out.contract_penalty += overrun;
      ++out.deadline_misses;
    }
    out.mean_completion += end - now;
  }
  if (task_count != 0) {
    out.mean_completion /= static_cast<double>(task_count);
  }

  out.completion = completion;
  out.makespan = completion - now;

  // Trailing idle: available nodes that finish before the makespan end.
  for (int i = 0; i < node_count_; ++i) {
    if (((context.available_ >> i) & 1u) == 0) continue;
    const SimTime last = scratch.free[static_cast<std::size_t>(i)];
    if (completion > last) {
      gaps.push_back(DecodeScratch::Gap{last, completion - last});
    }
  }

  // Front-weighted idle: a gap whose midpoint sits at the start of the
  // scheduling window weighs 2×, one at the very end ~0×; the weights
  // integrate to 1 over the window so φ of a uniformly spread idle profile
  // equals the plain idle total.
  const double window = out.makespan;
  for (const DecodeScratch::Gap& gap : gaps) {
    out.total_idle += gap.length;
    if (window <= 0.0) continue;
    const double mid_rel = ((gap.start + gap.length / 2.0) - now) / window;
    const double weight = 2.0 * (1.0 - std::clamp(mid_rel, 0.0, 1.0));
    out.weighted_idle += gap.length * weight;
  }
  return out;
}

}  // namespace gridlb::sched
