#include "sched/schedule_builder.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"

namespace gridlb::sched {

ScheduleBuilder::ScheduleBuilder(pace::CachedEvaluator& evaluator,
                                 pace::ResourceModel resource, int node_count)
    : evaluator_(&evaluator), resource_(resource), node_count_(node_count) {
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now) const {
  return decode(tasks, solution, node_free, now, full_mask(node_count_));
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now,
                                        NodeMask available) const {
  GRIDLB_REQUIRE(static_cast<int>(tasks.size()) == solution.task_count(),
                 "solution does not cover the task set");
  GRIDLB_REQUIRE(static_cast<int>(node_free.size()) == node_count_,
                 "node_free size mismatch");
  GRIDLB_REQUIRE(solution.node_count() == node_count_ ||
                     solution.task_count() == 0,
                 "solution node width mismatch");
  GRIDLB_REQUIRE((available & ~full_mask(node_count_)) == 0,
                 "available mask exceeds the resource");

  DecodedSchedule out;
  out.placements.resize(tasks.size());

  // Effective per-node availability, clamping past idle to `now`; down
  // nodes only come free at the distant horizon.
  std::array<SimTime, kMaxNodesPerResource> free{};
  for (int i = 0; i < node_count_; ++i) {
    const bool up = ((available >> i) & 1u) != 0;
    free[static_cast<std::size_t>(i)] =
        up ? std::max(node_free[static_cast<std::size_t>(i)], now)
           : now + kUnavailableHorizon;
  }

  struct Gap {
    SimTime start;
    double length;
  };
  std::vector<Gap> gaps;
  gaps.reserve(tasks.size() * 2);

  SimTime completion = now;
  for (int p = 0; p < solution.task_count(); ++p) {
    const int t = solution.task_at(p);
    const Task& task = tasks[static_cast<std::size_t>(t)];
    const NodeMask mask = solution.mask_of(t);

    SimTime start = now;
    for_each_node(mask, [&](int node) {
      start = std::max(start, free[static_cast<std::size_t>(node)]);
    });
    const double exec = evaluator_->evaluate(
        *task.app, resource_, ::gridlb::sched::node_count(mask));
    const SimTime end = start + exec;

    for_each_node(mask, [&](int node) {
      const SimTime was_free = free[static_cast<std::size_t>(node)];
      if (start > was_free) {
        gaps.push_back(Gap{was_free, start - was_free});
      }
      free[static_cast<std::size_t>(node)] = end;
    });

    auto& placement = out.placements[static_cast<std::size_t>(t)];
    placement.start = start;
    placement.end = end;
    placement.mask = mask;
    completion = std::max(completion, end);

    const double overrun = end - task.deadline;
    if (overrun > 0.0) {
      out.contract_penalty += overrun;
      ++out.deadline_misses;
    }
    out.mean_completion += end - now;
  }
  if (!tasks.empty()) {
    out.mean_completion /= static_cast<double>(tasks.size());
  }

  out.completion = completion;
  out.makespan = completion - now;

  // Trailing idle: available nodes that finish before the makespan end.
  for (int i = 0; i < node_count_; ++i) {
    if (((available >> i) & 1u) == 0) continue;
    const SimTime last = free[static_cast<std::size_t>(i)];
    if (completion > last) gaps.push_back(Gap{last, completion - last});
  }

  // Front-weighted idle: a gap whose midpoint sits at the start of the
  // scheduling window weighs 2×, one at the very end ~0×; the weights
  // integrate to 1 over the window so φ of a uniformly spread idle profile
  // equals the plain idle total.
  const double window = out.makespan;
  for (const Gap& gap : gaps) {
    out.total_idle += gap.length;
    if (window <= 0.0) continue;
    const double mid_rel = ((gap.start + gap.length / 2.0) - now) / window;
    const double weight = 2.0 * (1.0 - std::clamp(mid_rel, 0.0, 1.0));
    out.weighted_idle += gap.length * weight;
  }
  return out;
}

}  // namespace gridlb::sched
