#include "sched/schedule_builder.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"

namespace gridlb::sched {
namespace {

/// Global prepare() counter: every prepared context gets a unique epoch, so
/// a scratch's recorded prefix can never be replayed against a context it
/// was not built under (including a different context object that happens
/// to share the address).  Only equality is ever tested, so the ordering
/// of concurrent prepares is irrelevant.
std::atomic<std::uint64_t> g_decode_epoch{0};

}  // namespace

ScheduleBuilder::ScheduleBuilder(pace::CachedEvaluator& evaluator,
                                 pace::ResourceModel resource, int node_count)
    : evaluator_(&evaluator), resource_(resource), node_count_(node_count) {
  GRIDLB_REQUIRE(node_count >= 1 && node_count <= kMaxNodesPerResource,
                 "node count out of range");
}

void ScheduleBuilder::prepare(DecodeContext& context,
                              std::span<const Task> tasks,
                              std::span<const SimTime> node_free, SimTime now,
                              NodeMask available) const {
  GRIDLB_REQUIRE(static_cast<int>(node_free.size()) == node_count_,
                 "node_free size mismatch");
  GRIDLB_REQUIRE((available & ~full_mask(node_count_)) == 0,
                 "available mask exceeds the resource");

  context.now_ = now;
  context.available_ = available;
  context.epoch_ =
      g_decode_epoch.fetch_add(1, std::memory_order_relaxed) + 1;

  // Effective per-node availability, clamping past idle to `now`; down
  // nodes only come free at the distant horizon.
  for (int i = 0; i < node_count_; ++i) {
    const bool up = ((available >> i) & 1u) != 0;
    context.base_free_[static_cast<std::size_t>(i)] =
        up ? std::max(node_free[static_cast<std::size_t>(i)], now)
           : now + kUnavailableHorizon;
  }

  // Snapshot first, hoist row pointers second: ensure_row for a new
  // application may reallocate the table's storage, so pointers are only
  // stable once every distinct application has a row.
  evaluator_->snapshot(context.table_, resource_, node_count_);
  for (const Task& task : tasks) {
    (void)context.table_.ensure_row(*evaluator_, *task.app);
  }
  context.rows_.clear();
  context.deadlines_.clear();
  context.rows_.reserve(tasks.size());
  context.deadlines_.reserve(tasks.size());
  for (const Task& task : tasks) {
    context.rows_.push_back(context.table_.row_of(*task.app));
    context.deadlines_.push_back(task.deadline);
  }
}

ScheduleMetrics ScheduleBuilder::evaluate(const DecodeContext& context,
                                          const SolutionString& solution,
                                          DecodeScratch& scratch) const {
  // Transparent delta path: diff the genome against the scratch's recorded
  // (task, mask) stream.  The scan exits at the first difference, so a
  // genome that diverges early costs one comparison before the rebuild.
  int first_changed = 0;
  const int task_count = context.task_count();
  if (scratch.context_epoch == context.epoch() &&
      scratch.done_count == task_count) {
    first_changed = task_count;
    const int* done_task = scratch.done_task.data();
    const NodeMask* done_mask = scratch.done_mask.data();
    for (int p = 0; p < task_count; ++p) {
      const int t = solution.task_at(p);
      if (done_task[p] != t || done_mask[p] != solution.mask_of(t)) {
        first_changed = p;
        break;
      }
    }
  }
  return run(context, solution, scratch, nullptr, first_changed);
}

ScheduleMetrics ScheduleBuilder::evaluate_from(const DecodeContext& context,
                                               const SolutionString& solution,
                                               DecodeScratch& scratch,
                                               int first_changed) const {
  return run(context, solution, scratch, nullptr, first_changed);
}

DecodedSchedule ScheduleBuilder::decode(const DecodeContext& context,
                                        const SolutionString& solution,
                                        DecodeScratch& scratch) const {
  DecodedSchedule out;
  out.placements.resize(static_cast<std::size_t>(context.task_count()));
  static_cast<ScheduleMetrics&>(out) =
      run(context, solution, scratch, out.placements.data(), 0);
  return out;
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now) const {
  return decode(tasks, solution, node_free, now, full_mask(node_count_));
}

DecodedSchedule ScheduleBuilder::decode(std::span<const Task> tasks,
                                        const SolutionString& solution,
                                        std::span<const SimTime> node_free,
                                        SimTime now,
                                        NodeMask available) const {
  GRIDLB_REQUIRE(static_cast<int>(tasks.size()) == solution.task_count(),
                 "solution does not cover the task set");
  DecodeContext context;
  DecodeScratch scratch;
  prepare(context, tasks, node_free, now, available);
  return decode(context, solution, scratch);
}

ScheduleMetrics ScheduleBuilder::run(const DecodeContext& context,
                                     const SolutionString& solution,
                                     DecodeScratch& scratch,
                                     TaskPlacement* placements,
                                     int first_changed) const {
  const int task_count = context.task_count();
  GRIDLB_REQUIRE(solution.task_count() == task_count,
                 "solution does not cover the prepared task set");
  GRIDLB_REQUIRE(solution.node_count() == node_count_ || task_count == 0,
                 "solution node width mismatch");

  const SimTime now = context.now_;
  constexpr int kStride = DecodeScratch::kCheckpointStride;
  const auto task_sz = static_cast<std::size_t>(task_count);

  // Size every SoA buffer for this task set — no-ops once the scratch has
  // seen the run's largest task set, keeping steady-state evaluation
  // allocation-free.  Gap worst case: one pocket per allocated node per
  // task plus one trailing pocket per node, plus one slot of slack because
  // branch-free compaction always writes one entry past the live count.
  const std::size_t worst_gaps =
      (task_sz + 1) * static_cast<std::size_t>(node_count_) + 1;
  if (scratch.gap_start.size() < worst_gaps) {
    scratch.gap_start.resize(worst_gaps);
    scratch.gap_length.resize(worst_gaps);
  }
  if (scratch.done_task.size() < task_sz) {
    scratch.done_task.resize(task_sz);
    scratch.done_mask.resize(task_sz);
  }
  const std::size_t checkpoints =
      task_count == 0 ? 0 : (task_sz - 1) / kStride + 1;
  if (scratch.ck_completion.size() < checkpoints) {
    scratch.ck_free.resize(checkpoints * kMaxNodesPerResource);
    scratch.ck_completion.resize(checkpoints);
    scratch.ck_mean_sum.resize(checkpoints);
    scratch.ck_penalty.resize(checkpoints);
    scratch.ck_misses.resize(checkpoints);
    scratch.ck_gap_count.resize(checkpoints);
  }

  // A dirty span is only usable when the scratch's recorded prefix was
  // built under this exact context for this exact task count; placements
  // mode always rebuilds (a reused prefix would leave the prefix tasks'
  // placements unwritten).
  const bool prefix_valid =
      placements == nullptr && first_changed > 0 && task_count > 0 &&
      scratch.context_epoch == context.epoch_ &&
      scratch.done_count == task_count;

  if (prefix_valid && first_changed >= task_count) {
    // Nothing changed: the previous metrics are this genome's metrics.
    ++scratch.delta_evals;
    return scratch.last_metrics;
  }

  SimTime completion;
  double mean_sum;
  double penalty;
  int misses;
  std::size_t ng;
  int from;
  if (prefix_valid) {
    // Restore the decode state recorded just before position c*kStride,
    // the nearest checkpoint at or before the first change; gap entries
    // and the (task, mask) stream below the restore point are still valid
    // from the previous evaluation of the identical prefix.
    const auto c = static_cast<std::size_t>(first_changed / kStride);
    std::copy_n(scratch.ck_free.data() + c * kMaxNodesPerResource,
                kMaxNodesPerResource, scratch.free.data());
    completion = scratch.ck_completion[c];
    mean_sum = scratch.ck_mean_sum[c];
    penalty = scratch.ck_penalty[c];
    misses = scratch.ck_misses[c];
    ng = scratch.ck_gap_count[c];
    from = static_cast<int>(c) * kStride;
    ++scratch.delta_evals;
#ifndef NDEBUG
    // The caller's span claim: the genome decodes identically to the
    // recorded stream strictly before first_changed.
    for (int p = 0; p < first_changed; ++p) {
      const int t = solution.task_at(p);
      GRIDLB_ASSERT(scratch.done_task[static_cast<std::size_t>(p)] == t &&
                    scratch.done_mask[static_cast<std::size_t>(p)] ==
                        solution.mask_of(t));
    }
#endif
  } else {
    scratch.free = context.base_free_;
    completion = now;
    mean_sum = 0.0;
    penalty = 0.0;
    misses = 0;
    ng = 0;
    from = 0;
    ++scratch.full_evals;
  }

  SimTime* free_times = scratch.free.data();
  SimTime* gap_start = scratch.gap_start.data();
  double* gap_length = scratch.gap_length.data();
  int* done_task = scratch.done_task.data();
  NodeMask* done_mask = scratch.done_mask.data();

  for (int p = from; p < task_count; ++p) {
    if (p % kStride == 0) {
      const auto c = static_cast<std::size_t>(p / kStride);
      std::copy_n(free_times, kMaxNodesPerResource,
                  scratch.ck_free.data() + c * kMaxNodesPerResource);
      scratch.ck_completion[c] = completion;
      scratch.ck_mean_sum[c] = mean_sum;
      scratch.ck_penalty[c] = penalty;
      scratch.ck_misses[c] = misses;
      scratch.ck_gap_count[c] = ng;
    }

    const int t = solution.task_at(p);
    const NodeMask mask = solution.mask_of(t);
    done_task[p] = t;
    done_mask[p] = mask;

    SimTime start = now;
    for_each_node(mask, [&](int node) {
      const SimTime free_at = free_times[node];
      start = start < free_at ? free_at : start;
    });
    const double exec =
        context.exec_time(t, ::gridlb::sched::node_count(mask));
    ++scratch.table_reads;
    const SimTime end = start + exec;

    for_each_node(mask, [&](int node) {
      const SimTime was_free = free_times[node];
      gap_start[ng] = was_free;
      gap_length[ng] = start - was_free;
      ng += static_cast<std::size_t>(start > was_free);
      free_times[node] = end;
    });

    if (placements != nullptr) {
      auto& placement = placements[static_cast<std::size_t>(t)];
      placement.start = start;
      placement.end = end;
      placement.mask = mask;
    }
    completion = completion < end ? end : completion;

    const double overrun =
        end - context.deadlines_[static_cast<std::size_t>(t)];
    if (overrun > 0.0) {
      penalty += overrun;
      ++misses;
    }
    mean_sum += end - now;
  }

  scratch.done_count = task_count;
  scratch.context_epoch = context.epoch_;

  ScheduleMetrics out;
  out.contract_penalty = penalty;
  out.deadline_misses = misses;
  out.mean_completion = mean_sum;
  if (task_count != 0) {
    out.mean_completion /= static_cast<double>(task_count);
  }
  out.completion = completion;
  out.makespan = completion - now;

  // Trailing idle: available nodes that finish before the makespan end.
  for (int i = 0; i < node_count_; ++i) {
    if (((context.available_ >> i) & 1u) == 0) continue;
    const SimTime last = free_times[i];
    gap_start[ng] = last;
    gap_length[ng] = completion - last;
    ng += static_cast<std::size_t>(completion > last);
  }

  // Front-weighted idle: a gap whose midpoint sits at the start of the
  // scheduling window weighs 2×, one at the very end ~0×; the weights
  // integrate to 1 over the window so φ of a uniformly spread idle profile
  // equals the plain idle total.  This pass must stay bit-for-bit as is:
  // the window normalisation couples every pocket to the makespan, so a
  // delta evaluation re-weights all pockets (DESIGN.md §16 records the
  // experiment: reassociating this sum flips GA selections and breaks the
  // experiment pins).
  const double window = out.makespan;
  for (std::size_t i = 0; i < ng; ++i) {
    const double length = gap_length[i];
    out.total_idle += length;
    if (window <= 0.0) continue;
    const double mid_rel = ((gap_start[i] + length / 2.0) - now) / window;
    const double weight = 2.0 * (1.0 - std::clamp(mid_rel, 0.0, 1.0));
    out.weighted_idle += length * weight;
  }

  scratch.last_metrics = out;
  return out;
}

}  // namespace gridlb::sched
