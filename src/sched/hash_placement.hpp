// CRUSH-style stateless hashed placement (DESIGN.md §15).
//
// The agent hierarchy resolves every request by walking advertised
// service information: O(depth) messages per request and a staleness
// window at every hop.  HashPlacement replaces that walk with a pure
// function.  Each resource is a *straw* whose length for a given request
// key is drawn from a deterministic hash of (seed, key, resource id),
// scaled by the resource's weight; the longest straw wins.  This is
// Ceph's straw2 bucket (exponential order statistics: a draw of
// ln(u)/w is the negated Exp(w) variate, so target i wins with
// probability wᵢ/Σw exactly), which carries two properties the hierarchy
// cannot offer:
//
//  * zero placement traffic — any frontend holding the (small, rarely
//    changing) weighted map computes the same placement with no
//    discovery messages and no shared state, and
//  * bounded remapping — a target's draw never depends on any other
//    target, so removing (or re-weighting) one resource remaps exactly
//    the keys that resource was winning: an expected wᵢ/Σw fraction,
//    and no key moves between two surviving resources.
//
// Weights default to hardware capacity (node count over the PACE
// performance factor).  An optional load tracker discounts a target's
// weight by the backlog the *placer itself* has routed there — optimistic
// local bookkeeping in the spirit of the ACT freetime advance, still
// involving no messages.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "pace/hardware.hpp"

namespace gridlb::sched {

/// One placement candidate: a grid resource and its relative capacity.
struct PlacementTarget {
  AgentId resource;     ///< stable hash identity (1-based agent id)
  double weight = 1.0;  ///< relative capacity, > 0
};

/// Outcome of one placement.
struct PlacementDecision {
  std::size_t index = 0;  ///< position in the target list
  AgentId resource;       ///< targets()[index].resource
  double draw = 0.0;      ///< winning straw value (≤ 0; diagnostics)
};

class HashPlacement {
 public:
  struct Config {
    /// Placement-map generation: two maps with different seeds place the
    /// same keys independently.
    std::uint64_t seed = 0x6c6f6164;
    /// Backlog discount time constant τ in seconds: a target carrying b
    /// seconds of tracked backlog competes with weight w / (1 + b/τ).
    /// 0 disables load tracking entirely (pure static weights).
    double load_tau = 0.0;
  };

  HashPlacement(Config config, std::vector<PlacementTarget> targets);

  /// Default capacity weight of a homogeneous resource: node count over
  /// the PACE slowdown factor (a 16-node SGI outweighs a 16-node SPARC).
  [[nodiscard]] static double hardware_weight(
      const pace::ResourceModel& model, int node_count);

  /// Places `key` on a target — a pure function of (seed, key, live
  /// weights).  `now` only matters with load tracking enabled.  At least
  /// one target must be available.
  [[nodiscard]] PlacementDecision place(std::uint64_t key,
                                        SimTime now = 0.0) const;

  /// Optimistic local bookkeeping: `occupancy` seconds of backlog were
  /// just routed to target `index` at time `now`.  No-op unless the
  /// config enables load tracking.
  void record_dispatch(std::size_t index, SimTime now, double occupancy);

  /// Re-weights one target (e.g. a refreshed freetime snapshot).
  void set_weight(std::size_t index, double weight);

  /// Marks a target in or out of the map (resource churn).  Draws for
  /// the surviving targets are unaffected — the bounded-remap property.
  void set_available(std::size_t index, bool up);
  [[nodiscard]] bool available(std::size_t index) const;

  [[nodiscard]] const std::vector<PlacementTarget>& targets() const {
    return targets_;
  }
  /// Σ weight over available targets (static weights; load discounts are
  /// per-place-call and excluded).
  [[nodiscard]] double total_weight() const;

 private:
  Config config_;
  std::vector<PlacementTarget> targets_;
  std::vector<char> available_;
  std::vector<SimTime> busy_until_;  ///< tracked backlog horizon per target
};

}  // namespace gridlb::sched
