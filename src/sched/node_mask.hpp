// Bit-mask representation of a node subset within one grid resource.
//
// The case study's resources have 16 processing nodes; the mapping part of
// a GA solution string is literally a bit string per task (Fig. 2), so a
// 32-bit mask is both the faithful and the efficient representation.  Bit i
// set means node i is allocated.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace gridlb::sched {

using NodeMask = std::uint32_t;

/// Maximum nodes per resource this representation supports.
inline constexpr int kMaxNodesPerResource = 32;

/// Mask with the lowest `n` bits set (all nodes of an n-node resource).
[[nodiscard]] constexpr NodeMask full_mask(int n) {
  return n >= kMaxNodesPerResource
             ? ~NodeMask{0}
             : static_cast<NodeMask>((NodeMask{1} << n) - 1);
}

/// Number of allocated nodes.
[[nodiscard]] constexpr int node_count(NodeMask mask) {
  return std::popcount(mask);
}

/// Invokes `fn(int node_index)` for each set bit, ascending.
template <class Fn>
constexpr void for_each_node(NodeMask mask, Fn&& fn) {
  while (mask != 0) {
    const int index = std::countr_zero(mask);
    fn(index);
    mask &= mask - 1;
  }
}

/// True if `mask` is a non-empty subset of the first `n` nodes.
[[nodiscard]] constexpr bool valid_mask(NodeMask mask, int n) {
  return mask != 0 && (mask & ~full_mask(n)) == 0;
}

}  // namespace gridlb::sched
