// The GA's combined cost function (eq. 8) and dynamic fitness scaling
// (eq. 9).
//
//   f_c = (W_m·ω + W_i·φ + W_c·θ [+ W_f·Φ]) / (W_m + W_i + W_c [+ W_f])
//   f_v = (f_c^max − f_c) / (f_c^max − f_c^min)
//
// where ω is the makespan, φ the front-weighted idle time, θ the deadline
// contract penalty, and f_c^max / f_c^min the worst / best cost in the
// current scheduling set (population).
//
// Φ is a *reproduction extension*: the mean task completion latency
// (flowtime).  The paper's three terms never reward finishing a task
// earlier than its deadline, yet its headline metric ε (eq. 11) is exactly
// mean earliness; a small W_f aligns the GA with that metric and is needed
// to reproduce the ε improvements of experiment 2.  Set W_f = 0 for the
// literal three-term cost of eq. 8.
#pragma once

#include <span>
#include <vector>

#include "sched/schedule_builder.hpp"

namespace gridlb::sched {

/// The predetermined impact weights W_m, W_i, W_c of eq. 8.
struct CostWeights {
  double makespan = 1.0;   ///< W_m
  double idle = 0.25;     ///< W_i
  double deadline = 8.0;  ///< W_c
  double flowtime = 1.0;  ///< W_f (reproduction extension; 0 = literal eq. 8)
};

/// Cost value f_c of one decoded schedule (lower is better).  Takes the
/// metrics slice so the GA's metrics-only evaluate() path can be costed
/// without a full DecodedSchedule.
[[nodiscard]] double cost_value(const ScheduleMetrics& schedule,
                                const CostWeights& weights);

/// Dynamic scaling of a population's costs to fitness values in [0, 1]
/// (higher is better).  A degenerate population (all costs equal) gets
/// uniform fitness 1 so selection becomes unbiased rather than undefined.
[[nodiscard]] std::vector<double> fitness_values(std::span<const double> costs);

}  // namespace gridlb::sched
