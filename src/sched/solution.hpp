// The GA's two-part solution coding (paper §2.1, Fig. 2).
//
// A solution string consists of
//   * an ordering part — a permutation giving the sequence in which tasks
//     are considered by the list scheduler, and
//   * a mapping part — one node bit-mask per task giving the processing
//     nodes allocated to it.
//
// The paper stores the mapping sections "commensurate with the task
// order"; we index the mapping by task (not by position), which encodes
// the identical information — the order-aligned view required by the
// crossover operator is recovered through the ordering part.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::sched {

class SolutionString {
 public:
  SolutionString() = default;

  /// Builds a solution over `task_count` tasks on `node_count` nodes.
  /// `order` must be a permutation of [0, task_count); every mask must be a
  /// non-empty subset of the resource's nodes.
  SolutionString(std::vector<int> order, std::vector<NodeMask> mapping,
                 int node_count);

  /// Uniformly random legal solution.
  static SolutionString random(int task_count, int node_count, Rng& rng);

  [[nodiscard]] int task_count() const {
    return static_cast<int>(order_.size());
  }
  [[nodiscard]] int node_count() const { return node_count_; }

  /// Task index executed at position `p` of the sequence.
  [[nodiscard]] int task_at(int p) const {
    return order_[static_cast<std::size_t>(p)];
  }
  /// Node allocation of task `t`.
  [[nodiscard]] NodeMask mask_of(int t) const {
    return mapping_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] const std::vector<int>& order() const { return order_; }
  [[nodiscard]] const std::vector<NodeMask>& mapping() const {
    return mapping_;
  }

  /// Full structural validity check (permutation + legal masks).
  [[nodiscard]] bool valid() const;

  // -- genetic operators --------------------------------------------------
  //
  // Every operator reports its *dirty span*: the first schedule position p
  // whose (task_at(p), mask_of(task_at(p))) pair differs from the genome
  // before the operator ran (for crossover: from `*this` parent).  A
  // schedule decode is a left-to-right fold over exactly those pairs, so
  // positions before the span decode identically and
  // ScheduleBuilder::evaluate_from can repair the schedule from a prefix
  // checkpoint instead of re-simulating from task 0 (DESIGN.md §16).
  // `task_count()` means "nothing changed".  Span computation consumes no
  // randomness, so seeded runs are unaffected.

  /// Two-part crossover (paper §2.1): the ordering parts are spliced at a
  /// random cut — the child keeps this parent's prefix and completes it
  /// with the remaining tasks in the mate's relative order (guaranteeing a
  /// legal permutation).  The mapping parts, viewed in the child's task
  /// order, undergo a single-point binary crossover at a random bit; empty
  /// allocations are repaired with a random node.  When `first_changed` is
  /// non-null it receives the child's dirty span relative to `*this`.
  [[nodiscard]] SolutionString crossover(const SolutionString& mate, Rng& rng,
                                         int* first_changed = nullptr) const;

  /// Two-part mutation: a random transposition in the ordering part, and
  /// independent bit-flips (probability `bit_flip_rate`) in the mapping
  /// part, with empty-allocation repair.  Returns the dirty span.
  int mutate(double order_swap_rate, double bit_flip_rate, Rng& rng);

  /// Adapts the solution to a changed task set: `kept[t_old]` is the new
  /// index of old task `t_old` (or -1 if it was removed, e.g. started
  /// executing), and `new_task_count` includes freshly-arrived tasks,
  /// which are appended at random order positions with random masks.
  /// This is how the GA "absorbs system changes such as the addition or
  /// deletion of tasks".
  void remap_tasks(const std::vector<int>& kept, int new_task_count, Rng& rng);

  /// Restricts every task's allocation to `allowed` (a non-empty subset of
  /// the resource's nodes), repairing emptied allocations with a random
  /// allowed node.  This is how the GA absorbs "changes in the number of
  /// hosts or processors available in the local domain".  Returns the
  /// dirty span.
  int constrain(NodeMask allowed, Rng& rng);

  bool operator==(const SolutionString&) const = default;

  /// 128-bit content fingerprint over (node width, ordering part, mapping
  /// part) — the genotype-memoization key (DESIGN.md §11).  Two mixing
  /// lanes with independent constants make an accidental collision within
  /// a run (a few thousand distinct genotypes) vanishingly unlikely
  /// (~1e-33); genomes are deliberately *not* stored alongside the key, so
  /// memo entries stay allocation-free.
  struct Fingerprint {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  [[nodiscard]] Fingerprint fingerprint() const;

 private:
  void repair_mask(int task, Rng& rng);
  /// First position whose task is flagged in `changed_task` (task-indexed),
  /// or task_count() when none is — the positional dirty span of an
  /// operator that only edited masks.
  [[nodiscard]] int first_changed_position(
      const std::vector<char>& changed_task) const;

  std::vector<int> order_;        // position -> task index
  std::vector<NodeMask> mapping_;  // task index -> node mask
  int node_count_ = 0;
};

}  // namespace gridlb::sched
