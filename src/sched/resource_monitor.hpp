// Resource monitoring (paper §2.2).
//
// "The resource monitoring is responsible for gathering statistics
// concerning the process nodes on which tasks may execute. …  Currently,
// only host availability is supported, where the resource monitor queries
// each known node every five minutes.  This is provided to the GA
// scheduler as the currently available resources P on which tasks can be
// scheduled."
//
// Three pieces:
//  * NodeAvailability — the ground truth of which nodes are up, mutated by
//    failure/repair events on the simulation engine;
//  * availability scripts — deterministic exponential failure/repair event
//    sequences (MTBF / MTTR), plus a helper to arm them on the engine;
//  * ResourceMonitor — polls the truth every `poll_period` (default 300 s,
//    the paper's five minutes) and pushes changes into the LocalScheduler.
//    The polling gap means the scheduler's view can lag reality, exactly
//    as in the paper's implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/local_scheduler.hpp"
#include "sim/engine.hpp"

namespace gridlb::sched {

/// Ground-truth up/down state of one resource's processing nodes.
class NodeAvailability {
 public:
  /// All nodes start up.
  explicit NodeAvailability(int node_count);

  void set(int node, bool up);
  [[nodiscard]] bool up(int node) const;
  [[nodiscard]] NodeMask mask() const { return mask_; }
  [[nodiscard]] int node_count() const { return node_count_; }
  /// Number of state changes applied so far.
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  NodeMask mask_;
  int node_count_;
  std::uint64_t transitions_ = 0;
};

/// One scripted failure or repair.
struct AvailabilityEvent {
  SimTime at = 0.0;
  int node = 0;
  bool up = false;
};

/// Deterministic per-node alternating renewal process: up-times are
/// exponential with mean `mtbf`, repair times exponential with mean
/// `mttr`, generated until `horizon`.  Events are returned time-sorted.
[[nodiscard]] std::vector<AvailabilityEvent> random_availability_script(
    int node_count, SimTime horizon, double mtbf, double mttr,
    std::uint64_t seed);

/// Arms a script on the engine: each event mutates `truth` at its time.
/// `truth` must outlive the engine run.
void schedule_availability(sim::Engine& engine, NodeAvailability& truth,
                           std::vector<AvailabilityEvent> script);

/// Periodic poller bridging ground truth to the scheduler's view.
class ResourceMonitor {
 public:
  /// The paper's poll period is five minutes.
  static constexpr double kDefaultPollPeriod = 300.0;

  ResourceMonitor(sim::Engine& engine, LocalScheduler& scheduler,
                  const NodeAvailability& truth,
                  double poll_period = kDefaultPollPeriod);

  /// Performs an immediate poll and arms the periodic query.
  void start();

  /// One query of every known node (also called by the periodic event).
  void poll();

  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t changes_reported() const { return changes_; }
  [[nodiscard]] NodeMask last_view() const { return view_; }
  [[nodiscard]] double poll_period() const { return poll_period_; }

 private:
  sim::Engine& engine_;
  LocalScheduler& scheduler_;
  const NodeAvailability& truth_;
  double poll_period_;
  NodeMask view_;
  std::uint64_t polls_ = 0;
  std::uint64_t changes_ = 0;
  bool started_ = false;
};

}  // namespace gridlb::sched
