#include "core/workload.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gridlb::core {

namespace {

/// Timing draws come from a stream decoupled from the per-request draws:
/// xoring the seed with a fixed tag ("arrival" in ASCII) gives a child
/// seed without consuming anything from the main stream, so kUniform — the
/// bit-identity reference — touches no randomness at all for timing.
constexpr std::uint64_t kArrivalSeedTag = 0x61727269'76616c00ULL;

constexpr double kPi = 3.14159265358979323846;

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Submission times for every process except kTrace; always non-decreasing.
std::vector<SimTime> arrival_times(const WorkloadConfig& config) {
  const auto count = static_cast<std::size_t>(config.count);
  std::vector<SimTime> at;
  at.reserve(count);
  switch (config.arrival) {
    case ArrivalProcess::kUniform:
      for (std::size_t i = 0; i < count; ++i) {
        at.push_back(config.start +
                     static_cast<double>(i) * config.interval);
      }
      break;
    case ArrivalProcess::kPoisson: {
      Rng rng(config.seed ^ kArrivalSeedTag);
      double t = config.start;
      for (std::size_t i = 0; i < count; ++i) {
        // Inverse-CDF exponential; 1 − u avoids log(0).
        t += -config.interval * std::log(1.0 - rng.next_double());
        at.push_back(t);
      }
      break;
    }
    case ArrivalProcess::kOnOff: {
      // Deterministic square wave anchored at `start`: arrivals during ON
      // phases at duty-scaled spacing, silence during OFF phases.  The
      // cycle average recovers the nominal 1/interval rate.
      const double cycle = config.burst_on + config.burst_off;
      const double spacing = config.interval * config.burst_on / cycle;
      double t = 0.0;  // relative to start
      for (std::size_t i = 0; i < count; ++i) {
        const double pos = std::fmod(t, cycle);
        if (pos >= config.burst_on) t += cycle - pos;  // skip the OFF tail
        at.push_back(config.start + t);
        t += spacing;
      }
      break;
    }
    case ArrivalProcess::kDiurnal: {
      // Deterministic inhomogeneous schedule: the i-th arrival solves
      // Λ(x) = i for the cumulative rate Λ(x) = x/interval −
      // a·P/(2π·interval)·(cos(2πx/P) − 1), x measured from `start`.
      // Λ is strictly increasing (λ ≥ (1−a)/interval > 0), so bisection
      // over a bracket of one worst-case gap converges deterministically.
      const double w = 2.0 * kPi / config.diurnal_period;
      const double a = config.diurnal_amplitude;
      const auto cumulative = [&](double x) {
        return x / config.interval -
               a / (config.interval * w) * (std::cos(w * x) - 1.0);
      };
      const double max_gap = config.interval / (1.0 - a);
      double x = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        if (i > 0) {
          const double target = static_cast<double>(i);
          double lo = x;
          double hi = x + max_gap * 1.0001;
          for (int iter = 0; iter < 64; ++iter) {
            const double mid = 0.5 * (lo + hi);
            if (cumulative(mid) < target) {
              lo = mid;
            } else {
              hi = mid;
            }
          }
          x = 0.5 * (lo + hi);
        }
        at.push_back(config.start + x);
      }
      break;
    }
    case ArrivalProcess::kTrace:
      GRIDLB_REQUIRE(false, "trace arrivals have no generated times");
  }
  return at;
}

std::vector<RequestSpec> replay_trace(const WorkloadConfig& config,
                                      const pace::ApplicationCatalogue&
                                          catalogue,
                                      int agent_count) {
  std::ifstream in(config.trace_path);
  GRIDLB_REQUIRE(in.good(),
                 "cannot open arrival trace: " + config.trace_path);
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<RequestSpec> workload = parse_workload_jsonl(text.str());
  for (const RequestSpec& spec : workload) {
    GRIDLB_REQUIRE(
        spec.agent_index >= 0 && spec.agent_index < agent_count,
        "trace entry names agent index " + std::to_string(spec.agent_index) +
            " but the grid has " + std::to_string(agent_count) +
            " agents: " + config.trace_path);
    GRIDLB_REQUIRE(catalogue.find(spec.app_name) != nullptr,
                   "trace entry names unknown application '" + spec.app_name +
                       "': " + config.trace_path);
  }
  return workload;
}

}  // namespace

std::string arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kOnOff: return "onoff";
    case ArrivalProcess::kDiurnal: return "diurnal";
    case ArrivalProcess::kTrace: return "trace";
  }
  GRIDLB_REQUIRE(false, "unknown arrival process");
}

ArrivalProcess arrival_process_from_name(const std::string& name) {
  if (name == "uniform") return ArrivalProcess::kUniform;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "onoff") return ArrivalProcess::kOnOff;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  if (name == "trace") return ArrivalProcess::kTrace;
  GRIDLB_REQUIRE(false, "unknown arrival process: " + name +
                            " (expected uniform, poisson, onoff, diurnal "
                            "or trace)");
}

void validate_workload(const WorkloadConfig& config) {
  GRIDLB_REQUIRE(config.count >= 0, "negative request count");
  GRIDLB_REQUIRE(config.start >= 0.0, "workload start cannot be negative");
  GRIDLB_REQUIRE(config.deadline_scale > 0.0,
                 "deadline scale must be positive");
  if (config.arrival == ArrivalProcess::kTrace) {
    // Timing replays the file verbatim; interval/seed are irrelevant.
    GRIDLB_REQUIRE(!config.trace_path.empty(),
                   "trace arrivals need a workload file: pass "
                   "--arrival-trace FILE (a JSONL export written by "
                   "--workload-out)");
    return;
  }
  GRIDLB_REQUIRE(
      config.interval > 0.0,
      "arrival interval must be > 0 (got " + format_number(config.interval) +
          "): it is the mean seconds between submissions for the '" +
          arrival_process_name(config.arrival) +
          "' process.  Pass a positive --arrival-interval; 0 = auto is "
          "resolved only for generated grids (--grid-agents)");
  if (config.arrival == ArrivalProcess::kOnOff) {
    GRIDLB_REQUIRE(config.burst_on > 0.0,
                   "onoff arrivals need --burst-on > 0 (seconds of each "
                   "bursting phase)");
    GRIDLB_REQUIRE(config.burst_off >= 0.0,
                   "--burst-off cannot be negative (0 = no silent phase, "
                   "i.e. uniform arrivals)");
  }
  if (config.arrival == ArrivalProcess::kDiurnal) {
    GRIDLB_REQUIRE(config.diurnal_period > 0.0,
                   "diurnal arrivals need --diurnal-period > 0 (seconds "
                   "per modulation cycle)");
    GRIDLB_REQUIRE(
        config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0,
        "--diurnal-amplitude must be in [0, 1): the rate swings between "
        "(1−a)/interval and (1+a)/interval and must stay positive");
  }
}

std::vector<RequestSpec> generate_workload(
    const WorkloadConfig& config, const pace::ApplicationCatalogue& catalogue,
    int agent_count) {
  validate_workload(config);
  GRIDLB_REQUIRE(agent_count >= 1, "need at least one agent");
  GRIDLB_REQUIRE(catalogue.size() >= 1, "need at least one application");

  if (config.arrival == ArrivalProcess::kTrace) {
    return replay_trace(config, catalogue, agent_count);
  }

  const std::vector<SimTime> at = arrival_times(config);
  Rng rng(config.seed);
  std::vector<RequestSpec> out;
  out.reserve(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    RequestSpec spec;
    spec.at = at[static_cast<std::size_t>(i)];
    spec.agent_index = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(agent_count)));
    const auto& app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    spec.app_name = app->name();
    const pace::DeadlineDomain domain = app->deadline_domain();
    spec.deadline_offset =
        rng.uniform(domain.lo, domain.hi) * config.deadline_scale;
    out.push_back(std::move(spec));
  }
  return out;
}

std::string workload_to_jsonl(const std::vector<RequestSpec>& workload) {
  std::ostringstream os;
  for (const RequestSpec& spec : workload) {
    os << "{\"at\":" << format_number(spec.at)
       << ",\"agent\":" << spec.agent_index << ",\"app\":\"" << spec.app_name
       << "\",\"deadline_offset\":" << format_number(spec.deadline_offset)
       << "}\n";
  }
  return os.str();
}

namespace {

/// Extracts the numeric value following `"key":` on `line`; fails with a
/// line-numbered message when the key is missing or non-numeric.
double json_number(const std::string& line, const char* key,
                   std::size_t line_number) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  GRIDLB_REQUIRE(pos != std::string::npos,
                 "workload trace line " + std::to_string(line_number) +
                     " lacks \"" + key + "\": " + line);
  const char* begin = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  GRIDLB_REQUIRE(end != begin,
                 "workload trace line " + std::to_string(line_number) +
                     " has a non-numeric \"" + key + "\": " + line);
  return value;
}

std::string json_string(const std::string& line, const char* key,
                        std::size_t line_number) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  GRIDLB_REQUIRE(pos != std::string::npos,
                 "workload trace line " + std::to_string(line_number) +
                     " lacks \"" + key + "\": " + line);
  const std::size_t begin = pos + needle.size();
  const std::size_t end = line.find('"', begin);
  GRIDLB_REQUIRE(end != std::string::npos,
                 "workload trace line " + std::to_string(line_number) +
                     " has an unterminated \"" + key + "\": " + line);
  return line.substr(begin, end - begin);
}

}  // namespace

std::vector<RequestSpec> parse_workload_jsonl(const std::string& text) {
  std::vector<RequestSpec> out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    RequestSpec spec;
    spec.at = json_number(line, "at", line_number);
    spec.agent_index =
        static_cast<int>(json_number(line, "agent", line_number));
    spec.app_name = json_string(line, "app", line_number);
    spec.deadline_offset = json_number(line, "deadline_offset", line_number);
    GRIDLB_REQUIRE(spec.at >= 0.0,
                   "workload trace line " + std::to_string(line_number) +
                       " has a negative submission time");
    GRIDLB_REQUIRE(out.empty() || spec.at >= out.back().at,
                   "workload trace line " + std::to_string(line_number) +
                       " goes back in time (submissions must be "
                       "non-decreasing)");
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace gridlb::core
