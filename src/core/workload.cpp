#include "core/workload.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gridlb::core {

std::vector<RequestSpec> generate_workload(
    const WorkloadConfig& config, const pace::ApplicationCatalogue& catalogue,
    int agent_count) {
  GRIDLB_REQUIRE(config.count >= 0, "negative request count");
  GRIDLB_REQUIRE(config.interval > 0.0, "interval must be positive");
  GRIDLB_REQUIRE(config.deadline_scale > 0.0,
                 "deadline scale must be positive");
  GRIDLB_REQUIRE(agent_count >= 1, "need at least one agent");
  GRIDLB_REQUIRE(catalogue.size() >= 1, "need at least one application");

  Rng rng(config.seed);
  std::vector<RequestSpec> out;
  out.reserve(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    RequestSpec spec;
    spec.at = config.start + static_cast<double>(i) * config.interval;
    spec.agent_index = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(agent_count)));
    const auto& app = catalogue.all()[static_cast<std::size_t>(
        rng.next_below(catalogue.size()))];
    spec.app_name = app->name();
    const pace::DeadlineDomain domain = app->deadline_domain();
    spec.deadline_offset =
        rng.uniform(domain.lo, domain.hi) * config.deadline_scale;
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace gridlb::core
