#include "core/experiment.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "agents/portal.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/sim_clock.hpp"
#include "common/thread_pool.hpp"
#include "core/case_study.hpp"
#include "obs/trace.hpp"
#include "pace/paper_applications.hpp"
#include "sched/hash_placement.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"

namespace gridlb::core {

namespace {

ExperimentConfig base_experiment() {
  ExperimentConfig config;
  config.system.resources = case_study_resources();
  return config;
}

std::vector<std::string> resource_labels(const ExperimentConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.system.resources.size());
  for (const auto& spec : config.system.resources) names.push_back(spec.name);
  return names;
}

/// Resolves `system.sim_shards` to a concrete shard count: 0 means one per
/// hardware thread, anything is clamped to the agent count.  Strict
/// failure mode shards like everything else: its drops are notified
/// through milestone events (Agent::set_drop_sink), so the coordinator's
/// exact-stop decision counts them exactly like completions.
std::size_t resolve_sim_shards(const ExperimentConfig& config) {
  int shards = config.system.sim_shards;
  if (shards <= 0) shards = ThreadPool::hardware_threads();
  shards = std::min(shards, static_cast<int>(config.system.resources.size()));
  shards = std::max(shards, 1);
  return static_cast<std::size_t>(shards);
}

/// The retry policy the system's links run under (disabled unless fault
/// tolerance is on).
agents::RetryPolicy effective_retry(const agents::SystemConfig& system) {
  agents::RetryPolicy retry;
  if (system.fault_tolerance.enabled) {
    retry = system.fault_tolerance.retry;
    retry.enabled = true;
  }
  return retry;
}

/// End-of-run registry population.  Histograms fill live during the run
/// (queue depth, hops, staleness, GA convergence); the counters and
/// gauges below come from the authoritative per-subsystem statistics so
/// the registry snapshot always agrees with Table 3's inputs.
void populate_registry(obs::MetricsRegistry& registry,
                       const ExperimentResult& result,
                       agents::AgentSystem& system) {
  registry.counter("portal.requests_submitted").add(result.requests_submitted);
  registry.counter("sched.tasks_completed").add(result.tasks_completed);
  registry.counter("agents.requests_dropped").add(result.tasks_dropped);
  registry.counter("sched.tasks_unfinished").add(result.tasks_unfinished);
  registry.counter("agents.migrations").add(result.migrations);
  registry.gauge("sched.shed_rate").set(result.shed_rate);
  registry.gauge("sched.latency_p50").set(result.latency_p50);
  registry.gauge("sched.latency_p90").set(result.latency_p90);
  registry.gauge("sched.latency_p99").set(result.latency_p99);
  registry.counter("sim.events").add(result.sim_events);
  registry.counter("sim.events_swept").add(result.events_swept);
  registry.gauge("sim.shards").set(static_cast<double>(result.sim_shards));
  registry.counter("net.messages").add(result.network_messages);
  registry.counter("net.bytes").add(result.network_bytes);
  registry.counter("pace.cache.hits").add(result.cache.hits);
  registry.counter("pace.cache.misses").add(result.cache.misses);
  registry.counter("ga.decodes").add(result.ga_decodes);
  registry.counter("ga.memo_hits").add(result.ga_memo_hits);
  registry.counter("pace.table.reads").add(result.table_reads);
  registry.gauge("pace.cache.hit_rate").set(result.cache.hit_rate());
  registry.gauge("discovery.mean_hops").set(result.mean_hops);
  registry.gauge("sim.finished_at").set(result.finished_at);

  const auto shards = system.evaluator().shard_snapshots();
  std::size_t max_entries = 0;
  std::size_t total_entries = 0;
  for (const auto& shard : shards) {
    max_entries = std::max(max_entries, shard.entries);
    total_entries += shard.entries;
  }
  registry.gauge("pace.cache.entries")
      .set(static_cast<double>(total_entries));
  registry.gauge("pace.cache.max_shard_entries")
      .set(static_cast<double>(max_entries));

  std::uint64_t forwarded = 0;
  std::uint64_t advertisements = 0;
  std::uint64_t pulls = 0;
  for (const auto& stats : result.agent_stats) {
    forwarded += stats.forwarded_match + stats.forwarded_up;
    advertisements += stats.advertisements_received;
    pulls += stats.pulls_sent;
  }
  registry.counter("agents.requests_forwarded").add(forwarded);
  registry.counter("agents.advertisements_received").add(advertisements);
  registry.counter("agents.pulls_sent").add(pulls);

  registry.counter("net.messages_dropped").add(result.messages_dropped);
  registry.counter("ft.retries").add(result.message_retries);
  registry.counter("ft.sends_expired").add(result.sends_expired);
  registry.counter("ft.duplicates_suppressed")
      .add(result.duplicates_suppressed);
  registry.counter("agents.crashes").add(result.agent_crashes);
  registry.counter("agents.restarts").add(result.agent_restarts);
  registry.counter("portal.tasks_resubmitted").add(result.tasks_resubmitted);

  // Trace-ring drop accounting: always present, so a reader scanning the
  // metrics JSON can tell "nothing dropped" from "tracing was off".
  registry.counter("obs.trace_events").add(result.trace_events);
  registry.counter("obs.dropped_events").add(result.trace_dropped);
}

/// Derived flow statistics shared by the closed- and open-loop regimes:
/// standing backlog, shed rate, and the completion-latency percentiles.
/// All guarded against zero completions/submissions — a fully-shedding
/// overload window reports zeros, never NaN/inf.
void fill_flow_stats(ExperimentResult& result) {
  const std::uint64_t settled = result.tasks_completed + result.tasks_dropped;
  GRIDLB_ASSERT(settled <= result.requests_submitted);
  result.tasks_unfinished = result.requests_submitted - settled;
  result.shed_rate =
      result.requests_submitted > 0
          ? static_cast<double>(result.requests_submitted -
                                result.tasks_completed) /
                static_cast<double>(result.requests_submitted)
          : 0.0;
  std::vector<double> latencies;
  latencies.reserve(result.completions.size());
  for (const auto& record : result.completions) {
    latencies.push_back(record.end - record.submitted);
  }
  result.latency_p50 = metrics::percentile(latencies, 50.0);
  result.latency_p90 = metrics::percentile(latencies, 90.0);
  result.latency_p99 = metrics::percentile(std::move(latencies), 99.0);
}

/// Sum of processing nodes across the grid, for the utilisation plot's
/// denominator (`flow.busy_us / (dt * grid.total_nodes)`).
int total_grid_nodes(const agents::SystemConfig& system) {
  int nodes = 0;
  for (const auto& spec : system.resources) nodes += spec.node_count;
  return nodes;
}

/// Scoped observability for one experiment run: installs the instruments
/// on construction; `finish` fills the result's trace tallies, populates
/// the registry from the authoritative stats, and writes the configured
/// output files.
class ObsScope {
 public:
  explicit ObsScope(const ExperimentConfig& config) : config_(&config) {
    if (config.obs.enabled()) {
      simclock::reset();
      session_.emplace(config.obs);
    }
  }

  [[nodiscard]] obs::Sampler* sampler() {
    return session_ ? session_->sampler() : nullptr;
  }

  void finish(ExperimentResult& result, agents::AgentSystem& system) {
    if (!session_) return;
    if (obs::TraceRecorder* recorder = session_->recorder()) {
      const obs::TraceSnapshot snapshot = recorder->snapshot();
      result.trace_events = snapshot.recorded;
      result.trace_dropped = snapshot.dropped;
    }
    // Close the time series at the finish time, before the end-of-run
    // tallies below land in the registry — the final row must describe
    // the run's tail, not the bulk-populated totals.
    if (obs::Sampler* sampler = session_->sampler()) {
      sampler->sample(result.finished_at);
    }
    if (obs::MetricsRegistry* registry = session_->registry()) {
      populate_registry(*registry, result, system);
    }
    session_->export_outputs(resource_labels(*config_));
  }

 private:
  const ExperimentConfig* config_;
  std::optional<obs::Session> session_;
};

/// Schedules the self-rescheduling sampler tick on `engine` at
/// `interval, 2*interval, ...` and returns the count of executed ticks.
/// Each tick is one extra engine event, so the caller subtracts the
/// returned count from `sim_events` to keep the published result
/// bit-for-bit identical to an unsampled run (DESIGN.md §14).  Ticks ride
/// the milestone machinery: on the sharded driver this keeps the cadence
/// (and the exact-stop decision) partition-independent, and on a plain
/// engine it degrades to schedule_at.  `interval` must be >= the engine's
/// milestone lead (the lookahead) in lineage mode.
std::shared_ptr<std::uint64_t> schedule_sampler_ticks(
    sim::Engine& engine, obs::Sampler& sampler, double interval,
    bool progress, std::uint64_t expected,
    std::function<std::uint64_t()> completed) {
  auto executed = std::make_shared<std::uint64_t>(0);
  // Self-rescheduling via an owning shared_ptr, the schedule_periodic
  // idiom (periodic chains themselves are not used: their queue entries
  // would not be milestones).
  auto tick = std::make_shared<sim::EventFn>();
  *tick = [&engine, &sampler, executed, interval, progress, expected,
           completed = std::move(completed), tick]() {
    ++*executed;
    const SimTime now = engine.now();
    sampler.sample(now);
    if (progress) {
      // Straight to stderr: the default log level hides log::info, and a
      // heartbeat the user asked for must not be silenced.
      std::fprintf(stderr,
                   "[gridlb] t=%.1fs  completed %" PRIu64 "/%" PRIu64 "\n",
                   now, completed(), expected);
    }
    engine.schedule_milestone_at(now + interval, *tick);
  };
  engine.schedule_milestone_at(interval, *tick);
  return executed;
}

}  // namespace

ExperimentConfig experiment1() {
  ExperimentConfig config = base_experiment();
  config.name = "Experiment 1 (FIFO, no agents)";
  config.system.policy = sched::SchedulerPolicy::kFifo;
  config.system.discovery_enabled = false;
  return config;
}

ExperimentConfig experiment2() {
  ExperimentConfig config = base_experiment();
  config.name = "Experiment 2 (GA, no agents)";
  config.system.policy = sched::SchedulerPolicy::kGa;
  config.system.discovery_enabled = false;
  return config;
}

ExperimentConfig experiment3() {
  ExperimentConfig config = base_experiment();
  config.name = "Experiment 3 (GA + agent discovery)";
  config.system.policy = sched::SchedulerPolicy::kGa;
  config.system.discovery_enabled = true;
  return config;
}

namespace {

/// The agent-path run, covering families kAgentDiscovery and
/// kHashPlacement.  For the former this is byte-for-byte the historical
/// run_experiment.  For the latter the dispatcher has already cooled the
/// hierarchy (discovery and pulls off), and the portal routes every
/// submission through the straw map built below instead of the
/// workload's nominated entry agent — everything downstream (reliable
/// links, faults, churn, engine sharding) applies unchanged.
ExperimentResult run_agent_impl(const ExperimentConfig& config) {
  GRIDLB_REQUIRE(!config.system.resources.empty(),
                 "experiment needs resources");

  ObsScope obs_scope(config);
  const std::size_t shards = resolve_sim_shards(config);
  sim::ShardedEngine sharded(shards, config.system.network_latency);
  metrics::MetricsCollector collector;
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  agents::AgentSystem system(sharded, catalogue, config.system, &collector);
  system.start();
  // The portal lives on the head agent's shard: submissions enter the grid
  // through the head, so this keeps the portal's traffic (and the
  // collector's on_submission bookkeeping) single-shard.
  const std::size_t portal_shard = system.shard_of(system.head_index());
  sim::Engine& portal_engine = sharded.shard(portal_shard);
  system.network().set_registration_shard(portal_shard);
  agents::Portal portal(portal_engine, system.network(), catalogue, &collector,
                        effective_retry(config.system));
  portal.set_fallback_entry(&system.head());
  // A crash strands tasks on an arbitrary shard; hop back to the portal's
  // shard with one network latency of delay.  The same deferral applies at
  // every shard count so the fault path, too, is shard-count invariant.
  const double resubmit_delay = config.system.network_latency;
  system.set_stranded_sink(
      [&portal, &sharded, portal_shard, resubmit_delay](TaskId task) {
        sharded.post(portal_shard, resubmit_delay,
                     [&portal, task]() { portal.resubmit(task); });
      });

  // Stateless placement map (kHashPlacement only): one straw target per
  // resource, weighted by hardware capacity.  The map lives on the portal
  // shard and mutates only inside submission events — a strictly ordered,
  // single-shard sequence — so every placement (and therefore the whole
  // run) is identical at any shard count.
  const bool hashed = config.placement == PlacementFamily::kHashPlacement;
  std::optional<sched::HashPlacement> placement;
  std::uint64_t placement_decisions = 0;
  if (hashed) {
    sched::HashPlacement::Config placement_config;
    placement_config.seed = config.placement_seed;
    placement_config.load_tau = config.placement_load_tau;
    std::vector<sched::PlacementTarget> targets;
    targets.reserve(system.size());
    for (std::size_t i = 0; i < system.size(); ++i) {
      const agents::ResourceSpec& spec = config.system.resources[i];
      targets.push_back(sched::PlacementTarget{
          system.agent(i).id(),
          sched::HashPlacement::hardware_weight(
              pace::ResourceModel::of(spec.hardware), spec.node_count)});
    }
    placement.emplace(placement_config, std::move(targets));
  }
  // Expected occupancy of one task of an application on each target (the
  // same optimistic figure the ACT bookkeeping advances freetime by:
  // execution time × nodes / nproc at the most efficient allocation),
  // memoised per application.  Feeds the placement map's local backlog
  // snapshots; no messages involved.
  std::unordered_map<std::string, std::vector<double>> occupancy_memo;
  const auto occupancy_of = [&](const std::string& app_name,
                                std::size_t index) -> double {
    auto [it, inserted] = occupancy_memo.try_emplace(app_name);
    if (inserted) {
      const pace::ApplicationModelPtr app = catalogue.find(app_name);
      GRIDLB_REQUIRE(app != nullptr, "unknown application: " + app_name);
      it->second.reserve(system.size());
      for (std::size_t i = 0; i < system.size(); ++i) {
        const agents::ResourceSpec& spec = config.system.resources[i];
        const pace::ResourceModel model =
            pace::ResourceModel::of(spec.hardware);
        double best_exec = std::numeric_limits<double>::infinity();
        int best_k = 1;
        for (int k = 1; k <= spec.node_count; ++k) {
          const double exec = system.evaluator().evaluate(*app, model, k);
          if (exec < best_exec) {
            best_exec = exec;
            best_k = k;
          }
        }
        it->second.push_back(best_exec * static_cast<double>(best_k) /
                             static_cast<double>(spec.node_count));
      }
    }
    return it->second[index];
  };

  const std::vector<RequestSpec> workload = generate_workload(
      config.workload, catalogue, static_cast<int>(system.size()));
  const SimTime duration = config.duration;
  const bool open_loop = duration > 0.0;
  std::uint64_t scheduled = 0;
  for (std::size_t idx = 0; idx < workload.size(); ++idx) {
    const RequestSpec& spec = workload[idx];
    if (open_loop && spec.at >= duration) {
      // Submission times are non-decreasing, so everything from here on is
      // past the cutoff and would never execute.
      break;
    }
    ++scheduled;
    if (!hashed) {
      portal_engine.schedule_at(spec.at, [&, spec]() {
        portal.submit(system.agent(static_cast<std::size_t>(spec.agent_index)),
                      spec.app_name,
                      portal_engine.now() + spec.deadline_offset);
      });
      continue;
    }
    portal_engine.schedule_at(spec.at, [&, spec, idx]() {
      // The straw key is the workload ordinal — stable across shard
      // counts and equal to the TaskId the portal is about to assign
      // minus one (submissions execute in workload order).
      const SimTime now = portal_engine.now();
      const sched::PlacementDecision decision = placement->place(idx, now);
      placement->record_dispatch(decision.index, now,
                                 occupancy_of(spec.app_name, decision.index));
      ++placement_decisions;
      obs::emit({.at = now,
                 .kind = obs::EventKind::kPlacementDecision,
                 .extra = static_cast<std::uint32_t>(decision.index),
                 .task = idx + 1,
                 .resource = decision.resource.value(),
                 .a = decision.draw,
                 .b = placement->targets()[decision.index].weight});
      if (auto* reg = obs::registry()) {
        reg->counter("placement.decisions").add(1);
      }
      portal.submit(system.agent(decision.index), spec.app_name,
                    now + spec.deadline_offset);
    });
  }

  const std::uint64_t expected = scheduled;

  // Continuous profiling: sampler ticks live on the portal's shard so the
  // series is written by exactly one event context at every shard count.
  // The interval is clamped to the lookahead so each reschedule clears
  // the milestone-lead requirement.
  std::shared_ptr<std::uint64_t> sampler_ticks;
  if (obs::Sampler* sampler = obs_scope.sampler()) {
    if (auto* reg = obs::registry()) {
      reg->gauge("grid.agents").set(static_cast<double>(system.size()));
      reg->gauge("grid.total_nodes")
          .set(static_cast<double>(total_grid_nodes(config.system)));
    }
    const double interval = std::max(config.obs.effective_interval(),
                                     config.system.network_latency);
    sampler_ticks = schedule_sampler_ticks(
        portal_engine, *sampler, interval, config.obs.progress, expected,
        [&system]() { return system.completed_count(); });
  }

  // Drive: closed-loop until every submitted task completed or was dropped
  // (the periodic advertisement pulls keep the event queue non-empty
  // forever, so settlement — not queue exhaustion — is the stop
  // condition), or open-loop until the duration cutoff, whichever comes
  // first.  Drops count through the milestone-notified dropped_count(), so
  // one goal covers strict and non-strict mode at any shard count.
  sim::DriveGoal goal;
  goal.done = [&system, expected]() {
    return system.completed_count() + system.dropped_count() >= expected;
  };
  goal.remaining = [&system, expected]() {
    const std::uint64_t settled =
        system.completed_count() + system.dropped_count();
    return settled >= expected ? std::uint64_t{0} : expected - settled;
  };
  if (open_loop) goal.until = duration;
  sharded.drive(goal, config.horizon_limit);
  system.finalize_completions();

  ExperimentResult result;
  result.name = config.name;
  // An open-loop report is evaluated over the truncated window ending at
  // the cutoff, not at the last completion inside it.
  result.report = collector.report(
      open_loop ? std::optional<SimTime>(duration) : std::nullopt);
  result.completions = collector.records();
  result.requests_submitted = expected;
  result.tasks_completed = collector.completed_tasks();
  result.finished_at = sharded.max_now();
  // Observation neutrality: sampler ticks are engine events, so their
  // executions are subtracted back out — the published count must be
  // bit-for-bit what an unsampled run reports.
  result.sim_events = sharded.events_processed() -
                      (sampler_ticks != nullptr ? *sampler_ticks : 0);
  result.sim_shards = shards;
  result.events_swept = sharded.events_swept();
  result.network_messages = system.network().total_messages();
  result.network_bytes = system.network().total_bytes();
  result.cache = system.evaluator().stats();

  std::uint64_t hops = 0;
  std::uint64_t executed = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const agents::Agent& agent = system.agent(i);
    result.agent_stats.push_back(agent.stats());
    result.tasks_dropped += agent.stats().dropped;
    result.migrations += agent.stats().migrations;
    hops += agent.stats().hops_accumulated;
    executed += agent.stats().dispatched_local;
    result.ga_decodes += agent.scheduler().ga_decodes();
    result.ga_memo_hits += agent.scheduler().ga_memo_hits();
    result.ga_delta_evals += agent.scheduler().ga_delta_evals();
    result.ga_full_evals += agent.scheduler().ga_full_evals();
    result.ga_eval_threads =
        std::max(result.ga_eval_threads, agent.scheduler().ga_eval_threads());
    result.fifo_subsets += agent.scheduler().fifo_subsets_tried();
    result.table_reads += agent.scheduler().prediction_table_reads();
  }
  // Layered stats: fold the lock-free table reads into the cache's hits so
  // `cache` keeps describing all prediction traffic (see ExperimentResult).
  result.cache.hits += result.table_reads;
  result.mean_hops =
      executed > 0 ? static_cast<double>(hops) / static_cast<double>(executed)
                   : 0.0;

  result.messages_dropped = system.network().fault_stats().dropped_total();
  result.tasks_resubmitted = portal.tasks_resubmitted();
  const auto tally_link = [&result](const agents::LinkStats& link) {
    result.message_retries += link.retries;
    result.sends_expired += link.expired;
    result.duplicates_suppressed += link.duplicates_suppressed;
  };
  tally_link(portal.link_stats());
  for (std::size_t i = 0; i < system.size(); ++i) {
    tally_link(system.agent(i).link_stats());
    result.agent_crashes += system.agent(i).stats().crashes;
    result.agent_restarts += system.agent(i).stats().restarts;
  }
  result.placement_decisions = placement_decisions;
  fill_flow_stats(result);
  obs_scope.finish(result, system);
  return result;
}

/// The oracle-path run (family kCentralOracle).
ExperimentResult run_central_impl(const ExperimentConfig& config) {
  GRIDLB_REQUIRE(!config.system.resources.empty(),
                 "experiment needs resources");

  ObsScope obs_scope(config);
  // The oracle reads every scheduler's live freetime directly, which only
  // a single-queue simulation can order; `sim_shards` is ignored here, so
  // the oracle's numbers are trivially shard-count invariant.
  sim::Engine engine;
  metrics::MetricsCollector collector;
  const pace::ApplicationCatalogue catalogue = pace::paper_catalogue();

  agents::SystemConfig system_config = config.system;
  system_config.discovery_enabled = false;  // agents stay out of the way
  system_config.pull_period = 0.0;
  // The oracle bypasses the network entirely (submissions go straight to
  // the schedulers), so the fault machinery has nothing to act on.
  system_config.fault = {};
  system_config.fault_tolerance = {};
  system_config.agent_churn = {};
  agents::AgentSystem system(engine, catalogue, std::move(system_config),
                             &collector);
  system.start();

  pace::EvaluationEngine oracle_engine;
  pace::CachedEvaluator oracle(oracle_engine);
  std::uint64_t next_task = 0;

  const auto dispatch = [&](const std::string& app_name, SimTime deadline) {
    const pace::ApplicationModelPtr app = catalogue.find(app_name);
    GRIDLB_REQUIRE(app != nullptr, "unknown application: " + app_name);
    // Omniscient eq. 10: live freetime, no advertisement staleness.
    std::size_t best = 0;
    double best_eta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < system.size(); ++i) {
      const sched::LocalScheduler& scheduler = system.agent(i).scheduler();
      const double backlog =
          std::max(0.0, scheduler.freetime() - engine.now());
      double best_exec = std::numeric_limits<double>::infinity();
      for (int k = 1; k <= scheduler.config().node_count; ++k) {
        best_exec = std::min(
            best_exec,
            oracle.evaluate(*app, scheduler.config().resource, k));
      }
      const double eta = backlog + best_exec;
      if (eta < best_eta) {
        best_eta = eta;
        best = i;
      }
    }
    sched::Task task;
    task.id = TaskId(++next_task);
    task.app = app;
    task.arrival = engine.now();
    task.deadline = deadline;
    collector.on_submission(engine.now());
    system.agent(best).scheduler().submit(std::move(task));
  };

  const std::vector<RequestSpec> workload = generate_workload(
      config.workload, catalogue, static_cast<int>(system.size()));
  const SimTime duration = config.duration;
  const bool open_loop = duration > 0.0;
  std::uint64_t scheduled = 0;
  for (const RequestSpec& spec : workload) {
    if (open_loop && spec.at >= duration) break;  // time-sorted suffix
    ++scheduled;
    engine.schedule_at(spec.at, [&, spec]() {
      dispatch(spec.app_name, engine.now() + spec.deadline_offset);
    });
  }

  const std::uint64_t expected = scheduled;

  std::shared_ptr<std::uint64_t> sampler_ticks;
  if (obs::Sampler* sampler = obs_scope.sampler()) {
    if (auto* reg = obs::registry()) {
      reg->gauge("grid.agents").set(static_cast<double>(system.size()));
      reg->gauge("grid.total_nodes")
          .set(static_cast<double>(total_grid_nodes(config.system)));
    }
    const double interval = std::max(config.obs.effective_interval(),
                                     config.system.network_latency);
    sampler_ticks = schedule_sampler_ticks(
        engine, *sampler, interval, config.obs.progress, expected,
        [&collector]() { return collector.completed_tasks(); });
  }

  while (collector.completed_tasks() < expected) {
    if (open_loop && engine.next_event_time() >= duration) break;
    GRIDLB_REQUIRE(engine.step(), "event queue drained with tasks missing");
    GRIDLB_REQUIRE(engine.now() <= config.horizon_limit,
                   "experiment exceeded the horizon limit");
  }

  ExperimentResult result;
  result.name = config.name;
  result.report = collector.report(
      open_loop ? std::optional<SimTime>(duration) : std::nullopt);
  result.completions = collector.records();
  result.requests_submitted = expected;
  result.tasks_completed = collector.completed_tasks();
  result.finished_at = engine.now();
  result.sim_events = engine.events_processed() -
                      (sampler_ticks != nullptr ? *sampler_ticks : 0);
  result.events_swept = engine.events_swept();
  result.network_messages = system.network().total_messages();
  result.network_bytes = system.network().total_bytes();
  result.cache = system.evaluator().stats();
  for (std::size_t i = 0; i < system.size(); ++i) {
    result.agent_stats.push_back(system.agent(i).stats());
    result.ga_decodes += system.agent(i).scheduler().ga_decodes();
    result.ga_memo_hits += system.agent(i).scheduler().ga_memo_hits();
    result.ga_delta_evals += system.agent(i).scheduler().ga_delta_evals();
    result.ga_full_evals += system.agent(i).scheduler().ga_full_evals();
    result.ga_eval_threads = std::max(
        result.ga_eval_threads, system.agent(i).scheduler().ga_eval_threads());
    result.fifo_subsets += system.agent(i).scheduler().fifo_subsets_tried();
    result.table_reads += system.agent(i).scheduler().prediction_table_reads();
  }
  result.cache.hits += result.table_reads;
  fill_flow_stats(result);
  obs_scope.finish(result, system);
  return result;
}

}  // namespace

std::string placement_family_name(PlacementFamily family) {
  switch (family) {
    case PlacementFamily::kAgentDiscovery: return "agent";
    case PlacementFamily::kCentralOracle: return "central";
    case PlacementFamily::kHashPlacement: return "crush";
  }
  GRIDLB_REQUIRE(false, "unknown placement family");
}

PlacementFamily placement_family_from_name(const std::string& name) {
  if (name == "agent" || name == "discovery") {
    return PlacementFamily::kAgentDiscovery;
  }
  if (name == "central" || name == "central-oracle" || name == "oracle") {
    return PlacementFamily::kCentralOracle;
  }
  if (name == "crush" || name == "hash") {
    return PlacementFamily::kHashPlacement;
  }
  GRIDLB_REQUIRE(false, "unknown placement family: " + name +
                            " (expected agent, central or crush; deprecated "
                            "aliases: discovery, central-oracle, oracle, "
                            "hash)");
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  switch (config.placement) {
    case PlacementFamily::kCentralOracle:
      return run_central_impl(config);
    case PlacementFamily::kHashPlacement: {
      // The straw map resolves every request up front, so the hierarchy's
      // discovery walk and advertisement pulls would be dead weight: turn
      // them off and let the hashed entry execute each request locally.
      ExperimentConfig hashed = config;
      hashed.system.discovery_enabled = false;
      hashed.system.pull_period = 0.0;
      return run_agent_impl(hashed);
    }
    case PlacementFamily::kAgentDiscovery: break;
  }
  return run_agent_impl(config);
}

ExperimentResult run_central_experiment(const ExperimentConfig& config) {
  ExperimentConfig central = config;
  central.placement = PlacementFamily::kCentralOracle;
  return run_experiment(central);
}

std::string format_table3(const std::vector<ExperimentResult>& results) {
  GRIDLB_REQUIRE(!results.empty(), "no results to format");
  const std::size_t rows = results.front().report.resources.size();
  for (const auto& result : results) {
    GRIDLB_REQUIRE(result.report.resources.size() == rows,
                   "results cover different resource sets");
  }

  std::ostringstream os;
  os << std::fixed;
  os << std::setw(6) << "";
  for (std::size_t e = 0; e < results.size(); ++e) {
    os << " | " << std::setw(9) << "eps(s)" << std::setw(9) << "util(%)"
       << std::setw(9) << "beta(%)";
  }
  os << '\n';
  os << std::setw(6) << "agent";
  for (std::size_t e = 0; e < results.size(); ++e) {
    std::string header = "experiment " + std::to_string(e + 1);
    os << " | " << std::setw(27) << header;
  }
  os << '\n';

  const auto emit_row = [&os, &results](std::size_t row, bool total) {
    os << std::setw(6)
       << (total ? "Total" : results.front().report.resources[row].label);
    for (const auto& result : results) {
      const metrics::MetricsRow& metrics_row =
          total ? result.report.total : result.report.resources[row];
      os << " | " << std::setw(9) << std::setprecision(0)
         << metrics_row.advance_time << std::setw(9) << std::setprecision(0)
         << metrics_row.utilisation * 100.0 << std::setw(9)
         << std::setprecision(0) << metrics_row.balance * 100.0;
    }
    os << '\n';
  };
  for (std::size_t row = 0; row < rows; ++row) emit_row(row, false);
  emit_row(0, true);
  return os.str();
}

}  // namespace gridlb::core
