#include "core/case_study.hpp"

namespace gridlb::core {

std::vector<agents::ResourceSpec> case_study_resources() {
  using pace::HardwareType;
  std::vector<agents::ResourceSpec> specs;
  const auto add = [&specs](const char* name, HardwareType hardware,
                            int parent) {
    specs.push_back(agents::ResourceSpec{name, hardware, 16, parent});
  };
  add("S1", HardwareType::kSgiOrigin2000, -1);
  add("S2", HardwareType::kSgiOrigin2000, 0);
  add("S3", HardwareType::kSunUltra10, 0);
  add("S4", HardwareType::kSunUltra10, 0);
  add("S5", HardwareType::kSunUltra5, 1);
  add("S6", HardwareType::kSunUltra5, 1);
  add("S7", HardwareType::kSunUltra5, 2);
  add("S8", HardwareType::kSunUltra1, 2);
  add("S9", HardwareType::kSunUltra1, 3);
  add("S10", HardwareType::kSunUltra1, 3);
  add("S11", HardwareType::kSunSparcStation2, 4);
  add("S12", HardwareType::kSunSparcStation2, 4);
  return specs;
}

}  // namespace gridlb::core
