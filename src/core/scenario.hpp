// Parameterised grid scenarios (DESIGN.md §12).
//
// The paper's evaluation is hard-wired to the twelve-agent Fig. 7 grid
// and leaves scalability as future work ("further work is necessary to
// test the scalability of the system", §3.1).  A ScenarioSpec describes a
// whole family of grids instead: how many agents, how the hierarchy is
// shaped (balanced fanout trees or seeded random trees with a depth cap),
// which hardware mix the resources cycle through, how many nodes each
// resource has, and how the workload scales with the grid (requests per
// resource, arrival rate, deadline tightness).  The generator turns a
// spec into the concrete `agents::ResourceSpec` tree + `WorkloadConfig`
// every harness entry point already consumes, so the same code that
// reproduces Table 3 runs any grid you can describe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/agent_system.hpp"
#include "core/experiment.hpp"
#include "core/workload.hpp"

namespace gridlb::core {

/// How scenario agents are wired into a hierarchy.
enum class HierarchyShape {
  /// Balanced tree: agent i's parent is (i − 1) / fanout — every interior
  /// agent has up to `fanout` children and depth grows logarithmically.
  kFanout,
  /// Random tree: each agent picks a uniformly random earlier agent as
  /// its parent (seeded, optionally depth-capped).  Models organically
  /// grown grids instead of planned ones.
  kRandom,
};

/// Shape name as spelled on the CLI ("fanout" / "random").
[[nodiscard]] std::string shape_name(HierarchyShape shape);
/// Inverse of shape_name; throws AssertionError for unknown names.
[[nodiscard]] HierarchyShape shape_from_name(const std::string& name);

struct ScenarioSpec {
  // --- grid ---
  int agent_count = 12;
  HierarchyShape shape = HierarchyShape::kFanout;
  int fanout = 3;  ///< children per interior agent (kFanout only)
  /// Maximum tree depth for kRandom (root = depth 0); 0 = unbounded.
  /// A cap of 1 yields a star, a large cap tends towards long chains.
  int max_depth = 0;
  std::uint64_t tree_seed = 1;  ///< parent selection seed (kRandom only)
  /// Hardware assigned round-robin down the agent list (S1 gets mix[0],
  /// S2 mix[1], …).  Empty = all five case-study platforms, fastest
  /// first — the mix the scalability ablation has always used.
  std::vector<pace::HardwareType> hardware_mix;
  int nodes_per_resource = 16;
  // --- workload scaling ---
  int requests_per_agent = 25;    ///< total requests = agents × this
  /// Seconds between submissions; 0 = auto (12 s ÷ agent_count, i.e. the
  /// Fig. 7 per-agent rate held constant as the grid scales).
  double arrival_interval = 1.0;
  double deadline_scale = 1.0;    ///< see WorkloadConfig::deadline_scale
  std::uint64_t workload_seed = 2003;
};

/// Generates the resource tree for `spec`: agents named "S1".."SN" in
/// topological (parent-first) order, hardware cycled from the mix.
/// Deterministic — the same spec always yields the same tree.
[[nodiscard]] std::vector<agents::ResourceSpec> scenario_resources(
    const ScenarioSpec& spec);

/// The matching workload: `agent_count × requests_per_agent` requests at
/// `arrival_interval` spacing (load per resource stays constant as the
/// grid grows).
[[nodiscard]] WorkloadConfig scenario_workload(const ScenarioSpec& spec);

/// A ready-to-run experiment over the generated grid, configured like the
/// paper's experiment 3 (GA local scheduling + agent discovery).
[[nodiscard]] ExperimentConfig scenario_experiment(const ScenarioSpec& spec);

}  // namespace gridlb::core
