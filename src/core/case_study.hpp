// The IPPS'03 case-study configuration (paper §4.1, Fig. 7).
//
// Twelve agents S1..S12 in a hierarchy, each representing a 16-node
// homogeneous resource:
//   S1, S2  — SGIOrigin2000 (most powerful)
//   S3, S4  — SunUltra10
//   S5..S7  — SunUltra5
//   S8..S10 — SunUltra1
//   S11,S12 — SunSPARCstation2 (least powerful)
// Fig. 7 shows the hierarchy without fully specifying every edge; the
// wiring used here (S1 → {S2,S3,S4}, S2 → {S5,S6}, S3 → {S7,S8},
// S4 → {S9,S10}, S5 → {S11,S12}) is documented in DESIGN.md.
#pragma once

#include <vector>

#include "agents/agent_system.hpp"

namespace gridlb::core {

/// The twelve Fig. 7 resources in topological (parent-first) order.
[[nodiscard]] std::vector<agents::ResourceSpec> case_study_resources();

}  // namespace gridlb::core
