// The case-study workload generator (paper §4.1).
//
// "During each experiment, requests for one of the seven test applications
// are sent at one second intervals to randomly selected agents.  The
// required execution time deadline for the application is also selected
// randomly from a given domain [Table 1].  The request phase of each
// experiment lasts for ten minutes during which 600 task execution
// requests are sent out to the agents.  While the selection of agents,
// applications and requirements are random, the seed is set to the same
// so that the workload for each experiment is identical."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "pace/application_model.hpp"

namespace gridlb::core {

/// One pre-generated request.
struct RequestSpec {
  SimTime at = 0.0;          ///< submission time
  int agent_index = 0;       ///< entry agent (index into the resource list)
  std::string app_name;
  double deadline_offset = 0.0;  ///< δ − submission time, seconds
};

struct WorkloadConfig {
  int count = 600;
  double interval = 1.0;  ///< seconds between submissions
  double start = 1.0;     ///< time of the first submission
  std::uint64_t seed = 2003;
  /// Deadline tightness: the Table 1 deadline drawn for each request is
  /// multiplied by this factor (<1 squeezes deadlines, >1 relaxes them).
  /// 1.0 leaves the case-study workload bit-identical.
  double deadline_scale = 1.0;
};

/// Deterministically generates the workload; the same seed yields the same
/// sequence regardless of scheduler/agent configuration.
[[nodiscard]] std::vector<RequestSpec> generate_workload(
    const WorkloadConfig& config, const pace::ApplicationCatalogue& catalogue,
    int agent_count);

}  // namespace gridlb::core
