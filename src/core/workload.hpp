// The case-study workload generator (paper §4.1) and its open-loop
// extensions.
//
// "During each experiment, requests for one of the seven test applications
// are sent at one second intervals to randomly selected agents.  The
// required execution time deadline for the application is also selected
// randomly from a given domain [Table 1].  The request phase of each
// experiment lasts for ten minutes during which 600 task execution
// requests are sent out to the agents.  While the selection of agents,
// applications and requirements are random, the seed is set to the same
// so that the workload for each experiment is identical."
//
// The paper's workload is that fixed uniform batch; production traffic is
// open-loop and bursty.  `ArrivalProcess` makes the submission *timing*
// pluggable while the per-request draws (entry agent, application,
// deadline) stay on the original random stream, so the default uniform
// process remains bit-identical to the historical generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "pace/application_model.hpp"

namespace gridlb::core {

/// One pre-generated request.
struct RequestSpec {
  SimTime at = 0.0;          ///< submission time
  int agent_index = 0;       ///< entry agent (index into the resource list)
  std::string app_name;
  double deadline_offset = 0.0;  ///< δ − submission time, seconds

  bool operator==(const RequestSpec&) const = default;
};

/// How submission times are generated.  See WorkloadConfig::interval for
/// the per-process interval semantics.
enum class ArrivalProcess : std::uint8_t {
  kUniform,  ///< exact 1/interval spacing (the paper's batch; the default)
  kPoisson,  ///< exponential interarrival gaps with mean `interval`
  kOnOff,    ///< square-wave bursts: ON phases at duty-scaled spacing
  kDiurnal,  ///< sinusoidally modulated rate with period/amplitude knobs
  kTrace,    ///< replay a JSONL workload export verbatim
};

/// Canonical CLI spelling: "uniform" | "poisson" | "onoff" | "diurnal" |
/// "trace".
[[nodiscard]] std::string arrival_process_name(ArrivalProcess process);

/// Inverse of arrival_process_name; anything else fails with a message
/// listing the valid values.
[[nodiscard]] ArrivalProcess arrival_process_from_name(
    const std::string& name);

struct WorkloadConfig {
  int count = 600;
  /// Mean seconds between submissions.  Exact semantics depend on the
  /// arrival process:
  ///   kUniform — exact spacing: at_i = start + i·interval;
  ///   kPoisson — mean of the exponential interarrival gaps;
  ///   kOnOff   — cycle-averaged: ON-phase arrivals are spaced
  ///              interval·burst_on/(burst_on+burst_off) apart and OFF
  ///              phases are silent, so the offered rate averages
  ///              1/interval over each cycle;
  ///   kDiurnal — mean of the modulated rate λ(t) = (1 + diurnal_amplitude
  ///              · sin(2π(t−start)/diurnal_period)) / interval;
  ///   kTrace   — ignored (the trace's timestamps replay verbatim).
  /// Must be > 0 for every process except kTrace; `validate_workload`
  /// rejects anything else with an actionable message.
  double interval = 1.0;
  double start = 1.0;     ///< time of the first submission
  std::uint64_t seed = 2003;
  /// Deadline tightness: the Table 1 deadline drawn for each request is
  /// multiplied by this factor (<1 squeezes deadlines, >1 relaxes them).
  /// 1.0 leaves the case-study workload bit-identical.  Ignored by kTrace
  /// (trace deadline offsets are already final and replay verbatim).
  double deadline_scale = 1.0;
  /// Submission-timing process.  The timing draws come from a separate
  /// random stream derived from `seed`, so switching processes never
  /// perturbs the per-request agent/application/deadline selections —
  /// and kUniform consumes no timing randomness at all, keeping the
  /// default workload bit-identical to the historical generator.
  ArrivalProcess arrival = ArrivalProcess::kUniform;
  /// kOnOff: seconds of each ON (bursting) phase.  Must be > 0.
  double burst_on = 30.0;
  /// kOnOff: seconds of each silent OFF phase.  0 degenerates to uniform.
  double burst_off = 90.0;
  /// kDiurnal: modulation period in seconds.  Must be > 0.
  double diurnal_period = 3600.0;
  /// kDiurnal: relative rate swing in [0, 1): λ peaks at (1+a)/interval
  /// and bottoms at (1−a)/interval.
  double diurnal_amplitude = 0.8;
  /// kTrace: path of a JSONL workload export (see workload_to_jsonl).
  std::string trace_path;
};

/// Validates `config`, throwing AssertionError with an actionable message
/// (which flag to pass, what the value means for the selected arrival
/// process).  `generate_workload` calls this, so an invalid config can
/// never silently reach generation; CLI/config boundaries call it early
/// to fail before any expensive setup.
void validate_workload(const WorkloadConfig& config);

/// Deterministically generates the workload; the same seed yields the same
/// sequence regardless of scheduler/agent configuration.
[[nodiscard]] std::vector<RequestSpec> generate_workload(
    const WorkloadConfig& config, const pace::ApplicationCatalogue& catalogue,
    int agent_count);

/// Serialises a workload as JSONL, one request per line:
///   {"at":12.5,"agent":3,"app":"sweep3d","deadline_offset":100}
/// Numbers print with round-trip precision, so export → kTrace replay
/// reproduces the workload bit-for-bit.
[[nodiscard]] std::string workload_to_jsonl(
    const std::vector<RequestSpec>& workload);

/// Inverse of workload_to_jsonl.  Rejects malformed lines and
/// out-of-order timestamps with an actionable message; agent/application
/// validity is checked against the catalogue when the trace is replayed
/// through generate_workload.
[[nodiscard]] std::vector<RequestSpec> parse_workload_jsonl(
    const std::string& text);

}  // namespace gridlb::core
