// Compatibility shim: the umbrella header moved to the include root so
// users write `#include "gridlb.hpp"` without naming an internal module.
#pragma once

// Relative path: a plain "gridlb.hpp" would resolve to this very file
// (quoted includes search the including file's directory first).
#include "../gridlb.hpp"  // IWYU pragma: export
