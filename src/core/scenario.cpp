#include "core/scenario.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sched/node_mask.hpp"

namespace gridlb::core {

std::string shape_name(HierarchyShape shape) {
  switch (shape) {
    case HierarchyShape::kFanout:
      return "fanout";
    case HierarchyShape::kRandom:
      return "random";
  }
  GRIDLB_REQUIRE(false, "unknown hierarchy shape");
}

HierarchyShape shape_from_name(const std::string& name) {
  if (name == "fanout") return HierarchyShape::kFanout;
  if (name == "random") return HierarchyShape::kRandom;
  GRIDLB_REQUIRE(false, "unknown hierarchy shape: " + name +
                            " (expected fanout or random)");
}

namespace {

void validate(const ScenarioSpec& spec) {
  GRIDLB_REQUIRE(spec.agent_count >= 1, "scenario needs at least one agent");
  GRIDLB_REQUIRE(spec.fanout >= 1, "fanout must be at least 1");
  GRIDLB_REQUIRE(spec.max_depth >= 0, "max depth cannot be negative");
  GRIDLB_REQUIRE(spec.nodes_per_resource >= 1 &&
                     spec.nodes_per_resource <= sched::kMaxNodesPerResource,
                 "nodes per resource must be in 1.." +
                     std::to_string(sched::kMaxNodesPerResource));
  GRIDLB_REQUIRE(spec.requests_per_agent >= 0,
                 "requests per agent cannot be negative");
  GRIDLB_REQUIRE(spec.arrival_interval >= 0.0,
                 "arrival interval cannot be negative (0 = auto)");
  GRIDLB_REQUIRE(spec.deadline_scale > 0.0,
                 "deadline scale must be positive");
}

/// Parent index per agent (index 0 is the head, parent −1).
std::vector<int> build_parents(const ScenarioSpec& spec) {
  std::vector<int> parents(static_cast<std::size_t>(spec.agent_count), -1);
  if (spec.shape == HierarchyShape::kFanout) {
    for (int i = 1; i < spec.agent_count; ++i) {
      parents[static_cast<std::size_t>(i)] = (i - 1) / spec.fanout;
    }
    return parents;
  }
  // Random tree: each new agent attaches below a uniformly random earlier
  // agent, restricted to parents above the depth cap when one is set.
  // Earlier agents always exist, so the tree is connected and the spec
  // list stays in topological (parent-first) order by construction.
  Rng rng(spec.tree_seed);
  std::vector<int> depth(static_cast<std::size_t>(spec.agent_count), 0);
  std::vector<int> eligible{0};  // indices whose children stay within cap
  for (int i = 1; i < spec.agent_count; ++i) {
    const int parent = eligible[static_cast<std::size_t>(
        rng.next_below(eligible.size()))];
    parents[static_cast<std::size_t>(i)] = parent;
    depth[static_cast<std::size_t>(i)] =
        depth[static_cast<std::size_t>(parent)] + 1;
    if (spec.max_depth == 0 ||
        depth[static_cast<std::size_t>(i)] < spec.max_depth) {
      eligible.push_back(i);
    }
  }
  return parents;
}

}  // namespace

std::vector<agents::ResourceSpec> scenario_resources(
    const ScenarioSpec& spec) {
  validate(spec);
  const std::vector<pace::HardwareType>& mix =
      spec.hardware_mix.empty() ? pace::all_hardware_types()
                                : spec.hardware_mix;
  const std::vector<int> parents = build_parents(spec);
  std::vector<agents::ResourceSpec> resources;
  resources.reserve(static_cast<std::size_t>(spec.agent_count));
  for (int i = 0; i < spec.agent_count; ++i) {
    agents::ResourceSpec resource;
    resource.name = "S" + std::to_string(i + 1);
    resource.hardware = mix[static_cast<std::size_t>(i) % mix.size()];
    resource.node_count = spec.nodes_per_resource;
    resource.parent = parents[static_cast<std::size_t>(i)];
    resources.push_back(std::move(resource));
  }
  return resources;
}

WorkloadConfig scenario_workload(const ScenarioSpec& spec) {
  validate(spec);
  WorkloadConfig workload;
  workload.count = spec.agent_count * spec.requests_per_agent;
  // 0 = auto: keep the *per-agent* arrival rate constant as the grid grows
  // (12 s between submissions on the 12-agent Fig. 7 grid), so a 10k-agent
  // campaign offers each resource the same load as the paper's case study
  // instead of drowning the portal.
  workload.interval = spec.arrival_interval > 0.0
                          ? spec.arrival_interval
                          : 12.0 / static_cast<double>(spec.agent_count);
  workload.seed = spec.workload_seed;
  workload.deadline_scale = spec.deadline_scale;
  return workload;
}

ExperimentConfig scenario_experiment(const ScenarioSpec& spec) {
  ExperimentConfig config;
  config.system.resources = scenario_resources(spec);
  config.workload = scenario_workload(spec);
  std::ostringstream name;
  name << "scenario (" << spec.agent_count << " agents, "
       << shape_name(spec.shape);
  if (spec.shape == HierarchyShape::kFanout) name << ' ' << spec.fanout;
  name << ", " << config.workload.count << " requests)";
  config.name = name.str();
  return config;
}

}  // namespace gridlb::core
