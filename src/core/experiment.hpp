// Experiment harness for the case study (paper §4, Tables 2–3).
//
// Three experiment presets reproduce Table 2's design matrix:
//   experiment 1 — FIFO local scheduling, no agent mechanism;
//   experiment 2 — GA local scheduling, no agent mechanism;
//   experiment 3 — GA local scheduling + agent-based service discovery.
// `run_experiment` executes one configuration end-to-end in virtual time
// and returns the Table 3 metrics together with the auxiliary statistics
// used by the ablation benches.
#pragma once

#include <string>
#include <vector>

#include "agents/agent_system.hpp"
#include "core/workload.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"

namespace gridlb::core {

struct ExperimentConfig {
  std::string name;
  /// The whole grid under test — resources, scheduling policy, discovery,
  /// network faults, agent churn.  Embedded directly: a knob added to
  /// agents::SystemConfig is immediately reachable from every experiment,
  /// bench, and CLI flag without a mirror field here.
  agents::SystemConfig system;
  WorkloadConfig workload;
  /// Abort (with an assertion) if the grid has not drained by this time.
  SimTime horizon_limit = 48.0 * 3600.0;
  /// Observability: tracing/metrics instruments and their output files.
  /// Disabled by default; enabling it never changes experiment results
  /// (see DESIGN.md §9).
  obs::ObsConfig obs;
};

/// Table 2 presets.
[[nodiscard]] ExperimentConfig experiment1();
[[nodiscard]] ExperimentConfig experiment2();
[[nodiscard]] ExperimentConfig experiment3();

struct ExperimentResult {
  std::string name;
  metrics::Report report;              ///< ε / υ / β, per resource + total
  std::vector<sched::CompletionRecord> completions;  ///< full trace
  std::vector<agents::AgentStats> agent_stats;  ///< per agent, S1.. order
  // Aggregates.
  std::uint64_t requests_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_dropped = 0;     ///< strict-mode discovery failures
  double mean_hops = 0.0;              ///< forwards per executed request
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  /// Layered prediction-lookup statistics (DESIGN.md §11): per-scheduler
  /// prediction-table reads are folded into `hits` — a table read is a
  /// lookup the sharded cache would have served from memory — so `cache`
  /// keeps describing the full prediction traffic; `table_reads` breaks
  /// out the lock-free share.
  pace::CacheStats cache;
  std::uint64_t table_reads = 0;
  std::uint64_t ga_decodes = 0;
  std::uint64_t ga_memo_hits = 0;  ///< evaluations skipped by genotype memo
  std::uint64_t fifo_subsets = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t sim_shards = 1;        ///< engine shards the run used
  std::uint64_t events_swept = 0;      ///< cancelled entries lazily discarded
  SimTime finished_at = 0.0;           ///< virtual time of the last event
  // Observability (zero unless config.obs enabled tracing).
  std::uint64_t trace_events = 0;      ///< events captured in the rings
  std::uint64_t trace_dropped = 0;     ///< events lost to ring wrap
  // Fault handling (all zero when faults and fault tolerance are off).
  std::uint64_t messages_dropped = 0;  ///< by the network fault plan
  std::uint64_t message_retries = 0;   ///< retransmissions, all links
  std::uint64_t sends_expired = 0;     ///< retry budgets exhausted
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t agent_crashes = 0;
  std::uint64_t agent_restarts = 0;
  std::uint64_t tasks_resubmitted = 0; ///< stranded tasks re-discovered
};

/// Runs one experiment to completion (all submitted tasks executed or
/// dropped) and gathers every statistic.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs the same workload under an idealised *central* dispatcher: an
/// omniscient scheduler that sees every resource's live freetime with
/// zero staleness and zero message cost, and sends each request to the
/// globally best estimate (eq. 10 over all resources).  This is the
/// centralised architecture the paper argues against ("no central
/// structure which might act as a potential bottleneck"); comparing it
/// with experiment 3 quantifies how much the neighbour-only discovery
/// gives up for its decentralisation.  Local scheduling still uses
/// `config.policy`.
[[nodiscard]] ExperimentResult run_central_experiment(
    const ExperimentConfig& config);

/// Formats results side by side in the layout of Table 3 (ε, υ, β columns
/// per experiment, one row per resource plus the grid total).
[[nodiscard]] std::string format_table3(
    const std::vector<ExperimentResult>& results);

}  // namespace gridlb::core
