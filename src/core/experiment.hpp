// Experiment harness for the case study (paper §4, Tables 2–3).
//
// Three experiment presets reproduce Table 2's design matrix:
//   experiment 1 — FIFO local scheduling, no agent mechanism;
//   experiment 2 — GA local scheduling, no agent mechanism;
//   experiment 3 — GA local scheduling + agent-based service discovery.
// `run_experiment` executes one configuration end-to-end in virtual time
// and returns the Table 3 metrics together with the auxiliary statistics
// used by the ablation benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/agent_system.hpp"
#include "core/workload.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"

namespace gridlb::core {

/// Which placement tier routes each submitted request onto a resource.
/// Orthogonal to the *local* scheduling policy (FIFO/GA), which decides
/// node allocation once a request has landed (DESIGN.md §15).
enum class PlacementFamily : std::uint8_t {
  /// The paper's architecture: requests enter at an agent and walk the
  /// hierarchy using advertised service information (experiments 1–3).
  kAgentDiscovery,
  /// Idealised omniscient dispatcher with zero-staleness, zero-cost
  /// visibility of every resource — the centralised strawman.
  kCentralOracle,
  /// CRUSH-style stateless hashed placement: the portal maps each
  /// request onto a resource with a weighted straw2 draw over the
  /// resource tree — no discovery messages at all (DESIGN.md §15).
  kHashPlacement,
};

/// Canonical CLI spelling: "agent" | "central" | "crush".
[[nodiscard]] std::string placement_family_name(PlacementFamily family);

/// Parses a placement family name.  Accepts the canonical spellings plus
/// deprecated aliases ("central-oracle", "oracle", "discovery", "hash");
/// anything else fails with a message listing the valid values.
[[nodiscard]] PlacementFamily placement_family_from_name(
    const std::string& name);

struct ExperimentConfig {
  std::string name;
  /// The whole grid under test — resources, scheduling policy, discovery,
  /// network faults, agent churn.  Embedded directly: a knob added to
  /// agents::SystemConfig is immediately reachable from every experiment,
  /// bench, and CLI flag without a mirror field here.
  agents::SystemConfig system;
  WorkloadConfig workload;
  /// Placement family dispatched by run_experiment (DESIGN.md §15).
  PlacementFamily placement = PlacementFamily::kAgentDiscovery;
  /// Hash placement only: backlog-discount time constant τ in seconds for
  /// the portal's optimistic freetime snapshots (a target carrying b
  /// seconds of routed backlog competes with weight w / (1 + b/τ)).
  /// 0 keeps the map purely hardware-weighted.
  double placement_load_tau = 60.0;
  /// Hash placement only: placement-map generation seed.
  std::uint64_t placement_seed = 0x6c6f6164;
  /// Open-loop campaign cutoff: > 0 runs exactly the events with time <
  /// `duration` and then stops, completed or not — the sustained-rate
  /// regime whose success criteria are the steady-state latency
  /// percentiles and the shed rate instead of batch completion.  Workload
  /// entries at or after the cutoff are never submitted.  0 (the default)
  /// keeps the paper's closed loop: run until every submitted task
  /// completed or was dropped.  Either way the executed event set is a
  /// property of the global timeline, so results stay bit-for-bit
  /// identical at any sim_shards.
  SimTime duration = 0.0;
  /// Abort (with an assertion) if the grid has not drained by this time.
  SimTime horizon_limit = 48.0 * 3600.0;
  /// Observability: tracing/metrics instruments and their output files.
  /// Disabled by default; enabling it never changes experiment results
  /// (see DESIGN.md §9).
  obs::ObsConfig obs;
};

/// Table 2 presets.
[[nodiscard]] ExperimentConfig experiment1();
[[nodiscard]] ExperimentConfig experiment2();
[[nodiscard]] ExperimentConfig experiment3();

struct ExperimentResult {
  std::string name;
  metrics::Report report;              ///< ε / υ / β, per resource + total
  std::vector<sched::CompletionRecord> completions;  ///< full trace
  std::vector<agents::AgentStats> agent_stats;  ///< per agent, S1.. order
  // Aggregates.
  std::uint64_t requests_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_dropped = 0;     ///< strict-mode discovery failures
  /// Submitted but neither completed nor dropped when the run stopped —
  /// the standing backlog at an open-loop cutoff (always 0 closed-loop).
  std::uint64_t tasks_unfinished = 0;
  /// Offered load not completed inside the window:
  /// (submitted − completed) / submitted.  Closed-loop this equals the
  /// strict drop rate; open-loop it also counts the standing backlog.
  double shed_rate = 0.0;
  /// Steady-state sojourn time (completion − submission) percentiles over
  /// every completed task, nearest-rank; 0 when nothing completed.
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
  /// Queued tasks re-homed to an idler neighbour (DESIGN.md §17).
  std::uint64_t migrations = 0;
  double mean_hops = 0.0;              ///< forwards per executed request
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  /// Layered prediction-lookup statistics (DESIGN.md §11): per-scheduler
  /// prediction-table reads are folded into `hits` — a table read is a
  /// lookup the sharded cache would have served from memory — so `cache`
  /// keeps describing the full prediction traffic; `table_reads` breaks
  /// out the lock-free share.
  pace::CacheStats cache;
  std::uint64_t table_reads = 0;
  std::uint64_t ga_decodes = 0;
  std::uint64_t ga_memo_hits = 0;  ///< evaluations skipped by genotype memo
  /// Incremental vs from-scratch schedule evaluations (DESIGN.md §16);
  /// `ga_delta_evals + ga_full_evals == ga_decodes` under the GA policy.
  std::uint64_t ga_delta_evals = 0;
  std::uint64_t ga_full_evals = 0;
  /// Resolved GA evaluate-phase thread count (max across schedulers; 1
  /// when sharding forces the serial path or the FIFO policy runs).
  int ga_eval_threads = 1;
  std::uint64_t fifo_subsets = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t sim_shards = 1;        ///< engine shards the run used
  std::uint64_t events_swept = 0;      ///< cancelled entries lazily discarded
  SimTime finished_at = 0.0;           ///< virtual time of the last event
  // Observability (zero unless config.obs enabled tracing).
  std::uint64_t trace_events = 0;      ///< events captured in the rings
  std::uint64_t trace_dropped = 0;     ///< events lost to ring wrap
  // Fault handling (all zero when faults and fault tolerance are off).
  std::uint64_t messages_dropped = 0;  ///< by the network fault plan
  std::uint64_t message_retries = 0;   ///< retransmissions, all links
  std::uint64_t sends_expired = 0;     ///< retry budgets exhausted
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t agent_crashes = 0;
  std::uint64_t agent_restarts = 0;
  std::uint64_t tasks_resubmitted = 0; ///< stranded tasks re-discovered
  // Stateless placement (zero except under kHashPlacement).
  std::uint64_t placement_decisions = 0;  ///< straw draws the portal made
};

/// Runs one experiment to completion (all submitted tasks executed or
/// dropped) and gathers every statistic.  Dispatches on
/// `config.placement`:
///   kAgentDiscovery — the paper's agent hierarchy, byte-for-byte the
///       historical behaviour;
///   kCentralOracle  — an omniscient dispatcher that sees every
///       resource's live freetime with zero staleness and zero message
///       cost and sends each request to the globally best estimate
///       (eq. 10 over all resources).  This is the centralised
///       architecture the paper argues against; comparing it with
///       experiment 3 quantifies what neighbour-only discovery gives up
///       for its decentralisation;
///   kHashPlacement  — the stateless straw map of DESIGN.md §15: the
///       portal hashes each request straight onto a resource (zero
///       discovery traffic) and submits over the usual reliable link, so
///       loss, churn and fault tolerance apply unchanged.
/// Local scheduling always uses `config.system.policy`.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Deprecated alias for run_experiment with placement = kCentralOracle;
/// prefer setting `ExperimentConfig::placement` directly.
[[nodiscard]] ExperimentResult run_central_experiment(
    const ExperimentConfig& config);

/// Formats results side by side in the layout of Table 3 (ε, υ, β columns
/// per experiment, one row per resource plus the grid total).
[[nodiscard]] std::string format_table3(
    const std::vector<ExperimentResult>& results);

}  // namespace gridlb::core
