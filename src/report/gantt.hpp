// Text Gantt-chart rendering (the paper's Fig. 2 visualisation).
//
// Two views: a *planned* schedule (a DecodedSchedule fresh out of the GA)
// and an *executed* trace (completion records from a simulation run).
// Rows are processing nodes, columns are equal time slices, and each task
// prints as a repeated letter (A, B, … cycling after Z).
#pragma once

#include <span>
#include <string>

#include "sched/local_scheduler.hpp"
#include "sched/schedule_builder.hpp"

namespace gridlb::report {

struct GanttOptions {
  int columns = 60;   ///< time resolution of the chart
  char idle = '.';    ///< glyph for an idle slot
};

/// Renders a planned schedule over `node_count` nodes.  Time runs from
/// `now` (the decode origin) to the schedule's completion.
[[nodiscard]] std::string render_schedule(
    std::span<const sched::Task> tasks,
    const sched::DecodedSchedule& schedule, int node_count, SimTime now = 0.0,
    GanttOptions options = {});

/// Renders an executed trace for one resource between `from` and `to`
/// (defaults: first start to last end).  Tasks are lettered by the order
/// they appear in `records`.
[[nodiscard]] std::string render_trace(
    std::span<const sched::CompletionRecord> records, int node_count,
    SimTime from = kNoTime, SimTime to = kNoTime, GanttOptions options = {});

}  // namespace gridlb::report
