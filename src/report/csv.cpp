#include "report/csv.hpp"

#include <sstream>

#include "sched/node_mask.hpp"

namespace gridlb::report {

std::string csv_field(const std::string& raw) {
  const bool needs_quoting =
      raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return raw;
  std::string out = "\"";
  for (const char ch : raw) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

std::string completions_csv(
    std::span<const sched::CompletionRecord> records) {
  std::ostringstream os;
  os << "task,resource,app,nodes,mask,submitted,start,end,deadline,met\n";
  for (const auto& record : records) {
    os << record.task.value() << ',' << record.resource.value() << ','
       << csv_field(record.app_name) << ','
       << sched::node_count(record.mask) << ',' << record.mask << ','
       << record.submitted << ',' << record.start << ',' << record.end << ','
       << record.deadline << ',' << (record.end <= record.deadline ? 1 : 0)
       << '\n';
  }
  return os.str();
}

std::string report_csv(const metrics::Report& report) {
  std::ostringstream os;
  os << "resource,tasks,deadlines_met,advance_time_s,utilisation,balance\n";
  const auto emit = [&os](const metrics::MetricsRow& row) {
    os << csv_field(row.label) << ',' << row.tasks << ','
       << row.deadlines_met << ',' << row.advance_time << ','
       << row.utilisation << ',' << row.balance << '\n';
  };
  for (const auto& row : report.resources) emit(row);
  emit(report.total);
  return os.str();
}

std::string experiments_csv(
    std::span<const core::ExperimentResult> results) {
  std::ostringstream os;
  os << "experiment,resource,eps_s,utilisation,balance\n";
  for (const auto& result : results) {
    const auto emit = [&os, &result](const metrics::MetricsRow& row) {
      os << csv_field(result.name) << ',' << csv_field(row.label) << ','
         << row.advance_time << ',' << row.utilisation << ',' << row.balance
         << '\n';
    };
    for (const auto& row : result.report.resources) emit(row);
    emit(result.report.total);
  }
  return os.str();
}

}  // namespace gridlb::report
