// CSV export of simulation results — completion traces, metric reports
// and multi-experiment comparisons — for analysis outside the simulator
// (spreadsheets, pandas, gnuplot).  Fields containing separators or
// quotes are quoted per RFC 4180.
#pragma once

#include <span>
#include <string>

#include "core/experiment.hpp"
#include "metrics/metrics.hpp"
#include "sched/local_scheduler.hpp"

namespace gridlb::report {

/// Escapes one CSV field (quotes only when needed).
[[nodiscard]] std::string csv_field(const std::string& raw);

/// task,resource,app,nodes,mask,submitted,start,end,deadline,met
[[nodiscard]] std::string completions_csv(
    std::span<const sched::CompletionRecord> records);

/// resource,tasks,deadlines_met,advance_time_s,utilisation,balance
/// (per-resource rows plus the Total row).
[[nodiscard]] std::string report_csv(const metrics::Report& report);

/// experiment,resource,eps_s,utilisation,balance — the long-format data
/// behind Table 3 / Figs. 8–10, one row per (experiment, resource).
[[nodiscard]] std::string experiments_csv(
    std::span<const core::ExperimentResult> results);

}  // namespace gridlb::report
