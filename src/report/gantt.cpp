#include "report/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace gridlb::report {

namespace {

char glyph_for(std::size_t index) {
  return static_cast<char>('A' + static_cast<int>(index % 26));
}

struct Bar {
  SimTime start;
  SimTime end;
  sched::NodeMask mask;
  char glyph;
};

std::string render_bars(std::span<const Bar> bars, int node_count,
                        SimTime from, SimTime to,
                        const GanttOptions& options) {
  GRIDLB_REQUIRE(options.columns >= 1, "chart needs at least one column");
  GRIDLB_REQUIRE(node_count >= 1, "chart needs at least one node");
  std::ostringstream os;
  const double span = to - from;
  if (span <= 0.0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const double slot = span / options.columns;
  os << "time " << from << " .. " << to << "  (" << slot
     << "s per column)\n";
  for (int node = 0; node < node_count; ++node) {
    std::string row(static_cast<std::size_t>(options.columns), options.idle);
    for (const Bar& bar : bars) {
      if (((bar.mask >> node) & 1u) == 0) continue;
      const int first =
          std::max(0, static_cast<int>((bar.start - from) / slot));
      const int last = std::min(
          options.columns, static_cast<int>((bar.end - from) / slot + 0.999));
      for (int column = first; column < last; ++column) {
        row[static_cast<std::size_t>(column)] = bar.glyph;
      }
    }
    os << "node ";
    if (node < 10) os << ' ';
    os << node << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace

std::string render_schedule(std::span<const sched::Task> tasks,
                            const sched::DecodedSchedule& schedule,
                            int node_count, SimTime now,
                            GanttOptions options) {
  GRIDLB_REQUIRE(tasks.size() == schedule.placements.size(),
                 "schedule does not cover the task list");
  std::vector<Bar> bars;
  bars.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const sched::TaskPlacement& placement = schedule.placements[t];
    bars.push_back(
        Bar{placement.start, placement.end, placement.mask, glyph_for(t)});
  }
  return render_bars(bars, node_count, now, schedule.completion, options);
}

std::string render_trace(std::span<const sched::CompletionRecord> records,
                         int node_count, SimTime from, SimTime to,
                         GanttOptions options) {
  std::vector<Bar> bars;
  bars.reserve(records.size());
  SimTime first = kTimeInfinity;
  SimTime last = 0.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    bars.push_back(Bar{record.start, record.end, record.mask, glyph_for(i)});
    first = std::min(first, record.start);
    last = std::max(last, record.end);
  }
  if (bars.empty()) {
    first = 0.0;
    last = 0.0;
  }
  if (from == kNoTime) from = first;
  if (to == kNoTime) to = last;
  return render_bars(bars, node_count, from, to, options);
}

}  // namespace gridlb::report
