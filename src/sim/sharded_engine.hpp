// Conservative-lookahead shard coordinator for the discrete-event engine.
//
// Partitions one simulation across N sim::Engine shards (one event queue
// per shard, agents pinned to shards at scenario-build time) and drives
// them with the PR-1 thread pool.  Synchronization is classic conservative
// lookahead: the network's delivery latency L bounds how soon anything an
// event does can affect another shard, so all events in the global window
// [t_min, t_min + L) are mutually independent across shards and can run in
// parallel.  Cross-shard sends are buffered in per-shard outboxes during a
// window and injected into their destination queues at the barrier — never
// earlier than their safe time (>= window bound).
//
// Determinism contract (see DESIGN.md §13): a sharded run produces the
// bit-for-bit identical ExperimentResult for any shard count.  Two
// mechanisms carry this:
//   1. Lineage ordering (engine.hpp): equal-time ties are broken by the
//      partition-independent key (at, parent's global execution rank,
//      child index), which provably equals the single-queue scheduling-
//      order tie-break.  Ranks are assigned by a k-way merge over the
//      shards' window execution logs when each window is sealed.
//   2. Exact stop: when the pending milestones (task completions) due
//      inside the next window could finish the run, the coordinator
//      switches to a serial globally-merged stepping mode so the run halts
//      at exactly the same event as a single-queue run — preserving
//      finished_at, sim_events and every other counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace gridlb::obs {
class Counter;
class Gauge;
}  // namespace gridlb::obs

namespace gridlb::sim {

/// Stop predicate for drive(): `done` flips when the run is complete and
/// `remaining` reports how many milestone executions are still needed (used
/// for the exact-stop decision).  Both are only called from the
/// coordinator slot between barriers, never concurrently.
///
/// `until` is the optional open-loop cutoff: the drive also finishes once
/// every pending event is at `until` or later, i.e. it executes exactly
/// the events with time < until.  Because that set is a property of the
/// global event timeline — not of any shard partition — a time-bounded
/// drive is shard-count invariant by construction, with no serial tail
/// needed.  kTimeInfinity (the default) disables the cutoff, restoring
/// the classic behaviour where a drained queue before `done()` is an
/// error.
struct DriveGoal {
  std::function<bool()> done;
  std::function<std::uint64_t()> remaining;
  SimTime until = kTimeInfinity;
};

/// A sense-reversing spin barrier with an abort switch: kill() releases
/// every current and future waiter with a `false` return so a throwing
/// shard cannot deadlock the others.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  /// Returns false if the barrier was killed.
  bool arrive_and_wait();
  void kill();

 private:
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
  std::atomic<bool> killed_{false};
};

class ShardedEngine {
 public:
  /// `shards` == 1 builds a single plain sequence-ordered engine (the
  /// bit-for-bit reference path); > 1 builds lineage-ordered shards that
  /// require a positive `lookahead` (the network latency).
  ShardedEngine(std::size_t shards, SimTime lookahead);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return engines_.size(); }
  [[nodiscard]] bool sharded() const { return engines_.size() > 1; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] Engine& shard(std::size_t s) { return *engines_[s]; }

  /// Schedules `fn` on shard `dest` at the calling context's now + delay.
  /// From inside an event this routes same-shard schedules directly and
  /// buffers cross-shard ones (which must respect the lookahead:
  /// delay >= lookahead()).  Outside any event (scenario setup) it
  /// schedules directly with genesis lineage.
  void post(std::size_t dest, SimTime delay, EventFn fn);

  /// Runs the simulation until `goal.done()`, raising the same assertion
  /// errors as the classic serial driver loop when the queues drain early
  /// or `horizon` is exceeded.
  void drive(const DriveGoal& goal, SimTime horizon);

  /// Sums over shards.
  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::uint64_t events_swept() const;
  /// Max over shards == the timestamp of the last executed event.
  [[nodiscard]] SimTime max_now() const;

 private:
  enum class DecisionKind { kParallel, kSerial, kFinished };
  struct Decision {
    DecisionKind kind = DecisionKind::kFinished;
    SimTime bound = 0.0;
  };
  struct Posted {
    std::size_t dest;
    SimTime at;
    Engine::ChildRef ref;
    EventFn fn;
  };

  /// Per-shard engine telemetry (DESIGN.md §14), published into the
  /// active obs::MetricsRegistry when one is installed at drive() time:
  /// `shard.<s>.events` / `.barrier_wait_ns` / `.outbox_messages` /
  /// `.serial_events` / `.events_swept` counters, `shard.windows` /
  /// `shard.serial_entries` run-wide counters, and a derived
  /// `shard.load_imbalance` gauge — the running mean over windows of
  /// (max events on one shard) / (mean events per shard).  All counters
  /// are registry instruments, so enabling them never touches
  /// ExperimentResult; barrier-wait time is wall-clock and therefore the
  /// one deliberately nondeterministic number in the registry.
  struct Telemetry {
    std::vector<obs::Counter*> events;
    std::vector<obs::Counter*> barrier_wait_ns;
    std::vector<obs::Counter*> outbox_messages;
    std::vector<obs::Counter*> serial_events;
    obs::Counter* windows = nullptr;
    obs::Counter* serial_entries = nullptr;
    obs::Gauge* load_imbalance = nullptr;
    std::vector<std::uint64_t> window_base;  ///< events at window start
    std::vector<std::uint64_t> swept_base;   ///< swept at drive start
    double imbalance_sum = 0.0;
    std::uint64_t imbalance_windows = 0;
  };

  void worker(std::size_t s, const DriveGoal& goal);
  void decide(const DriveGoal& goal);
  void run_serial(const DriveGoal& goal);
  void seal_window();
  void drain_outboxes();
  void setup_telemetry();
  void flush_window_telemetry();
  bool await(std::size_t s);  ///< arrive_and_wait, timed when telemetry on

  SimTime lookahead_ = 0.0;
  LineageShared shared_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::vector<Posted>> outbox_;  // one per source shard

  // drive() state; written/read only in barrier-separated phases.
  SimTime horizon_ = 0.0;
  std::vector<SimTime> next_times_;
  Decision decision_;
  SpinBarrier* barrier_ = nullptr;
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace gridlb::sim
