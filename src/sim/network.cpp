#include "sim/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "sim/sharded_engine.hpp"

namespace gridlb::sim {

namespace {
/// `extra` payload of a kMessageDropped trace event.
enum DropReason : std::uint32_t {
  kDropRandom = 0,
  kDropPartition = 1,
  kDropEndpointDown = 2,
};

/// Stateless per-message fault seed: injective over (sender, ordinal) for
/// any realistic endpoint count, then thoroughly mixed by Rng's splitmix64
/// seeding.  Replaces the old shared send-order RNG stream, whose draws
/// depended on the global interleaving of sends and so could not survive
/// shard-count changes.
std::uint64_t message_seed(std::uint64_t plan_seed, EndpointId from,
                           std::uint64_t ordinal) {
  return plan_seed ^ (static_cast<std::uint64_t>(from) << 32) ^ ordinal;
}
}  // namespace

Network::Network(Engine& engine, double latency_seconds, FaultPlan plan)
    : engine_(engine), latency_(latency_seconds), plan_(std::move(plan)) {
  GRIDLB_REQUIRE(latency_seconds >= 0.0, "latency must be non-negative");
  GRIDLB_REQUIRE(plan_.drop_prob >= 0.0 && plan_.drop_prob < 1.0,
                 "drop probability must lie in [0, 1)");
  GRIDLB_REQUIRE(plan_.jitter_max >= 0.0, "jitter must be non-negative");
  for (const FaultPlan::Partition& partition : plan_.partitions) {
    GRIDLB_REQUIRE(partition.until >= partition.from,
                   "partition window must not end before it starts");
  }
}

void Network::attach_router(ShardedEngine* router) {
  GRIDLB_REQUIRE(router == nullptr || router->lookahead() <= latency_ ||
                     !router->sharded(),
                 "router lookahead must not exceed the network latency");
  router_ = router;
}

EndpointId Network::register_endpoint(std::string address, int port,
                                      Handler handler) {
  GRIDLB_REQUIRE(handler != nullptr, "endpoint handler must be set");
  endpoints_.push_back(Endpoint{std::move(address), port, std::move(handler),
                                {}, {}, registration_shard_, true});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_endpoint_up(EndpointId id, bool up) {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  endpoints_[id].up = up;
}

bool Network::endpoint_up(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].up;
}

bool Network::partitioned(EndpointId from, EndpointId to, SimTime now) const {
  for (const FaultPlan::Partition& partition : plan_.partitions) {
    if (now < partition.from || now >= partition.until) continue;
    const auto inside = [&partition](const std::string& address) {
      return std::find(partition.island.begin(), partition.island.end(),
                       address) != partition.island.end();
    };
    if (inside(endpoints_[from].address) != inside(endpoints_[to].address)) {
      return true;
    }
  }
  return false;
}

void Network::send(EndpointId from, EndpointId to, std::string payload) {
  GRIDLB_REQUIRE(from < endpoints_.size(), "unknown sender endpoint");
  GRIDLB_REQUIRE(to < endpoints_.size(), "unknown recipient endpoint");
  // The clock of whichever shard is executing the sending event; falls
  // back to the primary engine outside any event (tests driving the
  // network directly).
  Engine* const current = Engine::current();
  Engine& source = current != nullptr ? *current : engine_;
  const SimTime now = source.now();

  Endpoint& sender = endpoints_[from];
  const std::uint64_t ordinal = sender.stats.messages_sent;
  const auto size = static_cast<std::uint64_t>(payload.size());
  sender.stats.messages_sent += 1;
  sender.stats.bytes_sent += size;

  double latency = latency_;
  if (plan_.active()) {
    if (partitioned(from, to, now)) {
      ++sender.faults.dropped_partition;
      obs::emit({.at = now,
                 .kind = obs::EventKind::kMessageDropped,
                 .extra = kDropPartition,
                 .a = static_cast<double>(from),
                 .b = static_cast<double>(to)});
      return;
    }
    if (plan_.drop_prob > 0.0 || plan_.jitter_max > 0.0) {
      Rng draw(message_seed(plan_.seed, from, ordinal));
      if (plan_.drop_prob > 0.0 && draw.chance(plan_.drop_prob)) {
        ++sender.faults.dropped_random;
        obs::emit({.at = now,
                   .kind = obs::EventKind::kMessageDropped,
                   .extra = kDropRandom,
                   .a = static_cast<double>(from),
                   .b = static_cast<double>(to)});
        return;
      }
      if (plan_.jitter_max > 0.0) {
        latency += draw.uniform(0.0, plan_.jitter_max);
      }
    }
  }

  Message message;
  message.from = from;
  message.to = to;
  message.payload = std::move(payload);
  message.sent_at = now;
  auto deliver = [this, message = std::move(message)]() mutable {
    Endpoint& destination = endpoints_[message.to];
    const SimTime arrival = Engine::current() != nullptr
                                ? Engine::current()->now()
                                : engine_.now();
    if (!destination.up) {
      ++destination.faults.dropped_endpoint_down;
      obs::emit({.at = arrival,
                 .kind = obs::EventKind::kMessageDropped,
                 .extra = kDropEndpointDown,
                 .a = static_cast<double>(message.from),
                 .b = static_cast<double>(message.to)});
      return;
    }
    message.delivered_at = arrival;
    destination.stats.messages_received += 1;
    destination.stats.bytes_received += message.payload.size();
    destination.handler(message);
  };
  if (router_ != nullptr) {
    router_->post(endpoints_[to].shard, latency, std::move(deliver));
  } else {
    source.schedule_in(latency, std::move(deliver));
  }
}

const EndpointStats& Network::stats(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].stats;
}

std::size_t Network::endpoint_shard(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].shard;
}

std::uint64_t Network::total_messages() const {
  std::uint64_t total = 0;
  for (const Endpoint& endpoint : endpoints_) {
    total += endpoint.stats.messages_sent;
  }
  return total;
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t total = 0;
  for (const Endpoint& endpoint : endpoints_) {
    total += endpoint.stats.bytes_sent;
  }
  return total;
}

FaultStats Network::fault_stats() const {
  FaultStats total;
  for (const Endpoint& endpoint : endpoints_) {
    total.dropped_random += endpoint.faults.dropped_random;
    total.dropped_partition += endpoint.faults.dropped_partition;
    total.dropped_endpoint_down += endpoint.faults.dropped_endpoint_down;
  }
  return total;
}

const std::string& Network::address(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].address;
}

int Network::port(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].port;
}

}  // namespace gridlb::sim
