#include "sim/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace gridlb::sim {

namespace {
/// `extra` payload of a kMessageDropped trace event.
enum DropReason : std::uint32_t {
  kDropRandom = 0,
  kDropPartition = 1,
  kDropEndpointDown = 2,
};
}  // namespace

Network::Network(Engine& engine, double latency_seconds, FaultPlan plan)
    : engine_(engine), latency_(latency_seconds), plan_(std::move(plan)) {
  GRIDLB_REQUIRE(latency_seconds >= 0.0, "latency must be non-negative");
  GRIDLB_REQUIRE(plan_.drop_prob >= 0.0 && plan_.drop_prob < 1.0,
                 "drop probability must lie in [0, 1)");
  GRIDLB_REQUIRE(plan_.jitter_max >= 0.0, "jitter must be non-negative");
  for (const FaultPlan::Partition& partition : plan_.partitions) {
    GRIDLB_REQUIRE(partition.until >= partition.from,
                   "partition window must not end before it starts");
  }
  if (plan_.active()) fault_rng_.emplace(plan_.seed);
}

EndpointId Network::register_endpoint(std::string address, int port,
                                      Handler handler) {
  GRIDLB_REQUIRE(handler != nullptr, "endpoint handler must be set");
  endpoints_.push_back(
      Endpoint{std::move(address), port, std::move(handler), {}, true});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_endpoint_up(EndpointId id, bool up) {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  endpoints_[id].up = up;
}

bool Network::endpoint_up(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].up;
}

bool Network::partitioned(EndpointId from, EndpointId to) const {
  const SimTime now = engine_.now();
  for (const FaultPlan::Partition& partition : plan_.partitions) {
    if (now < partition.from || now >= partition.until) continue;
    const auto inside = [&partition](const std::string& address) {
      return std::find(partition.island.begin(), partition.island.end(),
                       address) != partition.island.end();
    };
    if (inside(endpoints_[from].address) != inside(endpoints_[to].address)) {
      return true;
    }
  }
  return false;
}

void Network::send(EndpointId from, EndpointId to, std::string payload) {
  GRIDLB_REQUIRE(from < endpoints_.size(), "unknown sender endpoint");
  GRIDLB_REQUIRE(to < endpoints_.size(), "unknown recipient endpoint");
  const auto size = static_cast<std::uint64_t>(payload.size());
  endpoints_[from].stats.messages_sent += 1;
  endpoints_[from].stats.bytes_sent += size;
  ++total_messages_;
  total_bytes_ += size;

  double latency = latency_;
  if (fault_rng_) {
    if (partitioned(from, to)) {
      ++fault_stats_.dropped_partition;
      obs::emit({.at = engine_.now(),
                 .kind = obs::EventKind::kMessageDropped,
                 .extra = kDropPartition,
                 .a = static_cast<double>(from),
                 .b = static_cast<double>(to)});
      return;
    }
    if (plan_.drop_prob > 0.0 && fault_rng_->chance(plan_.drop_prob)) {
      ++fault_stats_.dropped_random;
      obs::emit({.at = engine_.now(),
                 .kind = obs::EventKind::kMessageDropped,
                 .extra = kDropRandom,
                 .a = static_cast<double>(from),
                 .b = static_cast<double>(to)});
      return;
    }
    if (plan_.jitter_max > 0.0) {
      latency += fault_rng_->uniform(0.0, plan_.jitter_max);
    }
  }

  Message message;
  message.from = from;
  message.to = to;
  message.payload = std::move(payload);
  message.sent_at = engine_.now();
  engine_.schedule_in(
      latency, [this, message = std::move(message)]() mutable {
        Endpoint& destination = endpoints_[message.to];
        if (!destination.up) {
          ++fault_stats_.dropped_endpoint_down;
          obs::emit({.at = engine_.now(),
                     .kind = obs::EventKind::kMessageDropped,
                     .extra = kDropEndpointDown,
                     .a = static_cast<double>(message.from),
                     .b = static_cast<double>(message.to)});
          return;
        }
        message.delivered_at = engine_.now();
        destination.stats.messages_received += 1;
        destination.stats.bytes_received += message.payload.size();
        destination.handler(message);
      });
}

const EndpointStats& Network::stats(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].stats;
}

const std::string& Network::address(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].address;
}

int Network::port(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].port;
}

}  // namespace gridlb::sim
