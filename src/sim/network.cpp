#include "sim/network.hpp"

#include "common/assert.hpp"

namespace gridlb::sim {

Network::Network(Engine& engine, double latency_seconds)
    : engine_(engine), latency_(latency_seconds) {
  GRIDLB_REQUIRE(latency_seconds >= 0.0, "latency must be non-negative");
}

EndpointId Network::register_endpoint(std::string address, int port,
                                      Handler handler) {
  GRIDLB_REQUIRE(handler != nullptr, "endpoint handler must be set");
  endpoints_.push_back(
      Endpoint{std::move(address), port, std::move(handler), {}});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::send(EndpointId from, EndpointId to, std::string payload) {
  GRIDLB_REQUIRE(from < endpoints_.size(), "unknown sender endpoint");
  GRIDLB_REQUIRE(to < endpoints_.size(), "unknown recipient endpoint");
  const auto size = static_cast<std::uint64_t>(payload.size());
  endpoints_[from].stats.messages_sent += 1;
  endpoints_[from].stats.bytes_sent += size;
  ++total_messages_;
  total_bytes_ += size;

  Message message;
  message.from = from;
  message.to = to;
  message.payload = std::move(payload);
  message.sent_at = engine_.now();
  engine_.schedule_in(
      latency_, [this, message = std::move(message)]() mutable {
        message.delivered_at = engine_.now();
        Endpoint& destination = endpoints_[message.to];
        destination.stats.messages_received += 1;
        destination.stats.bytes_received += message.payload.size();
        destination.handler(message);
      });
}

const EndpointStats& Network::stats(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].stats;
}

const std::string& Network::address(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].address;
}

int Network::port(EndpointId id) const {
  GRIDLB_REQUIRE(id < endpoints_.size(), "unknown endpoint");
  return endpoints_[id].port;
}

}  // namespace gridlb::sim
